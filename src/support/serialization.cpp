#include "support/serialization.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ft::support {

std::string schema_version_field() {
  return "\"schema_version\":" + std::to_string(kSchemaVersion);
}

int read_schema_version(std::string_view text) {
  constexpr std::string_view kNeedle = "\"schema_version\":";
  const std::size_t at = text.find(kNeedle);
  if (at == std::string_view::npos) return 1;  // pre-versioning artifact
  std::size_t begin = at + kNeedle.size();
  while (begin < text.size() && text[begin] == ' ') ++begin;
  int value = 0;
  bool any = false;
  while (begin < text.size() && text[begin] >= '0' && text[begin] <= '9') {
    value = value * 10 + (text[begin] - '0');
    ++begin;
    any = true;
  }
  return any ? value : 0;
}

void require_schema_version(std::string_view text, const std::string& what) {
  const int version = read_schema_version(text);
  if (version <= 0) {
    throw std::runtime_error(what + ": malformed schema_version field");
  }
  if (version > kSchemaVersion) {
    throw std::runtime_error(
        what + ": schema_version " + std::to_string(version) +
        " is newer than this binary understands (max " +
        std::to_string(kSchemaVersion) + "); upgrade to read it");
  }
}

}  // namespace ft::support
