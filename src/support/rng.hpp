// Deterministic random number generation for reproducible experiments.
//
// All randomness in the library flows through ft::support::Rng, a
// xoshiro256** generator seeded via SplitMix64. Child generators can be
// derived from string keys so that independent subsystems (noise model,
// search algorithms, workload generators) draw from decorrelated,
// reproducible streams regardless of evaluation order or thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace ft::support {

/// SplitMix64 step: used for seeding and for hashing keys into seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a 64-bit hash of a byte string, used to derive child seeds.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can also
/// be handed to <random> distributions, though the built-in helpers
/// below are preferred because their results are platform-stable.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derives an independent child generator from a string key.
  /// Identical (parent seed, key) pairs always yield identical streams.
  [[nodiscard]] Rng fork(std::string_view key) const noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal deviate (Box-Muller, platform-stable).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Uniformly chosen index weighted by `weights` (need not sum to 1).
  /// Returns weights.size()-1 if numerical slack leaves the draw beyond
  /// the last bucket. Requires a non-empty, non-negative weight vector.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = next_below(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k) noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ft::support
