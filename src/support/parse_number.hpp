// Locale-independent numeric parsing. std::stod / std::strtod honor
// LC_NUMERIC, so a process started under (or switched to) a locale
// with ',' as the decimal separator silently mis-parses "%.17g" text -
// a checkpoint journal, a wire frame or a --noise-sigma value would
// round-trip to *different bits* and break the bit-identity contract.
// Every number that crosses a serialization boundary must go through
// these helpers instead; they parse the C-locale grammar regardless of
// the global locale.
#pragma once

#include <cstdint>
#include <string_view>

namespace ft::support {

/// Parses a double at the start of `text` using the C-locale grammar
/// ('.' decimal point, optional exponent; no leading whitespace or
/// '+'). On success stores the value, sets `*consumed` (when non-null)
/// to the number of characters eaten, and returns true. Infinities and
/// NaNs parse (callers that forbid them check std::isfinite).
[[nodiscard]] bool parse_double_prefix(std::string_view text, double* out,
                                       std::size_t* consumed = nullptr);

/// parse_double_prefix requiring the whole of `text` to be the number.
[[nodiscard]] bool parse_double(std::string_view text, double* out);

/// Whole-string base-10 signed/unsigned integer parses (also
/// locale-proof, and stricter than strtoll: no whitespace, no "0x").
[[nodiscard]] bool parse_int64(std::string_view text, std::int64_t* out);
[[nodiscard]] bool parse_uint64(std::string_view text, std::uint64_t* out);

/// Byte sizes for CLI flags: a base-10 integer with an optional
/// K/M/G/T suffix (binary multiples, case-insensitive, optional
/// trailing B/iB as in "64MiB"). Rejects overflow.
[[nodiscard]] bool parse_byte_size(std::string_view text,
                                   std::uint64_t* out);

}  // namespace ft::support
