// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320): the integrity
// trailer shared by the service layer's binary-crc32 wire framing and
// the persistent eval-cache's on-disk entries. Table-driven and
// dependency-free so both ft_support consumers can link it without
// dragging in the service layer.
#pragma once

#include <cstdint>
#include <string_view>

namespace ft::support {

/// CRC-32 over `bytes`. Any single-byte corruption and any burst up to
/// 32 bits is guaranteed detected.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

}  // namespace ft::support
