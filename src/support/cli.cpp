#include "support/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "support/parse_number.hpp"

namespace ft::support {

CliArgs::CliArgs(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

CliArgs::CliArgs(const std::vector<std::string>& tokens) { parse(tokens); }

void CliArgs::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another option or absent,
    // in which case it is a boolean switch.
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      values_[body] = tokens[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t value = 0;
  // Partial parses ("10o0") are as wrong as unparseable ones.
  if (!parse_int64(it->second, &value)) {
    throw CliError("--" + name + ": not an integer: '" + it->second + "'");
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double value = 0.0;
  if (!parse_double(it->second, &value)) {
    throw CliError("--" + name + ": not a number: '" + it->second + "'");
  }
  return value;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

void CliArgs::check_known(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) throw CliError("unknown option: --" + name);
  }
}

}  // namespace ft::support
