// Small statistics toolkit used by the tuner and the benchmark harness:
// means, geometric means (the paper reports GM speedups), dispersion,
// percentiles and argmin/argmax helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ft::support {

/// Arithmetic mean. Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Geometric mean of strictly positive values. Returns 0 if the span is
/// empty or contains a non-positive value.
[[nodiscard]] double geomean(std::span<const double> values) noexcept;

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> values) noexcept;

/// Population variance helper used by the noise-model tests.
[[nodiscard]] double variance(std::span<const double> values) noexcept;

/// Median (copies and sorts). Returns 0 for an empty span.
[[nodiscard]] double median(std::span<const double> values);

/// Mean after symmetrically discarding floor(trim * n) samples from
/// each sorted tail (trim in [0, 0.5)). Robust to outlier spikes: with
/// the default 20% trim a single contaminated rep out of >= 5 cannot
/// move the estimate. Degenerates to the plain mean for small n.
[[nodiscard]] double trimmed_mean(std::span<const double> values,
                                  double trim = 0.2);

/// Median absolute deviation from the median (unscaled). A robust
/// dispersion estimate: multiply by ~1.4826 for a Gaussian-consistent
/// sigma. Returns 0 for an empty span.
[[nodiscard]] double mad(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Index of the smallest element. Requires a non-empty span.
[[nodiscard]] std::size_t argmin(std::span<const double> values) noexcept;

/// Index of the largest element. Requires a non-empty span.
[[nodiscard]] std::size_t argmax(std::span<const double> values) noexcept;

/// Indices of the k smallest elements, ordered ascending by value.
/// Ties are broken by the lower index, so results are deterministic.
[[nodiscard]] std::vector<std::size_t> smallest_k(
    std::span<const double> values, std::size_t k);

/// Pearson correlation coefficient. Returns 0 when either side has zero
/// variance or the spans differ in length.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys) noexcept;

}  // namespace ft::support
