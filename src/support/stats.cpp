#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ft::support {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double geomean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double stddev(std::span<const double> values) noexcept {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (const double v : values) accum += (v - m) * (v - m);
  return std::sqrt(accum / static_cast<double>(n - 1));
}

double variance(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (const double v : values) accum += (v - m) * (v - m);
  return accum / static_cast<double>(values.size());
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double trimmed_mean(std::span<const double> values, double trim) {
  if (values.empty()) return 0.0;
  trim = std::clamp(trim, 0.0, 0.4999);
  const auto cut = static_cast<std::size_t>(
      trim * static_cast<double>(values.size()));
  if (cut == 0) return mean(values);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::span<const double> kept(sorted.data() + cut,
                                     sorted.size() - 2 * cut);
  return mean(kept);
}

double mad(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double m = median(values);
  std::vector<double> deviations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    deviations[i] = std::abs(values[i] - m);
  }
  return median(deviations);
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::size_t argmin(std::span<const double> values) noexcept {
  return static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

std::size_t argmax(std::span<const double> values) noexcept {
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

std::vector<std::size_t> smallest_k(std::span<const double> values,
                                    std::size_t k) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  k = std::min(k, values.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) return values[a] < values[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

double pearson(std::span<const double> xs,
               std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ft::support
