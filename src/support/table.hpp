// ASCII table and CSV rendering for the benchmark harness. Every figure
// and table binary prints the same rows/series the paper reports via
// this formatter, and can optionally emit CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ft::support {

/// Column-aligned ASCII table with an optional title.
///
/// Usage:
///   Table t("Fig 5a: speedups on AMD Opteron");
///   t.set_header({"Benchmark", "Random", "CFR"});
///   t.add_row({"LULESH", "1.031", "1.094"});
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Number formatting helper: fixed-point with `digits` decimals.
  [[nodiscard]] static std::string num(double value, int digits = 3);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;

  /// Comma-separated rendering (header first), for machine consumption.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ft::support
