// Declarative option table layered over CliArgs. Tools declare every
// flag once — name, type, default, help text, optional validator —
// and get strict parsing (unknown flags and malformed values throw
// CliError, the PR-3 contract) plus an auto-generated --help rendering
// for free. `tools/ftune.cpp` and the `bench/*` mains all build their
// command lines from this table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/cli.hpp"

namespace ft::support {

class OptionSet {
 public:
  /// Returns "" when the raw value is acceptable, else a message that
  /// is appended to the CliError ("--samples: must be positive").
  using Validator = std::function<std::string(const std::string&)>;

  /// Parse result: every declared option resolved to its typed value.
  /// Getters throw std::logic_error for names that were never
  /// declared — that is a programming error, not a user error.
  class Parsed {
   public:
    [[nodiscard]] const std::string& text(const std::string& name) const;
    [[nodiscard]] std::int64_t integer(const std::string& name) const;
    [[nodiscard]] double real(const std::string& name) const;
    [[nodiscard]] bool flag(const std::string& name) const;
    /// True when the user supplied the option (vs. the default).
    [[nodiscard]] bool given(const std::string& name) const;
    [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
      return positionals_;
    }

   private:
    friend class OptionSet;
    struct Value {
      std::string name;
      std::string text;
      std::int64_t integer = 0;
      double real = 0.0;
      bool flag = false;
      int type = 0;  // OptionSet::Type
      bool given = false;
    };
    [[nodiscard]] const Value& lookup(const std::string& name, int type) const;
    std::vector<Value> values_;
    std::vector<std::string> positionals_;
  };

  // Declaration order is help order; chainable.
  OptionSet& flag(const std::string& name, bool fallback,
                  const std::string& help);
  OptionSet& integer(const std::string& name, std::int64_t fallback,
                     const std::string& help, Validator validator = nullptr);
  OptionSet& real(const std::string& name, double fallback,
                  const std::string& help, Validator validator = nullptr);
  OptionSet& text(const std::string& name, const std::string& fallback,
                  const std::string& help, Validator validator = nullptr);

  /// Strict parse: rejects undeclared flags, malformed numerics (even
  /// partial parses like "10o0"), bad boolean spellings, and any value
  /// a validator refuses. Throws CliError with the offending token.
  /// Every element of argv is a token — pass `argc - 1, argv + 1` from
  /// main (the program name is NOT skipped, unlike CliArgs).
  [[nodiscard]] Parsed parse(int argc, const char* const* argv) const;
  [[nodiscard]] Parsed parse(const std::vector<std::string>& tokens) const;

  /// Aligned option table for --help, preceded by `usage_line`.
  [[nodiscard]] std::string help(const std::string& usage_line) const;

 private:
  enum Type { kFlag, kInteger, kReal, kText };
  struct Spec {
    std::string name;
    Type type;
    std::string fallback_text;  // rendered in help
    std::int64_t fallback_integer = 0;
    double fallback_real = 0.0;
    bool fallback_flag = false;
    std::string help;
    Validator validator;
  };

  OptionSet& add(Spec spec);
  [[nodiscard]] Parsed resolve(const CliArgs& args) const;

  std::vector<Spec> specs_;
};

}  // namespace ft::support
