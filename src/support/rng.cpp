#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace ft::support {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view key) const noexcept {
  // Mix the current state (not advanced) with the key hash so forks from
  // the same parent with different keys are decorrelated.
  const std::uint64_t mixed =
      state_[0] ^ rotl(state_[1], 17) ^ rotl(fnv1a64(key), 29);
  return Rng(mixed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: platform-stable given stable uniform draws.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) return next_below(weights.empty() ? 1 : weights.size());
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(
    std::size_t n, std::size_t k) noexcept {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (std::size_t i = 0; i < k && i + 1 < n; ++i) {
    const std::size_t j = i + next_below(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k < n ? k : n);
  return indices;
}

}  // namespace ft::support
