#include "support/json.hpp"

#include <cmath>
#include <cstdlib>

#include "support/parse_number.hpp"

namespace ft::support {

namespace {

/// Nesting bound: deeper documents are rejected, which keeps the
/// recursive parser safe against "[[[[..." stack-growth attacks from
/// the service socket.
constexpr int kMaxDepth = 64;
/// Container size bound per level (a 16 MiB frame cannot hold more
/// elements anyway; this just fails fast on pathological input).
constexpr std::size_t kMaxElements = 1u << 22;

}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected, const char* what) {
    if (at_end() || text_[pos_] != expected) return fail(what);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return parse_string(&out->text_);
      }
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_literal("null", out, JsonValue::Kind::kNull);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view word, JsonValue* out,
                     JsonValue::Kind kind) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    out->kind_ = kind;
    return true;
  }

  bool parse_bool(JsonValue* out) {
    const bool is_true = peek() == 't';
    if (!parse_literal(is_true ? "true" : "false", out,
                       JsonValue::Kind::kBool)) {
      return false;
    }
    out->number_ = is_true ? 1.0 : 0.0;
    return true;
  }

  bool parse_number(JsonValue* out) {
    double value = 0.0;
    std::size_t consumed = 0;
    if (!parse_double_prefix(text_.substr(pos_), &value, &consumed)) {
      return fail("bad value");
    }
    if (!std::isfinite(value)) return fail("non-finite number");
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    // Raw text kept so 64-bit integers exceeding double precision can
    // still be read exactly via get(key, uint64*).
    out->text_.assign(text_.substr(pos_, consumed));
    pos_ += consumed;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"', "expected string")) return false;
    out->clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_end()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // No artifact in this repo emits \u escapes; decode the code
          // unit's low byte so hostile frames still parse defensively.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) return fail("bad \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (out->array_.size() >= kMaxElements) return fail("array too large");
      JsonValue element;
      skip_ws();
      if (!parse_value(&element, depth + 1)) return false;
      out->array_.push_back(std::move(element));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (out->members_.size() >= kMaxElements) {
        return fail("object too large");
      }
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':', "expected ':'")) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonValue::get(std::string_view key, std::string* out) const {
  const JsonValue* value = find(key);
  if (value == nullptr || !value->is_string()) return false;
  *out = value->string();
  return true;
}

bool JsonValue::get(std::string_view key, double* out) const {
  const JsonValue* value = find(key);
  if (value == nullptr || !value->is_number()) return false;
  *out = value->number();
  return true;
}

bool JsonValue::get(std::string_view key, bool* out) const {
  const JsonValue* value = find(key);
  if (value == nullptr) return false;
  if (value->is_bool()) {
    *out = value->boolean();
    return true;
  }
  if (value->is_number()) {  // 0/1 convention of the journal lines
    *out = value->number() != 0.0;
    return true;
  }
  return false;
}

bool JsonValue::get(std::string_view key, std::uint64_t* out) const {
  const JsonValue* value = find(key);
  if (value == nullptr) return false;
  // 64-bit hashes travel as decimal strings (double cannot hold them);
  // small integers may arrive as plain numbers. The raw number text is
  // reparsed so no precision is lost either way.
  const std::string* text = nullptr;
  if (value->is_string()) text = &value->string();
  else if (value->is_number()) text = &value->text_;
  else
    return false;
  if (text->empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text->c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool JsonValue::get(std::string_view key, std::int64_t* out) const {
  const JsonValue* value = find(key);
  if (value == nullptr) return false;
  const std::string* text = nullptr;
  if (value->is_string()) text = &value->string();
  else if (value->is_number()) text = &value->text_;
  else
    return false;
  if (text->empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(text->c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool JsonValue::parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  JsonParser parser(text, error);
  *out = JsonValue();
  return parser.run(out);
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.number_ = value ? 1.0 : 0.0;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  v.text_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(value);
  return v;
}

}  // namespace ft::support
