// Minimal command-line parser shared by the benchmark harness and the
// example programs. Supports "--name value" and "--name=value" forms
// plus boolean switches, with typed accessors and defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ft::support {

class CliArgs {
 public:
  /// Parses argv; unrecognized bare words are kept as positionals.
  CliArgs(int argc, const char* const* argv);

  /// Construct from pre-split tokens (used by tests).
  explicit CliArgs(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

 private:
  void parse(const std::vector<std::string>& tokens);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace ft::support
