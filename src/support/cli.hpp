// Minimal command-line parser shared by the benchmark harness and the
// example programs. Supports "--name value" and "--name=value" forms
// plus boolean switches, with typed accessors and defaults.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ft::support {

/// Malformed command line: unknown flag or unparseable value. Carries
/// the offending token so tools can report it and exit nonzero.
class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& what) : std::runtime_error(what) {}
};

class CliArgs {
 public:
  /// Parses argv; unrecognized bare words are kept as positionals.
  CliArgs(int argc, const char* const* argv);

  /// Construct from pre-split tokens (used by tests).
  explicit CliArgs(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  /// Typed accessors return `fallback` when the flag is absent and
  /// throw CliError (naming the flag and the offending token) when it
  /// is present but not a well-formed number - a typo like
  /// `--samples 10o0` must fail loudly, not silently tune with the
  /// default.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Throws CliError when any parsed `--flag` is not in `known`
  /// (misspelled options must not be silently ignored).
  void check_known(const std::vector<std::string>& known) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

 private:
  void parse(const std::vector<std::string>& tokens);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace ft::support
