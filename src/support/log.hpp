// Leveled logging with a process-wide threshold. Benchmark binaries run
// at Info; tests silence everything below Warn to keep ctest output
// readable; --verbose switches to Debug.
#pragma once

#include <sstream>
#include <string>

namespace ft::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that will be emitted (thread-safe).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits a single line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() {
  return detail::LogStream(LogLevel::kInfo);
}
inline detail::LogStream log_warn() {
  return detail::LogStream(LogLevel::kWarn);
}
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace ft::support
