// Minimal JSON document model + strict recursive-descent parser, for
// the places that must *read* JSON (the service wire protocol, tests):
// writers throughout the repo stay hand-rolled ostreams for exact
// field ordering and %.17g number round-tripping. The parser is
// depth-limited and allocation-bounded so hostile input (the fuzz
// suite feeds it garbage frames) degrades to a parse error, never a
// crash or runaway allocation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ft::support {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  /// Object members keep document order (deterministic re-encoding).
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  [[nodiscard]] bool boolean() const noexcept { return number_ != 0.0; }
  [[nodiscard]] double number() const noexcept { return number_; }
  [[nodiscard]] const std::string& string() const noexcept { return text_; }
  [[nodiscard]] const std::vector<JsonValue>& array() const noexcept {
    return array_;
  }
  [[nodiscard]] const Members& members() const noexcept { return members_; }

  /// Object member by key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  // Typed member readers: false when the member is absent or has the
  // wrong shape, so decoders can reject malformed frames field by
  // field instead of crashing on a bad cast.
  [[nodiscard]] bool get(std::string_view key, std::string* out) const;
  [[nodiscard]] bool get(std::string_view key, double* out) const;
  [[nodiscard]] bool get(std::string_view key, bool* out) const;
  /// Accepts a number or (for values exceeding double precision, the
  /// convention every artifact in this repo uses for 64-bit hashes) a
  /// decimal string.
  [[nodiscard]] bool get(std::string_view key, std::uint64_t* out) const;
  [[nodiscard]] bool get(std::string_view key, std::int64_t* out) const;

  /// Parses exactly one JSON document (trailing garbage rejected).
  /// On failure returns false and describes the problem in `error`.
  [[nodiscard]] static bool parse(std::string_view text, JsonValue* out,
                                  std::string* error = nullptr);

  // Construction helpers (tests build expected documents with these).
  [[nodiscard]] static JsonValue make_null() { return JsonValue(); }
  [[nodiscard]] static JsonValue make_bool(bool value);
  [[nodiscard]] static JsonValue make_number(double value);
  [[nodiscard]] static JsonValue make_string(std::string value);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  double number_ = 0.0;
  std::string text_;
  std::vector<JsonValue> array_;
  Members members_;
};

}  // namespace ft::support
