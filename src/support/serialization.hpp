// Artifact schema versioning. Every JSON artifact the repo emits
// (TuningResult json, checkpoint journal headers, telemetry JSONL
// traces, metrics snapshots, service frames) carries a
// "schema_version" field written and validated through this one
// helper, so readers can reject artifacts from a future format
// instead of silently misparsing them. Artifacts written before
// versioning existed have no field and read back as version 1.
#pragma once

#include <string>
#include <string_view>

namespace ft::support {

/// Current artifact schema. History:
///   1 - implicit; everything written before the field existed.
///   2 - the field itself (tuning json, journal header, telemetry
///       meta line, metrics snapshot, service hello/welcome).
///   3 - tuning json carries an "extras" object (typed key/value
///       algorithm extras replacing the bespoke independent_* pair).
///       v2 artifacts (no block) still read back: readers treat a
///       missing block as empty.
inline constexpr int kSchemaVersion = 3;

/// The literal member to splice into a JSON object:
/// `"schema_version":2`.
[[nodiscard]] std::string schema_version_field();

/// Schema version declared by a JSON artifact; 1 when the field is
/// absent (pre-versioning artifact), 0 when the field is present but
/// malformed.
[[nodiscard]] int read_schema_version(std::string_view text);

/// Throws std::runtime_error naming `what` when `text` declares a
/// schema newer than this binary understands (older versions are
/// accepted - readers stay backward compatible).
void require_schema_version(std::string_view text, const std::string& what);

}  // namespace ft::support
