#include "support/options.hpp"

#include <sstream>
#include <stdexcept>

namespace ft::support {

namespace {

bool parse_flag_text(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

const OptionSet::Parsed::Value& OptionSet::Parsed::lookup(
    const std::string& name, int type) const {
  for (const Value& value : values_) {
    if (value.name != name) continue;
    if (value.type != type) {
      throw std::logic_error("option --" + name + ": wrong type accessor");
    }
    return value;
  }
  throw std::logic_error("option --" + name + " was never declared");
}

const std::string& OptionSet::Parsed::text(const std::string& name) const {
  return lookup(name, kText).text;
}

std::int64_t OptionSet::Parsed::integer(const std::string& name) const {
  return lookup(name, kInteger).integer;
}

double OptionSet::Parsed::real(const std::string& name) const {
  return lookup(name, kReal).real;
}

bool OptionSet::Parsed::flag(const std::string& name) const {
  return lookup(name, kFlag).flag;
}

bool OptionSet::Parsed::given(const std::string& name) const {
  for (const Value& value : values_) {
    if (value.name == name) return value.given;
  }
  throw std::logic_error("option --" + name + " was never declared");
}

OptionSet& OptionSet::add(Spec spec) {
  for (const Spec& existing : specs_) {
    if (existing.name == spec.name) {
      throw std::logic_error("option --" + spec.name + " declared twice");
    }
  }
  specs_.push_back(std::move(spec));
  return *this;
}

OptionSet& OptionSet::flag(const std::string& name, bool fallback,
                           const std::string& help) {
  Spec spec;
  spec.name = name;
  spec.type = kFlag;
  spec.fallback_flag = fallback;
  spec.fallback_text = fallback ? "true" : "false";
  spec.help = help;
  return add(std::move(spec));
}

OptionSet& OptionSet::integer(const std::string& name, std::int64_t fallback,
                              const std::string& help, Validator validator) {
  Spec spec;
  spec.name = name;
  spec.type = kInteger;
  spec.fallback_integer = fallback;
  spec.fallback_text = std::to_string(fallback);
  spec.help = help;
  spec.validator = std::move(validator);
  return add(std::move(spec));
}

OptionSet& OptionSet::real(const std::string& name, double fallback,
                           const std::string& help, Validator validator) {
  Spec spec;
  spec.name = name;
  spec.type = kReal;
  spec.fallback_real = fallback;
  std::ostringstream rendered;
  rendered << fallback;
  spec.fallback_text = rendered.str();
  spec.help = help;
  spec.validator = std::move(validator);
  return add(std::move(spec));
}

OptionSet& OptionSet::text(const std::string& name, const std::string& fallback,
                           const std::string& help, Validator validator) {
  Spec spec;
  spec.name = name;
  spec.type = kText;
  spec.fallback_text = fallback;
  spec.help = help;
  spec.validator = std::move(validator);
  return add(std::move(spec));
}

OptionSet::Parsed OptionSet::parse(int argc, const char* const* argv) const {
  // Unlike CliArgs' argc/argv constructor this overload consumes every
  // element: callers pass `argc - 1, argv + 1` (or a subcommand tail),
  // having stripped the program name themselves.
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc : 0));
  for (int i = 0; i < argc; ++i) tokens.emplace_back(argv[i]);
  return resolve(CliArgs(tokens));
}

OptionSet::Parsed OptionSet::parse(
    const std::vector<std::string>& tokens) const {
  return resolve(CliArgs(tokens));
}

OptionSet::Parsed OptionSet::resolve(const CliArgs& args) const {
  std::vector<std::string> known;
  known.reserve(specs_.size());
  for (const Spec& spec : specs_) known.push_back(spec.name);
  args.check_known(known);

  Parsed parsed;
  parsed.positionals_ = args.positionals();
  parsed.values_.reserve(specs_.size());
  for (const Spec& spec : specs_) {
    Parsed::Value value;
    value.name = spec.name;
    value.type = spec.type;
    value.given = args.has(spec.name);
    if (value.given && spec.validator != nullptr) {
      const std::string verdict = spec.validator(args.get(spec.name));
      if (!verdict.empty()) {
        throw CliError("--" + spec.name + ": " + verdict);
      }
    }
    // Eager typed parsing: a malformed value fails the whole command
    // line even if the tool never reads that option on this path.
    switch (spec.type) {
      case kFlag: {
        value.flag = spec.fallback_flag;
        if (value.given) {
          const std::string raw = args.get(spec.name);
          if (!parse_flag_text(raw, &value.flag)) {
            throw CliError("--" + spec.name + ": not a boolean: '" + raw +
                           "'");
          }
        }
        break;
      }
      case kInteger:
        value.integer = args.get_int(spec.name, spec.fallback_integer);
        break;
      case kReal:
        value.real = args.get_double(spec.name, spec.fallback_real);
        break;
      case kText:
        value.text = args.get(spec.name, spec.fallback_text);
        break;
    }
    parsed.values_.push_back(std::move(value));
  }
  return parsed;
}

std::string OptionSet::help(const std::string& usage_line) const {
  std::size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(specs_.size());
  for (const Spec& spec : specs_) {
    std::string head = "  --" + spec.name;
    switch (spec.type) {
      case kFlag: break;
      case kInteger: head += " N"; break;
      case kReal: head += " X"; break;
      case kText: head += " S"; break;
    }
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }

  std::ostringstream out;
  out << usage_line << "\n\noptions:\n";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const Spec& spec = specs_[i];
    out << heads[i] << std::string(width - heads[i].size() + 2, ' ')
        << spec.help;
    if (!spec.fallback_text.empty()) {
      out << " [default: " << spec.fallback_text << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ft::support
