#include "support/parse_number.hpp"

#include <charconv>

// Floating-point std::from_chars needs libstdc++ >= 11 / libc++ >= 20.
// The fallback parses through a stream imbued with the classic "C"
// locale, which is locale-independent too - just slower.
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#define FT_HAVE_FP_FROM_CHARS 1
#else
#define FT_HAVE_FP_FROM_CHARS 0
#include <locale>
#include <sstream>
#include <string>
#endif

namespace ft::support {

bool parse_double_prefix(std::string_view text, double* out,
                         std::size_t* consumed) {
#if FT_HAVE_FP_FROM_CHARS
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  if (ec != std::errc() || ptr == text.data()) return false;
  if (consumed != nullptr) {
    *consumed = static_cast<std::size_t>(ptr - text.data());
  }
  return true;
#else
  std::istringstream stream{std::string(text)};
  stream.imbue(std::locale::classic());
  stream >> std::noskipws >> *out;
  if (stream.fail()) return false;
  const std::streampos at = stream.tellg();
  if (consumed != nullptr) {
    *consumed = stream.eof() ? text.size()
                             : static_cast<std::size_t>(at);
  }
  return true;
#endif
}

bool parse_double(std::string_view text, double* out) {
  std::size_t consumed = 0;
  return parse_double_prefix(text, out, &consumed) &&
         consumed == text.size() && !text.empty();
}

bool parse_int64(std::string_view text, std::int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size() &&
         !text.empty();
}

bool parse_uint64(std::string_view text, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size() &&
         !text.empty();
}

bool parse_byte_size(std::string_view text, std::uint64_t* out) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr == text.data()) return false;
  std::string_view rest = text.substr(
      static_cast<std::size_t>(ptr - text.data()));
  unsigned shift = 0;
  if (!rest.empty()) {
    switch (rest.front()) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      case 't': case 'T': shift = 40; break;
      default: return false;
    }
    rest.remove_prefix(1);
    // Accept "64M", "64MB" and "64MiB" spellings alike.
    if (rest == "i" || rest == "I") return false;
    if (rest.size() == 2 && (rest[0] == 'i' || rest[0] == 'I')) {
      rest.remove_prefix(1);
    }
    if (!rest.empty() && rest != "b" && rest != "B") return false;
  }
  if (shift != 0 && value > (std::uint64_t{~0ULL} >> shift)) return false;
  *out = value << shift;
  return true;
}

}  // namespace ft::support
