#include "support/parse_number.hpp"

#include <charconv>

// Floating-point std::from_chars needs libstdc++ >= 11 / libc++ >= 20.
// The fallback parses through a stream imbued with the classic "C"
// locale, which is locale-independent too - just slower.
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#define FT_HAVE_FP_FROM_CHARS 1
#else
#define FT_HAVE_FP_FROM_CHARS 0
#include <locale>
#include <sstream>
#include <string>
#endif

namespace ft::support {

bool parse_double_prefix(std::string_view text, double* out,
                         std::size_t* consumed) {
#if FT_HAVE_FP_FROM_CHARS
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  if (ec != std::errc() || ptr == text.data()) return false;
  if (consumed != nullptr) {
    *consumed = static_cast<std::size_t>(ptr - text.data());
  }
  return true;
#else
  std::istringstream stream{std::string(text)};
  stream.imbue(std::locale::classic());
  stream >> std::noskipws >> *out;
  if (stream.fail()) return false;
  const std::streampos at = stream.tellg();
  if (consumed != nullptr) {
    *consumed = stream.eof() ? text.size()
                             : static_cast<std::size_t>(at);
  }
  return true;
#endif
}

bool parse_double(std::string_view text, double* out) {
  std::size_t consumed = 0;
  return parse_double_prefix(text, out, &consumed) &&
         consumed == text.size() && !text.empty();
}

bool parse_int64(std::string_view text, std::int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size() &&
         !text.empty();
}

bool parse_uint64(std::string_view text, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size() &&
         !text.empty();
}

}  // namespace ft::support
