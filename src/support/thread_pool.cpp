#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace ft::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(TaskGroup& group, std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(PendingTask{std::move(task), &group});
    ++group.pending_;
    ++tasks_submitted_;
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  group.submitted_.fetch_add(1, std::memory_order_relaxed);
  work_available_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  submit(default_group_, std::move(task));
}

void ThreadPool::run_task(PendingTask& task, bool stolen) {
  const auto start = std::chrono::steady_clock::now();
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  task.group->completed_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) task.group->stolen_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    ++tasks_completed_;
    if (stolen) ++tasks_stolen_;
    worker_busy_seconds_ += seconds;
    if (error && !task.group->first_error_) {
      task.group->first_error_ = error;
    }
    if (--task.group->pending_ == 0) task.group->done_.notify_all();
  }
}

void ThreadPool::wait(TaskGroup& group) {
  std::unique_lock lock(mutex_);
  while (group.pending_ > 0) {
    if (!queue_.empty()) {
      // Help execute queued work (any group's) instead of blocking:
      // this is what makes a nested parallel_for inside a worker task
      // make progress when every worker is itself inside a wait().
      PendingTask task = std::move(queue_.front());
      queue_.pop();
      lock.unlock();
      run_task(task, /*stolen=*/true);
      lock.lock();
    } else {
      group.done_.wait(lock);
    }
  }
  std::exception_ptr error = group.first_error_;
  group.first_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::wait_idle() { wait(default_group_); }

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(mutex_);
  Stats s;
  s.threads = workers_.size();
  s.tasks_submitted = tasks_submitted_;
  s.tasks_completed = tasks_completed_;
  s.tasks_stolen = tasks_stolen_;
  s.queue_high_water = queue_high_water_;
  s.worker_busy_seconds = worker_busy_seconds_;
  return s;
}

void ThreadPool::worker_loop() {
  for (;;) {
    PendingTask task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    run_task(task, /*stolen=*/false);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    // FT_THREADS overrides hardware_concurrency for the shared pool,
    // so a deployment can size the evaluation runtime independently of
    // the container's visible core count.
    if (const char* env = std::getenv("FT_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool, TaskGroup::Stats* group_stats) {
  if (group_stats) *group_stats = TaskGroup::Stats{};
  if (count == 0) return;
  ThreadPool& target = pool ? *pool : global_pool();
  const std::size_t threads = target.thread_count();
  if (count == 1 || threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Static chunking: each task owns a contiguous index range. The chunk
  // count is independent of thread availability so work assignment (and
  // thus any per-chunk state) is deterministic.
  const std::size_t chunks = std::min(count, threads * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  TaskGroup group;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, count);
    if (begin >= end) break;
    target.submit(group, [&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  target.wait(group);
  if (group_stats) *group_stats = group.stats();
}

}  // namespace ft::support
