#include "support/thread_pool.hpp"

#include <algorithm>

namespace ft::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (count == 0) return;
  ThreadPool& target = pool ? *pool : global_pool();
  const std::size_t threads = target.thread_count();
  if (count == 1 || threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Static chunking: each task owns a contiguous index range. The chunk
  // count is independent of thread availability so work assignment (and
  // thus any per-chunk state) is deterministic.
  const std::size_t chunks = std::min(count, threads * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, count);
    if (begin >= end) break;
    target.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  target.wait_idle();
}

}  // namespace ft::support
