// String helpers used across the library: join/split/trim and a tiny
// printf-free formatter for building flag strings and report labels.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ft::support {

/// Joins `parts` with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delim);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string trim(std::string_view text);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

}  // namespace ft::support
