#include "support/crc32.hpp"

#include <array>

namespace ft::support {

std::uint32_t crc32(std::string_view bytes) noexcept {
  // Standard reflected CRC-32 (polynomial 0xEDB88320), the same
  // checksum zlib and Ethernet use.
  static const auto table = [] {
    std::array<std::uint32_t, 256> entries{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t value = i;
      for (int bit = 0; bit < 8; ++bit) {
        value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = value;
    }
    return entries;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char byte : bytes) {
    crc = (crc >> 8) ^
          table[(crc ^ static_cast<unsigned char>(byte)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ft::support
