// Work-sharing thread pool with a deterministic parallel_for.
//
// Variant evaluation in the tuner fans 1000 independent
// compile+run jobs across cores. Each index's work is a pure function
// of the index (all randomness is index-derived), so results are
// bit-identical regardless of thread count or scheduling order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ft::support {

/// Fixed-size thread pool. Tasks are void() callables; exceptions thrown
/// by tasks propagate out of wait_idle()/parallel_for (first one wins).
class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished. Rethrows the first
  /// captured task exception, if any.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

/// Shared process-wide pool (lazily constructed).
ThreadPool& global_pool();

/// Runs body(i) for i in [0, count) across the pool. Deterministic as
/// long as body(i) depends only on i. Blocks until all iterations are
/// done; rethrows the first exception thrown by any iteration.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

}  // namespace ft::support
