// Work-sharing thread pool with per-caller task groups and a
// deterministic parallel_for.
//
// Variant evaluation in the tuner fans 1000 independent
// compile+run jobs across cores. Each index's work is a pure function
// of the index (all randomness is index-derived), so results are
// bit-identical regardless of thread count or scheduling order.
//
// The pool is shared process-wide, so several tuning campaigns (or a
// nested parallel_for issued from inside a worker task) can hit it
// concurrently. Isolation between callers comes from TaskGroup: each
// caller's tasks are accounted to its own group, wait(group) returns
// when *that group's* tasks are done, and a task exception is routed
// only to the group that submitted it. A thread that waits on a group
// while the queue is non-empty helps execute queued tasks instead of
// blocking, so nested parallel_for calls cannot deadlock even when
// every worker is itself inside a wait.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ft::support {

class ThreadPool;

/// One caller's unit of accounting on a shared ThreadPool: a pending
/// count, a completion signal, and a first-exception slot. Stack-
/// allocate one per batch, submit tasks against it, then wait(). The
/// group must outlive its tasks: ThreadPool::wait() guarantees that by
/// returning only once the pending count reaches zero (even when a
/// task threw).
class TaskGroup {
 public:
  /// Per-group counters (all cumulative). `stolen` counts tasks of
  /// this group executed by a thread inside ThreadPool::wait() rather
  /// than by a pool worker - nonzero means the group made progress
  /// through helping, i.e. it was not blocked behind another caller.
  struct Stats {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t stolen = 0;
  };

  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Safe to call concurrently with task execution; counters are a
  /// consistent snapshot only after wait() returned.
  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.stolen = stolen_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class ThreadPool;

  // pending_ and first_error_ are guarded by the owning pool's mutex;
  // done_ is signaled (under that mutex) when pending_ hits zero.
  std::size_t pending_ = 0;
  std::condition_variable done_;
  std::exception_ptr first_error_;
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> stolen_{0};
};

/// Fixed-size thread pool. Tasks are void() callables; an exception
/// thrown by a task propagates out of the wait() on its group (first
/// one per group wins). Distinct groups never observe each other's
/// errors and never block on each other's work.
class ThreadPool {
 public:
  /// Pool-wide observability snapshot (cumulative since construction).
  struct Stats {
    std::size_t threads = 0;
    std::size_t tasks_submitted = 0;
    std::size_t tasks_completed = 0;
    std::size_t tasks_stolen = 0;        ///< executed by waiters, not workers
    std::size_t queue_high_water = 0;    ///< max queued-at-once depth
    double worker_busy_seconds = 0.0;    ///< summed task execution time
  };

  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task accounted to `group`. The group must stay alive
  /// until a wait(group) covering this task returns.
  void submit(TaskGroup& group, std::function<void()> task);

  /// Block until every task submitted against `group` has finished,
  /// helping execute queued tasks (of any group) while the group is
  /// still pending. Rethrows the group's first captured exception and
  /// clears it, leaving the group reusable.
  void wait(TaskGroup& group);

  /// Enqueue a task on the pool-internal default group. Legacy
  /// single-caller API; prefer submit(group, task).
  void submit(std::function<void()> task);

  /// wait() on the pool-internal default group.
  void wait_idle();

  [[nodiscard]] Stats stats() const;

 private:
  struct PendingTask {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void worker_loop();
  /// Runs one task with no lock held and performs completion
  /// bookkeeping. `stolen` marks execution by a waiter thread.
  void run_task(PendingTask& task, bool stolen);

  std::vector<std::thread> workers_;
  std::queue<PendingTask> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;
  TaskGroup default_group_;

  // Pool-wide counters, guarded by mutex_.
  std::size_t tasks_submitted_ = 0;
  std::size_t tasks_completed_ = 0;
  std::size_t tasks_stolen_ = 0;
  std::size_t queue_high_water_ = 0;
  double worker_busy_seconds_ = 0.0;
};

/// Shared process-wide pool (lazily constructed). Sized from the
/// FT_THREADS environment variable when set (> 0), otherwise from
/// hardware_concurrency.
ThreadPool& global_pool();

/// Runs body(i) for i in [0, count) across the pool. Deterministic as
/// long as body(i) depends only on i: chunking is static (independent
/// of thread availability), so work assignment never varies between
/// runs. Blocks until all iterations are done; rethrows the first
/// exception thrown by any iteration. Safe to call from inside a pool
/// worker (the caller helps execute queued tasks instead of blocking).
/// When `group_stats` is non-null it receives the batch's TaskGroup
/// counters after completion.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr,
                  TaskGroup::Stats* group_stats = nullptr);

}  // namespace ft::support
