#include "support/string_utils.hpp"

#include <cctype>

namespace ft::support {

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace ft::support
