#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ft::support {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto rule = [&]() {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ft::support
