#include "machine/noise.hpp"

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"

namespace ft::machine {

double NoiseModel::perturb(double seconds, std::uint64_t key) const {
  if (sigma_rel_ <= 0.0 && floor_seconds_ <= 0.0) return seconds;
  support::Rng rng(seed_ ^ key);
  const double sigma = std::sqrt(sigma_rel_ * sigma_rel_ * seconds * seconds +
                                 floor_seconds_ * floor_seconds_);
  const double perturbed = seconds + sigma * rng.normal();
  return std::max(perturbed, seconds * 0.5);
}

std::uint64_t NoiseModel::make_key(std::uint64_t fingerprint,
                                   std::string_view loop_name,
                                   std::string_view input_name,
                                   std::string_view arch_name,
                                   std::uint64_t repetition) {
  std::uint64_t key = fingerprint;
  key ^= support::fnv1a64(loop_name) * 0x9e3779b97f4a7c15ULL;
  key ^= support::fnv1a64(input_name) * 0xc2b2ae3d27d4eb4fULL;
  key ^= support::fnv1a64(arch_name) * 0x165667b19e3779f9ULL;
  key ^= (repetition + 1) * 0x27d4eb2f165667c5ULL;
  return key;
}

}  // namespace ft::machine
