// Deterministic measurement-noise model. The paper reports runtimes of
// 3-36 s with standard deviations of 0.04-0.2 s over 10 runs (§4.1);
// we perturb each per-loop time with a relative Gaussian keyed on
// (seed, executable fingerprint, loop, input, architecture, repetition),
// so identical configurations always reproduce identical "measurements"
// while distinct runs decorrelate - noise is real for the search
// algorithms (winner's curse!) yet experiments stay bit-reproducible.
#pragma once

#include <cstdint>
#include <string_view>

namespace ft::machine {

class NoiseModel {
 public:
  /// sigma_rel: relative std-dev per loop measurement; floor_seconds:
  /// absolute noise floor (OS jitter) added in quadrature.
  explicit NoiseModel(std::uint64_t seed = 42, double sigma_rel = 0.01,
                      double floor_seconds = 0.002)
      : seed_(seed), sigma_rel_(sigma_rel), floor_seconds_(floor_seconds) {}

  /// Perturbed value of `seconds` for measurement context `key`.
  /// Deterministic in (seed, key). Never returns <= 0.
  [[nodiscard]] double perturb(double seconds, std::uint64_t key) const;

  /// Builds a measurement key from run context.
  [[nodiscard]] static std::uint64_t make_key(std::uint64_t fingerprint,
                                              std::string_view loop_name,
                                              std::string_view input_name,
                                              std::string_view arch_name,
                                              std::uint64_t repetition);

  [[nodiscard]] double sigma_rel() const noexcept { return sigma_rel_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// A disabled model (exact measurements), for tests and G.Independent
  /// style oracle computations.
  [[nodiscard]] static NoiseModel none() { return NoiseModel(0, 0.0, 0.0); }

 private:
  std::uint64_t seed_;
  double sigma_rel_;
  double floor_seconds_;
};

}  // namespace ft::machine
