#include "machine/fault_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace ft::machine {

namespace {

/// One uniform draw in [0, 1) for a (seed, salt, key...) context. Each
/// decision gets its own salt so the compile / crash / timeout /
/// outlier streams never alias even for identical keys.
double draw(std::uint64_t seed, std::string_view salt, std::uint64_t a,
            std::uint64_t b = 0, std::uint64_t c = 0) {
  std::uint64_t key = seed ^ support::fnv1a64(salt);
  key ^= (a + 0x9e3779b97f4a7c15ULL) * 0xc2b2ae3d27d4eb4fULL;
  key ^= (b + 0x165667b19e3779f9ULL) * 0x27d4eb2f165667c5ULL;
  key ^= (c + 0xd6e8feb86659fd93ULL) * 0x2545f4914f6cdd1dULL;
  return support::Rng(key).uniform();
}

}  // namespace

FaultModel::FaultModel(FaultConfig config) : config_(config) {
  if (config_.rate < 0.0 || config_.rate > 1.0) {
    throw std::invalid_argument("FaultConfig.rate must be in [0, 1]");
  }
  if (config_.outlier_rate < 0.0) config_.outlier_rate = config_.rate;
}

bool FaultModel::compile_fails(std::uint64_t cv_hash) const {
  if (!enabled()) return false;
  return draw(config_.seed, "ice", cv_hash) <
         config_.rate * config_.compile_share;
}

FaultModel::RunFault FaultModel::run_fault(std::uint64_t context_key,
                                           std::uint64_t rep,
                                           int attempt) const {
  if (!enabled()) return RunFault::kNone;
  const double u = draw(config_.seed, "run", context_key, rep,
                        static_cast<std::uint64_t>(attempt));
  const double crash_p = config_.rate * config_.crash_share;
  const double timeout_p = config_.rate * config_.timeout_share;
  if (u < crash_p) return RunFault::kCrash;
  if (u < crash_p + timeout_p) return RunFault::kTimeout;
  return RunFault::kNone;
}

double FaultModel::outlier_multiplier(std::uint64_t key) const {
  if (!enabled() || config_.outlier_rate <= 0.0) return 1.0;
  if (draw(config_.seed, "outlier", key) >= config_.outlier_rate) return 1.0;
  const double span =
      std::max(config_.outlier_max_scale - config_.outlier_min_scale, 0.0);
  return config_.outlier_min_scale +
         span * draw(config_.seed, "outlier-scale", key);
}

}  // namespace ft::machine
