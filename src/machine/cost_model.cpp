#include "machine/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace ft::machine {

namespace {

/// Effective memory bandwidth (GB/s) for a working set of `ws_mb`,
/// interpolated in log-space between cache levels.
double effective_bandwidth(const Architecture& arch, double ws_mb) {
  const double l2_total = arch.l2_kb / 1024.0 *
                          static_cast<double>(arch.sockets *
                                              arch.cores_per_socket);
  const double llc_total = arch.total_llc_mb();
  const double llc_bw = 0.5 * (arch.l2_bw_gbs + arch.mem_bw_gbs);
  if (ws_mb <= l2_total) return arch.l2_bw_gbs;
  if (ws_mb >= 4.0 * llc_total) return arch.mem_bw_gbs;
  if (ws_mb <= llc_total) {
    const double t = std::log(ws_mb / l2_total) /
                     std::log(llc_total / l2_total);
    return arch.l2_bw_gbs * std::pow(llc_bw / arch.l2_bw_gbs, t);
  }
  const double t =
      std::log(ws_mb / llc_total) / std::log(4.0);  // llc..4*llc
  return llc_bw * std::pow(arch.mem_bw_gbs / llc_bw, t);
}

}  // namespace

double parallel_speedup(double parallel_frac, const Architecture& arch) {
  const double threads_eff =
      static_cast<double>(arch.omp_threads) * (1.0 - 0.5 * arch.numa_penalty);
  const double serial_frac = 1.0 - parallel_frac;
  return 1.0 / (serial_frac + parallel_frac / threads_eff);
}

LoopCost raw_loop_cost(const ir::LoopFeatures& f,
                       const compiler::LinkedLoop& linked,
                       const Architecture& arch, int timesteps) {
  const compiler::LoopCodeGen& g = linked.codegen;
  const double iters =
      f.trip_count * f.invocations * static_cast<double>(timesteps);
  const double lanes =
      g.vector_width > 0 ? static_cast<double>(g.vector_width) / 64.0 : 1.0;

  // ---- compute component (cycles per iteration, one core) -----------------
  const double scalar_cycles = f.flops_per_iter / arch.ipc_flop;
  double compute_cycles;
  if (lanes > 1.0) {
    // True vector cost per element: the contiguous share runs masked
    // (both sides of divergent control flow execute, data permutations
    // and blends on top - the effect inspected in the paper's assembly,
    // §4.4.2), while the non-contiguous share pays per-element
    // gather/scatter costs that grow with vector width.
    const double masked = 1.0 + f.divergence * 3.0;
    const double pipeline_eff = std::max(1.0 - 0.75 * f.dependence, 0.1);
    const double contiguous_cost =
        f.unit_stride_frac * masked / (lanes * pipeline_eff);
    const double gather_cost =
        (1.0 - f.unit_stride_frac) * (0.8 + 0.25 * lanes);
    double per_element = contiguous_cost + gather_cost;
    if (arch.split_256 && g.vector_width == 256) per_element *= 1.15;
    compute_cycles = scalar_cycles * per_element;
    if (g.fma) compute_cycles *= 1.0 - 0.25 * f.fp_intensity;
  } else {
    compute_cycles =
        scalar_cycles *
        (1.0 + f.branch_mispredict * arch.mispredict_cycles / 40.0);
    if (g.fma) compute_cycles *= 1.0 - 0.15 * f.fp_intensity;
  }

  // Unrolling exposes ILP, limited by loop-carried dependences.
  const double ilp =
      1.0 + std::min(0.35, 0.12 * std::log2(static_cast<double>(g.unroll))) *
                (1.0 - f.dependence);
  compute_cycles /= ilp;

  // Register spills serialize the pipeline and add memory traffic.
  double spill_mem_extra = 1.0;
  if (g.spill_severity > 0.0) {
    compute_cycles *= 1.0 + 2.0 * g.spill_severity;
    spill_mem_extra = 1.0 + 0.8 * g.spill_severity;
  }
  compute_cycles *= g.compute_mult;

  // ---- memory component -----------------------------------------------------
  const double ws_mb = f.working_set_mb;
  const double llc_total = arch.total_llc_mb();
  double bw = effective_bandwidth(arch, ws_mb);

  const double load_frac = 1.0 - f.store_frac;
  // Regular stores pay the read-for-ownership surcharge (2x traffic);
  // streaming stores avoid it when the data would miss LLC anyway, but
  // force cache-resident data all the way to DRAM otherwise.
  double traffic_factor;
  if (g.streaming_stores) {
    if (ws_mb > llc_total) {
      // RFO surcharge recovered to the extent the WC buffers allow.
      traffic_factor =
          load_frac + f.store_frac * (2.0 - arch.streaming_efficiency);
    } else {
      // Stores bypass the cache hierarchy they would have hit.
      const double store_bw_ratio = bw / arch.mem_bw_gbs;
      traffic_factor = load_frac + f.store_frac * 1.0 * store_bw_ratio * 2.0;
    }
  } else {
    traffic_factor = load_frac + 2.0 * f.store_frac;
  }

  // Latency-bound behaviour of irregular accesses. The profitable
  // prefetch distance is loop-specific (access irregularity, working
  // set vs. LLC): hitting the sweet spot hides a large share of the
  // latency; overshooting pollutes the caches. This is a per-loop
  // optimum a single program-wide flag cannot satisfy.
  const double irregular = 1.0 - f.unit_stride_frac;
  int sweet = 1;
  if (irregular > 0.3) {
    sweet += 2;
  } else if (irregular > 0.1) {
    sweet += 1;
  }
  if (ws_mb > llc_total) sweet += 1;  // sweet spot in 1..4
  const double max_benefit =
      0.30 * irregular + (ws_mb > llc_total ? 0.08 : 0.0);
  const int miss = std::abs(g.prefetch - sweet);
  double profile = miss == 0 ? 1.0 : miss == 1 ? 0.55 : miss == 2 ? 0.2 : 0.0;
  if (g.prefetch == 0) profile = 0.0;
  const double prefetch_mult = 1.0 - max_benefit * profile;
  double latency_mult = (1.0 + irregular * 2.2) * prefetch_mult;
  latency_mult = std::max(latency_mult, 0.4);
  double pollution = 1.0;
  if (g.prefetch > sweet) {
    pollution = 1.0 + 0.05 * static_cast<double>(g.prefetch - sweet) *
                          (ws_mb < llc_total ? 1.0 : 0.3);
  }

  // Cache blocking keeps hot tiles resident for out-of-cache sets.
  double tile_mult = 1.0;
  if (g.tile > 0) {
    if (ws_mb > llc_total && f.unit_stride_frac > 0.5) {
      tile_mult = (g.tile == 8 || g.tile == 16) ? 0.93 : 0.96;
    } else {
      tile_mult = 1.02;
    }
  }

  const double bytes_per_iter =
      f.memops_per_iter * 8.0 * traffic_factor * spill_mem_extra;
  const double mem_seconds =
      iters * bytes_per_iter * latency_mult * pollution * tile_mult *
      g.mem_mult / (bw * 1e9);

  // ---- compute seconds with threading -----------------------------------------
  const double speedup = parallel_speedup(f.parallel_frac, arch);
  const double compute_seconds =
      iters * compute_cycles / (arch.freq_ghz * 1e9) / speedup;

  // ---- loop/call overhead ----------------------------------------------------------
  const double branch_cycles = 2.0 / static_cast<double>(g.unroll);
  const double call_cycles =
      200.0 * f.invocations * static_cast<double>(timesteps) /
      std::max(iters, 1.0);
  const double overhead_seconds =
      iters * (branch_cycles + call_cycles + f.call_density * 40.0) *
      g.overhead_mult / (arch.freq_ghz * 1e9) / speedup;

  // Compute and memory overlap; the shorter one is partially hidden.
  LoopCost cost;
  cost.compute = compute_seconds;
  cost.memory = mem_seconds;
  cost.overhead = overhead_seconds;
  cost.total = std::max(compute_seconds, mem_seconds) +
               0.25 * std::min(compute_seconds, mem_seconds) +
               overhead_seconds;
  return cost;
}

std::vector<LoopCost> program_raw_costs(const ir::Program& program,
                                        const compiler::Executable& exe,
                                        const Architecture& arch,
                                        const ir::InputSpec& input) {
  const std::size_t loop_count = program.loops().size();
  std::vector<LoopCost> costs;
  costs.reserve(loop_count + 1);

  for (std::size_t j = 0; j < loop_count; ++j) {
    const ir::LoopFeatures scaled =
        program.loops()[j].features.scaled(input.work_scale, input.ws_scale);
    costs.push_back(
        raw_loop_cost(scaled, exe.loops[j], arch, input.timesteps));
  }
  {
    const ir::LoopFeatures scaled =
        program.nonloop().features.scaled(input.work_scale, input.ws_scale);
    costs.push_back(
        raw_loop_cost(scaled, exe.nonloop, arch, input.timesteps));
  }

  // ---- streaming-store producer -> consumer chain ---------------------------
  // A loop that streams its stores evicts data the next loop(s) in the
  // time-step would have found in cache. Wrap-around models the cyclic
  // time-step structure. This is a *context* effect: a loop's measured
  // time depends on its neighbours' codegen, the root cause of greedy
  // mis-combination.
  const double llc_total = arch.total_llc_mb();
  if (loop_count > 1) {
    std::vector<double> chain(loop_count, 1.0);
    for (std::size_t j = 0; j < loop_count; ++j) {
      const auto& producer_cg = exe.loops[j].codegen;
      const double producer_stores = program.loops()[j].features.store_frac;
      if (!producer_cg.streaming_stores || producer_stores < 0.2) continue;
      for (int d = 1; d <= 2; ++d) {
        const std::size_t c = (j + static_cast<std::size_t>(d)) % loop_count;
        if (c == j) break;
        const ir::LoopFeatures consumer =
            program.loops()[c].features.scaled(input.work_scale,
                                               input.ws_scale);
        if (consumer.shared_data < 0.2 || consumer.working_set_mb > llc_total)
          continue;
        const double weight = d == 1 ? 1.0 : 0.4;
        chain[c] *=
            1.0 + 0.25 * producer_stores * consumer.shared_data * weight;
      }
    }
    for (std::size_t j = 0; j < loop_count; ++j) {
      costs[j].memory *= chain[j];
      costs[j].total = std::max(costs[j].compute, costs[j].memory) +
                       0.25 * std::min(costs[j].compute, costs[j].memory) +
                       costs[j].overhead;
    }
  }

  // ---- link-level penalties ---------------------------------------------------
  for (std::size_t j = 0; j < loop_count; ++j) {
    costs[j].total *= exe.loops[j].interference_mult * exe.global_mult;
  }
  costs[loop_count].total *=
      exe.nonloop.interference_mult * exe.global_mult;

  return costs;
}

}  // namespace ft::machine
