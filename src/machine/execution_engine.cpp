#include "machine/execution_engine.hpp"

#include <cmath>
#include <numeric>

#include "support/stats.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::machine {

ExecutionEngine::ExecutionEngine(const ir::Program& program,
                                 compiler::Compiler& compiler,
                                 NoiseModel noise,
                                 double caliper_overhead_per_event,
                                 double attribution_sigma)
    : program_(&program),
      compiler_(&compiler),
      noise_(noise),
      attribution_noise_(noise.seed() ^ 0x5bd1e995u, attribution_sigma,
                         0.0),
      caliper_overhead_(caliper_overhead_per_event),
      baseline_(compiler.build_baseline(program)) {}

const std::vector<double>& ExecutionEngine::calibration(
    const ir::InputSpec& input) {
  std::lock_guard lock(calibration_mutex_);
  auto it = calibration_cache_.find(input.name);
  if (it != calibration_cache_.end()) return it->second;

  const std::vector<LoopCost> raw =
      program_raw_costs(*program_, baseline_, compiler_->arch(), input);
  std::vector<double> factors(raw.size(), 1.0);
  const std::size_t loop_count = program_->loops().size();
  for (std::size_t j = 0; j < loop_count; ++j) {
    const double target = input.o3_seconds * program_->loops()[j].o3_ratio;
    factors[j] = target / std::max(raw[j].total, 1e-12);
  }
  const double nonloop_target =
      input.o3_seconds * program_->nonloop().o3_ratio;
  factors[loop_count] = nonloop_target / std::max(raw[loop_count].total,
                                                  1e-12);
  auto [inserted, ok] =
      calibration_cache_.emplace(input.name, std::move(factors));
  (void)ok;
  return inserted->second;
}

std::vector<double> ExecutionEngine::true_module_seconds(
    const compiler::Executable& exe, const ir::InputSpec& input) {
  const std::vector<double>& factors = calibration(input);
  const std::vector<LoopCost> raw =
      program_raw_costs(*program_, exe, compiler_->arch(), input);
  std::vector<double> seconds(raw.size());
  for (std::size_t j = 0; j < raw.size(); ++j) {
    seconds[j] = raw[j].total * factors[j];
  }
  return seconds;
}

RunResult ExecutionEngine::run(const compiler::Executable& exe,
                               const ir::InputSpec& input,
                               const RunOptions& options) {
  const std::vector<double> truth = true_module_seconds(exe, input);
  const std::size_t loop_count = program_->loops().size();
  const std::string& arch_name = compiler_->arch().name;
  const int reps = std::max(options.repetitions, 1);

  RunResult result;
  result.loop_seconds.assign(loop_count, 0.0);
  std::vector<double> end_samples;
  end_samples.reserve(static_cast<std::size_t>(reps));
  std::uint64_t outliers = 0;

  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t rep_index =
        options.rep_base + static_cast<std::uint64_t>(rep);

    // One machine-level spike multiplier per repetition (a contended
    // node inflates the whole run, not one loop); 1.0 when the fault
    // model is disabled or the rep is clean.
    const double spike =
        options.noise
            ? faults_.outlier_multiplier(NoiseModel::make_key(
                  exe.fingerprint, "<outlier>", input.name, arch_name,
                  rep_index))
            : 1.0;
    if (spike != 1.0) ++outliers;

    // Measured per-module times for this repetition.
    std::vector<double> measured(loop_count + 1);
    for (std::size_t j = 0; j <= loop_count; ++j) {
      const std::string& module_name = j < loop_count
                                           ? program_->loops()[j].name
                                           : program_->nonloop().name;
      measured[j] =
          options.noise
              ? noise_.perturb(truth[j],
                               NoiseModel::make_key(exe.fingerprint,
                                                    module_name, input.name,
                                                    arch_name, rep_index))
              : truth[j];
      measured[j] *= spike;
    }

    double end_to_end;
    if (options.instrumented) {
      // Drive the Caliper library over a virtual clock: per-loop times
      // are whatever Caliper aggregates, annotation overhead included.
      caliper::VirtualClock clock;
      caliper::Caliper caliper(&clock, caliper_overhead_);
      const int steps = std::max(input.timesteps, 1);
      for (int step = 0; step < steps; ++step) {
        for (std::size_t j = 0; j < loop_count; ++j) {
          caliper.begin(program_->loops()[j].name);
          clock.advance(measured[j] / static_cast<double>(steps));
          caliper.end(program_->loops()[j].name);
        }
        // Non-loop code is scattered and unannotated: it advances the
        // clock without a region (paper §3.3).
        clock.advance(measured[loop_count] / static_cast<double>(steps));
      }
      end_to_end = clock.now();
      for (std::size_t j = 0; j < loop_count; ++j) {
        // Per-region readings carry attribution error on top of the
        // run's physical time (which stayed in end_to_end).
        const std::string& loop_name = program_->loops()[j].name;
        double reading = caliper.inclusive(loop_name);
        if (options.noise) {
          reading = attribution_noise_.perturb(
              reading, NoiseModel::make_key(exe.fingerprint, loop_name,
                                            input.name, arch_name,
                                            rep_index ^ 0xa7c15ULL));
        }
        result.loop_seconds[j] += reading;
      }
      if (rep == reps - 1) result.caliper_report = caliper.report();
    } else {
      end_to_end =
          std::accumulate(measured.begin(), measured.end(), 0.0);
      for (std::size_t j = 0; j < loop_count; ++j) {
        result.loop_seconds[j] += measured[j];
      }
    }
    end_samples.push_back(end_to_end);
  }

  for (double& loop_second : result.loop_seconds) {
    loop_second /= static_cast<double>(reps);
  }
  switch (options.aggregate) {
    case Aggregation::kMedian:
      result.end_to_end = support::median(end_samples);
      break;
    case Aggregation::kTrimmedMean:
      result.end_to_end = support::trimmed_mean(end_samples);
      break;
    case Aggregation::kMean:
      result.end_to_end = support::mean(end_samples);
      break;
  }
  result.stddev = support::stddev(end_samples);
  result.derived_nonloop_seconds =
      result.end_to_end -
      std::accumulate(result.loop_seconds.begin(), result.loop_seconds.end(),
                      0.0);
  if (telemetry::enabled()) {
    static telemetry::Counter& runs =
        telemetry::metrics().counter("engine.runs");
    static telemetry::Counter& rep_count =
        telemetry::metrics().counter("engine.reps");
    static telemetry::Counter& noise_draws =
        telemetry::metrics().counter("engine.noise_draws");
    static telemetry::Histogram& run_seconds =
        telemetry::metrics().histogram("engine.run_seconds");
    runs.add();
    rep_count.add(static_cast<std::uint64_t>(reps));
    if (options.noise) {
      // One end-to-end draw per module per rep, plus one attribution
      // draw per loop per rep when instrumented.
      std::uint64_t draws = static_cast<std::uint64_t>(reps) *
                            static_cast<std::uint64_t>(loop_count + 1);
      if (options.instrumented) {
        draws += static_cast<std::uint64_t>(reps) *
                 static_cast<std::uint64_t>(loop_count);
      }
      noise_draws.add(draws);
    }
    if (outliers > 0) {
      static telemetry::Counter& spiked =
          telemetry::metrics().counter("fault.outliers");
      spiked.add(outliers);
    }
    run_seconds.observe(result.end_to_end);
  }
  return result;
}

double ExecutionEngine::baseline_seconds(const ir::InputSpec& input,
                                         int reps) {
  RunOptions options;
  options.repetitions = reps;
  return run(baseline_, input, options).end_to_end;
}

}  // namespace ft::machine
