#include "machine/architecture.hpp"

#include <stdexcept>

namespace ft::machine {

Architecture opteron() {
  Architecture a;
  a.name = "AMD Opteron";
  a.processor = "Opteron 6128";
  a.proc_flag = "";  // default codegen (Table 2)
  a.max_simd_bits = 128;
  a.has_fma = false;
  a.split_256 = false;
  a.sockets = 2;
  a.numa_nodes = 4;
  a.cores_per_socket = 4;
  a.threads_per_core = 2;
  a.omp_threads = 16;
  a.freq_ghz = 2.0;
  a.ipc_flop = 1.6;
  a.mispredict_cycles = 12.0;
  a.l1_kb = 64;
  a.l2_kb = 512;
  a.llc_mb = 6;
  a.icache_kb = 64;
  a.mem_bw_gbs = 28;
  a.l2_bw_gbs = 160;
  a.l1_bw_gbs = 480;
  a.mem_gb = 32;
  a.numa_penalty = 0.2;
  a.streaming_efficiency = 0.45;
  return a;
}

Architecture sandy_bridge() {
  Architecture a;
  a.name = "Intel Sandy Bridge";
  a.processor = "Xeon E5-2650 0";
  a.proc_flag = "-xAVX";
  a.max_simd_bits = 256;
  a.has_fma = false;
  a.split_256 = true;  // 256-bit loads split into two 128-bit ops
  a.sockets = 2;
  a.numa_nodes = 2;
  a.cores_per_socket = 8;
  a.threads_per_core = 2;
  a.omp_threads = 16;
  a.freq_ghz = 2.0;
  a.ipc_flop = 2.0;
  a.mispredict_cycles = 15.0;
  a.l1_kb = 32;
  a.l2_kb = 256;
  a.llc_mb = 20;
  a.icache_kb = 32;
  a.mem_bw_gbs = 64;
  a.l2_bw_gbs = 320;
  a.l1_bw_gbs = 960;
  a.mem_gb = 16;
  a.numa_penalty = 0.1;
  a.streaming_efficiency = 0.85;
  return a;
}

Architecture broadwell() {
  Architecture a;
  a.name = "Intel Broadwell";
  a.processor = "Xeon E5-2620 v4";
  a.proc_flag = "-xCORE-AVX2";
  a.max_simd_bits = 256;
  a.has_fma = true;
  a.split_256 = false;
  a.sockets = 2;
  a.numa_nodes = 2;
  a.cores_per_socket = 8;
  a.threads_per_core = 2;
  a.omp_threads = 16;
  a.freq_ghz = 2.1;
  a.ipc_flop = 2.0;
  a.mispredict_cycles = 16.0;
  a.l1_kb = 32;
  a.l2_kb = 256;
  a.llc_mb = 20;
  a.icache_kb = 32;
  a.mem_bw_gbs = 130;
  a.l2_bw_gbs = 420;
  a.l1_bw_gbs = 1300;
  a.mem_gb = 64;
  a.numa_penalty = 0.1;
  return a;
}

std::vector<Architecture> all_architectures() {
  return {opteron(), sandy_bridge(), broadwell()};
}

Architecture architecture_by_name(const std::string& name) {
  if (name == "opteron") return opteron();
  if (name == "sandybridge") return sandy_bridge();
  if (name == "broadwell") return broadwell();
  for (Architecture& arch : all_architectures()) {
    if (arch.name == name) return arch;
  }
  throw std::invalid_argument(
      "unknown architecture '" + name +
      "' (expected opteron|sandybridge|broadwell)");
}

}  // namespace ft::machine
