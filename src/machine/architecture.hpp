// Models of the paper's three evaluation platforms (Table 2):
// AMD Opteron 6128, Intel Sandy Bridge Xeon E5-2650, and Intel Broadwell
// Xeon E5-2620 v4. The fields cover exactly what the compiler simulator
// (ISA capabilities, cache geometry) and the machine cost model
// (bandwidths, frequencies, topology) consume.
#pragma once

#include <string>
#include <vector>

namespace ft::machine {

struct Architecture {
  std::string name;       ///< display name ("Intel Broadwell")
  std::string processor;  ///< e.g. "Xeon E5-2620 v4"
  std::string proc_flag;  ///< processor-specific flag (Table 2)

  // --- ISA ---------------------------------------------------------------
  int max_simd_bits = 128;  ///< widest usable SIMD for FP64 loops
  bool has_fma = false;     ///< fused multiply-add available
  bool split_256 = false;   ///< 256-bit ops split into two 128-bit uops

  // --- topology (Table 2) -------------------------------------------------
  int sockets = 2;
  int numa_nodes = 2;
  int cores_per_socket = 8;
  int threads_per_core = 2;
  int omp_threads = 16;  ///< paper pins 16 threads on every platform

  // --- clocks / throughput -------------------------------------------------
  double freq_ghz = 2.0;
  double ipc_flop = 2.0;  ///< scalar FP64 ops per cycle per core
  double mispredict_cycles = 14.0;

  // --- memory hierarchy ----------------------------------------------------
  double l1_kb = 32;
  double l2_kb = 256;
  double llc_mb = 20;      ///< shared last-level cache per socket
  double icache_kb = 32;   ///< instruction cache per core
  double mem_bw_gbs = 60;  ///< aggregate DRAM bandwidth (all sockets)
  double l2_bw_gbs = 300;  ///< aggregate L2-level bandwidth
  double l1_bw_gbs = 900;  ///< aggregate L1-level bandwidth
  double mem_gb = 64;
  double numa_penalty = 0.12;  ///< remote-access slowdown share
  /// Fraction of the read-for-ownership surcharge that non-temporal
  /// stores actually recover (write-combining buffer quality; older
  /// memory controllers benefit far less).
  double streaming_efficiency = 1.0;

  /// Total hardware threads (sockets * cores * SMT).
  [[nodiscard]] int hw_threads() const noexcept {
    return sockets * cores_per_socket * threads_per_core;
  }
  /// Total LLC capacity across sockets, in MB.
  [[nodiscard]] double total_llc_mb() const noexcept {
    return llc_mb * sockets;
  }
};

/// AMD Opteron 6128 ("Magny-Cours" class): SSE-only 128-bit SIMD,
/// 4 NUMA nodes, low per-core throughput.
[[nodiscard]] Architecture opteron();

/// Intel Xeon E5-2650 (Sandy Bridge): AVX 256-bit, no FMA, 256-bit
/// loads split, -xAVX.
[[nodiscard]] Architecture sandy_bridge();

/// Intel Xeon E5-2620 v4 (Broadwell): AVX2 + FMA, -xCORE-AVX2.
[[nodiscard]] Architecture broadwell();

/// The three platforms in the paper's order.
[[nodiscard]] std::vector<Architecture> all_architectures();

/// Looks up a platform by its short CLI key ("opteron", "sandybridge",
/// "broadwell") or its display name ("Intel Broadwell"). Throws
/// std::invalid_argument for unknown names, listing the valid keys.
[[nodiscard]] Architecture architecture_by_name(const std::string& name);

}  // namespace ft::machine
