// ExecutionEngine: "runs" a linked executable on an input and reports
// end-to-end and per-loop times the way the paper's testbed would.
//
//  * Per-loop truth comes from the cost model, calibrated per
//    (program, architecture, input) so the O3 baseline reproduces the
//    published end-to-end runtime and per-loop shares; every other
//    variant is priced relative to it by the same physics.
//  * Instrumented runs drive the ft_caliper library over a virtual
//    clock: region events carry the modeled annotation overhead (<3%),
//    and the reported per-loop times are what Caliper aggregated - the
//    tuner never reads the ground truth directly.
//  * Non-loop time is NOT directly measurable (paper §3.3); RunResult
//    exposes the derived value (end-to-end minus loop sum).
//  * Measurement noise is deterministic per (executable, input, arch,
//    repetition); see NoiseModel.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "caliper/caliper.hpp"
#include "compiler/compiler.hpp"
#include "ir/program.hpp"
#include "machine/cost_model.hpp"
#include "machine/fault_model.hpp"
#include "machine/noise.hpp"

namespace ft::machine {

/// How multi-repetition end-to-end samples collapse to one number.
/// kMean is the paper's protocol; the robust variants ignore outlier
/// spikes (a single contaminated rep cannot flip a winner) and are used
/// for final-reps scoring when fault injection is active.
enum class Aggregation { kMean, kMedian, kTrimmedMean };

struct RunOptions {
  int repetitions = 1;        ///< runs to average over
  bool instrumented = false;  ///< Caliper annotations compiled in?
  bool noise = true;          ///< apply the measurement-noise model
  std::uint64_t rep_base = 0; ///< offset into the noise stream
  Aggregation aggregate = Aggregation::kMean;  ///< end-to-end reduction
};

struct RunResult {
  double end_to_end = 0.0;          ///< seconds, mean over repetitions
  std::vector<double> loop_seconds; ///< per hot loop (program order)
  double derived_nonloop_seconds = 0.0;  ///< end_to_end - sum(loops)
  double stddev = 0.0;              ///< of end_to_end across repetitions
  std::string caliper_report;       ///< non-empty for instrumented runs
};

class ExecutionEngine {
 public:
  /// The engine borrows program and compiler; both must outlive it.
  /// `attribution_sigma` models the extra error of *per-region*
  /// Caliper readings (timer granularity, attribution jitter) on top of
  /// the end-to-end run-to-run noise. It perturbs what the annotations
  /// report, not the actual runtime - precisely the error the paper's
  /// derived non-loop time absorbs (§3.3) and the reason top-1 greedy
  /// selection is brittle while CFR's top-X pruning tolerates it.
  ExecutionEngine(const ir::Program& program, compiler::Compiler& compiler,
                  NoiseModel noise = NoiseModel(),
                  double caliper_overhead_per_event = 2e-4,
                  double attribution_sigma = 0.03);

  [[nodiscard]] const ir::Program& program() const noexcept {
    return *program_;
  }
  [[nodiscard]] const machine::Architecture& arch() const noexcept {
    return compiler_->arch();
  }
  [[nodiscard]] compiler::Compiler& compiler() noexcept {
    return *compiler_;
  }

  /// The cached plain -O3 executable.
  [[nodiscard]] const compiler::Executable& baseline() const noexcept {
    return baseline_;
  }

  /// Runs an executable on an input.
  [[nodiscard]] RunResult run(const compiler::Executable& exe,
                              const ir::InputSpec& input,
                              const RunOptions& options = {});

  /// O3 end-to-end time on `input` (averaged over `reps`, with noise).
  [[nodiscard]] double baseline_seconds(const ir::InputSpec& input,
                                        int reps = 10);

  /// Noise-free truth per module (loops then non-loop); for tests and
  /// oracle computations.
  [[nodiscard]] std::vector<double> true_module_seconds(
      const compiler::Executable& exe, const ir::InputSpec& input);

  [[nodiscard]] const NoiseModel& noise_model() const noexcept {
    return noise_;
  }

  /// Fault injector consulted by this engine (outlier spikes) and by
  /// the resilient evaluation path (compile/run faults). Disabled by
  /// default. Set before the first run; not synchronized.
  void set_fault_model(FaultModel model) noexcept { faults_ = model; }
  [[nodiscard]] const FaultModel& fault_model() const noexcept {
    return faults_;
  }

 private:
  /// Per-loop calibration constants for an input (loops then nonloop):
  /// raw O3 cost * k == published O3 share * o3_seconds.
  const std::vector<double>& calibration(const ir::InputSpec& input);

  const ir::Program* program_;
  compiler::Compiler* compiler_;
  NoiseModel noise_;
  NoiseModel attribution_noise_;
  FaultModel faults_;
  double caliper_overhead_;
  compiler::Executable baseline_;
  std::map<std::string, std::vector<double>> calibration_cache_;
  std::mutex calibration_mutex_;
};

}  // namespace ft::machine
