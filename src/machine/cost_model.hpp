// Analytic cost model: maps (loop features, linked codegen,
// architecture, input) to true runtime. This is the "ground truth" the
// compiler's static heuristics only approximate - vectorization of
// divergent or gathering loops, register-spill costs, streaming-store
// and prefetch behaviour, cache-level bandwidths, and OpenMP/NUMA
// scaling (the dynamics behind the paper's Table 3 observations).
#pragma once

#include "compiler/linker.hpp"
#include "ir/loop_features.hpp"
#include "ir/program.hpp"
#include "machine/architecture.hpp"

namespace ft::machine {

/// Decomposed per-run cost of one loop, in seconds.
struct LoopCost {
  double compute = 0.0;
  double memory = 0.0;
  double overhead = 0.0;
  double total = 0.0;
};

/// True (raw, uncalibrated) runtime of one linked loop over a whole run.
/// `features` must already be scaled to the input (work/ws scaling);
/// `timesteps` multiplies per-time-step work. Chain effects between
/// loops (streaming-store eviction) are applied by program_raw_costs.
[[nodiscard]] LoopCost raw_loop_cost(const ir::LoopFeatures& features,
                                     const compiler::LinkedLoop& linked,
                                     const Architecture& arch,
                                     int timesteps);

/// Raw per-module costs for a whole executable on a given input,
/// including the cross-loop streaming-store consumer penalties and the
/// executable's link-level interference/global multipliers. Order:
/// program loop order, then the non-loop module last.
[[nodiscard]] std::vector<LoopCost> program_raw_costs(
    const ir::Program& program, const compiler::Executable& exe,
    const Architecture& arch, const ir::InputSpec& input);

/// Effective parallel speedup of a loop (Amdahl + NUMA), exposed for
/// tests.
[[nodiscard]] double parallel_speedup(double parallel_frac,
                                      const Architecture& arch);

}  // namespace ft::machine
