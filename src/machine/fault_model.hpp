// Deterministic fault injector for resilience testing. Real per-loop
// campaigns lose evaluations to compiler ICEs, crashed runs, timeouts
// and measurement spikes; this model makes those failures reproducible
// the same way NoiseModel makes measurement noise reproducible: every
// decision is a pure function of (fault seed, context key), so a fixed
// seed replays the exact same failure pattern while distinct phases
// (keyed through the rep_streams offsets) decorrelate.
//
// Fault taxonomy:
//  * Compile ICE   - a property of the compilation vector itself (bad
//                    flag interactions crash the compiler every time),
//                    so the decision is keyed per CV and is permanent:
//                    retries never help, quarantine does.
//  * Run crash     - transient (keyed per repetition AND attempt), so a
//                    bounded retry usually recovers.
//  * Run timeout   - transient like a crash, but the attempt burns the
//                    evaluation's full timeout budget before failing.
//  * Outlier spike - the run completes but the measurement is inflated
//                    by a multiplier (cron job, page-cache miss...);
//                    robust final-rep aggregation defends against it.
#pragma once

#include <cstdint>
#include <string_view>

namespace ft::machine {

struct FaultConfig {
  /// Master fault probability; 0 disables the injector entirely.
  /// Category probabilities below are fractions of this rate.
  double rate = 0.0;
  std::uint64_t seed = 1337;
  double compile_share = 0.5;  ///< P(CV ICEs) = rate * compile_share
  double crash_share = 0.25;   ///< per (evaluation, rep, attempt)
  double timeout_share = 0.25; ///< per (evaluation, rep, attempt)
  /// Probability a completed repetition's measurement is spiked
  /// (defaults to `rate` when negative).
  double outlier_rate = -1.0;
  double outlier_min_scale = 3.0;  ///< spike multiplier range
  double outlier_max_scale = 10.0;
};

class FaultModel {
 public:
  enum class RunFault { kNone, kCrash, kTimeout };

  /// Default-constructed model injects nothing.
  FaultModel() = default;
  explicit FaultModel(FaultConfig config);

  [[nodiscard]] bool enabled() const noexcept {
    return config_.rate > 0.0 || config_.outlier_rate > 0.0;
  }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// True when `cv_hash` identifies a CV whose flag combination ICEs
  /// the compiler. Deterministic per (seed, cv_hash) - independent of
  /// module, repetition and attempt, so the failure is permanent.
  [[nodiscard]] bool compile_fails(std::uint64_t cv_hash) const;

  /// Fault drawn for one run attempt. `context_key` identifies the
  /// evaluation (assignment + program/input/arch), `rep` the noise
  /// repetition, `attempt` the retry index - retries redraw.
  [[nodiscard]] RunFault run_fault(std::uint64_t context_key,
                                   std::uint64_t rep, int attempt) const;

  /// Measurement-spike multiplier for one repetition: 1.0 for a clean
  /// measurement, otherwise uniform in [outlier_min_scale,
  /// outlier_max_scale]. Deterministic per (seed, key).
  [[nodiscard]] double outlier_multiplier(std::uint64_t key) const;

  /// A disabled model, for explicitness at call sites.
  [[nodiscard]] static FaultModel none() { return FaultModel(); }

 private:
  FaultConfig config_{};
};

}  // namespace ft::machine
