#include "flags/flag_space.hpp"

#include <algorithm>
#include <map>

#include "support/string_utils.hpp"

namespace ft::flags {

FlagSpace::FlagSpace(std::string compiler_name, std::vector<FlagSpec> specs)
    : compiler_name_(std::move(compiler_name)), specs_(std::move(specs)) {}

long double FlagSpace::size() const noexcept {
  long double product = 1.0L;
  for (const FlagSpec& spec : specs_) {
    product *= static_cast<long double>(spec.options.size());
  }
  return product;
}

CompilationVector FlagSpace::default_cv() const {
  return CompilationVector(std::vector<std::uint8_t>(specs_.size(), 0));
}

CompilationVector FlagSpace::sample(support::Rng& rng) const {
  std::vector<std::uint8_t> choices(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    choices[i] =
        static_cast<std::uint8_t>(rng.next_below(specs_[i].options.size()));
  }
  return CompilationVector(std::move(choices));
}

std::vector<CompilationVector> FlagSpace::sample_many(
    support::Rng& rng, std::size_t count) const {
  std::vector<CompilationVector> cvs;
  cvs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) cvs.push_back(sample(rng));
  return cvs;
}

CompilationVector FlagSpace::mutate(const CompilationVector& cv,
                                    support::Rng& rng) const {
  CompilationVector result = cv;
  if (specs_.empty()) return result;
  const std::size_t flag = rng.next_below(specs_.size());
  const std::size_t option_count = specs_[flag].options.size();
  if (option_count < 2) return result;
  // Choose a different option uniformly.
  std::uint8_t option =
      static_cast<std::uint8_t>(rng.next_below(option_count - 1));
  if (option >= cv[flag]) ++option;
  result.set(flag, option);
  return result;
}

std::vector<CompilationVector> FlagSpace::neighbors(
    const CompilationVector& cv) const {
  std::vector<CompilationVector> result;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    for (std::size_t option = 0; option < specs_[i].options.size();
         ++option) {
      if (option == cv[i]) continue;
      CompilationVector neighbor = cv;
      neighbor.set(i, static_cast<std::uint8_t>(option));
      result.push_back(std::move(neighbor));
    }
  }
  return result;
}

SemanticSettings FlagSpace::decode(const CompilationVector& cv) const {
  SemanticSettings settings = SemanticSettings::o3_defaults();
  for (std::size_t i = 0; i < specs_.size() && i < cv.size(); ++i) {
    const FlagSpec& spec = specs_[i];
    const std::uint8_t choice = cv[i];
    if (choice < spec.options.size()) {
      settings.set(spec.semantic, spec.options[choice].value);
    }
  }
  return settings;
}

std::string FlagSpace::render(const CompilationVector& cv) const {
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < specs_.size() && i < cv.size(); ++i) {
    const std::string& text = specs_[i].options[cv[i]].text;
    if (!text.empty()) parts.push_back(text);
  }
  if (parts.empty()) return "-O3";
  return support::join(parts, " ");
}

std::optional<CompilationVector> FlagSpace::parse(
    const std::string& text) const {
  // Build a token -> (flag index, option index) lookup.
  std::map<std::string, std::pair<std::size_t, std::uint8_t>> lookup;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    for (std::size_t option = 0; option < specs_[i].options.size();
         ++option) {
      const std::string& token = specs_[i].options[option].text;
      if (!token.empty()) {
        lookup[token] = {i, static_cast<std::uint8_t>(option)};
      }
    }
  }
  CompilationVector cv = default_cv();
  for (const std::string& raw : support::split(text, ' ')) {
    const std::string token = support::trim(raw);
    if (token.empty() || token == "-O3") continue;
    const auto it = lookup.find(token);
    if (it == lookup.end()) return std::nullopt;
    cv.set(it->second.first, it->second.second);
  }
  return cv;
}

bool FlagSpace::contains(const CompilationVector& cv) const noexcept {
  if (cv.size() != specs_.size()) return false;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (cv[i] >= specs_[i].options.size()) return false;
  }
  return true;
}

FlagSpace FlagSpace::binarized() const {
  std::vector<FlagSpec> reduced;
  reduced.reserve(specs_.size());
  for (const FlagSpec& spec : specs_) {
    FlagSpec binary;
    binary.name = spec.name;
    binary.semantic = spec.semantic;
    binary.options.push_back(spec.options[0]);
    if (spec.options.size() > 1) binary.options.push_back(spec.options[1]);
    reduced.push_back(std::move(binary));
  }
  return FlagSpace(compiler_name_ + "-binary", std::move(reduced));
}

}  // namespace ft::flags
