// A CompilationVector (CV) is one point in the compiler optimization
// space: the chosen option index for each flag of a FlagSpace
// (Section 2.1 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ft::flags {

class FlagSpace;

/// Option indices, one per flag, parallel to FlagSpace::specs().
/// Index 0 is always the flag's default option, so the all-zero CV is
/// the plain `-O3` baseline of its space.
class CompilationVector {
 public:
  CompilationVector() = default;
  explicit CompilationVector(std::vector<std::uint8_t> choices)
      : choices_(std::move(choices)) {}

  [[nodiscard]] std::size_t size() const noexcept { return choices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return choices_.empty(); }

  [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept {
    return choices_[i];
  }
  void set(std::size_t i, std::uint8_t option) noexcept {
    choices_[i] = option;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& choices() const noexcept {
    return choices_;
  }

  /// Stable 64-bit content hash (used for compile caching and for
  /// keying deterministic measurement noise).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  /// Number of flags where the two vectors differ (Hamming distance).
  [[nodiscard]] std::size_t distance(const CompilationVector& other)
      const noexcept;

  friend bool operator==(const CompilationVector& a,
                         const CompilationVector& b) noexcept {
    return a.choices_ == b.choices_;
  }
  friend bool operator!=(const CompilationVector& a,
                         const CompilationVector& b) noexcept {
    return !(a == b);
  }

 private:
  std::vector<std::uint8_t> choices_;
};

}  // namespace ft::flags

template <>
struct std::hash<ft::flags::CompilationVector> {
  std::size_t operator()(const ft::flags::CompilationVector& cv)
      const noexcept {
    return static_cast<std::size_t>(cv.hash());
  }
};
