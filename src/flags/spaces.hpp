// Factory functions for the concrete optimization spaces used in the
// paper: the 33-flag ICC-like space (|COS| ~ 2.3e13, §2.1/§3.2) and a
// GCC-like space used by the Combined Elimination experiment (Fig 1).
//
// Floating-point model flags are deliberately absent: the paper enforces
// strict FP reproducibility and always compiles with -fp-model source.
#pragma once

#include "flags/flag_space.hpp"

namespace ft::flags {

/// The Intel-compiler-like space: 33 optimization flags, a mix of
/// binary switches and multi-valued parametric options.
[[nodiscard]] FlagSpace icc_space();

/// A GCC-like space (fewer, differently named knobs mapping onto the
/// same semantics). Used for the Fig 1 Combined Elimination study.
[[nodiscard]] FlagSpace gcc_space();

}  // namespace ft::flags
