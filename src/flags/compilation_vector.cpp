#include "flags/compilation_vector.hpp"

namespace ft::flags {

std::uint64_t CompilationVector::hash() const noexcept {
  // FNV-1a over option bytes plus the length, so prefixes don't collide.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const std::uint8_t c : choices_) mix(c);
  mix(static_cast<std::uint8_t>(choices_.size()));
  return h;
}

std::size_t CompilationVector::distance(
    const CompilationVector& other) const noexcept {
  const std::size_t common =
      choices_.size() < other.choices_.size() ? choices_.size()
                                              : other.choices_.size();
  std::size_t diff =
      (choices_.size() > other.choices_.size() ? choices_.size()
                                               : other.choices_.size()) -
      common;
  for (std::size_t i = 0; i < common; ++i) {
    if (choices_[i] != other.choices_[i]) ++diff;
  }
  return diff;
}

}  // namespace ft::flags
