// Semantic identities of compiler flags.
//
// A FlagSpace describes command-line flags of a particular compiler
// personality (ICC-like or GCC-like); each flag carries a SemanticFlag
// identity plus per-option integer values. The compiler simulator only
// consumes decoded SemanticSettings, so the same pass pipeline serves
// both personalities and the tuners remain compiler-agnostic.
#pragma once

#include <array>
#include <cstdint>

namespace ft::flags {

/// Identity of an optimization knob. Values double as indices into
/// SemanticSettings::values.
enum class SemanticFlag : std::uint8_t {
  kOptLevel = 0,       // 0..3
  kUnroll,             // -1 auto, 0 off, n = factor
  kVectorize,          // 0 off (-no-vec), 1 on
  kSimdWidthPref,      // 0 auto, 128, 256 (clamped by the architecture)
  kStreamingStores,    // 0 auto, 1 always, 2 never
  kIpo,                // 0 off, 1 on
  kAnsiAlias,          // 1 strict-alias opts allowed, 0 -no-ansi-alias
  kPrefetch,           // 0..4 aggressiveness
  kInlineFactor,       // percent of default budget: 100 default
  kOmitFramePointer,   // 0/1
  kAlignLoops,         // 0/1
  kBlockFactor,        // 0 auto, n = tile factor
  kScalarRep,          // scalar replacement 0/1
  kMultiVersion,       // aggressive multi-versioning 0/1
  kUnrollAggressive,   // 0/1
  kRegAllocStrategy,   // 0 default, 1 block, 2 trace, 3 region
  kScheduling,         // 0 default, 1 list, 2 trace, 3 aggressive
  kInstrSelection,     // 0 default, 1 aggressive
  kFma,                // fused multiply-add 0/1 (1 default where supported)
  kSafePadding,        // assume-safe-padding 0/1
  kDynamicAlign,       // 0/1
  kAlignFunctions,     // 16 or 32
  kJumpTables,         // 0/1
  kMatMul,             // library matmul recognition 0/1
  kOverrideLimits,     // lift internal optimization limits 0/1
  kMemLayoutTrans,     // 0..3
  kLoopFusion,         // 0/1
  kLoopInterchange,    // 0/1
  kLoopDistribution,   // 0/1
  kSwPipelining,       // software pipelining 0/1
  kStructPad,          // field padding/packing of shared structs 0/1
  kOptCalloc,          // 0/1
  kRerolling,          // 0/1
  kCount,
};

inline constexpr std::size_t kSemanticFlagCount =
    static_cast<std::size_t>(SemanticFlag::kCount);

/// Decoded flag settings: one integer per semantic knob. Knobs absent
/// from a personality's space keep that personality's default value.
struct SemanticSettings {
  std::array<int, kSemanticFlagCount> values{};

  [[nodiscard]] int get(SemanticFlag flag) const noexcept {
    return values[static_cast<std::size_t>(flag)];
  }
  void set(SemanticFlag flag, int value) noexcept {
    values[static_cast<std::size_t>(flag)] = value;
  }

  /// Settings corresponding to a plain `-O3` build (every knob at its
  /// personality-neutral default).
  [[nodiscard]] static SemanticSettings o3_defaults() noexcept;
};

/// Short human-readable name of a semantic knob (for reports/tests).
[[nodiscard]] const char* semantic_flag_name(SemanticFlag flag) noexcept;

}  // namespace ft::flags
