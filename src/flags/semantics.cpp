#include "flags/semantics.hpp"

namespace ft::flags {

SemanticSettings SemanticSettings::o3_defaults() noexcept {
  SemanticSettings s;
  s.set(SemanticFlag::kOptLevel, 3);
  s.set(SemanticFlag::kUnroll, -1);  // auto
  s.set(SemanticFlag::kVectorize, 1);
  s.set(SemanticFlag::kSimdWidthPref, 0);  // auto
  s.set(SemanticFlag::kStreamingStores, 0);
  s.set(SemanticFlag::kIpo, 0);
  s.set(SemanticFlag::kAnsiAlias, 1);
  s.set(SemanticFlag::kPrefetch, 1);
  s.set(SemanticFlag::kInlineFactor, 100);
  s.set(SemanticFlag::kOmitFramePointer, 1);
  s.set(SemanticFlag::kAlignLoops, 1);
  s.set(SemanticFlag::kBlockFactor, 0);  // auto
  s.set(SemanticFlag::kScalarRep, 1);
  s.set(SemanticFlag::kMultiVersion, 0);
  s.set(SemanticFlag::kUnrollAggressive, 0);
  s.set(SemanticFlag::kRegAllocStrategy, 0);
  s.set(SemanticFlag::kScheduling, 0);
  s.set(SemanticFlag::kInstrSelection, 0);
  s.set(SemanticFlag::kFma, 1);
  s.set(SemanticFlag::kSafePadding, 0);
  s.set(SemanticFlag::kDynamicAlign, 1);
  s.set(SemanticFlag::kAlignFunctions, 16);
  s.set(SemanticFlag::kJumpTables, 1);
  s.set(SemanticFlag::kMatMul, 0);
  s.set(SemanticFlag::kOverrideLimits, 0);
  s.set(SemanticFlag::kMemLayoutTrans, 1);
  s.set(SemanticFlag::kLoopFusion, 1);
  s.set(SemanticFlag::kLoopInterchange, 1);
  s.set(SemanticFlag::kLoopDistribution, 0);
  s.set(SemanticFlag::kSwPipelining, 1);
  s.set(SemanticFlag::kStructPad, 0);
  s.set(SemanticFlag::kOptCalloc, 0);
  s.set(SemanticFlag::kRerolling, 1);
  return s;
}

const char* semantic_flag_name(SemanticFlag flag) noexcept {
  switch (flag) {
    case SemanticFlag::kOptLevel: return "opt-level";
    case SemanticFlag::kUnroll: return "unroll";
    case SemanticFlag::kVectorize: return "vectorize";
    case SemanticFlag::kSimdWidthPref: return "simd-width";
    case SemanticFlag::kStreamingStores: return "streaming-stores";
    case SemanticFlag::kIpo: return "ipo";
    case SemanticFlag::kAnsiAlias: return "ansi-alias";
    case SemanticFlag::kPrefetch: return "prefetch";
    case SemanticFlag::kInlineFactor: return "inline-factor";
    case SemanticFlag::kOmitFramePointer: return "omit-frame-pointer";
    case SemanticFlag::kAlignLoops: return "align-loops";
    case SemanticFlag::kBlockFactor: return "block-factor";
    case SemanticFlag::kScalarRep: return "scalar-rep";
    case SemanticFlag::kMultiVersion: return "multi-version";
    case SemanticFlag::kUnrollAggressive: return "unroll-aggressive";
    case SemanticFlag::kRegAllocStrategy: return "ra-strategy";
    case SemanticFlag::kScheduling: return "scheduling";
    case SemanticFlag::kInstrSelection: return "instr-selection";
    case SemanticFlag::kFma: return "fma";
    case SemanticFlag::kSafePadding: return "safe-padding";
    case SemanticFlag::kDynamicAlign: return "dynamic-align";
    case SemanticFlag::kAlignFunctions: return "align-functions";
    case SemanticFlag::kJumpTables: return "jump-tables";
    case SemanticFlag::kMatMul: return "matmul";
    case SemanticFlag::kOverrideLimits: return "override-limits";
    case SemanticFlag::kMemLayoutTrans: return "mem-layout-trans";
    case SemanticFlag::kLoopFusion: return "loop-fusion";
    case SemanticFlag::kLoopInterchange: return "loop-interchange";
    case SemanticFlag::kLoopDistribution: return "loop-distribution";
    case SemanticFlag::kSwPipelining: return "sw-pipelining";
    case SemanticFlag::kStructPad: return "struct-pad";
    case SemanticFlag::kOptCalloc: return "opt-calloc";
    case SemanticFlag::kRerolling: return "rerolling";
    case SemanticFlag::kCount: break;
  }
  return "?";
}

}  // namespace ft::flags
