// FlagSpace: the compiler optimization space (COS) of one compiler
// personality. Owns the flag specs, renders CVs as command lines,
// decodes CVs into SemanticSettings, and provides sampling and
// neighborhood operations for the search algorithms.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flags/compilation_vector.hpp"
#include "flags/semantics.hpp"
#include "support/rng.hpp"

namespace ft::flags {

/// One selectable option of a flag: its command-line rendering (empty
/// string for "omitted/default") and the integer fed to the semantic
/// knob when chosen.
struct FlagOption {
  std::string text;
  int value = 0;
};

/// One command-line flag: name (for reports), semantic identity, and
/// the option list. options[0] is the default.
struct FlagSpec {
  std::string name;
  SemanticFlag semantic = SemanticFlag::kCount;
  std::vector<FlagOption> options;

  [[nodiscard]] bool is_binary() const noexcept {
    return options.size() == 2;
  }
};

class FlagSpace {
 public:
  FlagSpace() = default;
  FlagSpace(std::string compiler_name, std::vector<FlagSpec> specs);

  [[nodiscard]] const std::string& compiler_name() const noexcept {
    return compiler_name_;
  }
  [[nodiscard]] const std::vector<FlagSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] std::size_t flag_count() const noexcept {
    return specs_.size();
  }

  /// Product of option counts: |COS| (~2.3e13 for the ICC-like space).
  [[nodiscard]] long double size() const noexcept;

  /// The all-default CV (plain -O3).
  [[nodiscard]] CompilationVector default_cv() const;

  /// Uniform sample: independently uniform option per flag (paper §3.2:
  /// "FuncyTuner selects a value ... with equal probability").
  [[nodiscard]] CompilationVector sample(support::Rng& rng) const;

  /// K independent uniform samples.
  [[nodiscard]] std::vector<CompilationVector> sample_many(
      support::Rng& rng, std::size_t count) const;

  /// Random one-flag mutation (used by local search baselines).
  [[nodiscard]] CompilationVector mutate(const CompilationVector& cv,
                                         support::Rng& rng) const;

  /// All CVs at Hamming distance 1 from `cv`.
  [[nodiscard]] std::vector<CompilationVector> neighbors(
      const CompilationVector& cv) const;

  /// Decode a CV into the semantic settings consumed by the compiler.
  /// Knobs not covered by this space keep their -O3 defaults.
  [[nodiscard]] SemanticSettings decode(const CompilationVector& cv) const;

  /// Command-line rendering, e.g. "-O3 -no-vec -unroll4". The baseline
  /// CV renders as the personality's baseline string.
  [[nodiscard]] std::string render(const CompilationVector& cv) const;

  /// Parse a rendering produced by render() back into a CV. Returns
  /// nullopt on unknown tokens.
  [[nodiscard]] std::optional<CompilationVector> parse(
      const std::string& text) const;

  /// True if every choice index is within its flag's option count.
  [[nodiscard]] bool contains(const CompilationVector& cv) const noexcept;

  /// A reduced space where every flag keeps only its default and first
  /// non-default option (COBAYN can only infer binary flags, §4.2.1;
  /// Combined Elimination also operates on on/off decisions).
  [[nodiscard]] FlagSpace binarized() const;

 private:
  std::string compiler_name_;
  std::vector<FlagSpec> specs_;
};

}  // namespace ft::flags
