#include "flags/spaces.hpp"

namespace ft::flags {

namespace {

FlagSpec binary(std::string name, SemanticFlag semantic,
                std::string default_text, int default_value,
                std::string alt_text, int alt_value) {
  FlagSpec spec;
  spec.name = std::move(name);
  spec.semantic = semantic;
  spec.options.push_back({std::move(default_text), default_value});
  spec.options.push_back({std::move(alt_text), alt_value});
  return spec;
}

FlagSpec multi(std::string name, SemanticFlag semantic,
               std::vector<FlagOption> options) {
  FlagSpec spec;
  spec.name = std::move(name);
  spec.semantic = semantic;
  spec.options = std::move(options);
  return spec;
}

}  // namespace

FlagSpace icc_space() {
  std::vector<FlagSpec> specs;
  specs.reserve(33);

  // --- multi-valued parametric options -------------------------------
  specs.push_back(multi("-O", SemanticFlag::kOptLevel,
                        {{"", 3}, {"-O2", 2}, {"-O1", 1}}));
  specs.push_back(multi("-unroll", SemanticFlag::kUnroll,
                        {{"", -1},
                         {"-unroll0", 0},
                         {"-unroll1", 1},
                         {"-unroll2", 2},
                         {"-unroll4", 4},
                         {"-unroll8", 8},
                         {"-unroll16", 16}}));
  specs.push_back(multi("-simd-width", SemanticFlag::kSimdWidthPref,
                        {{"", 0},
                         {"-qopt-simd-width=128", 128},
                         {"-qopt-simd-width=256", 256}}));
  specs.push_back(multi("-qopt-streaming-stores",
                        SemanticFlag::kStreamingStores,
                        {{"", 0},
                         {"-qopt-streaming-stores=always", 1},
                         {"-qopt-streaming-stores=never", 2}}));
  specs.push_back(multi("-qopt-prefetch", SemanticFlag::kPrefetch,
                        {{"", 1},
                         {"-qopt-prefetch=0", 0},
                         {"-qopt-prefetch=2", 2},
                         {"-qopt-prefetch=3", 3},
                         {"-qopt-prefetch=4", 4}}));
  specs.push_back(multi("-inline-factor", SemanticFlag::kInlineFactor,
                        {{"", 100},
                         {"-inline-factor=0", 0},
                         {"-inline-factor=50", 50},
                         {"-inline-factor=200", 200},
                         {"-inline-factor=400", 400},
                         {"-inline-factor=800", 800}}));
  specs.push_back(multi("-opt-block-factor", SemanticFlag::kBlockFactor,
                        {{"", 0},
                         {"-opt-block-factor=2", 2},
                         {"-opt-block-factor=4", 4},
                         {"-opt-block-factor=8", 8},
                         {"-opt-block-factor=16", 16},
                         {"-opt-block-factor=32", 32}}));
  specs.push_back(multi("-qopt-ra-region-strategy",
                        SemanticFlag::kRegAllocStrategy,
                        {{"", 0},
                         {"-qopt-ra-region-strategy=block", 1},
                         {"-qopt-ra-region-strategy=trace", 2},
                         {"-qopt-ra-region-strategy=region", 3}}));
  specs.push_back(multi("-qsched", SemanticFlag::kScheduling,
                        {{"", 0},
                         {"-qsched=list", 1},
                         {"-qsched=trace", 2},
                         {"-qsched=aggressive", 3}}));
  specs.push_back(multi("-qopt-mem-layout-trans",
                        SemanticFlag::kMemLayoutTrans,
                        {{"", 1},
                         {"-qopt-mem-layout-trans=0", 0},
                         {"-qopt-mem-layout-trans=2", 2},
                         {"-qopt-mem-layout-trans=3", 3}}));

  // --- binary switches ------------------------------------------------
  specs.push_back(binary("-vec", SemanticFlag::kVectorize, "", 1,
                         "-no-vec", 0));
  specs.push_back(binary("-ipo", SemanticFlag::kIpo, "", 0, "-ipo", 1));
  specs.push_back(binary("-ansi-alias", SemanticFlag::kAnsiAlias, "", 1,
                         "-no-ansi-alias", 0));
  specs.push_back(binary("-fomit-frame-pointer",
                         SemanticFlag::kOmitFramePointer, "", 1,
                         "-fno-omit-frame-pointer", 0));
  specs.push_back(binary("-align-loops", SemanticFlag::kAlignLoops, "", 1,
                         "-no-align-loops", 0));
  specs.push_back(binary("-scalar-rep", SemanticFlag::kScalarRep, "", 1,
                         "-no-scalar-rep", 0));
  specs.push_back(binary("-qopt-multi-version-aggressive",
                         SemanticFlag::kMultiVersion, "", 0,
                         "-qopt-multi-version-aggressive", 1));
  specs.push_back(binary("-unroll-aggressive",
                         SemanticFlag::kUnrollAggressive, "", 0,
                         "-unroll-aggressive", 1));
  specs.push_back(binary("-isel", SemanticFlag::kInstrSelection, "", 0,
                         "-qisel-aggressive", 1));
  specs.push_back(binary("-fma", SemanticFlag::kFma, "", 1, "-no-fma", 0));
  specs.push_back(binary("-qopt-assume-safe-padding",
                         SemanticFlag::kSafePadding, "", 0,
                         "-qopt-assume-safe-padding", 1));
  specs.push_back(binary("-qopt-dynamic-align",
                         SemanticFlag::kDynamicAlign, "", 1,
                         "-qno-opt-dynamic-align", 0));
  specs.push_back(binary("-falign-functions",
                         SemanticFlag::kAlignFunctions, "", 16,
                         "-falign-functions=32", 32));
  specs.push_back(binary("-qopt-jump-tables", SemanticFlag::kJumpTables,
                         "", 1, "-qno-opt-jump-tables", 0));
  specs.push_back(binary("-qopt-matmul", SemanticFlag::kMatMul, "", 0,
                         "-qopt-matmul", 1));
  specs.push_back(binary("-qoverride-limits",
                         SemanticFlag::kOverrideLimits, "", 0,
                         "-qoverride-limits", 1));
  specs.push_back(binary("-loop-fusion", SemanticFlag::kLoopFusion, "", 1,
                         "-qno-loop-fusion", 0));
  specs.push_back(binary("-loop-interchange",
                         SemanticFlag::kLoopInterchange, "", 1,
                         "-qno-loop-interchange", 0));
  specs.push_back(binary("-loop-distribution",
                         SemanticFlag::kLoopDistribution, "", 0,
                         "-qloop-distribution", 1));
  specs.push_back(binary("-sw-pipelining", SemanticFlag::kSwPipelining,
                         "", 1, "-qno-sw-pipelining", 0));
  specs.push_back(binary("-pad", SemanticFlag::kStructPad, "", 0,
                         "-pad", 1));
  specs.push_back(binary("-qopt-calloc", SemanticFlag::kOptCalloc, "", 0,
                         "-qopt-calloc", 1));
  specs.push_back(binary("-rerolling", SemanticFlag::kRerolling, "", 1,
                         "-qno-rerolling", 0));

  return FlagSpace("icc", std::move(specs));
}

FlagSpace gcc_space() {
  std::vector<FlagSpec> specs;
  specs.reserve(22);

  specs.push_back(multi("-O", SemanticFlag::kOptLevel,
                        {{"", 3}, {"-O2", 2}, {"-O1", 1}}));
  specs.push_back(multi("--param max-unroll-times", SemanticFlag::kUnroll,
                        {{"", -1},
                         {"-fno-unroll-loops", 0},
                         {"--param max-unroll-times=2", 2},
                         {"--param max-unroll-times=4", 4},
                         {"--param max-unroll-times=8", 8}}));
  specs.push_back(multi("-fprefetch-loop-arrays", SemanticFlag::kPrefetch,
                        {{"", 1},
                         {"-fno-prefetch-loop-arrays", 0},
                         {"-fprefetch-loop-arrays", 2}}));
  specs.push_back(multi("-finline-limit", SemanticFlag::kInlineFactor,
                        {{"", 100},
                         {"-finline-limit=50", 50},
                         {"-finline-limit=400", 400}}));

  specs.push_back(binary("-ftree-vectorize", SemanticFlag::kVectorize, "",
                         1, "-fno-tree-vectorize", 0));
  specs.push_back(binary("-flto", SemanticFlag::kIpo, "", 0, "-flto", 1));
  specs.push_back(binary("-fstrict-aliasing", SemanticFlag::kAnsiAlias,
                         "", 1, "-fno-strict-aliasing", 0));
  specs.push_back(binary("-fomit-frame-pointer",
                         SemanticFlag::kOmitFramePointer, "", 1,
                         "-fno-omit-frame-pointer", 0));
  specs.push_back(binary("-falign-loops", SemanticFlag::kAlignLoops, "",
                         1, "-fno-align-loops", 0));
  specs.push_back(binary("-fsched-pressure", SemanticFlag::kScheduling,
                         "", 0, "-fsched-pressure", 1));
  specs.push_back(binary("-fira-region", SemanticFlag::kRegAllocStrategy,
                         "", 0, "-fira-region=all", 1));
  specs.push_back(binary("-ffma", SemanticFlag::kFma, "", 1,
                         "-ffp-contract=off", 0));
  specs.push_back(binary("-fjump-tables", SemanticFlag::kJumpTables, "",
                         1, "-fno-jump-tables", 0));
  specs.push_back(binary("-ftree-loop-distribution",
                         SemanticFlag::kLoopDistribution, "", 0,
                         "-ftree-loop-distribution", 1));
  specs.push_back(binary("-floop-interchange",
                         SemanticFlag::kLoopInterchange, "", 1,
                         "-fno-loop-interchange", 0));
  specs.push_back(binary("-fmodulo-sched", SemanticFlag::kSwPipelining,
                         "", 1, "-fno-modulo-sched", 0));
  specs.push_back(binary("-fpack-struct", SemanticFlag::kStructPad, "", 0,
                         "-fpack-struct=8", 1));
  specs.push_back(binary("-fgcse-after-reload",
                         SemanticFlag::kScalarRep, "", 1,
                         "-fno-gcse-after-reload", 0));
  specs.push_back(binary("-ftree-loop-im", SemanticFlag::kMemLayoutTrans,
                         "", 1, "-fno-tree-loop-im", 0));
  specs.push_back(binary("-fpeel-loops", SemanticFlag::kMultiVersion, "",
                         0, "-fpeel-loops", 1));

  return FlagSpace("gcc", std::move(specs));
}

}  // namespace ft::flags
