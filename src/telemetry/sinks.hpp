// Telemetry sinks: a JSONL event trace (one JSON object per span /
// metric sample - the archive format a tuning campaign stores next to
// its results) and a human summary table of the metrics snapshot.
//
// JSONL schema (one object per line):
//   {"type":"meta","schema_version":N}    always the first line
//   {"type":"span","id":N,"parent":N,"name":S,"t0":T,"t1":T,
//    "attrs":{...}}                       t0/t1 are the only
//                                         non-deterministic fields
//   {"type":"metric","name":S,"kind":"counter"|"gauge","value":N}
//   {"type":"metric","name":S,"kind":"histogram","count":N,"sum":N,
//    "min":N,"max":N}
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::support {
class Table;
}

namespace ft::telemetry {

/// Streams events as JSON Lines. Thread-safe; line-buffered under an
/// internal mutex so concurrent span ends never interleave bytes.
class JsonlSink final : public Sink {
 public:
  /// Borrows `out`; it must outlive the sink.
  explicit JsonlSink(std::ostream& out);
  /// Owns the stream (e.g. a std::ofstream).
  explicit JsonlSink(std::unique_ptr<std::ostream> out);
  /// Opens `path` for writing; throws std::runtime_error on failure.
  [[nodiscard]] static std::shared_ptr<JsonlSink> open(
      const std::string& path);

  void on_span(const SpanRecord& span) override;
  void on_metric(const MetricSample& sample) override;
  void flush() override;

  /// Event lines written (the leading "meta" schema line is excluded).
  [[nodiscard]] std::size_t lines() const noexcept;

 private:
  void write_meta();

  mutable std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  std::size_t lines_ = 0;
};

/// Renders one span record / metric sample as a single JSON line
/// (no trailing newline). Exposed for schema tests.
[[nodiscard]] std::string span_json(const SpanRecord& span);
[[nodiscard]] std::string metric_json(const MetricSample& sample);

/// Writes a metrics snapshot as one JSON document:
/// {"metrics":[{...},...]}.
void write_metrics_json(std::ostream& os,
                        const std::vector<MetricSample>& samples);

/// Human summary of a metrics snapshot (name, kind, value columns).
[[nodiscard]] support::Table metrics_summary_table(
    const std::vector<MetricSample>& samples);

/// Publishes thread-pool counters as `pool.*` gauges. Pool counters
/// depend on scheduling, so they are registered non-deterministic
/// (metrics snapshots only, never the trace).
void bridge_pool_stats(const support::ThreadPool::Stats& stats);

}  // namespace ft::telemetry
