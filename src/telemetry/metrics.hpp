// Process-wide metrics registry: named counters, gauges and histograms
// with stable addresses (callers cache `Counter&` in static locals on
// hot paths). Values are cumulative until reset().
//
// Determinism: counter adds and histogram observations commute exactly
// - counters are integers and histogram sums accumulate in fixed-point
// micro-units - so totals are bit-identical regardless of thread
// interleaving as long as the *set* of observations is deterministic.
// Metrics whose observation set itself depends on scheduling (compile
// cache-miss races, pool stats) must be registered with
// deterministic=false so flush_metrics() keeps them out of the trace.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ft::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar. Set it from one thread at a time if the
/// reading should be deterministic.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Count / sum / min / max aggregate. The sum is kept in integer
/// microseconds-style fixed point (1e-6 units) so parallel observation
/// order cannot perturb the total's low bits.
class Histogram {
 public:
  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_micro_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

class MetricsRegistry {
 public:
  /// Lookup-or-create; the returned reference stays valid for the
  /// registry's lifetime (reset() zeroes values, never deletes).
  /// `deterministic` is fixed by the first registration of a name.
  [[nodiscard]] Counter& counter(std::string_view name,
                                 bool deterministic = true);
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             bool deterministic = true);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     bool deterministic = true);

  /// All current readings, sorted by name (deterministic order).
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Zeroes every value; registered metrics (and cached references)
  /// survive.
  void reset();

 private:
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    bool deterministic = true;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, MetricSample::Kind kind,
               bool deterministic);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// The process-wide registry used by all instrumented modules.
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace ft::telemetry
