#include "telemetry/telemetry.hpp"

#include <mutex>

#include "caliper/clock.hpp"
#include "telemetry/metrics.hpp"

namespace ft::telemetry {

namespace {

/// Global sink + enable flag. The flag is the only thing hot paths
/// touch; the shared_ptr is guarded by a mutex (sink swaps are rare).
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_metrics_forced{false};
std::mutex g_sink_mutex;
std::shared_ptr<Sink> g_sink;  // guarded by g_sink_mutex

/// Innermost-open-span stack of the calling thread.
thread_local std::vector<SpanId> t_scope;

const caliper::WallClock& wall_clock() {
  static const caliper::WallClock clock;
  return clock;
}

void update_enabled() noexcept {
  g_enabled.store(static_cast<bool>(g_sink) ||
                      g_metrics_forced.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

}  // namespace

// ---- Span -------------------------------------------------------------------

SpanId Span::id() const noexcept { return record_ ? record_->id : 0; }

Span& Span::attr(std::string_view key, double value) {
  if (record_) record_->num_attrs.emplace_back(std::string(key), value);
  return *this;
}

Span& Span::attr(std::string_view key, std::string_view value) {
  if (record_) {
    record_->str_attrs.emplace_back(std::string(key), std::string(value));
  }
  return *this;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->finish(*record_);
  record_.reset();
}

// ---- Tracer -----------------------------------------------------------------

Span Tracer::begin(std::string_view name) {
  if (!enabled()) return {};
  return begin_under(current(), name);
}

Span Tracer::begin_under(SpanId parent, std::string_view name) {
  if (!enabled()) return {};
  auto record = std::make_unique<SpanRecord>();
  record->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record->parent = parent;
  record->name = std::string(name);
  record->t0 = wall_clock().now();
  t_scope.push_back(record->id);
  return Span(this, std::move(record));
}

SpanId Tracer::current() const noexcept {
  return t_scope.empty() ? 0 : t_scope.back();
}

void Tracer::finish(SpanRecord& record) {
  record.t1 = wall_clock().now();
  // Well-nested RAII use makes this a pop of the top; tolerate
  // out-of-order ends (e.g. a moved span outliving its child scope).
  for (std::size_t i = t_scope.size(); i-- > 0;) {
    if (t_scope[i] == record.id) {
      t_scope.erase(t_scope.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (std::shared_ptr<Sink> target = sink()) target->on_span(record);
}

// ---- process-wide state -----------------------------------------------------

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

void set_sink(std::shared_ptr<Sink> sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
  update_enabled();
}

std::shared_ptr<Sink> sink() {
  std::lock_guard lock(g_sink_mutex);
  return g_sink;
}

void enable_metrics(bool on) {
  std::lock_guard lock(g_sink_mutex);
  g_metrics_forced.store(on, std::memory_order_relaxed);
  update_enabled();
}

void flush_metrics() {
  const std::shared_ptr<Sink> target = sink();
  if (!target) return;
  for (const MetricSample& sample : metrics().snapshot()) {
    if (sample.deterministic) target->on_metric(sample);
  }
  target->flush();
}

}  // namespace ft::telemetry
