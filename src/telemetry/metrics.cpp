#include "telemetry/metrics.hpp"

#include <stdexcept>

namespace ft::telemetry {

void Histogram::observe(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(static_cast<std::int64_t>(std::llround(value * 1e6)),
                       std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::min() const noexcept {
  // The +inf sentinel means "no observations"; report 0 instead.
  const double value = min_.load(std::memory_order_relaxed);
  return std::isfinite(value) ? value : 0.0;
}

double Histogram::max() const noexcept {
  const double value = max_.load(std::memory_order_relaxed);
  return std::isfinite(value) ? value : 0.0;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_micro_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricSample::Kind kind,
                                               bool deterministic) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(std::string(name));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.deterministic = deterministic;
    switch (kind) {
      case MetricSample::Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricSample::Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricSample::Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else if (entry.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' registered with a different kind");
  }
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  bool deterministic) {
  return *entry(name, MetricSample::Kind::kCounter, deterministic).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, bool deterministic) {
  return *entry(name, MetricSample::Kind::kGauge, deterministic).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      bool deterministic) {
  return *entry(name, MetricSample::Kind::kHistogram, deterministic)
              .histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    sample.deterministic = entry.deterministic;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.value = static_cast<double>(entry.counter->value());
        break;
      case MetricSample::Kind::kGauge:
        sample.value = entry.gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        sample.count = entry.histogram->count();
        sample.sum = entry.histogram->sum();
        sample.min = entry.histogram->min();
        sample.max = entry.histogram->max();
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace ft::telemetry
