#include "telemetry/sinks.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/serialization.hpp"
#include "support/table.hpp"
#include "telemetry/metrics.hpp"

namespace ft::telemetry {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Shortest round-trip decimal form: deterministic and diff-friendly
/// (no locale, no trailing zeros).
std::string json_number(double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "0";
  return std::string(buffer, end);
}

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "counter";
}

}  // namespace

std::string span_json(const SpanRecord& span) {
  std::ostringstream oss;
  oss << "{\"type\":\"span\",\"id\":" << span.id
      << ",\"parent\":" << span.parent << ",\"name\":\""
      << json_escape(span.name) << "\",\"t0\":" << json_number(span.t0)
      << ",\"t1\":" << json_number(span.t1) << ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : span.num_attrs) {
    if (!first) oss << ',';
    first = false;
    oss << '"' << json_escape(key) << "\":" << json_number(value);
  }
  for (const auto& [key, value] : span.str_attrs) {
    if (!first) oss << ',';
    first = false;
    oss << '"' << json_escape(key) << "\":\"" << json_escape(value)
        << '"';
  }
  oss << "}}";
  return oss.str();
}

std::string metric_json(const MetricSample& sample) {
  std::ostringstream oss;
  oss << "{\"type\":\"metric\",\"name\":\"" << json_escape(sample.name)
      << "\",\"kind\":\"" << kind_name(sample.kind) << '"';
  if (sample.kind == MetricSample::Kind::kHistogram) {
    oss << ",\"count\":" << sample.count
        << ",\"sum\":" << json_number(sample.sum)
        << ",\"min\":" << json_number(sample.min)
        << ",\"max\":" << json_number(sample.max);
  } else {
    oss << ",\"value\":" << json_number(sample.value);
  }
  oss << '}';
  return oss.str();
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) { write_meta(); }

JsonlSink::JsonlSink(std::unique_ptr<std::ostream> out)
    : owned_(std::move(out)), out_(owned_.get()) {
  write_meta();
}

void JsonlSink::write_meta() {
  // Schema header line. Deliberately NOT counted in lines(): lines()
  // reports events, and trace consumers that predate the header keep
  // working by skipping "meta" objects.
  *out_ << "{\"type\":\"meta\"," << support::schema_version_field()
        << "}\n";
}

std::shared_ptr<JsonlSink> JsonlSink::open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) {
    throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  return std::make_shared<JsonlSink>(std::move(file));
}

void JsonlSink::on_span(const SpanRecord& span) {
  const std::string line = span_json(span);
  std::lock_guard lock(mutex_);
  *out_ << line << '\n';
  ++lines_;
}

void JsonlSink::on_metric(const MetricSample& sample) {
  const std::string line = metric_json(sample);
  std::lock_guard lock(mutex_);
  *out_ << line << '\n';
  ++lines_;
}

void JsonlSink::flush() {
  std::lock_guard lock(mutex_);
  out_->flush();
}

std::size_t JsonlSink::lines() const noexcept {
  std::lock_guard lock(mutex_);
  return lines_;
}

void write_metrics_json(std::ostream& os,
                        const std::vector<MetricSample>& samples) {
  os << "{" << support::schema_version_field() << ",\"metrics\":[";
  bool first = true;
  for (const MetricSample& sample : samples) {
    if (!first) os << ',';
    first = false;
    os << metric_json(sample);
  }
  os << "]}\n";
}

support::Table metrics_summary_table(
    const std::vector<MetricSample>& samples) {
  support::Table table("Telemetry metrics");
  table.set_header({"Metric", "Kind", "Value", "Count", "Min", "Max"});
  for (const MetricSample& sample : samples) {
    if (sample.kind == MetricSample::Kind::kHistogram) {
      table.add_row({sample.name, kind_name(sample.kind),
                     support::Table::num(sample.sum, 3),
                     std::to_string(sample.count),
                     support::Table::num(sample.min, 4),
                     support::Table::num(sample.max, 4)});
    } else {
      table.add_row({sample.name, kind_name(sample.kind),
                     support::Table::num(sample.value, 3), "-", "-",
                     "-"});
    }
  }
  return table;
}

void bridge_pool_stats(const support::ThreadPool::Stats& stats) {
  MetricsRegistry& registry = metrics();
  registry.gauge("pool.threads", /*deterministic=*/false)
      .set(static_cast<double>(stats.threads));
  registry.gauge("pool.tasks_submitted", false)
      .set(static_cast<double>(stats.tasks_submitted));
  registry.gauge("pool.tasks_completed", false)
      .set(static_cast<double>(stats.tasks_completed));
  registry.gauge("pool.tasks_stolen", false)
      .set(static_cast<double>(stats.tasks_stolen));
  registry.gauge("pool.queue_high_water", false)
      .set(static_cast<double>(stats.queue_high_water));
  registry.gauge("pool.worker_busy_seconds", false)
      .set(stats.worker_busy_seconds);
}

}  // namespace ft::telemetry
