// Telemetry: scoped-span tracing plus a process-wide metrics registry.
//
// The tuner's own behaviour - where time goes per phase, per search,
// per compile/run - is exactly the attribution question the paper asks
// about applications (§3.3). This module makes the tuner observable the
// same way: a span tree (phase → search → batch → compile/run leaves)
// and named metrics (cache hits, evaluations, noise draws, pool stats),
// delivered to pluggable sinks (JSONL trace, human summary table).
//
// Contract:
//  * Null-sink fast path: with no sink attached and metrics collection
//    off, every entry point reduces to one relaxed atomic load - safe
//    to leave in the hottest paths.
//  * Determinism: span ids are allocated sequentially and all span /
//    metric fields except wall-clock timestamps (`t0`/`t1`) are
//    deterministic for a fixed seed, as long as spans are begun and
//    ended from a single thread (the evaluator emits batch-level spans
//    from the calling thread for exactly this reason). Metrics whose
//    value depends on scheduling (cache-miss races, pool counters) are
//    registered non-deterministic and excluded from the trace; they
//    still appear in metrics snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ft::telemetry {

using SpanId = std::uint64_t;

/// A finished span, as delivered to sinks when the span ends.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root
  std::string name;
  double t0 = 0.0;  ///< wall-clock begin (timing field, non-deterministic)
  double t1 = 0.0;  ///< wall-clock end (timing field, non-deterministic)
  std::vector<std::pair<std::string, double>> num_attrs;
  std::vector<std::pair<std::string, std::string>> str_attrs;
};

/// One metric reading, as delivered to sinks by flush_metrics().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  /// False for metrics whose value depends on thread scheduling; such
  /// samples are kept out of the (diffable) trace sink.
  bool deterministic = true;
  double value = 0.0;  ///< counter / gauge reading
  // Histogram fields (kind == kHistogram).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Receiver of telemetry events. Implementations must be thread-safe:
/// spans can end concurrently when callers trace from several threads.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  virtual void on_metric(const MetricSample& sample) = 0;
  virtual void flush() {}
};

class Tracer;

/// Movable RAII handle for an in-flight span. A default-constructed
/// (or disabled-tracer) Span is inert: attrs and end() are no-ops.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept
      : tracer_(other.tracer_), record_(std::move(other.record_)) {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      record_ = std::move(other.record_);
      other.tracer_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return tracer_ != nullptr;
  }
  [[nodiscard]] SpanId id() const noexcept;

  Span& attr(std::string_view key, double value);
  Span& attr(std::string_view key, std::int64_t value) {
    return attr(key, static_cast<double>(value));
  }
  Span& attr(std::string_view key, std::uint64_t value) {
    return attr(key, static_cast<double>(value));
  }
  Span& attr(std::string_view key, std::string_view value);

  /// Stamps t1, pops the thread-local scope and emits the record.
  /// Idempotent; called by the destructor.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::unique_ptr<SpanRecord> record)
      : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_ = nullptr;
  std::unique_ptr<SpanRecord> record_;
};

/// Span factory. begin() parents new spans on the calling thread's
/// innermost open span; begin_under() parents explicitly (used when
/// work hops threads, e.g. an evaluation batch).
class Tracer {
 public:
  /// Inert span unless a sink is attached.
  [[nodiscard]] Span begin(std::string_view name);
  [[nodiscard]] Span begin_under(SpanId parent, std::string_view name);

  /// Innermost open span on the calling thread (0 = none).
  [[nodiscard]] SpanId current() const noexcept;

  /// Restarts span ids from 1 (tests; golden traces).
  void reset_ids() noexcept { next_id_.store(1, std::memory_order_relaxed); }

 private:
  friend class Span;
  void finish(SpanRecord& record);

  std::atomic<SpanId> next_id_{1};
};

// ---- process-wide state -----------------------------------------------------

/// One relaxed load; true when a sink is attached or metrics collection
/// has been forced on. Gate all non-trivial telemetry work behind it.
[[nodiscard]] bool enabled() noexcept;

[[nodiscard]] Tracer& tracer();

/// Installs (or, with nullptr, detaches) the process-wide sink.
void set_sink(std::shared_ptr<Sink> sink);
[[nodiscard]] std::shared_ptr<Sink> sink();

/// Collect metrics even without a sink (e.g. `ftune tune --metrics`).
void enable_metrics(bool on);

/// Emits every deterministic metric sample to the attached sink (sorted
/// by name) and flushes it. No-op without a sink.
void flush_metrics();

/// RAII sink installation: installs on construction, restores the
/// previous sink on destruction. Used by tests and Campaign.
class SinkScope {
 public:
  explicit SinkScope(std::shared_ptr<Sink> sink)
      : previous_(telemetry::sink()) {
    set_sink(std::move(sink));
  }
  ~SinkScope() { set_sink(std::move(previous_)); }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  std::shared_ptr<Sink> previous_;
};

}  // namespace ft::telemetry
