// Code-structure features of one loop nest.
//
// The paper's substrate is real source code compiled by ICC; ours is a
// workload model. Each outlined loop is described by the features that
// drive both (a) the compiler simulator's heuristic decisions (static
// features - what a compiler can see) and (b) the machine model's true
// cost (dynamic features - what only execution reveals). The gap
// between the two is precisely the headroom that flag autotuning
// exploits, which is how the paper's phenomena arise mechanistically
// instead of being hard-coded (see DESIGN.md §4).
#pragma once

#include <string>

namespace ft::ir {

struct LoopFeatures {
  // --- shape / work (reference input, per time-step) -------------------
  double trip_count = 1024;      ///< iterations per invocation
  double invocations = 1;        ///< invocations per time-step
  double flops_per_iter = 8;     ///< floating-point ops per iteration
  double memops_per_iter = 4;    ///< loads+stores per iteration
  double store_frac = 0.3;       ///< stores / memops
  double body_size = 40;         ///< abstract IR ops in the body

  // --- memory behaviour -------------------------------------------------
  double unit_stride_frac = 1.0;  ///< contiguous fraction of accesses
  double working_set_mb = 8.0;    ///< bytes touched per invocation (MB)
  double shared_data = 0.0;       ///< coupling to globally shared arrays

  // --- control flow ------------------------------------------------------
  double divergence = 0.0;         ///< dynamic lane divergence [0,1]
  double static_branchiness = 0.0; ///< branches visible statically [0,1]
  double branch_mispredict = 0.0;  ///< scalar mispredict intensity [0,1]

  // --- dependences / pressure --------------------------------------------
  double dependence = 0.0;        ///< loop-carried dependence [0,1]
  double alias_uncertainty = 0.0; ///< unprovable pointer aliasing [0,1]
  double register_pressure = 0.3; ///< regfile use at scalar/no-unroll [0,1]

  // --- parallelism / inter-module structure --------------------------------
  double parallel_frac = 0.95;  ///< OpenMP-covered fraction [0,1]
  double call_density = 0.0;    ///< cross-module calls per iteration [0,1]
  double fp_intensity = 0.8;    ///< fp share of compute [0,1]

  /// Clamps every [0,1]-ranged field into range and enforces positive
  /// work terms; returns a reference for chaining.
  LoopFeatures& sanitize() noexcept;

  /// Features scaled to a different input: `work` scales trip counts,
  /// `ws` scales working-set size (problem-size scaling rule of the
  /// owning program).
  [[nodiscard]] LoopFeatures scaled(double work, double ws) const noexcept;
};

/// Validation helper used by tests and the Program constructor.
[[nodiscard]] bool features_valid(const LoopFeatures& f) noexcept;

}  // namespace ft::ir
