#include "ir/loop_features.hpp"

#include <algorithm>

namespace ft::ir {

namespace {
void clamp01(double& value) noexcept { value = std::clamp(value, 0.0, 1.0); }
}  // namespace

LoopFeatures& LoopFeatures::sanitize() noexcept {
  trip_count = std::max(trip_count, 1.0);
  invocations = std::max(invocations, 1.0);
  flops_per_iter = std::max(flops_per_iter, 0.0);
  memops_per_iter = std::max(memops_per_iter, 0.0);
  body_size = std::max(body_size, 1.0);
  working_set_mb = std::max(working_set_mb, 1.0 / 1024.0);
  clamp01(store_frac);
  clamp01(unit_stride_frac);
  clamp01(shared_data);
  clamp01(divergence);
  clamp01(static_branchiness);
  clamp01(branch_mispredict);
  clamp01(dependence);
  clamp01(alias_uncertainty);
  clamp01(register_pressure);
  clamp01(parallel_frac);
  clamp01(call_density);
  clamp01(fp_intensity);
  return *this;
}

LoopFeatures LoopFeatures::scaled(double work, double ws) const noexcept {
  LoopFeatures f = *this;
  f.trip_count *= std::max(work, 1e-6);
  f.working_set_mb *= std::max(ws, 1e-6);
  return f.sanitize();
}

bool features_valid(const LoopFeatures& f) noexcept {
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  return f.trip_count >= 1.0 && f.invocations >= 1.0 &&
         f.flops_per_iter >= 0.0 && f.memops_per_iter >= 0.0 &&
         f.body_size >= 1.0 && f.working_set_mb > 0.0 &&
         in01(f.store_frac) && in01(f.unit_stride_frac) &&
         in01(f.shared_data) && in01(f.divergence) &&
         in01(f.static_branchiness) && in01(f.branch_mispredict) &&
         in01(f.dependence) && in01(f.alias_uncertainty) &&
         in01(f.register_pressure) &&
         in01(f.parallel_frac) && in01(f.call_density) &&
         in01(f.fp_intensity);
}

}  // namespace ft::ir
