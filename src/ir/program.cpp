#include "ir/program.hpp"

#include <cmath>
#include <stdexcept>

namespace ft::ir {

Program::Program(std::string name, std::string language, double loc_k,
                 std::vector<LoopModule> loops, LoopModule nonloop,
                 std::vector<InputSpec> inputs)
    : name_(std::move(name)),
      language_(std::move(language)),
      loc_k_(loc_k),
      loops_(std::move(loops)),
      nonloop_(std::move(nonloop)),
      inputs_(std::move(inputs)) {
  if (loops_.empty()) {
    throw std::invalid_argument("program '" + name_ + "' has no loops");
  }
  double share = nonloop_.o3_ratio;
  for (auto& loop : loops_) {
    loop.features.sanitize();
    loop.is_loop = true;
    share += loop.o3_ratio;
    if (loop.o3_ratio <= 0.0) {
      throw std::invalid_argument("loop '" + loop.name +
                                  "' has non-positive O3 share");
    }
  }
  nonloop_.is_loop = false;
  nonloop_.features.sanitize();
  if (std::fabs(share - 1.0) > 1e-6) {
    throw std::invalid_argument("program '" + name_ +
                                "' O3 shares must sum to 1, got " +
                                std::to_string(share));
  }
  bool has_tuning = false;
  for (const auto& spec : inputs_) has_tuning |= (spec.name == "tuning");
  if (!has_tuning) {
    throw std::invalid_argument("program '" + name_ +
                                "' is missing a 'tuning' input");
  }
}

std::vector<LoopModule> Program::all_modules() const {
  std::vector<LoopModule> modules = loops_;
  modules.push_back(nonloop_);
  return modules;
}

std::optional<InputSpec> Program::input(const std::string& name) const {
  for (const auto& spec : inputs_) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

const InputSpec& Program::tuning_input() const {
  for (const auto& spec : inputs_) {
    if (spec.name == "tuning") return spec;
  }
  throw std::logic_error("tuning input vanished");  // guarded in ctor
}

}  // namespace ft::ir
