// Program model: a scientific application as seen by the tuner.
//
// A Program is a sequence of loop modules executed in order within an
// outer time-step loop (the "time-step execution pattern" of §3.1),
// plus non-loop code scattered across the rest of the sources. Each
// loop carries a feature vector and its O3 runtime share; inputs define
// problem-size/time-step scaling and the O3 end-to-end target runtime
// the machine model calibrates against.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/loop_features.hpp"

namespace ft::ir {

/// Problem input: named configuration with scaling relative to the
/// tuning input (work = per-time-step work multiplier, ws = working-set
/// multiplier) and the O3 end-to-end runtime the paper's setup would
/// observe (inputs were sized so every run is < 40 s, §3.1).
struct InputSpec {
  std::string name;       ///< "tuning", "small", "large", ...
  double size_param = 0;  ///< the paper's size column (documentation only)
  int timesteps = 10;
  double work_scale = 1.0;  ///< per-time-step work vs tuning input
  double ws_scale = 1.0;    ///< working-set size vs tuning input
  double o3_seconds = 20.0; ///< end-to-end O3 runtime for this input
};

/// One outlined compilation module: either a hot loop or the merged
/// non-loop remainder.
struct LoopModule {
  std::string name;
  LoopFeatures features;
  /// Share of O3 end-to-end runtime on the tuning input. Shares of all
  /// loop modules plus the non-loop share sum to 1.
  double o3_ratio = 0.05;
  bool is_loop = true;
};

class Program {
 public:
  Program(std::string name, std::string language, double loc_k,
          std::vector<LoopModule> loops, LoopModule nonloop,
          std::vector<InputSpec> inputs);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& language() const noexcept {
    return language_;
  }
  [[nodiscard]] double loc_k() const noexcept { return loc_k_; }

  /// Hot-loop modules, in execution order within a time-step.
  [[nodiscard]] const std::vector<LoopModule>& loops() const noexcept {
    return loops_;
  }
  /// The merged non-loop code module.
  [[nodiscard]] const LoopModule& nonloop() const noexcept {
    return nonloop_;
  }
  /// loops() followed by nonloop() - the J compilation modules.
  [[nodiscard]] std::vector<LoopModule> all_modules() const;

  [[nodiscard]] const std::vector<InputSpec>& inputs() const noexcept {
    return inputs_;
  }
  /// Input lookup by name; tuning_input() is the one named "tuning".
  [[nodiscard]] std::optional<InputSpec> input(const std::string& name) const;
  [[nodiscard]] const InputSpec& tuning_input() const;

  /// Paper observation (§4.2.2): Intel PGO instrumentation runs fail for
  /// LULESH and Optewe; the corresponding workload models carry this.
  [[nodiscard]] bool pgo_instrumentation_fails() const noexcept {
    return pgo_fails_;
  }
  void set_pgo_instrumentation_fails(bool fails) noexcept {
    pgo_fails_ = fails;
  }

 private:
  std::string name_;
  std::string language_;
  double loc_k_;
  std::vector<LoopModule> loops_;
  LoopModule nonloop_;
  std::vector<InputSpec> inputs_;
  bool pgo_fails_ = false;
};

}  // namespace ft::ir
