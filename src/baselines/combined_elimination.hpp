// Combined Elimination (Pan & Eigenmann, PEAK [21]) - the per-program
// flag-pruning baseline of the paper's Fig 1. Starting from the
// all-optimizations-on configuration, CE measures each flag's Relative
// Improvement Percentage (RIP) when switched off, then greedily removes
// the flag with the most negative impact together with any other flag
// that still helps once it is gone, iterating to a fixed point. The
// paper observes CE stalls in local minima on these codes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "flags/flag_space.hpp"

namespace ft::baselines {

struct CeResult {
  flags::CompilationVector best_cv;  ///< in the binarized space
  double tuned_seconds = 0.0;
  double baseline_seconds = 0.0;
  double speedup = 0.0;
  std::size_t evaluations = 0;
  /// Names of flags CE left enabled (non-default).
  std::vector<std::string> enabled_flags;
};

/// Runs CE on the binarized view of `space` (CE reasons about on/off
/// decisions only). Evaluation is uniform per-program compilation.
[[nodiscard]] CeResult combined_elimination(core::Evaluator& evaluator,
                                            const flags::FlagSpace& space,
                                            double baseline_seconds,
                                            std::uint64_t seed = 42);

}  // namespace ft::baselines
