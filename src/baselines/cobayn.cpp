#include "baselines/cobayn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "machine/execution_engine.hpp"
#include "programs/corpus.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace ft::baselines {

namespace {

double euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

/// Deterministic Lloyd k-means (k-means++-style greedy seeding).
std::pair<std::vector<std::vector<double>>, std::vector<std::size_t>> kmeans(
    const std::vector<std::vector<double>>& points, std::size_t k,
    support::Rng& rng) {
  k = std::min(k, points.size());
  std::vector<std::vector<double>> centroids;
  centroids.push_back(points[rng.next_below(points.size())]);
  while (centroids.size() < k) {
    // Greedy farthest-point seeding.
    std::size_t farthest = 0;
    double best_distance = -1.0;
    for (std::size_t p = 0; p < points.size(); ++p) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        nearest = std::min(nearest, euclidean(points[p], c));
      }
      if (nearest > best_distance) {
        best_distance = nearest;
        farthest = p;
      }
    }
    centroids.push_back(points[farthest]);
  }

  std::vector<std::size_t> assignment(points.size(), 0);
  for (int iteration = 0; iteration < 25; ++iteration) {
    bool moved = false;
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = euclidean(points[p], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[p] != best) {
        assignment[p] = best;
        moved = true;
      }
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      std::vector<double> mean(centroids[c].size(), 0.0);
      std::size_t count = 0;
      for (std::size_t p = 0; p < points.size(); ++p) {
        if (assignment[p] != c) continue;
        for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += points[p][i];
        ++count;
      }
      if (count > 0) {
        for (double& v : mean) v /= static_cast<double>(count);
        centroids[c] = std::move(mean);
      }
    }
    if (!moved) break;
  }
  return {std::move(centroids), std::move(assignment)};
}

}  // namespace

Cobayn::Cobayn(const flags::FlagSpace& space, machine::Architecture arch,
               CobaynOptions options)
    : space_(&space),
      binary_space_(space.binarized()),
      arch_(std::move(arch)),
      options_(options) {}

std::vector<double> Cobayn::static_features(const ir::Program& program) {
  // Milepost-like counts, aggregated over modules weighted by their O3
  // runtime share (a static analyzer sees the whole program; weighting
  // approximates per-function instruction counts).
  std::vector<double> f(10, 0.0);
  double total = 0.0;
  auto add = [&](const ir::LoopModule& m) {
    const double w = m.o3_ratio;
    const ir::LoopFeatures& x = m.features;
    f[0] += w * x.body_size / 100.0;
    f[1] += w * x.memops_per_iter /
            std::max(x.flops_per_iter + x.memops_per_iter, 1.0);
    f[2] += w * x.static_branchiness;
    f[3] += w * std::min(x.trip_count / 10000.0, 2.0);
    f[4] += w * x.call_density;
    f[5] += w * x.fp_intensity;
    f[6] += w * 10.0 / x.body_size;  // unroll-friendliness
    f[7] += w * x.alias_uncertainty;
    f[8] += w * x.store_frac;
    total += w;
  };
  for (const auto& loop : program.loops()) add(loop);
  add(program.nonloop());
  for (double& v : f) v /= std::max(total, 1e-9);
  f[9] = static_cast<double>(program.loops().size()) / 20.0;
  return f;
}

std::vector<double> Cobayn::dynamic_features(const ir::Program& program) {
  // MICA instruments a serial run: module statistics are unweighted (a
  // serial execution does not reproduce the OpenMP time distribution),
  // which is what degrades the dynamic model on parallel targets.
  std::vector<double> f(8, 0.0);
  double count = 0.0;
  auto add = [&](const ir::LoopModule& m) {
    const ir::LoopFeatures& x = m.features;
    f[0] += x.divergence;
    f[1] += x.branch_mispredict;
    f[2] += x.unit_stride_frac;
    f[3] += std::min(x.working_set_mb / 100.0, 3.0);
    f[4] += x.dependence;
    f[5] += x.memops_per_iter /
            std::max(x.flops_per_iter + x.memops_per_iter, 1.0);
    f[6] += std::min(x.flops_per_iter / 60.0, 2.0);
    f[7] += x.register_pressure;
    count += 1.0;
  };
  for (const auto& loop : program.loops()) add(loop);
  add(program.nonloop());
  for (double& v : f) v /= std::max(count, 1.0);
  return f;
}

std::vector<double> Cobayn::features_for(const ir::Program& program,
                                         CobaynModel model) const {
  switch (model) {
    case CobaynModel::kStatic:
      return static_features(program);
    case CobaynModel::kDynamic:
      return dynamic_features(program);
    case CobaynModel::kHybrid: {
      std::vector<double> f = static_features(program);
      const std::vector<double> d = dynamic_features(program);
      f.insert(f.end(), d.begin(), d.end());
      return f;
    }
  }
  return {};
}

void Cobayn::learn_model(CobaynModel model,
                         const std::vector<std::vector<double>>& features,
                         const std::vector<std::vector<double>>& probs) {
  support::Rng rng(options_.seed ^ static_cast<std::uint64_t>(model));
  auto [centroids, assignment] = kmeans(features, options_.clusters, rng);

  const std::size_t flag_count = binary_space_.flag_count();
  std::vector<std::vector<double>> cluster_probs(
      centroids.size(), std::vector<double>(flag_count, 0.0));
  std::vector<double> cluster_counts(centroids.size(), 0.0);
  for (std::size_t p = 0; p < probs.size(); ++p) {
    const std::size_t c = assignment[p];
    for (std::size_t i = 0; i < flag_count; ++i) {
      cluster_probs[c][i] += probs[p][i];
    }
    cluster_counts[c] += 1.0;
  }
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    for (double& v : cluster_probs[c]) {
      // Laplace smoothing toward 0.5 for sparse clusters.
      v = (v + 0.5) / (cluster_counts[c] + 1.0);
    }
  }

  ModelData& target = model == CobaynModel::kStatic    ? static_model_
                      : model == CobaynModel::kDynamic ? dynamic_model_
                                                       : hybrid_model_;
  target.centroids = std::move(centroids);
  target.flag_probs = std::move(cluster_probs);
}

void Cobayn::train() {
  support::Rng corpus_rng = support::Rng(options_.seed).fork("corpus");
  const std::vector<ir::Program> corpus =
      programs::generate_corpus(corpus_rng, options_.corpus_size);

  std::vector<std::vector<double>> static_f, dynamic_f, hybrid_f;
  std::vector<std::vector<double>> program_flag_probs;

  for (const ir::Program& program : corpus) {
    // Measure 1000 (default 300) binary CVs on this corpus program.
    compiler::Compiler compiler(*space_, arch_);
    machine::ExecutionEngine engine(program, compiler,
                                    machine::NoiseModel(options_.seed));
    const ir::InputSpec& input = program.tuning_input();
    support::Rng sample_rng =
        corpus_rng.fork("samples|" + program.name());
    const std::vector<flags::CompilationVector> cvs =
        binary_space_.sample_many(sample_rng, options_.corpus_samples);

    // Training measurements are content-addressed (noise keyed by the
    // CV's executable fingerprint under one phase rep_base), so they
    // fan out on the shared pool like every other sweep.
    std::vector<double> seconds(cvs.size());
    support::parallel_for(cvs.size(), [&](std::size_t k) {
      const compiler::Executable exe =
          compiler.build_uniform(program, cvs[k]);
      machine::RunOptions run_options;
      run_options.rep_base = core::rep_streams::kCobaynTraining;
      seconds[k] = engine.run(exe, input, run_options).end_to_end;
    });

    // Evidence: per-flag non-default frequency among the top-K CVs.
    const std::vector<std::size_t> top = support::smallest_k(
        seconds, std::min(options_.top_k, cvs.size()));
    std::vector<double> flag_prob(binary_space_.flag_count(), 0.0);
    for (const std::size_t k : top) {
      for (std::size_t i = 0; i < binary_space_.flag_count(); ++i) {
        if (cvs[k][i] != 0) flag_prob[i] += 1.0;
      }
    }
    for (double& v : flag_prob) v /= static_cast<double>(top.size());

    static_f.push_back(features_for(program, CobaynModel::kStatic));
    dynamic_f.push_back(features_for(program, CobaynModel::kDynamic));
    hybrid_f.push_back(features_for(program, CobaynModel::kHybrid));
    program_flag_probs.push_back(std::move(flag_prob));
  }

  learn_model(CobaynModel::kStatic, static_f, program_flag_probs);
  learn_model(CobaynModel::kDynamic, dynamic_f, program_flag_probs);
  learn_model(CobaynModel::kHybrid, hybrid_f, program_flag_probs);
  trained_ = true;
}

const Cobayn::ModelData& Cobayn::data(CobaynModel model) const {
  switch (model) {
    case CobaynModel::kStatic: return static_model_;
    case CobaynModel::kDynamic: return dynamic_model_;
    case CobaynModel::kHybrid: return hybrid_model_;
  }
  return static_model_;
}

const std::vector<std::vector<double>>& Cobayn::cluster_probs(
    CobaynModel model) const {
  return data(model).flag_probs;
}

core::TuningResult Cobayn::infer(core::Evaluator& evaluator,
                                 CobaynModel model,
                                 double baseline_seconds) {
  const ir::Program& program = evaluator.engine().program();
  const std::vector<double> features = features_for(program, model);
  const ModelData& m = data(model);

  std::size_t cluster = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < m.centroids.size(); ++c) {
    const double d = euclidean(features, m.centroids[c]);
    if (d < best_d) {
      best_d = d;
      cluster = c;
    }
  }
  const std::vector<double>& probs = m.flag_probs[cluster];

  // Sample candidate CVs from the per-flag posterior and evaluate.
  support::Rng rng =
      support::Rng(options_.seed).fork("infer|" + program.name());
  std::vector<flags::CompilationVector> candidates;
  candidates.reserve(options_.inference_samples);
  for (std::size_t s = 0; s < options_.inference_samples; ++s) {
    flags::CompilationVector cv = binary_space_.default_cv();
    for (std::size_t i = 0; i < binary_space_.flag_count(); ++i) {
      if (binary_space_.specs()[i].options.size() > 1 &&
          rng.bernoulli(probs[i])) {
        cv.set(i, 1);
      }
    }
    candidates.push_back(std::move(cv));
  }

  const std::size_t loop_count = program.loops().size();
  std::vector<core::EvalRequest> requests(candidates.size());
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    requests[k].assignment =
        compiler::ModuleAssignment::uniform(candidates[k], loop_count);
    requests[k].rep_base = core::rep_streams::kCobayn;
  }
  const std::vector<core::EvalResponse> responses = evaluator.evaluate_batch(
      requests, core::EvalTrace{.label = "cobayn/batch"});
  std::vector<double> seconds;
  seconds.reserve(responses.size());
  for (const core::EvalResponse& response : responses) {
    seconds.push_back(response.seconds());
  }

  core::TuningResult result;
  result.algorithm = cobayn_model_name(model);
  double best = std::numeric_limits<double>::infinity();
  for (const double s : seconds) {
    best = std::min(best, s);
    result.history.push_back(best);
  }
  result.evaluations = seconds.size();
  result.search_best_seconds = best;
  result.best_assignment = compiler::ModuleAssignment::uniform(
      candidates[support::argmin(seconds)], loop_count);
  result.tuned_seconds = evaluator.final_seconds(result.best_assignment);
  result.baseline_seconds = baseline_seconds;
  result.speedup = baseline_seconds / result.tuned_seconds;
  return result;
}

}  // namespace ft::baselines
