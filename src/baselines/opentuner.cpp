#include "baselines/opentuner.hpp"

#include "baselines/opentuner_techniques.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace ft::baselines {

OpenTunerResult opentuner_search(core::Evaluator& evaluator,
                                 const flags::FlagSpace& space,
                                 const OpenTunerOptions& options,
                                 double baseline_seconds) {
  support::Rng rng(options.seed);
  const std::size_t loop_count =
      evaluator.engine().program().loops().size();

  using namespace techniques;
  std::vector<std::unique_ptr<SearchTechnique>> techniques;
  techniques.push_back(std::make_unique<DifferentialEvolution>());
  techniques.push_back(std::make_unique<TorczonHillClimber>());
  techniques.push_back(std::make_unique<NelderMeadDiscrete>());
  techniques.push_back(std::make_unique<GeneticAlgorithm>());
  techniques.push_back(std::make_unique<SimulatedAnnealing>());
  techniques.push_back(std::make_unique<RandomTechnique>());

  // Sliding-window AUC credit per technique (1 when the proposal
  // improved the global best, weighted toward recent outcomes).
  std::vector<std::deque<int>> window(techniques.size());
  std::vector<std::size_t> uses(techniques.size(), 0);

  flags::CompilationVector best_cv = space.default_cv();
  double best_seconds = std::numeric_limits<double>::infinity();

  OpenTunerResult result;
  result.tuning.algorithm = "OpenTuner";
  result.tuning.history.reserve(options.iterations);

  for (std::size_t iteration = 0; iteration < options.iterations;
       ++iteration) {
    // AUC bandit: exploitation = weighted improvement rate in window.
    std::size_t chosen = 0;
    double best_score = -1.0;
    for (std::size_t t = 0; t < techniques.size(); ++t) {
      double auc = 0.0;
      double denom = 0.0;
      for (std::size_t w = 0; w < window[t].size(); ++w) {
        const double weight = static_cast<double>(w + 1);
        auc += weight * window[t][w];
        denom += weight;
      }
      const double exploitation = denom > 0.0 ? auc / denom : 0.0;
      const double exploration =
          options.exploration *
          std::sqrt(2.0 * std::log(static_cast<double>(iteration + 1)) /
                    static_cast<double>(uses[t] + 1));
      const double score = exploitation + exploration;
      if (score > best_score) {
        best_score = score;
        chosen = t;
      }
    }

    const flags::CompilationVector cv =
        techniques[chosen]->propose(space, rng, best_cv);
    core::EvalRequest request;
    request.assignment = compiler::ModuleAssignment::uniform(cv, loop_count);
    request.rep_base = core::rep_streams::kOpenTuner;
    const double seconds = evaluator.evaluate(request).seconds();
    const bool improved = seconds < best_seconds;
    if (improved) {
      best_seconds = seconds;
      best_cv = cv;
    }
    techniques[chosen]->feedback(cv, seconds, improved);

    ++uses[chosen];
    window[chosen].push_back(improved ? 1 : 0);
    if (window[chosen].size() > options.bandit_window) {
      window[chosen].pop_front();
    }
    result.tuning.history.push_back(best_seconds);
  }

  result.tuning.best_assignment =
      compiler::ModuleAssignment::uniform(best_cv, loop_count);
  result.tuning.search_best_seconds = best_seconds;
  result.tuning.evaluations = options.iterations;
  result.tuning.tuned_seconds =
      evaluator.final_seconds(result.tuning.best_assignment);
  result.tuning.baseline_seconds = baseline_seconds;
  result.tuning.speedup = baseline_seconds / result.tuning.tuned_seconds;
  for (const auto& technique : techniques) {
    result.technique_names.emplace_back(technique->name());
  }
  result.technique_uses = uses;
  return result;
}

}  // namespace ft::baselines
