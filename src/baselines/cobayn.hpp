// COBAYN baseline (Ashouri et al., TACO'16): a Bayesian-network
// predictor that infers good compiler flags for an unseen program from
// its program features.
//
// Following the paper's §4.2.1 protocol:
//  * trained on a cBench-like corpus of small serial kernels,
//  * for each corpus program the top-100 of 1000 random *binary* CVs
//    define the evidence (COBAYN can only infer binary flags, so each
//    multi-valued ICC flag is binarized),
//  * three feature sets: static (Milepost-GCC-like), dynamic
//    (MICA-like) and hybrid. MICA instruments *serial* executions, so
//    dynamic features of OpenMP programs reflect a serialized view -
//    the reason the paper's dynamic/hybrid models underperform.
//
// The learned model is a clustered naive Bayes network: programs are
// clustered in feature space (k-means); each cluster carries per-flag
// Bernoulli posteriors from which inference samples candidate CVs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/evaluator.hpp"
#include "core/search.hpp"
#include "flags/flag_space.hpp"
#include "ir/program.hpp"
#include "machine/architecture.hpp"

namespace ft::baselines {

enum class CobaynModel { kStatic, kDynamic, kHybrid };

[[nodiscard]] inline const char* cobayn_model_name(CobaynModel m) noexcept {
  switch (m) {
    case CobaynModel::kStatic: return "static COBAYN";
    case CobaynModel::kDynamic: return "dynamic COBAYN";
    case CobaynModel::kHybrid: return "hybrid COBAYN";
  }
  return "?";
}

struct CobaynOptions {
  std::size_t corpus_size = 24;
  std::size_t corpus_samples = 300;  ///< random CVs per corpus program
  std::size_t top_k = 100;           ///< evidence per program (paper: 100)
  std::size_t clusters = 5;
  std::size_t inference_samples = 1000;
  std::uint64_t seed = 42;
};

class Cobayn {
 public:
  /// Borrows the full flag space (binarized internally) and copies the
  /// architecture the corpus is measured on.
  Cobayn(const flags::FlagSpace& space, machine::Architecture arch,
         CobaynOptions options = {});

  /// Generates the corpus, measures it, and learns the three models.
  void train();
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Infers flags for the evaluator's program: samples
  /// `inference_samples` CVs from the matched cluster's posterior,
  /// evaluates them, reports the best (paper protocol).
  [[nodiscard]] core::TuningResult infer(core::Evaluator& evaluator,
                                         CobaynModel model,
                                         double baseline_seconds);

  /// Milepost-like static features (weighted by O3 runtime shares).
  [[nodiscard]] static std::vector<double> static_features(
      const ir::Program& program);
  /// MICA-like dynamic features from a SERIAL execution view:
  /// unweighted module statistics (a serial run does not reproduce the
  /// OpenMP-weighted time distribution).
  [[nodiscard]] static std::vector<double> dynamic_features(
      const ir::Program& program);

  /// Per-flag P(non-default) of a cluster (exposed for tests).
  [[nodiscard]] const std::vector<std::vector<double>>& cluster_probs(
      CobaynModel model) const;

 private:
  struct ModelData {
    std::vector<std::vector<double>> centroids;
    std::vector<std::vector<double>> flag_probs;  ///< per cluster
  };

  [[nodiscard]] std::vector<double> features_for(const ir::Program& program,
                                                 CobaynModel model) const;
  void learn_model(CobaynModel model,
                   const std::vector<std::vector<double>>& features,
                   const std::vector<std::vector<double>>& program_probs);
  [[nodiscard]] const ModelData& data(CobaynModel model) const;

  const flags::FlagSpace* space_;
  flags::FlagSpace binary_space_;
  machine::Architecture arch_;
  CobaynOptions options_;
  bool trained_ = false;
  ModelData static_model_;
  ModelData dynamic_model_;
  ModelData hybrid_model_;
};

}  // namespace ft::baselines
