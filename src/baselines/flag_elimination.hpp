// Iterative greedy flag elimination (paper §4.4.1): identifies the
// performance-critical flags of a tuned CV. Each iteration tries to
// reset one flag of the focused CV to its default while keeping every
// other module's CV intact; if program performance does not degrade,
// the flag is removed. Repeats until no flag can be eliminated. The
// surviving non-default flags are the "critical" ones reported in the
// Cloverleaf case study.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.hpp"

namespace ft::baselines {

struct CriticalFlags {
  flags::CompilationVector reduced_cv;
  std::vector<std::string> critical;  ///< surviving non-default flags
  std::size_t evaluations = 0;
};

/// Reduces the CV of module `focus_loop_index` (index into the
/// program's loops; pass SIZE_MAX for the non-loop module) within
/// `assignment`. `tolerance` is the allowed relative slowdown before a
/// flag is considered performance-critical.
[[nodiscard]] CriticalFlags eliminate_noncritical_flags(
    core::Evaluator& evaluator, const flags::FlagSpace& space,
    const compiler::ModuleAssignment& assignment,
    std::size_t focus_loop_index, double tolerance = 0.004,
    int repetitions = 3);

}  // namespace ft::baselines
