// The individual search techniques of the OpenTuner-style ensemble,
// exposed for unit testing and for users composing their own
// ensembles. Each implements SearchTechnique: propose one CV per turn,
// observe the measured result of its own proposal.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "baselines/opentuner.hpp"

namespace ft::baselines::techniques {

/// Uniform random sampling - the ensemble's exploration floor.
class RandomTechnique final : public SearchTechnique {
 public:
  const char* name() const noexcept override { return "Random"; }
  flags::CompilationVector propose(
      const flags::FlagSpace& space, support::Rng& rng,
      const flags::CompilationVector& /*global_best*/) override {
    return space.sample(rng);
  }
  void feedback(const flags::CompilationVector&, double, bool) override {}
};

/// Differential evolution over option indices.
class DifferentialEvolution final : public SearchTechnique {
 public:
  explicit DifferentialEvolution(std::size_t population = 20,
                                 double crossover = 0.5)
      : population_size_(population), crossover_(crossover) {}

  const char* name() const noexcept override { return "DE"; }

  flags::CompilationVector propose(
      const flags::FlagSpace& space, support::Rng& rng,
      const flags::CompilationVector& global_best) override {
    if (population_.size() < population_size_) {
      pending_ = space.sample(rng);
      pending_slot_ = population_.size();
      return pending_;
    }
    // Classic DE/best/1: best + F * (a - b), per-flag on indices.
    const std::size_t a = rng.next_below(population_.size());
    const std::size_t b = rng.next_below(population_.size());
    pending_slot_ = rng.next_below(population_.size());
    flags::CompilationVector trial = global_best;
    for (std::size_t i = 0; i < space.flag_count(); ++i) {
      if (!rng.bernoulli(crossover_)) {
        trial.set(i, population_[pending_slot_].cv[i]);
        continue;
      }
      const int option_count =
          static_cast<int>(space.specs()[i].options.size());
      const int diff = static_cast<int>(population_[a].cv[i]) -
                       static_cast<int>(population_[b].cv[i]);
      int value = static_cast<int>(global_best[i]) + diff;
      value = std::clamp(value, 0, option_count - 1);
      trial.set(i, static_cast<std::uint8_t>(value));
    }
    pending_ = trial;
    return trial;
  }

  void feedback(const flags::CompilationVector& cv, double seconds,
                bool) override {
    if (population_.size() < population_size_) {
      population_.push_back({cv, seconds});
      return;
    }
    if (seconds < population_[pending_slot_].seconds) {
      population_[pending_slot_] = {cv, seconds};
    }
  }

 private:
  struct Member {
    flags::CompilationVector cv;
    double seconds;
  };
  std::size_t population_size_;
  double crossover_;
  std::vector<Member> population_;
  flags::CompilationVector pending_;
  std::size_t pending_slot_ = 0;
};

/// Torczon-style pattern search: mutate the incumbent; expand the
/// number of simultaneous flag moves on success, contract on failure.
class TorczonHillClimber final : public SearchTechnique {
 public:
  const char* name() const noexcept override { return "Torczon"; }

  flags::CompilationVector propose(
      const flags::FlagSpace& space, support::Rng& rng,
      const flags::CompilationVector& global_best) override {
    if (incumbent_.empty()) incumbent_ = global_best;
    flags::CompilationVector candidate = incumbent_;
    for (std::size_t m = 0; m < step_; ++m) {
      candidate = space.mutate(candidate, rng);
    }
    pending_ = candidate;
    return candidate;
  }

  void feedback(const flags::CompilationVector& cv, double seconds,
                bool) override {
    if (incumbent_seconds_ == std::numeric_limits<double>::infinity() ||
        seconds < incumbent_seconds_) {
      incumbent_ = cv;
      incumbent_seconds_ = seconds;
      step_ = std::min<std::size_t>(step_ * 2, 8);  // expand
    } else {
      step_ = std::max<std::size_t>(step_ / 2, 1);  // contract
    }
  }

 private:
  flags::CompilationVector incumbent_;
  double incumbent_seconds_ = std::numeric_limits<double>::infinity();
  flags::CompilationVector pending_;
  std::size_t step_ = 2;
};

/// Discrete Nelder-Mead flavour: keeps a small simplex of
/// configurations and reflects the worst vertex through the centroid
/// (per-flag rounded), shrinking toward the best on failure.
class NelderMeadDiscrete final : public SearchTechnique {
 public:
  explicit NelderMeadDiscrete(std::size_t vertices = 8)
      : vertex_count_(vertices) {}

  const char* name() const noexcept override { return "NelderMead"; }

  flags::CompilationVector propose(
      const flags::FlagSpace& space, support::Rng& rng,
      const flags::CompilationVector& global_best) override {
    if (simplex_.size() < vertex_count_) {
      pending_is_init_ = true;
      return space.sample(rng);
    }
    pending_is_init_ = false;
    // Worst vertex and the centroid of the rest.
    worst_ = 0;
    for (std::size_t v = 1; v < simplex_.size(); ++v) {
      if (simplex_[v].seconds > simplex_[worst_].seconds) worst_ = v;
    }
    flags::CompilationVector reflected = global_best;
    for (std::size_t i = 0; i < space.flag_count(); ++i) {
      double centroid = 0.0;
      for (std::size_t v = 0; v < simplex_.size(); ++v) {
        if (v == worst_) continue;
        centroid += simplex_[v].cv[i];
      }
      centroid /= static_cast<double>(simplex_.size() - 1);
      const int option_count =
          static_cast<int>(space.specs()[i].options.size());
      // Reflection: c + (c - worst), rounded and clamped.
      int value = static_cast<int>(
          std::lround(2.0 * centroid -
                      static_cast<double>(simplex_[worst_].cv[i])));
      value = std::clamp(value, 0, option_count - 1);
      reflected.set(i, static_cast<std::uint8_t>(value));
    }
    if (reflected == simplex_[worst_].cv) {
      reflected = space.mutate(reflected, rng);
    }
    return reflected;
  }

  void feedback(const flags::CompilationVector& cv, double seconds,
                bool) override {
    if (pending_is_init_ || simplex_.size() < vertex_count_) {
      simplex_.push_back({cv, seconds});
      return;
    }
    if (seconds < simplex_[worst_].seconds) {
      simplex_[worst_] = {cv, seconds};
    }
  }

 private:
  struct Vertex {
    flags::CompilationVector cv;
    double seconds;
  };
  std::size_t vertex_count_;
  std::vector<Vertex> simplex_;
  std::size_t worst_ = 0;
  bool pending_is_init_ = true;
};

/// Steady-state genetic algorithm: tournament-selected parents, uniform
/// crossover, light mutation; the child replaces the tournament loser.
class GeneticAlgorithm final : public SearchTechnique {
 public:
  explicit GeneticAlgorithm(std::size_t population = 24)
      : population_size_(population) {}

  const char* name() const noexcept override { return "GA"; }

  flags::CompilationVector propose(
      const flags::FlagSpace& space, support::Rng& rng,
      const flags::CompilationVector& /*global_best*/) override {
    if (population_.size() < population_size_) {
      replace_slot_ = population_.size();
      return space.sample(rng);
    }
    const std::size_t a = tournament(rng);
    const std::size_t b = tournament(rng);
    replace_slot_ = population_[a].seconds > population_[b].seconds ? a : b;
    flags::CompilationVector child = population_[a].cv;
    for (std::size_t i = 0; i < space.flag_count(); ++i) {
      if (rng.bernoulli(0.5)) child.set(i, population_[b].cv[i]);
    }
    if (rng.bernoulli(0.3)) child = space.mutate(child, rng);
    return child;
  }

  void feedback(const flags::CompilationVector& cv, double seconds,
                bool) override {
    if (population_.size() < population_size_) {
      population_.push_back({cv, seconds});
      return;
    }
    if (seconds < population_[replace_slot_].seconds) {
      population_[replace_slot_] = {cv, seconds};
    }
  }

 private:
  struct Member {
    flags::CompilationVector cv;
    double seconds;
  };

  std::size_t tournament(support::Rng& rng) const {
    const std::size_t a = rng.next_below(population_.size());
    const std::size_t b = rng.next_below(population_.size());
    return population_[a].seconds < population_[b].seconds ? a : b;
  }

  std::size_t population_size_;
  std::vector<Member> population_;
  std::size_t replace_slot_ = 0;
};

/// Simulated annealing around an incumbent with a geometric cooling
/// schedule; worse moves are accepted with Boltzmann probability.
class SimulatedAnnealing final : public SearchTechnique {
 public:
  const char* name() const noexcept override { return "Annealing"; }

  flags::CompilationVector propose(
      const flags::FlagSpace& space, support::Rng& rng,
      const flags::CompilationVector& global_best) override {
    if (incumbent_.empty()) incumbent_ = global_best;
    flags::CompilationVector candidate = space.mutate(incumbent_, rng);
    if (temperature_ > 0.02) candidate = space.mutate(candidate, rng);
    accept_draw_ = rng.uniform();
    return candidate;
  }

  void feedback(const flags::CompilationVector& cv, double seconds,
                bool) override {
    if (incumbent_seconds_ == std::numeric_limits<double>::infinity()) {
      incumbent_ = cv;
      incumbent_seconds_ = seconds;
      return;
    }
    const double delta =
        (seconds - incumbent_seconds_) / incumbent_seconds_;
    if (delta < 0.0 ||
        accept_draw_ < std::exp(-delta / std::max(temperature_, 1e-6))) {
      incumbent_ = cv;
      incumbent_seconds_ = seconds;
    }
    temperature_ *= 0.995;  // cool
  }

 private:
  flags::CompilationVector incumbent_;
  double incumbent_seconds_ = std::numeric_limits<double>::infinity();
  double temperature_ = 0.05;
  double accept_draw_ = 0.0;
};


}  // namespace ft::baselines::techniques
