// OpenTuner-style per-program ensemble search (Ansel et al., PACT'14):
// several search techniques (differential evolution, Torczon hill
// climbing, discrete Nelder-Mead-style simplex moves, uniform random)
// run under an AUC-bandit meta-technique that allocates each test
// iteration to the technique with the best recent record (§4.2.1 of the
// paper runs OpenTuner for 1000 test iterations on the same CV space).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/search.hpp"
#include "flags/flag_space.hpp"
#include "support/rng.hpp"

namespace ft::baselines {

/// One member of the ensemble. Techniques share the global best and
/// propose one configuration per turn.
class SearchTechnique {
 public:
  virtual ~SearchTechnique() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// Proposes the next CV to test.
  [[nodiscard]] virtual flags::CompilationVector propose(
      const flags::FlagSpace& space, support::Rng& rng,
      const flags::CompilationVector& global_best) = 0;
  /// Observes the measured result of its own proposal.
  virtual void feedback(const flags::CompilationVector& cv, double seconds,
                        bool improved_global) = 0;
};

struct OpenTunerOptions {
  std::size_t iterations = 1000;
  std::uint64_t seed = 42;
  std::size_t bandit_window = 50;  ///< sliding window for AUC credit
  double exploration = 1.4;        ///< UCB exploration constant
};

struct OpenTunerResult {
  core::TuningResult tuning;             ///< algorithm = "OpenTuner"
  std::vector<std::string> technique_names;
  std::vector<std::size_t> technique_uses;  ///< bandit allocation counts
};

/// Runs the ensemble for `options.iterations` evaluations.
[[nodiscard]] OpenTunerResult opentuner_search(core::Evaluator& evaluator,
                                               const flags::FlagSpace& space,
                                               const OpenTunerOptions& options,
                                               double baseline_seconds);

}  // namespace ft::baselines
