#include "baselines/flag_elimination.hpp"

#include <limits>

namespace ft::baselines {

CriticalFlags eliminate_noncritical_flags(
    core::Evaluator& evaluator, const flags::FlagSpace& space,
    const compiler::ModuleAssignment& assignment,
    std::size_t focus_loop_index, double tolerance, int repetitions) {
  CriticalFlags result;
  compiler::ModuleAssignment working = assignment;

  auto focused_cv = [&]() -> flags::CompilationVector& {
    if (focus_loop_index == std::numeric_limits<std::size_t>::max()) {
      return working.nonloop_cv;
    }
    return working.loop_cvs[focus_loop_index];
  };

  auto measure = [&]() {
    core::EvalRequest request;
    request.assignment = working;
    request.repetitions = repetitions;
    // Phase-wide noise stream, decorrelated from the searches by the
    // rep_streams offset and per-variant by the executable fingerprint.
    request.rep_base = core::rep_streams::kFlagElimination;
    // A failed measurement scores +inf: the flag under test looks
    // critical and stays, which is the conservative choice.
    return evaluator.evaluate(request).seconds();
  };
  double current_seconds = measure();
  ++result.evaluations;

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < space.flag_count(); ++i) {
      if (focused_cv()[i] == 0) continue;  // already default
      const std::uint8_t saved = focused_cv()[i];
      focused_cv().set(i, 0);
      const double seconds = measure();
      ++result.evaluations;
      if (seconds <= current_seconds * (1.0 + tolerance)) {
        current_seconds = std::min(seconds, current_seconds);
        changed = true;  // flag removed; rescan remaining flags
      } else {
        focused_cv().set(i, saved);  // critical: keep it
      }
    }
  }

  result.reduced_cv = focused_cv();
  for (std::size_t i = 0; i < space.flag_count(); ++i) {
    if (result.reduced_cv[i] != 0) {
      result.critical.push_back(
          space.specs()[i].options[result.reduced_cv[i]].text);
    }
  }
  return result;
}

}  // namespace ft::baselines
