#include "baselines/pgo_driver.hpp"

namespace ft::baselines {

PgoResult pgo_tune(core::Evaluator& evaluator, double baseline_seconds) {
  PgoResult result;
  machine::ExecutionEngine& engine = evaluator.engine();
  const ir::Program& program = engine.program();
  result.tuning.algorithm = "PGO";
  result.tuning.baseline_seconds = baseline_seconds;

  if (program.pgo_instrumentation_fails()) {
    // -prof-gen build crashes (as the paper observed for LULESH and
    // Optewe): fall back to the O3 binary.
    result.instrumentation_failed = true;
    result.tuning.tuned_seconds = baseline_seconds;
    result.tuning.speedup = 1.0;
    result.tuning.evaluations = 0;
    return result;
  }

  // Instrumented run on the tuning input (counts as one evaluation of
  // tuning overhead)...
  compiler::Compiler& compiler = engine.compiler();
  const flags::CompilationVector o3 = compiler.space().default_cv();
  const compiler::Executable instrumented =
      compiler.build_uniform(program, o3);
  machine::RunOptions profile_run;
  profile_run.instrumented = true;
  (void)engine.run(instrumented, evaluator.input(), profile_run);

  // ...then recompile with the profile feeding the heuristics.
  compiler::PgoProfile profile;
  profile.valid = true;
  const compiler::Executable optimized =
      compiler.build_uniform(program, o3, &profile);
  machine::RunOptions final_run;
  final_run.repetitions = 10;
  final_run.rep_base = 1u << 20;
  result.tuning.tuned_seconds =
      engine.run(optimized, evaluator.input(), final_run).end_to_end;
  result.tuning.speedup = baseline_seconds / result.tuning.tuned_seconds;
  result.tuning.evaluations = 1;
  return result;
}

}  // namespace ft::baselines
