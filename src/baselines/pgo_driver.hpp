// Intel-compiler-style profile-guided optimization (PGO) baseline
// (paper §4.2.1): an instrumented -prof-gen build runs the tuning
// input to collect trip counts / call targets, then the program is
// recompiled -prof-use at O3 with the profile feeding the heuristics.
// The paper observes the instrumentation run FAILS for LULESH and
// Optewe; the corresponding workload models carry that property.
#pragma once

#include "core/evaluator.hpp"
#include "core/search.hpp"

namespace ft::baselines {

struct PgoResult {
  bool instrumentation_failed = false;
  core::TuningResult tuning;  ///< speedup == 1 when instrumentation fails
};

[[nodiscard]] PgoResult pgo_tune(core::Evaluator& evaluator,
                                 double baseline_seconds);

}  // namespace ft::baselines
