#include "baselines/combined_elimination.hpp"

#include <algorithm>

namespace ft::baselines {

namespace {

/// Maps a binarized-space CV back into the full space so the evaluator
/// (which decodes with the original FlagSpace) sees the right options.
/// Option index k in the binary space is option index k in the full
/// space by construction (binarized() keeps options[0..1]).
flags::CompilationVector widen(const flags::CompilationVector& cv) {
  return cv;  // indices coincide; sizes match (one entry per flag)
}

}  // namespace

CeResult combined_elimination(core::Evaluator& evaluator,
                              const flags::FlagSpace& space,
                              double baseline_seconds, std::uint64_t seed) {
  // Noise streams are content-addressed now; the seed only kept the old
  // per-call rep counter distinct and no longer influences results.
  (void)seed;
  const flags::FlagSpace binary = space.binarized();
  const std::size_t flag_count = binary.flag_count();
  const std::size_t loop_count =
      evaluator.engine().program().loops().size();

  // One phase-wide noise stream (content-addressed per CV), so CE's
  // many re-measurements of the same configuration memoize.
  auto measure = [&](const flags::CompilationVector& cv) {
    core::EvalRequest request;
    request.assignment =
        compiler::ModuleAssignment::uniform(widen(cv), loop_count);
    request.rep_base = core::rep_streams::kCombinedElimination;
    return evaluator.evaluate(request).seconds();
  };

  CeResult result;
  result.baseline_seconds = baseline_seconds;

  // B = all binary flags at their non-default ("on") option.
  flags::CompilationVector current(
      std::vector<std::uint8_t>(flag_count, 1));
  // Flags whose spec only has one option stay at 0.
  for (std::size_t i = 0; i < flag_count; ++i) {
    if (binary.specs()[i].options.size() < 2) current.set(i, 0);
  }
  double current_seconds = measure(current);
  std::size_t evaluations = 1;

  std::vector<bool> eliminated(flag_count, false);
  for (;;) {
    // Measure the RIP of turning each remaining flag off.
    std::vector<std::pair<double, std::size_t>> improving;  // (rip, flag)
    for (std::size_t i = 0; i < flag_count; ++i) {
      if (eliminated[i] || current[i] == 0) continue;
      flags::CompilationVector candidate = current;
      candidate.set(i, 0);
      const double seconds = measure(candidate);
      ++evaluations;
      const double rip = (seconds - current_seconds) / current_seconds;
      if (rip < 0.0) improving.emplace_back(rip, i);
    }
    if (improving.empty()) break;

    // Remove the most harmful flag unconditionally, then consider the
    // others in RIP order, keeping each removal only if it still helps
    // in combination (the "combined" part of CE).
    std::sort(improving.begin(), improving.end());
    bool first = true;
    for (const auto& [rip, flag] : improving) {
      flags::CompilationVector candidate = current;
      candidate.set(flag, 0);
      if (first) {
        const double seconds = measure(candidate);
        ++evaluations;
        current = candidate;
        current_seconds = seconds;
        eliminated[flag] = true;
        first = false;
        continue;
      }
      const double seconds = measure(candidate);
      ++evaluations;
      if (seconds < current_seconds) {
        current = candidate;
        current_seconds = seconds;
        eliminated[flag] = true;
      }
    }
  }

  result.best_cv = current;
  result.evaluations = evaluations;
  result.tuned_seconds = evaluator.final_seconds(
      compiler::ModuleAssignment::uniform(widen(current), loop_count));
  result.speedup = baseline_seconds / result.tuned_seconds;
  for (std::size_t i = 0; i < flag_count; ++i) {
    if (current[i] != 0) {
      result.enabled_flags.push_back(binary.specs()[i].name);
    }
  }
  return result;
}

}  // namespace ft::baselines
