#include "service/fallback.hpp"

#include <utility>

#include "machine/architecture.hpp"
#include "programs/benchmarks.hpp"
#include "telemetry/metrics.hpp"

namespace ft::service {

LocalFallbackBackend::LocalFallbackBackend(
    std::shared_ptr<core::EvalBackend> primary, WorkspaceSpec workspace)
    : primary_(std::move(primary)), workspace_(std::move(workspace)) {}

LocalFallbackBackend::~LocalFallbackBackend() = default;

bool LocalFallbackBackend::degradable(const std::string& code) noexcept {
  // Transport-class and availability-class codes only. Anything else
  // (bad_request, unknown_program, remote_fault...) would fail locally
  // too, or signals a real bug that must surface, not be papered over.
  return code == "io" || code == "timeout" || code == "connect" ||
         code == "fleet" || code == "draining" || code == "overloaded" ||
         code == "deadline";
}

core::Evaluator& LocalFallbackBackend::local_locked() {
  if (!local_) {
    // Mirror Server::workspace_for: only the measurement-relevant
    // option subset, Evaluator cache off (caching belongs to the
    // CALLING Evaluator's bookkeeping, exactly as with a daemon).
    core::FuncyTunerOptions options;
    options.seed = workspace_.options.seed;
    options.noise_sigma_rel = workspace_.options.noise_sigma_rel;
    options.attribution_sigma = workspace_.options.attribution_sigma;
    options.faults = workspace_.options.faults;
    options.eval_cache = false;
    local_ = std::make_unique<core::FuncyTuner>(
        programs::by_name(workspace_.program),
        machine::architecture_by_name(workspace_.arch), options,
        workspace_.personality);
    telemetry::metrics().counter("fleet.fallback.engines").add();
  }
  return local_->evaluator();
}

core::EvalBackend::RawResult LocalFallbackBackend::run(
    const compiler::ModuleAssignment& assignment,
    const machine::RunOptions& options) {
  if (primary_) {
    try {
      RawResult result = primary_->run(assignment, options);
      std::lock_guard lock(mutex_);
      if (degraded_last_call_) {
        degraded_last_call_ = false;
        ++stats_.primary_recoveries;
        telemetry::metrics().counter("fleet.fallback.recoveries").add();
      }
      return result;
    } catch (const ServiceError& error) {
      if (!degradable(error.code())) throw;
    }
  }
  std::lock_guard lock(mutex_);
  degraded_last_call_ = true;
  ++stats_.fallback_runs;
  telemetry::metrics().counter("fleet.fallback.runs").add();
  return local_locked().raw_run(assignment, options);
}

std::vector<core::EvalBackend::RawResult>
LocalFallbackBackend::run_many(
    std::span<const core::EvalRequest> requests) {
  if (primary_) {
    try {
      std::vector<RawResult> results = primary_->run_many(requests);
      std::lock_guard lock(mutex_);
      if (degraded_last_call_) {
        degraded_last_call_ = false;
        ++stats_.primary_recoveries;
        telemetry::metrics().counter("fleet.fallback.recoveries").add();
      }
      return results;
    } catch (const ServiceError& error) {
      if (!degradable(error.code())) throw;
    }
  }
  // Whole-batch fallback: raw runs are deterministic, so serving the
  // batch locally yields the same bytes the fleet would have produced.
  std::lock_guard lock(mutex_);
  degraded_last_call_ = true;
  ++stats_.fallback_batches;
  stats_.fallback_evals += requests.size();
  telemetry::metrics().counter("fleet.fallback.batches").add();
  telemetry::metrics().counter("fleet.fallback.evals").add(requests.size());
  core::Evaluator& evaluator = local_locked();
  std::vector<RawResult> results;
  results.reserve(requests.size());
  for (const core::EvalRequest& request : requests) {
    results.push_back(
        evaluator.raw_run(request.assignment, request.run_options()));
  }
  return results;
}

LocalFallbackBackend::Stats LocalFallbackBackend::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace ft::service
