#include "service/protocol.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "service/binary.hpp"
#include "support/serialization.hpp"

namespace ft::service {

namespace {

/// %.17g round-trips every finite double bit-exactly - the reason a
/// remote measurement is indistinguishable from a local one.
std::string fmt_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (byte < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", byte);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_u64(std::ostringstream& oss, const char* name,
                std::uint64_t value) {
  oss << '"' << name << "\":\"" << value << '"';
}

const char* aggregation_name(machine::Aggregation aggregate) {
  switch (aggregate) {
    case machine::Aggregation::kMean:
      return "mean";
    case machine::Aggregation::kMedian:
      return "median";
    case machine::Aggregation::kTrimmedMean:
      return "trimmed";
  }
  return "mean";
}

bool aggregation_from_name(const std::string& name,
                           machine::Aggregation* out) {
  if (name == "mean") {
    *out = machine::Aggregation::kMean;
  } else if (name == "median") {
    *out = machine::Aggregation::kMedian;
  } else if (name == "trimmed") {
    *out = machine::Aggregation::kTrimmedMean;
  } else {
    return false;
  }
  return true;
}

const char* served_name(core::EvalServedBy served) {
  switch (served) {
    case core::EvalServedBy::kRun:
      return "run";
    case core::EvalServedBy::kCacheHit:
      return "cache";
    case core::EvalServedBy::kJournalReplay:
      return "journal";
  }
  return "run";
}

bool served_from_name(const std::string& name,
                      core::EvalServedBy* out) {
  if (name == "run") {
    *out = core::EvalServedBy::kRun;
  } else if (name == "cache") {
    *out = core::EvalServedBy::kCacheHit;
  } else if (name == "journal") {
    *out = core::EvalServedBy::kJournalReplay;
  } else {
    return false;
  }
  return true;
}

void append_cv(std::ostringstream& oss,
               const flags::CompilationVector& cv) {
  oss << '[';
  for (std::size_t i = 0; i < cv.size(); ++i) {
    if (i) oss << ',';
    oss << static_cast<unsigned>(cv[i]);
  }
  oss << ']';
}

bool parse_cv(const support::JsonValue& value,
              flags::CompilationVector* out, std::string* error) {
  if (!value.is_array()) {
    *error = "compilation vector is not an array";
    return false;
  }
  std::vector<std::uint8_t> choices;
  choices.reserve(value.array().size());
  for (const support::JsonValue& item : value.array()) {
    if (!item.is_number() || item.number() < 0 ||
        item.number() > 255 ||
        item.number() != std::floor(item.number())) {
      *error = "compilation vector entry is not a byte";
      return false;
    }
    choices.push_back(static_cast<std::uint8_t>(item.number()));
  }
  *out = flags::CompilationVector(std::move(choices));
  return true;
}

bool fail(std::string* error, const char* reason) {
  *error = reason;
  return false;
}

/// JSON form of a Capabilities set (archs stay a top-level welcome
/// member for wire compatibility with pre-negotiation peers; the
/// binary codec carries them inside caps).
void append_caps(std::ostringstream& oss, const Capabilities& caps) {
  oss << "\"caps\":{\"protocol\":" << caps.protocol << ",\"framings\":[";
  for (std::size_t i = 0; i < caps.framings.size(); ++i) {
    if (i) oss << ',';
    oss << '"' << framing_name(caps.framings[i]) << '"';
  }
  oss << "],";
  append_u64(oss, "max_frame", caps.max_frame_bytes);
  oss << '}';
}

/// Merges an optional "caps" member into *out. Tolerant by design:
/// unknown keys, unknown framing names and wrongly-typed members are
/// skipped, never fatal - that is what lets a newer peer talk to this
/// build. A caps member that is not an object is ignored wholesale.
void parse_caps(const support::JsonValue& frame, Capabilities* out) {
  const support::JsonValue* caps = frame.find("caps");
  if (caps == nullptr || !caps->is_object()) return;
  std::int64_t protocol = 0;
  if (caps->get("protocol", &protocol)) {
    out->protocol = static_cast<int>(protocol);
  }
  const support::JsonValue* framings = caps->find("framings");
  if (framings != nullptr && framings->is_array()) {
    std::vector<Framing> parsed;
    for (const support::JsonValue& name : framings->array()) {
      Framing framing = Framing::kJson;
      if (name.is_string() &&
          framing_from_name(name.string(), &framing)) {
        parsed.push_back(framing);
      }
    }
    if (!parsed.empty()) out->framings = std::move(parsed);
  }
  std::uint64_t max_frame = 0;
  if (caps->get("max_frame", &max_frame) && max_frame > 0) {
    out->max_frame_bytes = max_frame;
  }
}

}  // namespace

const char* framing_name(Framing framing) {
  switch (framing) {
    case Framing::kJson:
      return "json";
    case Framing::kBinary:
      return "binary";
    case Framing::kBinaryCrc:
      return "binary-crc32";
  }
  return "json";
}

bool framing_from_name(std::string_view name, Framing* out) {
  if (name == "json") {
    *out = Framing::kJson;
    return true;
  }
  if (name == "binary") {
    *out = Framing::kBinary;
    return true;
  }
  if (name == "binary-crc32") {
    *out = Framing::kBinaryCrc;
    return true;
  }
  return false;
}

Framing negotiate_framing(const std::vector<Framing>& client_order,
                          const std::vector<Framing>& server_supported) {
  for (const Framing preference : client_order) {
    if (preference == Framing::kJson) return Framing::kJson;
    if (std::find(server_supported.begin(), server_supported.end(),
                  preference) != server_supported.end()) {
      return preference;
    }
  }
  return Framing::kJson;
}

namespace {

/// Restores default-constructed Capabilities without the temporary a
/// `caps = Capabilities{}` would build (whose {kJson} initializer
/// allocates a fresh vector - the enemy of reset()'s zero-allocation
/// promise).
void reset_caps(Capabilities* caps) {
  caps->protocol = kProtocolVersion;
  caps->framings.clear();
  caps->framings.push_back(Framing::kJson);
  caps->max_frame_bytes = kDefaultMaxFrameBytes;
  caps->archs.clear();
}

}  // namespace

void AnyFrame::reset() {
  // Member-wise clears (not `member = Member{}`) so every string and
  // vector keeps its high-water capacity: a session's steady-state
  // decode path must not allocate.
  kind = FrameKind::kBye;
  seq = 0;
  hello.program.clear();
  hello.arch.clear();
  hello.personality = "icc";
  hello.options = core::FuncyTunerOptions{};  // scalars only
  reset_caps(&hello.caps);
  welcome.server = "ftuned";
  welcome.session = 0;
  welcome.max_batch = 0;
  welcome.framing = Framing::kJson;
  reset_caps(&welcome.caps);
  error.code.clear();
  error.detail.clear();
  error.seq = 0;
  error.retryable = false;
  error.fatal = false;
  requests.clear();
  responses.clear();
}

std::string frame_type(const support::JsonValue& frame) {
  std::string type;
  if (!frame.is_object() || !frame.get("type", &type)) return "";
  return type;
}

std::uint64_t frame_seq(const support::JsonValue& frame) {
  std::uint64_t seq = 0;
  if (!frame.is_object() || !frame.get("seq", &seq)) return 0;
  return seq;
}

std::string encode_hello(const HelloFrame& hello) {
  const machine::FaultConfig& faults = hello.options.faults;
  std::ostringstream oss;
  oss << "{\"type\":\"hello\"," << support::schema_version_field()
      << ",\"protocol\":" << hello.caps.protocol << ",\"program\":\""
      << json_escape(hello.program) << "\",\"arch\":\""
      << json_escape(hello.arch) << "\",\"personality\":\""
      << json_escape(hello.personality) << "\",";
  append_caps(oss, hello.caps);
  oss << ",\"options\":{";
  append_u64(oss, "seed", hello.options.seed);
  oss << ",\"noise_sigma\":" << fmt_double(hello.options.noise_sigma_rel)
      << ",\"attribution_sigma\":"
      << fmt_double(hello.options.attribution_sigma)
      << ",\"faults\":{\"rate\":" << fmt_double(faults.rate) << ',';
  append_u64(oss, "seed", faults.seed);
  oss << ",\"compile_share\":" << fmt_double(faults.compile_share)
      << ",\"crash_share\":" << fmt_double(faults.crash_share)
      << ",\"timeout_share\":" << fmt_double(faults.timeout_share)
      << ",\"outlier_rate\":" << fmt_double(faults.outlier_rate)
      << ",\"outlier_min_scale\":" << fmt_double(faults.outlier_min_scale)
      << ",\"outlier_max_scale\":" << fmt_double(faults.outlier_max_scale)
      << "}}}";
  return oss.str();
}

bool decode_hello(const support::JsonValue& frame, HelloFrame* out,
                  std::string* error) {
  if (!frame.is_object()) return fail(error, "hello is not an object");
  std::int64_t protocol = 0;
  if (!frame.get("protocol", &protocol)) {
    return fail(error, "hello lacks a protocol version");
  }
  // The legacy top-level member is the base; an explicit caps object
  // (absent from pre-negotiation clients) refines it.
  out->caps = Capabilities{};
  out->caps.protocol = static_cast<int>(protocol);
  parse_caps(frame, &out->caps);
  if (!frame.get("program", &out->program) || out->program.empty()) {
    return fail(error, "hello lacks a program name");
  }
  if (!frame.get("arch", &out->arch) || out->arch.empty()) {
    return fail(error, "hello lacks an architecture name");
  }
  if (!frame.get("personality", &out->personality) ||
      (out->personality != "icc" && out->personality != "gcc")) {
    return fail(error, "hello personality must be icc or gcc");
  }
  const support::JsonValue* options = frame.find("options");
  if (options == nullptr || !options->is_object()) {
    return fail(error, "hello lacks an options object");
  }
  if (!options->get("seed", &out->options.seed) ||
      !options->get("noise_sigma", &out->options.noise_sigma_rel) ||
      !options->get("attribution_sigma",
                    &out->options.attribution_sigma)) {
    return fail(error, "hello options are incomplete");
  }
  const support::JsonValue* faults = options->find("faults");
  if (faults == nullptr || !faults->is_object()) {
    return fail(error, "hello options lack a faults object");
  }
  machine::FaultConfig& config = out->options.faults;
  if (!faults->get("rate", &config.rate) ||
      !faults->get("seed", &config.seed) ||
      !faults->get("compile_share", &config.compile_share) ||
      !faults->get("crash_share", &config.crash_share) ||
      !faults->get("timeout_share", &config.timeout_share) ||
      !faults->get("outlier_rate", &config.outlier_rate) ||
      !faults->get("outlier_min_scale", &config.outlier_min_scale) ||
      !faults->get("outlier_max_scale", &config.outlier_max_scale)) {
    return fail(error, "hello fault config is incomplete");
  }
  return true;
}

std::string encode_welcome(const WelcomeFrame& welcome) {
  std::ostringstream oss;
  oss << "{\"type\":\"welcome\"," << support::schema_version_field()
      << ",\"server\":\"" << json_escape(welcome.server) << "\",";
  append_u64(oss, "session", welcome.session);
  oss << ",\"max_batch\":" << welcome.max_batch << ",\"framing\":\""
      << framing_name(welcome.framing) << "\",";
  append_caps(oss, welcome.caps);
  oss << ",\"archs\":[";
  for (std::size_t i = 0; i < welcome.caps.archs.size(); ++i) {
    if (i) oss << ',';
    oss << '"' << json_escape(welcome.caps.archs[i]) << '"';
  }
  oss << "]}";
  return oss.str();
}

bool decode_welcome(const support::JsonValue& frame, WelcomeFrame* out,
                    std::string* error) {
  if (!frame.is_object()) {
    return fail(error, "welcome is not an object");
  }
  std::uint64_t max_batch = 0;
  if (!frame.get("server", &out->server) ||
      !frame.get("session", &out->session) ||
      !frame.get("max_batch", &max_batch) || max_batch == 0) {
    return fail(error, "welcome frame is incomplete");
  }
  out->max_batch = static_cast<std::size_t>(max_batch);
  out->caps = Capabilities{};
  // Optional members: pre-fleet daemons sent no archs, and
  // pre-negotiation daemons sent no framing/caps (= JSON only).
  if (const support::JsonValue* archs = frame.find("archs")) {
    if (!archs->is_array()) return fail(error, "archs is not an array");
    for (const support::JsonValue& name : archs->array()) {
      if (!name.is_string()) return fail(error, "archs entry not a string");
      out->caps.archs.push_back(name.string());
    }
  }
  out->framing = Framing::kJson;
  std::string framing;
  if (frame.get("framing", &framing) &&
      !framing_from_name(framing, &out->framing)) {
    // Unlike an unknown name in a caps LIST (future option: skip), an
    // unknown name HERE is the server's binding choice for this
    // session - we cannot speak it, so the handshake must fail.
    return fail(error, "welcome names an unknown framing");
  }
  parse_caps(frame, &out->caps);
  return true;
}

std::string encode_error(const ErrorFrame& error) {
  std::ostringstream oss;
  oss << "{\"type\":\"error\",\"code\":\"" << json_escape(error.code)
      << "\",\"detail\":\"" << json_escape(error.detail) << "\",";
  append_u64(oss, "seq", error.seq);
  oss << ",\"retryable\":" << (error.retryable ? 1 : 0)
      << ",\"fatal\":" << (error.fatal ? 1 : 0) << '}';
  return oss.str();
}

bool decode_error(const support::JsonValue& frame, ErrorFrame* out) {
  if (!frame.is_object() || !frame.get("code", &out->code)) {
    return false;
  }
  (void)frame.get("detail", &out->detail);
  out->seq = frame_seq(frame);
  (void)frame.get("retryable", &out->retryable);
  (void)frame.get("fatal", &out->fatal);
  return true;
}

std::string eval_request_json(const core::EvalRequest& request) {
  std::ostringstream oss;
  oss << "{\"loops\":[";
  for (std::size_t j = 0; j < request.assignment.loop_cvs.size(); ++j) {
    if (j) oss << ',';
    append_cv(oss, request.assignment.loop_cvs[j]);
  }
  oss << "],\"nonloop\":";
  append_cv(oss, request.assignment.nonloop_cv);
  oss << ',';
  append_u64(oss, "rep", request.rep_base);
  oss << ",\"reps\":" << request.repetitions
      << ",\"instr\":" << (request.instrumented ? 1 : 0)
      << ",\"noise\":" << (request.noise ? 1 : 0) << ",\"agg\":\""
      << aggregation_name(request.aggregate) << "\"}";
  return oss.str();
}

bool parse_eval_request(const support::JsonValue& value,
                        core::EvalRequest* out, std::string* error) {
  if (!value.is_object()) {
    return fail(error, "request is not an object");
  }
  const support::JsonValue* loops = value.find("loops");
  if (loops == nullptr || !loops->is_array()) {
    return fail(error, "request lacks a loops array");
  }
  out->assignment.loop_cvs.clear();
  out->assignment.loop_cvs.reserve(loops->array().size());
  for (const support::JsonValue& loop : loops->array()) {
    flags::CompilationVector cv;
    if (!parse_cv(loop, &cv, error)) return false;
    out->assignment.loop_cvs.push_back(std::move(cv));
  }
  const support::JsonValue* nonloop = value.find("nonloop");
  if (nonloop == nullptr) {
    return fail(error, "request lacks a nonloop CV");
  }
  if (!parse_cv(*nonloop, &out->assignment.nonloop_cv, error)) {
    return false;
  }
  std::int64_t reps = 0;
  if (!value.get("rep", &out->rep_base) ||
      !value.get("reps", &reps) || reps < 1 || reps > 1000000) {
    return fail(error, "request rep/reps fields are malformed");
  }
  out->repetitions = static_cast<int>(reps);
  std::string aggregate;
  if (!value.get("instr", &out->instrumented) ||
      !value.get("noise", &out->noise) ||
      !value.get("agg", &aggregate) ||
      !aggregation_from_name(aggregate, &out->aggregate)) {
    return fail(error, "request instr/noise/agg fields are malformed");
  }
  return true;
}

std::string eval_response_json(const core::EvalResponse& response) {
  std::ostringstream oss;
  oss << "{\"ok\":" << (response.ok() ? 1 : 0) << ",\"served\":\""
      << served_name(response.served_by)
      << "\",\"attempts\":" << response.outcome.attempts
      << ",\"compiled\":" << response.modules_compiled;
  if (response.ok()) {
    // caliper_report is deliberately never serialized (it is bulky and
    // consumed only by the profiling phase, which always runs
    // locally); derived_nonloop_seconds is recomputed by the parser
    // exactly as the engine derives it.
    const machine::RunResult& result = response.outcome.result;
    oss << ",\"end\":" << fmt_double(result.end_to_end)
        << ",\"stddev\":" << fmt_double(result.stddev) << ",\"loops\":[";
    for (std::size_t j = 0; j < result.loop_seconds.size(); ++j) {
      if (j) oss << ',';
      oss << fmt_double(result.loop_seconds[j]);
    }
    oss << ']';
  } else {
    oss << ",\"fault\":\""
        << core::to_string(response.outcome.error.kind)
        << "\",\"detail\":\""
        << json_escape(response.outcome.error.detail) << '"';
  }
  oss << '}';
  return oss.str();
}

bool parse_eval_response(const support::JsonValue& value,
                         core::EvalResponse* out, std::string* error) {
  if (!value.is_object()) {
    return fail(error, "result is not an object");
  }
  bool ok = false;
  std::string served;
  std::int64_t attempts = 0;
  std::uint64_t compiled = 0;
  if (!value.get("ok", &ok) || !value.get("served", &served) ||
      !served_from_name(served, &out->served_by) ||
      !value.get("attempts", &attempts) ||
      !value.get("compiled", &compiled)) {
    return fail(error, "result frame is incomplete");
  }
  out->outcome.attempts = static_cast<int>(attempts);
  out->modules_compiled = static_cast<std::size_t>(compiled);
  if (!ok) {
    std::string fault;
    if (!value.get("fault", &fault)) {
      return fail(error, "failed result lacks a fault kind");
    }
    out->outcome.error.kind = core::eval_fault_from_string(fault);
    if (out->outcome.error.kind == core::EvalFault::kNone) {
      return fail(error, "failed result has an unknown fault kind");
    }
    (void)value.get("detail", &out->outcome.error.detail);
    return true;
  }
  out->outcome.error = core::EvalError{};
  machine::RunResult& result = out->outcome.result;
  if (!value.get("end", &result.end_to_end) ||
      !value.get("stddev", &result.stddev)) {
    return fail(error, "result lacks end/stddev measurements");
  }
  const support::JsonValue* loops = value.find("loops");
  if (loops == nullptr || !loops->is_array()) {
    return fail(error, "result lacks a loops array");
  }
  result.loop_seconds.clear();
  result.loop_seconds.reserve(loops->array().size());
  double loop_sum = 0.0;
  for (const support::JsonValue& loop : loops->array()) {
    if (!loop.is_number()) {
      return fail(error, "result loop entry is not a number");
    }
    result.loop_seconds.push_back(loop.number());
    loop_sum += loop.number();
  }
  // Not transmitted; recompute exactly as the engine (and the
  // checkpoint journal decoder) derive it.
  result.derived_nonloop_seconds = result.end_to_end - loop_sum;
  return true;
}

std::string encode_eval(std::uint64_t seq,
                        const core::EvalRequest& request) {
  std::ostringstream oss;
  oss << "{\"type\":\"eval\",";
  append_u64(oss, "seq", seq);
  oss << ",\"request\":" << eval_request_json(request) << '}';
  return oss.str();
}

std::string encode_eval_batch(
    std::uint64_t seq, std::span<const core::EvalRequest> requests) {
  std::ostringstream oss;
  oss << "{\"type\":\"eval_batch\",";
  append_u64(oss, "seq", seq);
  oss << ",\"requests\":[";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i) oss << ',';
    oss << eval_request_json(requests[i]);
  }
  oss << "]}";
  return oss.str();
}

std::string encode_result(std::uint64_t seq,
                          const core::EvalResponse& response) {
  std::ostringstream oss;
  oss << "{\"type\":\"result\",";
  append_u64(oss, "seq", seq);
  oss << ",\"result\":" << eval_response_json(response) << '}';
  return oss.str();
}

std::string encode_result_batch(
    std::uint64_t seq, std::span<const core::EvalResponse> responses) {
  std::ostringstream oss;
  oss << "{\"type\":\"result_batch\",";
  append_u64(oss, "seq", seq);
  oss << ",\"results\":[";
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (i) oss << ',';
    oss << eval_response_json(responses[i]);
  }
  oss << "]}";
  return oss.str();
}

bool decode_eval(const support::JsonValue& frame,
                 std::vector<core::EvalRequest>* out,
                 std::string* error) {
  out->clear();
  const std::string type = frame_type(frame);
  if (type == "eval") {
    const support::JsonValue* request = frame.find("request");
    if (request == nullptr) {
      return fail(error, "eval frame lacks a request");
    }
    core::EvalRequest parsed;
    if (!parse_eval_request(*request, &parsed, error)) return false;
    out->push_back(std::move(parsed));
    return true;
  }
  if (type == "eval_batch") {
    const support::JsonValue* requests = frame.find("requests");
    if (requests == nullptr || !requests->is_array()) {
      return fail(error, "eval_batch frame lacks a requests array");
    }
    out->reserve(requests->array().size());
    for (const support::JsonValue& request : requests->array()) {
      core::EvalRequest parsed;
      if (!parse_eval_request(request, &parsed, error)) return false;
      out->push_back(std::move(parsed));
    }
    return true;
  }
  return fail(error, "not an eval frame");
}

bool decode_result(const support::JsonValue& frame,
                   std::vector<core::EvalResponse>* out,
                   std::string* error) {
  out->clear();
  const std::string type = frame_type(frame);
  if (type == "result") {
    const support::JsonValue* result = frame.find("result");
    if (result == nullptr) {
      return fail(error, "result frame lacks a result");
    }
    core::EvalResponse parsed;
    if (!parse_eval_response(*result, &parsed, error)) return false;
    out->push_back(std::move(parsed));
    return true;
  }
  if (type == "result_batch") {
    const support::JsonValue* results = frame.find("results");
    if (results == nullptr || !results->is_array()) {
      return fail(error, "result_batch frame lacks a results array");
    }
    out->reserve(results->array().size());
    for (const support::JsonValue& result : results->array()) {
      core::EvalResponse parsed;
      if (!parse_eval_response(result, &parsed, error)) return false;
      out->push_back(std::move(parsed));
    }
    return true;
  }
  return fail(error, "not a result frame");
}

std::string encode_ping(std::uint64_t seq) {
  std::ostringstream oss;
  oss << "{\"type\":\"ping\",";
  append_u64(oss, "seq", seq);
  oss << '}';
  return oss.str();
}

std::string encode_pong(std::uint64_t seq) {
  std::ostringstream oss;
  oss << "{\"type\":\"pong\",";
  append_u64(oss, "seq", seq);
  oss << '}';
  return oss.str();
}

std::string encode_bye() { return "{\"type\":\"bye\"}"; }

// --- unified decode --------------------------------------------------------

namespace {

DecodeStatus json_decode_frame(std::string_view payload, AnyFrame* out,
                               std::string* error) {
  support::JsonValue frame;
  if (!support::JsonValue::parse(payload, &frame, error)) {
    return DecodeStatus::kUnparseable;
  }
  const std::string type = frame_type(frame);
  out->seq = frame_seq(frame);
  if (type == "hello") {
    out->kind = FrameKind::kHello;
    return decode_hello(frame, &out->hello, error)
               ? DecodeStatus::kOk
               : DecodeStatus::kMalformed;
  }
  if (type == "welcome") {
    out->kind = FrameKind::kWelcome;
    return decode_welcome(frame, &out->welcome, error)
               ? DecodeStatus::kOk
               : DecodeStatus::kMalformed;
  }
  if (type == "error") {
    out->kind = FrameKind::kError;
    if (!decode_error(frame, &out->error)) {
      *error = "malformed error frame";
      return DecodeStatus::kMalformed;
    }
    return DecodeStatus::kOk;
  }
  if (type == "eval" || type == "eval_batch") {
    out->kind = type == "eval" ? FrameKind::kEval : FrameKind::kEvalBatch;
    return decode_eval(frame, &out->requests, error)
               ? DecodeStatus::kOk
               : DecodeStatus::kMalformed;
  }
  if (type == "result" || type == "result_batch") {
    out->kind =
        type == "result" ? FrameKind::kResult : FrameKind::kResultBatch;
    return decode_result(frame, &out->responses, error)
               ? DecodeStatus::kOk
               : DecodeStatus::kMalformed;
  }
  if (type == "ping") {
    out->kind = FrameKind::kPing;
    return DecodeStatus::kOk;
  }
  if (type == "pong") {
    out->kind = FrameKind::kPong;
    return DecodeStatus::kOk;
  }
  if (type == "bye") {
    out->kind = FrameKind::kBye;
    return DecodeStatus::kOk;
  }
  *error = "unknown frame type '" + type + "'";
  return DecodeStatus::kUnknownType;
}

}  // namespace

DecodeStatus decode_frame(Framing framing, std::string_view payload,
                          AnyFrame* out, std::string* error) {
  out->reset();
  error->clear();
  if (framing == Framing::kBinaryCrc) {
    // Verify-then-strip: the trailer covers the whole binary payload,
    // so a flipped byte ANYWHERE (tag, length, double bits) fails here
    // and never reaches the binary decoder. Length framing stays
    // synchronized, so the caller refuses just this frame (bad_frame)
    // and the session survives.
    if (payload.size() < 4) {
      *error = "binary-crc32 frame shorter than its checksum";
      return DecodeStatus::kUnparseable;
    }
    const std::string_view body = payload.substr(0, payload.size() - 4);
    const std::string_view trailer = payload.substr(payload.size() - 4);
    std::uint32_t declared = 0;
    for (int i = 3; i >= 0; --i) {
      declared = (declared << 8) |
                 static_cast<unsigned char>(trailer[static_cast<std::size_t>(i)]);
    }
    if (crc32(body) != declared) {
      *error = "crc32 mismatch: frame corrupted in flight";
      return DecodeStatus::kUnparseable;
    }
    return binary_decode_frame(body, out, error);
  }
  if (framing == Framing::kBinary) {
    return binary_decode_frame(payload, out, error);
  }
  return json_decode_frame(payload, out, error);
}

// --- framing-dispatched encoders -------------------------------------------

namespace {

[[nodiscard]] bool is_binary(Framing framing) {
  return framing == Framing::kBinary || framing == Framing::kBinaryCrc;
}

/// Appends the little-endian CRC32 trailer for binary-crc32 frames.
void seal_crc(Framing framing, std::string* out) {
  if (framing != Framing::kBinaryCrc) return;
  const std::uint32_t crc = crc32(*out);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
  }
}

}  // namespace

void encode_hello_frame(Framing framing, const HelloFrame& hello,
                        std::string* out) {
  if (is_binary(framing)) {
    binary_encode_hello(hello, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_hello(hello));
}

void encode_welcome_frame(Framing framing, const WelcomeFrame& welcome,
                          std::string* out) {
  if (is_binary(framing)) {
    binary_encode_welcome(welcome, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_welcome(welcome));
}

void encode_error_frame(Framing framing, const ErrorFrame& error,
                        std::string* out) {
  if (is_binary(framing)) {
    binary_encode_error(error, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_error(error));
}

void encode_eval_frame(Framing framing, std::uint64_t seq,
                       const core::EvalRequest& request,
                       std::string* out) {
  if (is_binary(framing)) {
    binary_encode_eval(seq, request, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_eval(seq, request));
}

void encode_eval_batch_frame(Framing framing, std::uint64_t seq,
                             std::span<const core::EvalRequest> requests,
                             std::string* out) {
  if (is_binary(framing)) {
    binary_encode_eval_batch(seq, requests, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_eval_batch(seq, requests));
}

void encode_result_frame(Framing framing, std::uint64_t seq,
                         const core::EvalResponse& response,
                         std::string* out) {
  if (is_binary(framing)) {
    binary_encode_result(seq, response, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_result(seq, response));
}

void encode_result_batch_frame(
    Framing framing, std::uint64_t seq,
    std::span<const core::EvalResponse> responses, std::string* out) {
  if (is_binary(framing)) {
    binary_encode_result_batch(seq, responses, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_result_batch(seq, responses));
}

void encode_ping_frame(Framing framing, std::uint64_t seq,
                       std::string* out) {
  if (is_binary(framing)) {
    binary_encode_ping(seq, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_ping(seq));
}

void encode_pong_frame(Framing framing, std::uint64_t seq,
                       std::string* out) {
  if (is_binary(framing)) {
    binary_encode_pong(seq, out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_pong(seq));
}

void encode_bye_frame(Framing framing, std::string* out) {
  if (is_binary(framing)) {
    binary_encode_bye(out);
    seal_crc(framing, out);
    return;
  }
  out->assign(encode_bye());
}

}  // namespace ft::service
