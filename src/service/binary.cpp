#include "service/binary.hpp"

#include <bit>
#include <cstring>

namespace ft::service {

namespace {

// --- primitive writers (append-only) ---------------------------------------

void put_u8(std::string* out, std::uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void put_u32(std::string* out, std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>(value >> (8 * i));
  }
  out->append(bytes, sizeof(bytes));
}

void put_u64(std::string* out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>(value >> (8 * i));
  }
  out->append(bytes, sizeof(bytes));
}

void put_f64(std::string* out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::string* out, std::string_view text) {
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out->append(text.data(), text.size());
}

void put_cv(std::string* out, const flags::CompilationVector& cv) {
  put_u32(out, static_cast<std::uint32_t>(cv.size()));
  for (std::size_t i = 0; i < cv.size(); ++i) {
    put_u8(out, cv[i]);
  }
}

void put_caps(std::string* out, const Capabilities& caps) {
  put_u32(out, static_cast<std::uint32_t>(caps.protocol));
  put_u8(out, static_cast<std::uint8_t>(caps.framings.size()));
  for (const Framing framing : caps.framings) {
    put_u8(out, static_cast<std::uint8_t>(framing));
  }
  put_u64(out, caps.max_frame_bytes);
  put_u32(out, static_cast<std::uint32_t>(caps.archs.size()));
  for (const std::string& arch : caps.archs) {
    put_string(out, arch);
  }
}

void put_header(std::string* out, FrameKind kind, std::uint64_t seq) {
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u64(out, seq);
}

void put_request(std::string* out, const core::EvalRequest& request) {
  put_u32(out,
          static_cast<std::uint32_t>(request.assignment.loop_cvs.size()));
  for (const flags::CompilationVector& cv : request.assignment.loop_cvs) {
    put_cv(out, cv);
  }
  put_cv(out, request.assignment.nonloop_cv);
  put_u64(out, request.rep_base);
  put_u32(out, static_cast<std::uint32_t>(request.repetitions));
  put_u8(out, request.instrumented ? 1 : 0);
  put_u8(out, request.noise ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(request.aggregate));
}

void put_response(std::string* out, const core::EvalResponse& response) {
  put_u8(out, static_cast<std::uint8_t>(response.served_by));
  put_u32(out, static_cast<std::uint32_t>(response.outcome.attempts));
  put_u64(out, response.modules_compiled);
  put_u8(out, response.ok() ? 1 : 0);
  if (response.ok()) {
    // caliper_report is deliberately never serialized (bulky, consumed
    // only by the always-local profiling phase); the decoder recomputes
    // derived_nonloop_seconds exactly as the engine derives it.
    const machine::RunResult& result = response.outcome.result;
    put_f64(out, result.end_to_end);
    put_f64(out, result.stddev);
    put_u32(out, static_cast<std::uint32_t>(result.loop_seconds.size()));
    for (const double seconds : result.loop_seconds) {
      put_f64(out, seconds);
    }
  } else {
    put_string(out, core::to_string(response.outcome.error.kind));
    put_string(out, response.outcome.error.detail);
  }
}

// --- bounds-checked reader -------------------------------------------------

struct Cursor {
  const unsigned char* at;
  const unsigned char* end;

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end - at);
  }

  bool u8(std::uint8_t* out) {
    if (remaining() < 1) return false;
    *out = *at++;
    return true;
  }

  bool u32(std::uint32_t* out) {
    if (remaining() < 4) return false;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(at[i]) << (8 * i);
    }
    at += 4;
    *out = value;
    return true;
  }

  bool u64(std::uint64_t* out) {
    if (remaining() < 8) return false;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(at[i]) << (8 * i);
    }
    at += 8;
    *out = value;
    return true;
  }

  bool f64(double* out) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  bool string(std::string* out) {
    std::uint32_t length = 0;
    if (!u32(&length) || remaining() < length) return false;
    out->assign(reinterpret_cast<const char*>(at), length);
    at += length;
    return true;
  }

  bool cv(flags::CompilationVector* out) {
    std::uint32_t count = 0;
    if (!u32(&count) || remaining() < count) return false;
    std::vector<std::uint8_t> choices(at, at + count);
    at += count;
    *out = flags::CompilationVector(std::move(choices));
    return true;
  }
};

bool read_caps(Cursor* cursor, Capabilities* out, std::string* error) {
  std::uint32_t protocol = 0;
  std::uint8_t framing_count = 0;
  if (!cursor->u32(&protocol) || !cursor->u8(&framing_count)) {
    *error = "truncated capabilities";
    return false;
  }
  out->protocol = static_cast<int>(protocol);
  out->framings.clear();
  for (std::uint8_t i = 0; i < framing_count; ++i) {
    std::uint8_t framing = 0;
    if (!cursor->u8(&framing)) {
      *error = "truncated capability framings";
      return false;
    }
    // Unknown framing bytes are future framings: skip, don't fail.
    if (framing <= static_cast<std::uint8_t>(Framing::kBinary)) {
      out->framings.push_back(static_cast<Framing>(framing));
    }
  }
  if (out->framings.empty()) out->framings.push_back(Framing::kJson);
  std::uint32_t arch_count = 0;
  if (!cursor->u64(&out->max_frame_bytes) || !cursor->u32(&arch_count)) {
    *error = "truncated capabilities";
    return false;
  }
  // 4 bytes minimum per serialized arch name: a forged count cannot
  // reserve past what the payload could possibly hold.
  if (arch_count > cursor->remaining() / 4 + 1) {
    *error = "capability arch count exceeds payload";
    return false;
  }
  out->archs.clear();
  out->archs.resize(arch_count);
  for (std::uint32_t i = 0; i < arch_count; ++i) {
    if (!cursor->string(&out->archs[i])) {
      *error = "truncated capability arch name";
      return false;
    }
  }
  return true;
}

bool read_request(Cursor* cursor, core::EvalRequest* out,
                  std::string* error) {
  std::uint32_t loop_count = 0;
  if (!cursor->u32(&loop_count)) {
    *error = "truncated request";
    return false;
  }
  if (loop_count > cursor->remaining() / 4 + 1) {
    *error = "request loop count exceeds payload";
    return false;
  }
  out->assignment.loop_cvs.clear();
  out->assignment.loop_cvs.resize(loop_count);
  for (std::uint32_t i = 0; i < loop_count; ++i) {
    if (!cursor->cv(&out->assignment.loop_cvs[i])) {
      *error = "truncated request loop CV";
      return false;
    }
  }
  std::uint32_t repetitions = 0;
  std::uint8_t instrumented = 0;
  std::uint8_t noise = 0;
  std::uint8_t aggregate = 0;
  if (!cursor->cv(&out->assignment.nonloop_cv) ||
      !cursor->u64(&out->rep_base) || !cursor->u32(&repetitions) ||
      !cursor->u8(&instrumented) || !cursor->u8(&noise) ||
      !cursor->u8(&aggregate)) {
    *error = "truncated request fields";
    return false;
  }
  if (repetitions < 1 || repetitions > 1000000) {
    *error = "request reps field is malformed";
    return false;
  }
  if (aggregate > static_cast<std::uint8_t>(
                      machine::Aggregation::kTrimmedMean)) {
    *error = "request agg field is malformed";
    return false;
  }
  out->repetitions = static_cast<int>(repetitions);
  out->instrumented = instrumented != 0;
  out->noise = noise != 0;
  out->aggregate = static_cast<machine::Aggregation>(aggregate);
  return true;
}

bool read_response(Cursor* cursor, core::EvalResponse* out,
                   std::string* error) {
  std::uint8_t served = 0;
  std::uint32_t attempts = 0;
  std::uint64_t compiled = 0;
  std::uint8_t ok = 0;
  if (!cursor->u8(&served) || !cursor->u32(&attempts) ||
      !cursor->u64(&compiled) || !cursor->u8(&ok)) {
    *error = "truncated response";
    return false;
  }
  if (served > static_cast<std::uint8_t>(
                   core::EvalServedBy::kJournalReplay)) {
    *error = "response served field is malformed";
    return false;
  }
  out->served_by = static_cast<core::EvalServedBy>(served);
  out->outcome.attempts = static_cast<int>(attempts);
  out->modules_compiled = static_cast<std::size_t>(compiled);
  if (ok == 0) {
    std::string fault;
    if (!cursor->string(&fault) ||
        !cursor->string(&out->outcome.error.detail)) {
      *error = "truncated response fault";
      return false;
    }
    out->outcome.error.kind = core::eval_fault_from_string(fault);
    if (out->outcome.error.kind == core::EvalFault::kNone) {
      *error = "failed response has an unknown fault kind";
      return false;
    }
    out->outcome.result = machine::RunResult{};
    return true;
  }
  out->outcome.error = core::EvalError{};
  machine::RunResult& result = out->outcome.result;
  std::uint32_t loop_count = 0;
  if (!cursor->f64(&result.end_to_end) || !cursor->f64(&result.stddev) ||
      !cursor->u32(&loop_count)) {
    *error = "truncated response measurements";
    return false;
  }
  if (loop_count > cursor->remaining() / 8) {
    *error = "response loop count exceeds payload";
    return false;
  }
  result.loop_seconds.clear();
  result.loop_seconds.resize(loop_count);
  double loop_sum = 0.0;
  for (std::uint32_t i = 0; i < loop_count; ++i) {
    if (!cursor->f64(&result.loop_seconds[i])) {
      *error = "truncated response loop seconds";
      return false;
    }
    loop_sum += result.loop_seconds[i];
  }
  // Not transmitted; recompute exactly as the engine (and the JSON
  // decoder) derive it.
  result.derived_nonloop_seconds = result.end_to_end - loop_sum;
  return true;
}

}  // namespace

void binary_encode_hello(const HelloFrame& hello, std::string* out) {
  out->clear();
  put_header(out, FrameKind::kHello, 0);
  put_string(out, hello.program);
  put_string(out, hello.arch);
  put_string(out, hello.personality);
  put_u64(out, hello.options.seed);
  put_f64(out, hello.options.noise_sigma_rel);
  put_f64(out, hello.options.attribution_sigma);
  const machine::FaultConfig& faults = hello.options.faults;
  put_f64(out, faults.rate);
  put_u64(out, faults.seed);
  put_f64(out, faults.compile_share);
  put_f64(out, faults.crash_share);
  put_f64(out, faults.timeout_share);
  put_f64(out, faults.outlier_rate);
  put_f64(out, faults.outlier_min_scale);
  put_f64(out, faults.outlier_max_scale);
  put_caps(out, hello.caps);
}

void binary_encode_welcome(const WelcomeFrame& welcome, std::string* out) {
  out->clear();
  put_header(out, FrameKind::kWelcome, 0);
  put_string(out, welcome.server);
  put_u64(out, welcome.session);
  put_u64(out, static_cast<std::uint64_t>(welcome.max_batch));
  put_u8(out, static_cast<std::uint8_t>(welcome.framing));
  put_caps(out, welcome.caps);
}

void binary_encode_error(const ErrorFrame& error, std::string* out) {
  out->clear();
  put_header(out, FrameKind::kError, error.seq);
  put_string(out, error.code);
  put_string(out, error.detail);
  put_u8(out, error.retryable ? 1 : 0);
  put_u8(out, error.fatal ? 1 : 0);
}

void binary_encode_eval(std::uint64_t seq,
                        const core::EvalRequest& request,
                        std::string* out) {
  out->clear();
  put_header(out, FrameKind::kEval, seq);
  put_request(out, request);
}

void binary_encode_eval_batch(std::uint64_t seq,
                              std::span<const core::EvalRequest> requests,
                              std::string* out) {
  out->clear();
  put_header(out, FrameKind::kEvalBatch, seq);
  put_u32(out, static_cast<std::uint32_t>(requests.size()));
  for (const core::EvalRequest& request : requests) {
    put_request(out, request);
  }
}

void binary_encode_result(std::uint64_t seq,
                          const core::EvalResponse& response,
                          std::string* out) {
  out->clear();
  put_header(out, FrameKind::kResult, seq);
  put_response(out, response);
}

void binary_encode_result_batch(
    std::uint64_t seq, std::span<const core::EvalResponse> responses,
    std::string* out) {
  out->clear();
  put_header(out, FrameKind::kResultBatch, seq);
  put_u32(out, static_cast<std::uint32_t>(responses.size()));
  for (const core::EvalResponse& response : responses) {
    put_response(out, response);
  }
}

void binary_encode_ping(std::uint64_t seq, std::string* out) {
  out->clear();
  put_header(out, FrameKind::kPing, seq);
}

void binary_encode_pong(std::uint64_t seq, std::string* out) {
  out->clear();
  put_header(out, FrameKind::kPong, seq);
}

void binary_encode_bye(std::string* out) {
  out->clear();
  put_header(out, FrameKind::kBye, 0);
}

DecodeStatus binary_decode_frame(std::string_view payload, AnyFrame* out,
                                 std::string* error) {
  out->reset();
  error->clear();
  Cursor cursor{
      reinterpret_cast<const unsigned char*>(payload.data()),
      reinterpret_cast<const unsigned char*>(payload.data()) +
          payload.size(),
  };
  std::uint8_t tag = 0;
  if (!cursor.u8(&tag)) return DecodeStatus::kUnparseable;
  if (tag < static_cast<std::uint8_t>(FrameKind::kHello) ||
      tag > static_cast<std::uint8_t>(FrameKind::kBye)) {
    return DecodeStatus::kUnknownType;
  }
  if (!cursor.u64(&out->seq)) {
    *error = "truncated frame header";
    return DecodeStatus::kMalformed;
  }
  out->kind = static_cast<FrameKind>(tag);
  const auto malformed = [error](const char* reason) {
    if (error->empty()) *error = reason;
    return DecodeStatus::kMalformed;
  };
  switch (out->kind) {
    case FrameKind::kHello: {
      HelloFrame& hello = out->hello;
      const machine::FaultConfig defaults{};
      hello.options.faults = defaults;
      if (!cursor.string(&hello.program) || !cursor.string(&hello.arch) ||
          !cursor.string(&hello.personality) ||
          !cursor.u64(&hello.options.seed) ||
          !cursor.f64(&hello.options.noise_sigma_rel) ||
          !cursor.f64(&hello.options.attribution_sigma) ||
          !cursor.f64(&hello.options.faults.rate) ||
          !cursor.u64(&hello.options.faults.seed) ||
          !cursor.f64(&hello.options.faults.compile_share) ||
          !cursor.f64(&hello.options.faults.crash_share) ||
          !cursor.f64(&hello.options.faults.timeout_share) ||
          !cursor.f64(&hello.options.faults.outlier_rate) ||
          !cursor.f64(&hello.options.faults.outlier_min_scale) ||
          !cursor.f64(&hello.options.faults.outlier_max_scale)) {
        return malformed("truncated hello");
      }
      if (hello.program.empty()) {
        return malformed("hello lacks a program name");
      }
      if (hello.arch.empty()) {
        return malformed("hello lacks an architecture name");
      }
      if (hello.personality != "icc" && hello.personality != "gcc") {
        return malformed("hello personality must be icc or gcc");
      }
      if (!read_caps(&cursor, &hello.caps, error)) {
        return DecodeStatus::kMalformed;
      }
      return DecodeStatus::kOk;
    }
    case FrameKind::kWelcome: {
      WelcomeFrame& welcome = out->welcome;
      std::uint64_t max_batch = 0;
      std::uint8_t framing = 0;
      if (!cursor.string(&welcome.server) ||
          !cursor.u64(&welcome.session) || !cursor.u64(&max_batch) ||
          !cursor.u8(&framing)) {
        return malformed("truncated welcome");
      }
      if (max_batch == 0) {
        return malformed("welcome frame is incomplete");
      }
      if (framing > static_cast<std::uint8_t>(Framing::kBinary)) {
        return malformed("welcome names an unknown framing");
      }
      welcome.max_batch = static_cast<std::size_t>(max_batch);
      welcome.framing = static_cast<Framing>(framing);
      if (!read_caps(&cursor, &welcome.caps, error)) {
        return DecodeStatus::kMalformed;
      }
      return DecodeStatus::kOk;
    }
    case FrameKind::kError: {
      std::uint8_t retryable = 0;
      std::uint8_t fatal = 0;
      if (!cursor.string(&out->error.code) ||
          !cursor.string(&out->error.detail) || !cursor.u8(&retryable) ||
          !cursor.u8(&fatal)) {
        return malformed("truncated error frame");
      }
      out->error.seq = out->seq;
      out->error.retryable = retryable != 0;
      out->error.fatal = fatal != 0;
      return DecodeStatus::kOk;
    }
    case FrameKind::kEval: {
      out->requests.resize(1);
      if (!read_request(&cursor, &out->requests[0], error)) {
        return DecodeStatus::kMalformed;
      }
      return DecodeStatus::kOk;
    }
    case FrameKind::kEvalBatch: {
      std::uint32_t count = 0;
      if (!cursor.u32(&count)) return malformed("truncated eval_batch");
      // >= 19 bytes per serialized request.
      if (count > cursor.remaining() / 19 + 1) {
        return malformed("eval_batch count exceeds payload");
      }
      out->requests.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!read_request(&cursor, &out->requests[i], error)) {
          return DecodeStatus::kMalformed;
        }
      }
      return DecodeStatus::kOk;
    }
    case FrameKind::kResult: {
      out->responses.resize(1);
      if (!read_response(&cursor, &out->responses[0], error)) {
        return DecodeStatus::kMalformed;
      }
      return DecodeStatus::kOk;
    }
    case FrameKind::kResultBatch: {
      std::uint32_t count = 0;
      if (!cursor.u32(&count)) return malformed("truncated result_batch");
      // >= 14 bytes per serialized response.
      if (count > cursor.remaining() / 14 + 1) {
        return malformed("result_batch count exceeds payload");
      }
      out->responses.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!read_response(&cursor, &out->responses[i], error)) {
          return DecodeStatus::kMalformed;
        }
      }
      return DecodeStatus::kOk;
    }
    case FrameKind::kPing:
    case FrameKind::kPong:
    case FrameKind::kBye:
      return DecodeStatus::kOk;
  }
  return DecodeStatus::kUnknownType;
}

}  // namespace ft::service
