#include "service/framing.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "service/chaos.hpp"

namespace ft::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Absolute deadline for one whole frame. `unbounded` preserves the
/// historical block-forever behavior (the server keeps it: its idle
/// reaper already bounds session lifetime).
struct Deadline {
  Clock::time_point at;
  bool unbounded;

  static Deadline in_ms(int timeout_ms) {
    if (timeout_ms < 0) return {Clock::time_point{}, true};
    return {Clock::now() + std::chrono::milliseconds(timeout_ms), false};
  }

  /// Remaining budget as a poll() timeout; 0 once expired.
  [[nodiscard]] int poll_ms() const {
    if (unbounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at - Clock::now());
    if (left.count() <= 0) return 0;
    // Cap so the int conversion below is safe even for silly deadlines.
    return static_cast<int>(std::min<long long>(left.count(), 1 << 30));
  }
};

/// Waits until fd is ready for `events` or the deadline passes.
/// 1 = ready, 0 = deadline, -1 = error. POLLERR/POLLHUP count as ready:
/// the following recv/send then reports the real condition.
int wait_ready(int fd, short events, const Deadline& deadline) {
  while (true) {
    const int budget = deadline.poll_ms();
    if (budget == 0) return 0;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return 1;
    if (rc == 0) continue;  // re-check the deadline, maybe re-poll
    if (errno == EINTR) continue;
    return -1;
  }
}

/// Reads exactly `count` bytes. 1 = ok, 0 = clean EOF before any byte,
/// -1 = EOF/error mid-read, -2 = deadline expired.
int read_exact(int fd, char* buffer, std::size_t count,
               const Deadline& deadline) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t got =
        ::recv(fd, buffer + done, count - done, MSG_DONTWAIT);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return done == 0 ? 0 : -1;
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return -1;
    const int ready = wait_ready(fd, POLLIN, deadline);
    if (ready == 0) return -2;
    if (ready < 0) return -1;
  }
  return 1;
}

}  // namespace

FrameStatus read_frame(int fd, std::string* payload, std::size_t max_bytes,
                       int timeout_ms, chaos::ChaosEngine* chaos) {
  // The deadline is taken BEFORE any injected delay: chaos consumes
  // the frame's budget exactly like a genuinely slow peer would.
  const Deadline deadline = Deadline::in_ms(timeout_ms);
  chaos::ChaosEngine::StormScope storm;
  if (chaos != nullptr) {
    storm = chaos->maybe_eintr_storm();
    chaos->delay_read();
  }
  unsigned char prefix[4];
  const int head = read_exact(fd, reinterpret_cast<char*>(prefix),
                              sizeof(prefix), deadline);
  if (head == 0) return FrameStatus::kClosed;
  if (head == -2) return FrameStatus::kTimeout;
  if (head < 0) return FrameStatus::kTorn;
  const std::uint32_t length =
      (static_cast<std::uint32_t>(prefix[0]) << 24) |
      (static_cast<std::uint32_t>(prefix[1]) << 16) |
      (static_cast<std::uint32_t>(prefix[2]) << 8) |
      static_cast<std::uint32_t>(prefix[3]);
  if (length > max_bytes) return FrameStatus::kTooLarge;
  payload->resize(length);
  if (length > 0) {
    const int body = read_exact(fd, payload->data(), length, deadline);
    if (body == -2) return FrameStatus::kTimeout;
    if (body != 1) return FrameStatus::kTorn;
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload, int timeout_ms,
                 chaos::ChaosEngine* chaos) {
  if (payload.size() > 0xffffffffu) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  const Deadline deadline = Deadline::in_ms(timeout_ms);
  chaos::ChaosEngine::StormScope storm;
  std::size_t chunk_limit = static_cast<std::size_t>(-1);
  std::size_t reset_after = static_cast<std::size_t>(-1);
  if (chaos != nullptr) {
    storm = chaos->maybe_eintr_storm();
    chunk_limit = chaos->torn_chunk_limit();
    if (chaos->should_reset_mid_frame()) {
      // Push out roughly half the frame, then slam the connection:
      // the peer observes a torn frame, exactly like a daemon dying
      // mid-reply.
      reset_after = std::max<std::size_t>(1, (4 + payload.size()) / 2);
    }
  }
  // Prefix and payload go out as ONE sendmsg: a separate 4-byte
  // segment would trip TCP's Nagle/delayed-ACK interaction, and
  // concatenating into a temporary string would pay an allocation plus
  // a full payload copy per frame. The iovec gets both properties for
  // free; offsets track partial writes across the two segments.
  unsigned char prefix[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length),
  };
  std::size_t done = 0;
  const std::size_t total = sizeof(prefix) + payload.size();
  while (done < total) {
    if (done >= reset_after) {
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    iovec segments[2];
    int count = 0;
    if (done < sizeof(prefix)) {
      segments[count].iov_base = prefix + done;
      segments[count].iov_len = sizeof(prefix) - done;
      ++count;
    }
    const std::size_t body_done =
        done > sizeof(prefix) ? done - sizeof(prefix) : 0;
    if (body_done < payload.size()) {
      segments[count].iov_base =
          const_cast<char*>(payload.data()) + body_done;
      segments[count].iov_len = payload.size() - body_done;
      ++count;
    }
    // A torn write caps every sendmsg at a few bytes, so the peer's
    // reassembly path (partial prefix, split payload) runs for real.
    // An armed reset also caps the write at the reset point: without
    // that, one full-frame sendmsg never re-enters the loop and the
    // reset would only ever fire on already-fragmented writes.
    std::size_t budget = chunk_limit;
    if (reset_after != static_cast<std::size_t>(-1)) {
      budget = std::min(budget, reset_after - done);
    }
    for (int i = 0; i < count; ++i) {
      segments[i].iov_len = std::min(segments[i].iov_len, budget);
      budget -= segments[i].iov_len;
    }
    msghdr message{};
    message.msg_iov = segments;
    message.msg_iovlen = static_cast<std::size_t>(count);
    const ssize_t put =
        ::sendmsg(fd, &message, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int ready = wait_ready(fd, POLLOUT, deadline);
      if (ready <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace ft::service
