#include "service/framing.hpp"

#include <sys/socket.h>

#include <cerrno>

namespace ft::service {

namespace {

/// Reads exactly `count` bytes. 1 = ok, 0 = clean EOF before any byte,
/// -1 = EOF/error mid-read.
int read_exact(int fd, char* buffer, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t got = ::recv(fd, buffer + done, count - done, 0);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return (got == 0 && done == 0) ? 0 : -1;
  }
  return 1;
}

bool write_exact(int fd, const char* buffer, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t put =
        ::send(fd, buffer + done, count - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

FrameStatus read_frame(int fd, std::string* payload,
                       std::size_t max_bytes) {
  unsigned char prefix[4];
  const int head =
      read_exact(fd, reinterpret_cast<char*>(prefix), sizeof(prefix));
  if (head == 0) return FrameStatus::kClosed;
  if (head < 0) return FrameStatus::kTorn;
  const std::uint32_t length =
      (static_cast<std::uint32_t>(prefix[0]) << 24) |
      (static_cast<std::uint32_t>(prefix[1]) << 16) |
      (static_cast<std::uint32_t>(prefix[2]) << 8) |
      static_cast<std::uint32_t>(prefix[3]);
  if (length > max_bytes) return FrameStatus::kTooLarge;
  payload->resize(length);
  if (length > 0 && read_exact(fd, payload->data(), length) != 1) {
    return FrameStatus::kTorn;
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > 0xffffffffu) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  // Prefix and payload go out as ONE send: a separate 4-byte segment
  // would trip TCP's Nagle/delayed-ACK interaction and stall every
  // request/response round-trip by tens of milliseconds.
  std::string frame;
  frame.reserve(sizeof(std::uint32_t) + payload.size());
  frame.push_back(static_cast<char>(length >> 24));
  frame.push_back(static_cast<char>(length >> 16));
  frame.push_back(static_cast<char>(length >> 8));
  frame.push_back(static_cast<char>(length));
  frame.append(payload);
  return write_exact(fd, frame.data(), frame.size());
}

}  // namespace ft::service
