#include "service/connect.hpp"

#include <algorithm>

#include "service/framing.hpp"

namespace ft::service {

namespace {

[[noreturn]] void throw_error_frame(const ErrorFrame& error) {
  throw ServiceError(error.code.empty() ? "error" : error.code,
                     "ftuned refused: " + error.code +
                         (error.detail.empty() ? "" : ": " + error.detail));
}

}  // namespace

Session connect(const Endpoint& endpoint, const ConnectOptions& options) {
  // Even with MSG_NOSIGNAL on every framed send, a raced close can
  // still deliver SIGPIPE through auxiliary paths; one process-wide
  // SIG_IGN makes "peer died mid-write" always an EPIPE errno.
  ignore_sigpipe();
  Session session;
  session.transport_ = options.transport;
  session.chaos_ = chaos::make_engine(options.transport.chaos);
  session.socket_ =
      Socket::connect(endpoint.address, session.chaos_.get());
  const int timeout_ms = options.transport.io_timeout_ms();

  HelloFrame hello;
  hello.program = options.workspace.program;
  hello.arch = options.workspace.arch;
  hello.personality =
      options.workspace.personality == compiler::Personality::kGcc
          ? "gcc"
          : "icc";
  hello.options = options.workspace.options;
  hello.caps.framings = options.framings;
  // JSON is the mandatory fallback: offering it last means "anything
  // better if you can, baseline otherwise", and guarantees the
  // negotiation never dead-ends.
  if (std::find(hello.caps.framings.begin(), hello.caps.framings.end(),
                Framing::kJson) == hello.caps.framings.end()) {
    hello.caps.framings.push_back(Framing::kJson);
  }
  if (!write_frame(session.socket_.fd(), encode_hello(hello),
                   timeout_ms, session.chaos_.get())) {
    throw ServiceError("connect",
                       "cannot send hello to " + endpoint.spec);
  }

  std::string payload;
  const FrameStatus status =
      read_frame(session.socket_.fd(), &payload, kDefaultMaxFrameBytes,
                 timeout_ms, session.chaos_.get());
  if (status == FrameStatus::kTimeout) {
    throw ServiceError("timeout",
                       "handshake with " + endpoint.spec + " timed out");
  }
  if (status != FrameStatus::kOk) {
    throw ServiceError("connect",
                       "connection closed during handshake with " +
                           endpoint.spec);
  }

  AnyFrame reply;
  std::string error;
  const DecodeStatus decoded =
      decode_frame(Framing::kJson, payload, &reply, &error);
  if (decoded == DecodeStatus::kOk && reply.kind == FrameKind::kError) {
    throw_error_frame(reply.error);
  }
  if (decoded != DecodeStatus::kOk ||
      reply.kind != FrameKind::kWelcome) {
    throw ServiceError("bad_frame",
                       "expected a welcome frame: " + error);
  }
  // The server's pick is binding, but it must be something we offered
  // (JSON always implicitly is): anything else means the peer is
  // broken, and switching to a framing we never asked for would
  // desynchronize the stream.
  if (reply.welcome.framing != Framing::kJson &&
      std::find(hello.caps.framings.begin(), hello.caps.framings.end(),
                reply.welcome.framing) == hello.caps.framings.end()) {
    throw ServiceError("bad_frame",
                       "server picked a framing that was not offered");
  }
  session.welcome_ = std::move(reply.welcome);
  session.framing_ = session.welcome_.framing;
  return session;
}

}  // namespace ft::service
