#include "service/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <limits>
#include <mutex>

#include "core/checkpoint.hpp"
#include "support/rng.hpp"

namespace ft::service {

namespace {

/// Virtual nodes per endpoint on the hash ring. Enough to spread
/// workspace homes evenly over a handful of daemons; the exact count
/// only shifts WHERE work lands, never what it computes.
constexpr int kRingReplicas = 17;

/// Transport-level failures: the endpoint (or the path to it) is sick,
/// as opposed to the request being bad. These drain the endpoint and
/// send its work elsewhere. "draining" belongs here: the daemon
/// announced it is going away, which for ROUTING purposes is the same
/// as already being gone.
bool is_transport_code(const std::string& code) {
  return code == "io" || code == "timeout" || code == "connect" ||
         code == "draining";
}

/// Refusals that bounce the chunk elsewhere while the endpoint itself
/// stays healthy: backpressure and server-side queue-age expiry.
bool is_bounce_code(const std::string& code) {
  return code == "overloaded" || code == "deadline";
}

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::uint64_t workspace_hash(const std::string& program,
                             const std::string& arch,
                             const core::FuncyTunerOptions& options,
                             compiler::Personality personality) {
  std::string key = program;
  key += '|';
  key += arch;
  key += '|';
  key += personality == compiler::Personality::kGcc ? "gcc" : "icc";
  key += '|';
  key += std::to_string(core::options_fingerprint(options));
  return support::fnv1a64(key);
}

}  // namespace

std::unique_ptr<FleetBackend> FleetBackend::connect(
    const std::vector<std::string>& addresses, const std::string& program,
    const std::string& arch, const core::FuncyTunerOptions& options,
    compiler::Personality personality, const FleetOptions& fleet_options) {
  auto fleet = std::unique_ptr<FleetBackend>(new FleetBackend());
  fleet->options_ = fleet_options;
  fleet->connect_options_.workspace =
      WorkspaceSpec{program, arch, personality, options};
  fleet->connect_options_.framings = fleet_options.framings;
  fleet->connect_options_.transport = fleet_options.client;

  for (const std::string& address : addresses) {
    try {
      auto endpoint = std::make_unique<Endpoint>();
      endpoint->address = address;
      // FleetBackend::Endpoint shadows the transport-level Endpoint.
      endpoint->dial = ::ft::service::Endpoint::parse(address);
      endpoint->jitter_state = fleet_options.client.jitter_seed ^
                               support::fnv1a64(address);
      endpoint->client =
          Client::connect(endpoint->dial, fleet->connect_options_);
      fleet->endpoints_.push_back(std::move(endpoint));
    } catch (const ServiceError& refusal) {
      const std::string code = refusal.code();
      if (code == "unsupported_architecture" ||
          code == "unknown_architecture") {
        // The heterogeneous-fleet filter: this daemon does not serve
        // the workspace's arch, so it simply is not part of THIS
        // backend. Other cells may still use it.
        continue;
      }
      if (is_transport_code(code)) {
        // Down right now; the fleet exists to survive exactly this.
        std::cerr << "ftune: fleet endpoint " << address
                  << " unavailable: " << refusal.what() << '\n';
        continue;
      }
      throw;  // bad options / version skew: every endpoint would refuse
    }
  }
  if (fleet->endpoints_.empty()) {
    throw ServiceError("fleet", "no usable fleet endpoint for " + program +
                                    " on " + arch);
  }

  for (std::size_t i = 0; i < fleet->endpoints_.size(); ++i) {
    for (int replica = 0; replica < kRingReplicas; ++replica) {
      const std::string node = fleet->endpoints_[i]->address + '#' +
                               std::to_string(replica);
      fleet->ring_.emplace_back(support::fnv1a64(node), i);
    }
  }
  std::sort(fleet->ring_.begin(), fleet->ring_.end());
  fleet->home_ = fleet->ring_successor(
      workspace_hash(program, arch, options, personality));

  // The probe thread runs even for a single endpoint: it is also the
  // breaker's half-open reconnect path, and a lone daemon that
  // restarts deserves to be re-adopted just as much as a fleet member.
  if (fleet_options.probe_interval_seconds > 0) {
    fleet->probe_thread_ = std::thread([raw = fleet.get()] {
      raw->probe_loop();
    });
  }
  return fleet;
}

FleetBackend::~FleetBackend() {
  stopping_.store(true, std::memory_order_release);
  if (probe_thread_.joinable()) probe_thread_.join();
}

std::size_t FleetBackend::ring_successor(std::uint64_t key_hash) const {
  const auto it = std::upper_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(key_hash, std::numeric_limits<std::size_t>::max()));
  return it == ring_.end() ? ring_.front().second : it->second;
}

int FleetBackend::next_alive(std::size_t start) const {
  for (std::size_t step = 0; step < endpoints_.size(); ++step) {
    const std::size_t index = (start + step) % endpoints_.size();
    if (endpoints_[index]->alive.load(std::memory_order_acquire)) {
      return static_cast<int>(index);
    }
  }
  return -1;
}

std::size_t FleetBackend::alive_count() const noexcept {
  std::size_t count = 0;
  for (const auto& endpoint : endpoints_) {
    if (endpoint->alive.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

const std::string& FleetBackend::home_address() const noexcept {
  return endpoints_[home_]->address;
}

FleetBackend::Stats FleetBackend::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

std::shared_ptr<Client> FleetBackend::client_for(std::size_t index) {
  Endpoint& endpoint = *endpoints_[index];
  std::lock_guard lock(endpoint.wire_mutex);
  return endpoint.client;
}

void FleetBackend::drain(std::size_t index) {
  Endpoint& endpoint = *endpoints_[index];
  if (!endpoint.alive.exchange(false, std::memory_order_acq_rel)) return;
  // Wake any thread blocked on this endpoint's wire right now.
  const std::shared_ptr<Client> client = client_for(index);
  if (client) client->abort();
  std::lock_guard lock(stats_mutex_);
  ++stats_.endpoints_drained;
}

void FleetBackend::note_transport_failure(std::size_t index) {
  Endpoint& endpoint = *endpoints_[index];
  bool opened = false;
  {
    std::lock_guard lock(endpoint.breaker_mutex);
    ++endpoint.consecutive_failures;
    if (endpoint.consecutive_failures >=
        options_.breaker_failure_threshold) {
      // Open spell: exponential backoff with deterministic
      // per-endpoint jitter, so N clients that watched the same
      // daemon die do not re-dial it in lockstep.
      double backoff =
          std::min(options_.breaker_reopen_base_seconds *
                       std::ldexp(1.0, endpoint.open_spells),
                   options_.breaker_reopen_max_seconds);
      const double u =
          static_cast<double>(
              support::splitmix64(endpoint.jitter_state) >> 11) *
          0x1.0p-53;
      backoff += backoff * 0.25 * u;
      endpoint.reopen_at = monotonic_seconds() + backoff;
      ++endpoint.open_spells;
      opened = true;
    } else {
      endpoint.reopen_at = 0.0;  // below threshold: retry immediately
    }
  }
  drain(index);
  if (opened) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.breaker_opens;
  }
}

void FleetBackend::note_success(std::size_t index) {
  Endpoint& endpoint = *endpoints_[index];
  std::lock_guard lock(endpoint.breaker_mutex);
  endpoint.consecutive_failures = 0;
  endpoint.open_spells = 0;
}

void FleetBackend::probe_pass() {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    Endpoint& endpoint = *endpoints_[i];
    if (endpoint.alive.load(std::memory_order_acquire)) {
      // Do not inject probes into a wire that is mid-batch: the
      // dispatcher's own traffic already proves liveness, and a ping
      // queued behind a long eval_batch would time out spuriously.
      if (endpoint.inflight.load(std::memory_order_acquire) > 0) {
        continue;
      }
      try {
        client_for(i)->ping();
        note_success(i);
      } catch (const std::exception&) {
        {
          std::lock_guard lock(stats_mutex_);
          ++stats_.probe_failures;
        }
        note_transport_failure(i);
      }
      continue;
    }
    // Dead endpoint: honor the breaker's backoff, then go half-open -
    // ONE fresh dial+handshake+ping decides. Success re-closes the
    // breaker and republishes the wire; failure doubles the backoff.
    {
      std::lock_guard lock(endpoint.breaker_mutex);
      if (monotonic_seconds() < endpoint.reopen_at) continue;
    }
    try {
      std::shared_ptr<Client> fresh =
          Client::connect(endpoint.dial, connect_options_);
      fresh->ping();
      {
        std::lock_guard lock(endpoint.wire_mutex);
        endpoint.client = std::move(fresh);
      }
      {
        std::lock_guard lock(endpoint.breaker_mutex);
        endpoint.consecutive_failures = 0;
        endpoint.open_spells = 0;
      }
      endpoint.alive.store(true, std::memory_order_release);
      std::lock_guard lock(stats_mutex_);
      ++stats_.breaker_recoveries;
    } catch (const std::exception&) {
      std::lock_guard lock(endpoint.breaker_mutex);
      double backoff =
          std::min(options_.breaker_reopen_base_seconds *
                       std::ldexp(1.0, endpoint.open_spells),
                   options_.breaker_reopen_max_seconds);
      const double u =
          static_cast<double>(
              support::splitmix64(endpoint.jitter_state) >> 11) *
          0x1.0p-53;
      backoff += backoff * 0.25 * u;
      endpoint.reopen_at = monotonic_seconds() + backoff;
      ++endpoint.open_spells;
    }
  }
}

void FleetBackend::probe_loop() {
  const auto interval = std::chrono::duration<double>(
      options_.probe_interval_seconds);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep in small slices so destruction never waits a full period.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (std::chrono::steady_clock::now() < next) continue;
    next = std::chrono::steady_clock::now() + interval;
    probe_pass();
  }
}

std::vector<core::EvalBackend::RawResult> FleetBackend::run_many(
    std::span<const core::EvalRequest> requests) {
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.batches_dispatched;
  }
  if (requests.empty()) return {};

  // One chunk = one wire frame anywhere in the fleet, so chunks may
  // never exceed the SMALLEST advertised max_batch: any endpoint can
  // then take any chunk, which is what makes stealing and re-dispatch
  // free. Below that cap, split the batch several times finer than
  // the fleet is wide - enough granularity for stealing to spread the
  // load, coarse enough that framing overhead stays negligible.
  std::size_t chunk_limit = requests.size();
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::shared_ptr<Client> client = client_for(i);
    const std::size_t advertised = client ? client->max_batch() : 0;
    if (advertised > 0) chunk_limit = std::min(chunk_limit, advertised);
  }
  const std::size_t alive = std::max<std::size_t>(alive_count(), 1);
  if (alive > 1) {
    const std::size_t spread =
        (requests.size() + 4 * alive - 1) / (4 * alive);
    chunk_limit = std::min(chunk_limit, std::max<std::size_t>(spread, 1));
  }
  if (chunk_limit == 0) chunk_limit = 1;

  struct Chunk {
    std::size_t begin = 0;
    std::size_t count = 0;
    int dispatches = 0;
  };
  std::vector<Chunk> chunks;
  for (std::size_t begin = 0; begin < requests.size();
       begin += chunk_limit) {
    chunks.push_back(
        Chunk{begin, std::min(chunk_limit, requests.size() - begin), 0});
  }

  // Shared batch state. All chunks start on the workspace's home
  // queue (consistent hashing keeps one daemon's compiled-module
  // cache hot for this workspace); idle endpoints steal from the
  // back, a dying endpoint's worker re-queues its chunks elsewhere.
  std::mutex mutex;
  std::condition_variable ready;
  std::vector<std::deque<std::size_t>> queues(endpoints_.size());
  std::size_t pending = chunks.size();
  std::exception_ptr fatal;
  std::vector<core::EvalResponse> responses(requests.size());

  {
    const int home = next_alive(home_);
    if (home < 0) {
      throw ServiceError("fleet", "every fleet endpoint is drained");
    }
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      queues[static_cast<std::size_t>(home)].push_back(c);
    }
  }

  auto worker = [&](std::size_t self) {
    Endpoint& endpoint = *endpoints_[self];
    while (true) {
      std::size_t chunk_index = 0;
      {
        std::unique_lock lock(mutex);
        ready.wait(lock, [&] {
          if (pending == 0 || fatal) return true;
          if (!endpoint.alive.load(std::memory_order_acquire)) return true;
          if (!queues[self].empty()) return true;
          for (const auto& queue : queues) {
            if (!queue.empty()) return true;
          }
          return false;  // everything is inflight on other endpoints
        });
        if (pending == 0 || fatal) return;
        if (!endpoint.alive.load(std::memory_order_acquire)) return;
        if (!queues[self].empty()) {
          chunk_index = queues[self].front();
          queues[self].pop_front();
        } else {
          // Steal from the longest queue's back: those are the chunks
          // their owner would reach last anyway.
          std::size_t victim = self;
          std::size_t longest = 0;
          for (std::size_t i = 0; i < queues.size(); ++i) {
            if (queues[i].size() > longest) {
              longest = queues[i].size();
              victim = i;
            }
          }
          if (longest == 0) continue;  // re-check the wait predicate
          chunk_index = queues[victim].back();
          queues[victim].pop_back();
          std::lock_guard stats_lock(stats_mutex_);
          ++stats_.chunks_stolen;
        }
      }

      Chunk& chunk = chunks[chunk_index];
      endpoint.inflight.fetch_add(1, std::memory_order_acq_rel);
      try {
        // Snapshot the wire: a concurrent breaker reconnect swaps the
        // endpoint's client, but THIS call finishes on the session it
        // started with.
        const std::shared_ptr<Client> wire = client_for(self);
        std::vector<core::EvalResponse> replies = wire->call_many(
            requests.subspan(chunk.begin, chunk.count));
        endpoint.inflight.fetch_sub(1, std::memory_order_acq_rel);
        note_success(self);
        std::lock_guard lock(mutex);
        for (std::size_t i = 0; i < replies.size(); ++i) {
          responses[chunk.begin + i] = std::move(replies[i]);
        }
        if (--pending == 0) ready.notify_all();
      } catch (const ServiceError& error) {
        endpoint.inflight.fetch_sub(1, std::memory_order_acq_rel);
        const bool transport = is_transport_code(error.code());
        const bool bounced = is_bounce_code(error.code());
        if (!transport && !bounced) {
          std::lock_guard lock(mutex);
          if (!fatal) fatal = std::current_exception();
          ready.notify_all();
          return;
        }
        if (transport) note_transport_failure(self);
        std::unique_lock lock(mutex);
        // The failed chunk plus (when dying) everything still queued
        // here moves to the next alive endpoint in ring order.
        std::deque<std::size_t> orphans;
        orphans.push_back(chunk_index);
        if (transport) {
          orphans.insert(orphans.end(), queues[self].begin(),
                         queues[self].end());
          queues[self].clear();
        }
        const int target = next_alive(self + 1);
        bool exhausted = target < 0;
        for (const std::size_t orphan : orphans) {
          if (++chunks[orphan].dispatches >
              options_.max_chunk_redispatch) {
            exhausted = true;
          }
        }
        if (exhausted) {
          if (!fatal) {
            fatal = std::make_exception_ptr(ServiceError(
                "fleet",
                target < 0
                    ? "every fleet endpoint died mid-batch"
                    : "chunk re-dispatched too many times: " +
                          std::string(error.what())));
          }
          ready.notify_all();
          return;
        }
        {
          std::lock_guard stats_lock(stats_mutex_);
          stats_.redispatches += orphans.size();
        }
        for (const std::size_t orphan : orphans) {
          queues[static_cast<std::size_t>(target)].push_back(orphan);
        }
        ready.notify_all();
        if (transport) return;  // this endpoint is gone; worker exits
      } catch (...) {
        endpoint.inflight.fetch_sub(1, std::memory_order_acq_rel);
        std::lock_guard lock(mutex);
        if (!fatal) fatal = std::current_exception();
        ready.notify_all();
        return;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i]->alive.load(std::memory_order_acquire)) {
      workers.emplace_back(worker, i);
    }
  }
  for (std::thread& thread : workers) thread.join();

  if (fatal) std::rethrow_exception(fatal);
  if (pending != 0) {
    throw ServiceError("fleet", "batch incomplete: no alive endpoint");
  }

  std::vector<RawResult> results;
  results.reserve(responses.size());
  for (const core::EvalResponse& response : responses) {
    if (!response.ok()) {
      throw ServiceError("remote_fault",
                         "daemon-side raw run failed: " +
                             response.outcome.error.detail);
    }
    results.push_back(
        RawResult{response.outcome.result, response.modules_compiled});
  }
  return results;
}

core::EvalBackend::RawResult FleetBackend::run(
    const compiler::ModuleAssignment& assignment,
    const machine::RunOptions& options) {
  core::EvalRequest request;
  request.assignment = assignment;
  request.rep_base = options.rep_base;
  request.repetitions = options.repetitions;
  request.instrumented = options.instrumented;
  request.noise = options.noise;
  request.aggregate = options.aggregate;

  // Home-first failover: walk the endpoints in ring order until one
  // answers. Any of them produces the identical bits.
  int index = next_alive(home_);
  for (std::size_t attempt = 0;
       index >= 0 && attempt < endpoints_.size(); ++attempt) {
    const std::size_t self = static_cast<std::size_t>(index);
    Endpoint& endpoint = *endpoints_[self];
    endpoint.inflight.fetch_add(1, std::memory_order_acq_rel);
    try {
      const std::shared_ptr<Client> wire = client_for(self);
      const core::EvalResponse response = wire->call(request);
      endpoint.inflight.fetch_sub(1, std::memory_order_acq_rel);
      note_success(self);
      if (!response.ok()) {
        throw ServiceError("remote_fault",
                           "daemon-side raw run failed: " +
                               response.outcome.error.detail);
      }
      return RawResult{response.outcome.result, response.modules_compiled};
    } catch (const ServiceError& error) {
      endpoint.inflight.fetch_sub(1, std::memory_order_acq_rel);
      if (is_bounce_code(error.code())) {
        // Backpressure/deadline: the endpoint is healthy, this
        // request just needs to land somewhere with headroom.
        index = next_alive(self + 1);
        if (index == static_cast<int>(self)) break;  // nowhere else
        continue;
      }
      if (!is_transport_code(error.code())) throw;
      note_transport_failure(self);
      index = next_alive(self + 1);
    }
  }
  throw ServiceError("fleet", "every fleet endpoint is drained");
}

std::function<std::shared_ptr<core::EvalBackend>(
    const ir::Program&, const machine::Architecture&,
    const core::FuncyTunerOptions&)>
make_fleet_backend_factory(std::vector<std::string> addresses,
                           FleetOptions options,
                           compiler::Personality personality) {
  return [addresses = std::move(addresses), options, personality](
             const ir::Program& program,
             const machine::Architecture& arch,
             const core::FuncyTunerOptions& cell_options)
             -> std::shared_ptr<core::EvalBackend> {
    return FleetBackend::connect(addresses, program.name(), arch.name,
                                 cell_options, personality, options);
  };
}

}  // namespace ft::service
