// Client side of the ftuned evaluation service: a framed-RPC session
// plus the EvalBackend adapter that plugs it into an Evaluator. With
// `RemoteBackend` attached, every raw measurement a tuning run needs
// travels to the daemon (batches as ONE frame) while all resilience
// bookkeeping stays local - `ftune --remote ADDR` is bit-identical to
// a plain `ftune` run.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/funcy_tuner.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace ft::service {

/// Knobs for one client session's transport behavior. All are plumbed
/// from the ftune CLI (`--io-timeout`); the defaults match it.
struct ClientOptions {
  /// Per-frame recv/send deadline in seconds. A peer that accepts and
  /// then goes silent surfaces as a retryable ServiceError("timeout")
  /// instead of a hang. <= 0 disables the deadline.
  double io_timeout_seconds = 30.0;
  /// Bounded patience for retryable "overloaded" refusals: at most
  /// this many resends of the same frame before giving up loudly.
  int overload_max_attempts = 8;
  /// First retry sleeps this long; each further retry doubles it
  /// (plus deterministic jitter), so 8 attempts ~= 2.5 s total.
  double overload_base_sleep_ms = 10.0;
  /// Seed for the jitter stream. Deterministic so two runs of the same
  /// command back off identically (bit-identity covers timing-free
  /// outputs only, but reproducible schedules make hangs debuggable).
  std::uint64_t jitter_seed = 0;

  [[nodiscard]] int io_timeout_ms() const noexcept {
    return io_timeout_seconds > 0
               ? static_cast<int>(io_timeout_seconds * 1000.0)
               : -1;
  }
};

/// One connected, greeted session. Methods are serialized by an
/// internal mutex (the wire is strictly request -> response), so one
/// Client may back a many-worker Evaluator. Throws ServiceError with
/// the server's error code on refusals; retries "overloaded" refusals
/// itself with a bounded backoff.
class Client {
 public:
  /// Connects and handshakes; throws ServiceError on refusal.
  /// `options` must be the same FuncyTunerOptions the local tuner was
  /// built with - the measurement-relevant subset is what selects the
  /// daemon workspace.
  [[nodiscard]] static std::unique_ptr<Client> connect(
      const std::string& address, const std::string& program,
      const std::string& arch, const core::FuncyTunerOptions& options,
      compiler::Personality personality = compiler::Personality::kIcc,
      const ClientOptions& client_options = {});

  ~Client();  // best-effort bye
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One evaluation round-trip.
  [[nodiscard]] core::EvalResponse call(
      const core::EvalRequest& request);
  /// Batched round-trip; result[i] answers requests[i]. Transparently
  /// splits into max_batch()-sized frames.
  [[nodiscard]] std::vector<core::EvalResponse> call_many(
      std::span<const core::EvalRequest> requests);
  /// Liveness probe; throws ServiceError when the daemon is gone.
  void ping();

  /// Tears down the transport from ANY thread: a blocked recv/send in
  /// another thread wakes immediately with a transport error. Used by
  /// the fleet to drain a daemon declared dead by the health probe.
  void abort() noexcept { socket_.shutdown_both(); }

  [[nodiscard]] std::size_t max_batch() const noexcept {
    return welcome_.max_batch;
  }
  [[nodiscard]] const WelcomeFrame& welcome() const noexcept {
    return welcome_;
  }

 private:
  Client() = default;
  /// Sends one frame and returns the parsed reply, absorbing retryable
  /// "overloaded" refusals (bounded attempts, exponential backoff with
  /// deterministic jitter). Caller holds mutex_.
  [[nodiscard]] support::JsonValue roundtrip_locked(
      const std::string& frame);

  Socket socket_;
  std::mutex mutex_;
  std::uint64_t next_seq_ = 1;
  WelcomeFrame welcome_;
  ClientOptions options_;
  std::uint64_t jitter_state_ = 0;
};

/// EvalBackend over a Client: substitutes the daemon for the local
/// engine as the raw measurement executor. batches_remotely() makes
/// Evaluator::evaluate_batch coalesce all pending raw runs of a batch
/// into one run_many() -> one eval_batch frame.
class RemoteBackend final : public core::EvalBackend {
 public:
  explicit RemoteBackend(std::shared_ptr<Client> client)
      : client_(std::move(client)) {}

  [[nodiscard]] RawResult run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options) override;
  [[nodiscard]] std::vector<RawResult> run_many(
      std::span<const core::EvalRequest> requests) override;
  [[nodiscard]] bool batches_remotely() const noexcept override {
    return true;
  }

  [[nodiscard]] const std::shared_ptr<Client>& client() const noexcept {
    return client_;
  }

 private:
  std::shared_ptr<Client> client_;
};

}  // namespace ft::service
