// Client side of the ftuned evaluation service: a framed-RPC session
// plus the EvalBackend adapter that plugs it into an Evaluator. With
// `RemoteBackend` attached, every raw measurement a tuning run needs
// travels to the daemon (batches as ONE frame) while all resilience
// bookkeeping stays local - `ftune --remote ADDR` is bit-identical to
// a plain `ftune` run, under either framing.
//
// Transport setup lives in service/connect.hpp (the single dial +
// handshake + negotiation path shared with the fleet); Client adds
// the RPC surface, the overload-retry policy, and reusable
// encode/decode buffers so the steady-state hot path allocates
// nothing under binary framing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/funcy_tuner.hpp"
#include "service/connect.hpp"
#include "service/framing.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace ft::service {

/// One connected, greeted session. Methods are serialized by an
/// internal mutex (the wire is strictly request -> response), so one
/// Client may back a many-worker Evaluator. Throws ServiceError with
/// the server's error code on refusals; retries "overloaded" refusals
/// itself with a bounded backoff.
class Client {
 public:
  /// The one true constructor: adopts a connect()-style setup.
  [[nodiscard]] static std::unique_ptr<Client> connect(
      const Endpoint& endpoint, const ConnectOptions& options);

  /// Convenience overload (the historical signature): JSON framing,
  /// fields spread out. Equivalent to packing them into ConnectOptions.
  [[nodiscard]] static std::unique_ptr<Client> connect(
      const std::string& address, const std::string& program,
      const std::string& arch, const core::FuncyTunerOptions& options,
      compiler::Personality personality = compiler::Personality::kIcc,
      const ClientOptions& client_options = {});

  ~Client();  // best-effort bye
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One evaluation round-trip.
  [[nodiscard]] core::EvalResponse call(
      const core::EvalRequest& request);
  /// Batched round-trip; result[i] answers requests[i]. Transparently
  /// splits into max_batch()-sized frames.
  [[nodiscard]] std::vector<core::EvalResponse> call_many(
      std::span<const core::EvalRequest> requests);
  /// Liveness probe; throws ServiceError when the daemon is gone.
  void ping();

  /// Tears down the transport from ANY thread: a blocked recv/send in
  /// another thread wakes immediately with a transport error. Used by
  /// the fleet to drain a daemon declared dead by the health probe.
  void abort() noexcept { session_.abort(); }

  [[nodiscard]] std::size_t max_batch() const noexcept {
    return session_.welcome().max_batch;
  }
  [[nodiscard]] const WelcomeFrame& welcome() const noexcept {
    return session_.welcome();
  }
  /// What hello/welcome negotiation settled on for this session.
  [[nodiscard]] Framing framing() const noexcept {
    return session_.framing();
  }

 private:
  Client() = default;
  /// Sends write_buffer_ and decodes the reply into reply_, absorbing
  /// retryable "overloaded" refusals (bounded attempts, exponential
  /// backoff with deterministic jitter). Caller holds mutex_ and has
  /// encoded the outgoing frame into write_buffer_.
  void roundtrip_locked();

  Session session_;
  std::mutex mutex_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t jitter_state_ = 0;
  /// Reused across calls (capacity survives): zero steady-state
  /// allocations on the binary ping path, and no per-frame prefix
  /// temporaries anywhere.
  FrameBuffer write_buffer_;
  FrameBuffer read_buffer_;
  AnyFrame reply_;
};

/// EvalBackend over a Client: substitutes the daemon for the local
/// engine as the raw measurement executor. batches_remotely() makes
/// Evaluator::evaluate_batch coalesce all pending raw runs of a batch
/// into one run_many() -> one eval_batch frame.
class RemoteBackend final : public core::EvalBackend {
 public:
  explicit RemoteBackend(std::shared_ptr<Client> client)
      : client_(std::move(client)) {}

  [[nodiscard]] RawResult run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options) override;
  [[nodiscard]] std::vector<RawResult> run_many(
      std::span<const core::EvalRequest> requests) override;
  [[nodiscard]] bool batches_remotely() const noexcept override {
    return true;
  }

  [[nodiscard]] const std::shared_ptr<Client>& client() const noexcept {
    return client_;
  }

 private:
  std::shared_ptr<Client> client_;
};

}  // namespace ft::service
