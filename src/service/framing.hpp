// Wire framing for the ftuned evaluation service: every message is one
// length-prefixed payload. The prefix is a 4-byte big-endian payload
// length, so frames are self-delimiting regardless of payload content
// (JSON or negotiated binary) and a reader can reject an oversized
// frame before allocating for it. Framing is transport-agnostic (any
// stream socket fd).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ft::service {

namespace chaos {
class ChaosEngine;
}

/// Upper bound on one frame's payload. 16 MiB comfortably holds a
/// maximal eval_batch (1000+ requests with hundreds of loop CVs each)
/// while bounding what a malicious or corrupted peer can make the
/// server allocate.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameStatus {
  kOk,        ///< one complete frame read
  kClosed,    ///< orderly EOF on a frame boundary
  kTooLarge,  ///< declared length exceeds the cap (stream unusable)
  kTorn,      ///< EOF or I/O error mid-frame (stream unusable)
  kTimeout,   ///< deadline expired mid-frame (stream unusable)
};

/// Reusable frame storage. A session that threads ONE FrameBuffer
/// through its encode -> write -> read -> decode cycle reaches a
/// steady state with zero per-frame allocations: `payload` keeps its
/// high-water capacity across read_frame calls and encoders append
/// into it after clear(). (A fresh std::string per frame - the PR 6
/// pattern - paid an allocation plus a copy on every single frame.)
struct FrameBuffer {
  std::string payload;

  /// clear() preserving capacity; encoders call this before appending.
  void reset() noexcept { payload.clear(); }
};

/// Reads exactly one frame. On kOk, `*payload` holds the payload
/// bytes. kTooLarge, kTorn and kTimeout leave the stream
/// unsynchronized: the caller must close the connection (after an
/// error frame, if it can). `timeout_ms < 0` blocks forever;
/// otherwise the WHOLE frame must arrive within the deadline - a peer
/// that accepts and then goes silent (or trickles bytes) yields
/// kTimeout instead of a hang. Pass a long-lived string (or a
/// FrameBuffer's payload) to amortize the allocation away. A non-null
/// `chaos` engine may inject read delays, stalls and EINTR storms -
/// the deadline is absolute, so injected faults consume budget, never
/// extend it.
[[nodiscard]] FrameStatus read_frame(
    int fd, std::string* payload,
    std::size_t max_bytes = kDefaultMaxFrameBytes, int timeout_ms = -1,
    chaos::ChaosEngine* chaos = nullptr);

[[nodiscard]] inline FrameStatus read_frame(
    int fd, FrameBuffer& buffer,
    std::size_t max_bytes = kDefaultMaxFrameBytes, int timeout_ms = -1,
    chaos::ChaosEngine* chaos = nullptr) {
  return read_frame(fd, &buffer.payload, max_bytes, timeout_ms, chaos);
}

/// Writes one frame (prefix + payload) as a single vectored send
/// (sendmsg with a two-entry iovec), so neither a prefix+payload copy
/// nor a separate 4-byte segment - which would trip TCP's
/// Nagle/delayed-ACK interaction - ever happens. False on any I/O
/// error or on deadline expiry with an unwritable peer (timeout_ms <
/// 0 = block forever); short writes are retried internally. Never
/// raises SIGPIPE. A non-null `chaos` engine may tear the write into
/// tiny chunks, storm it with EINTR, or reset the connection mid-frame
/// (in which case the call reports failure like any dead peer).
[[nodiscard]] bool write_frame(int fd, std::string_view payload,
                               int timeout_ms = -1,
                               chaos::ChaosEngine* chaos = nullptr);

}  // namespace ft::service
