// Wire framing for the ftuned evaluation service: every message is one
// length-prefixed JSON document. The prefix is a 4-byte big-endian
// payload length, so frames are self-delimiting regardless of payload
// content and a reader can reject an oversized frame before allocating
// for it. Framing is transport-agnostic (any stream socket fd).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ft::service {

/// Upper bound on one frame's payload. 16 MiB comfortably holds a
/// maximal eval_batch (1000+ requests with hundreds of loop CVs each)
/// while bounding what a malicious or corrupted peer can make the
/// server allocate.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameStatus {
  kOk,        ///< one complete frame read
  kClosed,    ///< orderly EOF on a frame boundary
  kTooLarge,  ///< declared length exceeds the cap (stream unusable)
  kTorn,      ///< EOF or I/O error mid-frame (stream unusable)
  kTimeout,   ///< deadline expired mid-frame (stream unusable)
};

/// Reads exactly one frame. On kOk, `*payload` holds the JSON text.
/// kTooLarge, kTorn and kTimeout leave the stream unsynchronized: the
/// caller must close the connection (after an error frame, if it can).
/// `timeout_ms < 0` blocks forever; otherwise the WHOLE frame must
/// arrive within the deadline - a peer that accepts and then goes
/// silent (or trickles bytes) yields kTimeout instead of a hang.
[[nodiscard]] FrameStatus read_frame(
    int fd, std::string* payload,
    std::size_t max_bytes = kDefaultMaxFrameBytes, int timeout_ms = -1);

/// Writes one frame (prefix + payload). False on any I/O error or on
/// deadline expiry with an unwritable peer (timeout_ms < 0 = block
/// forever); short writes are retried internally. Never raises SIGPIPE.
[[nodiscard]] bool write_frame(int fd, std::string_view payload,
                               int timeout_ms = -1);

}  // namespace ft::service
