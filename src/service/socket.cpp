#include "service/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "service/chaos.hpp"

namespace ft::service {

namespace {

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ServiceError("bad_address",
                       "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Frames are written as single sends and every exchange is strictly
/// request -> response, so Nagle buys nothing and its delayed-ACK
/// interaction would add tens of milliseconds per round-trip.
void disable_nagle(int fd) {
  const int yes = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
}

sockaddr_in tcp_sockaddr(const Address& address) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(address.port));
  if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    throw ServiceError("bad_address",
                       "not a numeric IPv4 host: " + address.host);
  }
  return addr;
}

}  // namespace

Address Address::parse(const std::string& spec) {
  Address address;
  if (spec.rfind("unix:", 0) == 0) {
    address.is_unix = true;
    address.path = spec.substr(5);
    if (address.path.empty()) {
      throw ServiceError("bad_address", "empty unix socket path");
    }
    return address;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    address.is_unix = false;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.find_last_of(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw ServiceError("bad_address",
                         "expected tcp:host:port, got '" + spec + "'");
    }
    address.host = rest.substr(0, colon);
    char* end = nullptr;
    const long port = std::strtol(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      throw ServiceError("bad_address",
                         "bad tcp port in '" + spec + "'");
    }
    address.port = static_cast<int>(port);
    return address;
  }
  throw ServiceError(
      "bad_address",
      "expected unix:PATH or tcp:host:port, got '" + spec + "'");
}

std::string Address::display() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect(const Address& address,
                       chaos::ChaosEngine* chaos) {
  if (chaos != nullptr && chaos->should_fail_connect()) {
    throw ServiceError("connect", "cannot connect to " +
                                      address.display() +
                                      ": injected chaos dial failure");
  }
  const int fd =
      ::socket(address.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ServiceError("connect", "socket(): " + std::string(
                                      std::strerror(errno)));
  }
  Socket socket(fd);
  int rc;
  if (address.is_unix) {
    const sockaddr_un addr = unix_sockaddr(address.path);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    // An EINTR'd connect may have completed in the background; the
    // retry then reports EISCONN, which IS success.
    if (rc != 0 && errno == EISCONN) rc = 0;
  } else {
    const sockaddr_in addr = tcp_sockaddr(address);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && errno == EISCONN) rc = 0;
    if (rc == 0) disable_nagle(fd);
  }
  if (rc != 0) {
    throw ServiceError("connect", "cannot connect to " +
                                      address.display() + ": " +
                                      std::strerror(errno));
  }
  return socket;
}

void Socket::set_nonblocking() noexcept {
  if (fd_ >= 0) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), address_(std::move(other.address_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    other.fd_ = -1;
  }
  return *this;
}

Listener Listener::bind(const Address& address) {
  const int fd =
      ::socket(address.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ServiceError("bind", "socket(): " + std::string(
                                   std::strerror(errno)));
  }
  Listener listener;
  listener.fd_ = fd;
  listener.address_ = address;
  int rc;
  if (address.is_unix) {
    ::unlink(address.path.c_str());  // replace a stale socket file
    const sockaddr_un addr = unix_sockaddr(address.path);
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr));
  } else {
    const int yes = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
    const sockaddr_in addr = tcp_sockaddr(address);
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr));
  }
  if (rc != 0 || ::listen(fd, 64) != 0) {
    throw ServiceError("bind", "cannot listen on " + address.display() +
                                   ": " + std::strerror(errno));
  }
  if (!address.is_unix) {
    // Read back the ephemeral port for tcp:host:0.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      listener.address_.port = ntohs(bound.sin_port);
    }
  }
  return listener;
}

Socket Listener::accept_within(int timeout_ms) {
  if (fd_ < 0) return Socket();
  // Absolute deadline: EINTR (a signal storm, a profiler tick) retries
  // the poll with the REMAINING budget, never a fresh one. The old
  // code treated poll()==-1 as a timeout, so one stray signal made an
  // accept loop drop a pending connection on the floor.
  using clock = std::chrono::steady_clock;
  const bool unbounded = timeout_ms < 0;
  const clock::time_point deadline =
      clock::now() + std::chrono::milliseconds(unbounded ? 0 : timeout_ms);
  for (;;) {
    int budget = -1;
    if (!unbounded) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - clock::now());
      budget = static_cast<int>(std::max<long long>(left.count(), 0));
    }
    pollfd entry{fd_, POLLIN, 0};
    const int ready = ::poll(&entry, 1, budget);
    if (ready == 0) return Socket();  // genuine timeout
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    int fd;
    do {
      fd = ::accept(fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      // ECONNABORTED (peer gave up while queued) and friends: the
      // listener itself is fine, wait for the next connection.
      if (errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return Socket();
    }
    if (!address_.is_unix) disable_nagle(fd);
    return Socket(fd);
  }
}

Socket Listener::accept_nonblocking() {
  if (fd_ < 0) return Socket();
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Socket();
  if (!address_.is_unix) disable_nagle(fd);
  return Socket(fd);
}

void Listener::set_nonblocking() noexcept {
  if (fd_ >= 0) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (address_.is_unix && !address_.path.empty()) {
      ::unlink(address_.path.c_str());
    }
  }
}

void ignore_sigpipe() noexcept {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction current{};
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler != SIG_DFL) {
      return;  // the application chose its own handler; respect it
    }
    struct sigaction ignore{};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    (void)::sigaction(SIGPIPE, &ignore, nullptr);
  });
}

}  // namespace ft::service
