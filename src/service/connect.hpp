// The ONE way to reach an ftuned daemon: service::connect(Endpoint,
// ConnectOptions) dials, handshakes (hello -> welcome, including
// capability negotiation) and returns a Session owning the socket,
// the negotiated framing and the transport knobs. Client wraps a
// Session with the RPC surface; FleetBackend holds one Session-backed
// Client per endpoint. Before this existed, dial/handshake logic was
// duplicated across client.cpp and fleet.cpp and grew apart; now a
// protocol change (like the binary framing) lands in exactly one
// place.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/funcy_tuner.hpp"
#include "service/chaos.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace ft::service {

/// One dialable daemon address. Keeps the original spec string (the
/// fleet displays and hashes it) next to the parsed form.
struct Endpoint {
  std::string spec;  ///< "unix:PATH" or "tcp:host:port"
  Address address;

  /// Throws ServiceError("bad_address") for anything unparseable.
  [[nodiscard]] static Endpoint parse(const std::string& spec) {
    return Endpoint{spec, Address::parse(spec)};
  }
};

/// The evaluation context a session greets for. The
/// measurement-relevant option subset is what selects the daemon
/// workspace, so this must match the local tuner's configuration for
/// bit-identity to hold.
struct WorkspaceSpec {
  std::string program;  ///< benchmark name (programs::by_name)
  std::string arch;     ///< machine::architecture_by_name key
  compiler::Personality personality = compiler::Personality::kIcc;
  core::FuncyTunerOptions options;
};

/// Transport knobs for one session. All are plumbed from the ftune
/// CLI (`--io-timeout`); the defaults match it.
struct ClientOptions {
  /// Per-frame recv/send deadline in seconds. A peer that accepts and
  /// then goes silent surfaces as a retryable ServiceError("timeout")
  /// instead of a hang. <= 0 disables the deadline.
  double io_timeout_seconds = 30.0;
  /// Bounded patience for retryable "overloaded" refusals: at most
  /// this many resends of the same frame before giving up loudly.
  int overload_max_attempts = 8;
  /// First retry sleeps this long; each further retry doubles it
  /// (plus deterministic jitter), so 8 attempts ~= 2.5 s total.
  double overload_base_sleep_ms = 10.0;
  /// Seed for the jitter stream. Deterministic so two runs of the same
  /// command back off identically (bit-identity covers timing-free
  /// outputs only, but reproducible schedules make hangs debuggable).
  std::uint64_t jitter_seed = 0;
  /// Client-side fault injection (--chaos-seed / FT_CHAOS_SEED; the
  /// env default means ANY existing run can be replayed under chaos).
  /// Disabled unless the seed is nonzero.
  chaos::ChaosConfig chaos = chaos::config_from_env();

  [[nodiscard]] int io_timeout_ms() const noexcept {
    return io_timeout_seconds > 0
               ? static_cast<int>(io_timeout_seconds * 1000.0)
               : -1;
  }
};

struct ConnectOptions {
  WorkspaceSpec workspace;
  /// Framings to offer, most preferred first. JSON is appended
  /// automatically when absent (negotiation must be able to fall back
  /// to the baseline), so {kBinary} means "binary if the daemon can,
  /// JSON otherwise".
  std::vector<Framing> framings = {Framing::kJson};
  ClientOptions transport;
};

/// One connected, greeted transport: the socket, the framing both
/// sides agreed on, and the daemon's welcome (max_batch, served
/// archs). Move-only; closing is orderly (bye) only when the owner
/// says so - Session itself just closes the fd.
class Session {
 public:
  Session() = default;
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }
  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }
  [[nodiscard]] Framing framing() const noexcept { return framing_; }
  [[nodiscard]] const WelcomeFrame& welcome() const noexcept {
    return welcome_;
  }
  [[nodiscard]] const ClientOptions& transport() const noexcept {
    return transport_;
  }
  [[nodiscard]] int io_timeout_ms() const noexcept {
    return transport_.io_timeout_ms();
  }
  /// The session's fault injector; nullptr when chaos is disabled.
  [[nodiscard]] chaos::ChaosEngine* chaos() const noexcept {
    return chaos_.get();
  }

  /// Tears down the transport from ANY thread: a blocked recv/send in
  /// another thread wakes immediately with a transport error.
  void abort() noexcept { socket_.shutdown_both(); }
  void close() noexcept { socket_.close(); }

 private:
  friend Session connect(const Endpoint& endpoint,
                         const ConnectOptions& options);

  Socket socket_;
  Framing framing_ = Framing::kJson;
  WelcomeFrame welcome_;
  ClientOptions transport_;
  std::shared_ptr<chaos::ChaosEngine> chaos_;
};

/// Dials, sends hello (always JSON - it carries the negotiation),
/// reads welcome | error, and adopts the framing the server picked.
/// Throws ServiceError: the server's error code on a refusal,
/// "connect"/"timeout" on transport failure, "bad_frame" when the
/// reply is not a valid handshake (including a server picking a
/// framing that was never offered).
[[nodiscard]] Session connect(const Endpoint& endpoint,
                              const ConnectOptions& options);

}  // namespace ft::service
