// Deterministic transport fault injection for the evaluation service.
//
// A ChaosEngine is a seeded splitmix64 decision stream plus the
// machinery to act on it: torn/short writes, delayed reads, mid-frame
// connection resets, EINTR signal storms, stalled (slow-loris) reads,
// spurious `overloaded` refusals and dial failures, each gated by an
// independent probability. The seed comes from `--chaos-seed` /
// FT_CHAOS_SEED, so a failing soak run replays exactly.
//
// Injection sites take a nullable ChaosEngine*: read_frame/write_frame
// (client and server write paths), Socket::connect, and the server's
// admission control. ClientOptions and ServerOptions default their
// chaos config from the environment, so ANY existing service test can
// be re-run "under chaos" with FT_CHAOS_SEED=N and must still pass -
// the faults perturb scheduling and transport, never results. That is
// the bit-identity-under-chaos contract.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ft::service::chaos {

/// Per-fault probabilities plus fault magnitudes. seed == 0 disables
/// everything (the production default); a nonzero seed with no spec
/// gets the mixed default profile below.
struct ChaosConfig {
  std::uint64_t seed = 0;

  double torn_write = 0.0;    ///< frame write split into tiny chunks
  double delayed_read = 0.0;  ///< short sleep before reading a frame
  double reset_mid_frame = 0.0;  ///< connection reset after a partial write
  double eintr_storm = 0.0;   ///< SIGUSR1 every ~1ms during the I/O op
  double stall = 0.0;         ///< long sleep before reading (slow loris)
  double spurious_overload = 0.0;  ///< server refuses with `overloaded`
  double connect_failure = 0.0;    ///< dial fails with `connect`

  double delay_ms = 2.0;    ///< delayed_read magnitude
  double stall_ms = 120.0;  ///< stall magnitude (cross io timeouts on purpose
                            ///< by raising it past --io-timeout)

  [[nodiscard]] bool enabled() const noexcept { return seed != 0; }

  /// The mixed default profile: every fault on at a moderate rate.
  [[nodiscard]] static ChaosConfig profile(std::uint64_t seed);

  /// profile(seed) overridden by a "name=value,..." spec. Names:
  /// torn-write, delayed-read, reset, eintr, stall, overload, connect,
  /// delay-ms, stall-ms. An empty spec is profile(seed); "off" zeroes
  /// every probability (seeded but quiet). Throws
  /// ServiceError("bad_chaos") for unknown names or unparseable values.
  [[nodiscard]] static ChaosConfig parse(std::uint64_t seed,
                                         const std::string& spec);
};

/// FT_CHAOS_SEED (uint64) + FT_CHAOS (spec string). Unset seed means a
/// disabled config, which is the production default everywhere.
[[nodiscard]] ChaosConfig config_from_env();

/// Thread-safe deterministic fault source. One engine per Session /
/// Server; decisions are a single splitmix64 stream indexed by an
/// atomic counter, so a fixed seed yields a fixed decision sequence
/// (the interleaving across threads may vary, but results never
/// depend on where a fault lands - that is what the soak proves).
class ChaosEngine {
 public:
  explicit ChaosEngine(const ChaosConfig& config);
  ~ChaosEngine();
  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  [[nodiscard]] const ChaosConfig& config() const noexcept {
    return config_;
  }

  /// One Bernoulli draw from the decision stream.
  [[nodiscard]] bool draw(double probability) noexcept;
  [[nodiscard]] std::uint64_t draw_u64() noexcept;

  // --- fault helpers consulted by the injection sites ---------------------

  /// Largest byte count one sendmsg may move right now. SIZE_MAX
  /// normally; a small value (1..7) when a torn write triggers, which
  /// forces the peer to reassemble the frame from fragments.
  [[nodiscard]] std::size_t torn_chunk_limit() noexcept;
  [[nodiscard]] bool should_reset_mid_frame() noexcept;
  /// Sleeps when a delayed-read or stall draw fires.
  void delay_read() noexcept;
  [[nodiscard]] bool should_fail_connect() noexcept;
  [[nodiscard]] bool should_refuse_overloaded() noexcept;

  /// While alive, the constructing thread receives SIGUSR1 roughly
  /// every millisecond from the engine's storm thread, with a no-op
  /// handler installed WITHOUT SA_RESTART - so every blocking poll /
  /// recv / sendmsg underneath keeps returning EINTR and the retry
  /// paths get exercised for real.
  class StormScope {
   public:
    StormScope() = default;
    StormScope(StormScope&& other) noexcept : engine_(other.engine_) {
      other.engine_ = nullptr;
    }
    StormScope& operator=(StormScope&& other) noexcept;
    StormScope(const StormScope&) = delete;
    StormScope& operator=(const StormScope&) = delete;
    ~StormScope();

   private:
    friend class ChaosEngine;
    explicit StormScope(ChaosEngine* engine) : engine_(engine) {}
    ChaosEngine* engine_ = nullptr;
  };

  /// Active scope when the eintr_storm draw fires; inert otherwise.
  [[nodiscard]] StormScope maybe_eintr_storm() noexcept;

 private:
  [[nodiscard]] double u01() noexcept;
  void storm_add(pthread_t thread) noexcept;
  void storm_remove(pthread_t thread) noexcept;
  void storm_loop();

  ChaosConfig config_;
  std::atomic<std::uint64_t> counter_{0};

  std::mutex storm_mutex_;
  std::vector<pthread_t> storm_targets_;
  std::thread storm_thread_;
  bool storm_started_ = false;
  std::atomic<bool> stopping_{false};
};

/// nullptr when the config is disabled - injection sites take the
/// pointer and a null engine costs one branch.
[[nodiscard]] std::shared_ptr<ChaosEngine> make_engine(
    const ChaosConfig& config);

}  // namespace ft::service::chaos
