// Client-side fleet of ftuned daemons behind one EvalBackend. `ftune
// --remote addr1,addr2,...` shards evaluation batches across N daemons
// by consistent hash of the workspace key, rebalances queued chunks by
// work stealing, health-probes every endpoint with ping/pong, and on a
// probe failure or transport error drains the dead daemon and
// re-dispatches its inflight chunks through the survivors. Because
// every daemon computes the same deterministic raw measurements,
// WHERE a request runs never changes WHAT it returns - fleet output
// is bit-identical to a single daemon and to in-process evaluation,
// including under daemon deaths mid-batch.
//
// Heterogeneous fleets: daemons started with `--archs` advertise the
// architectures they serve in the welcome frame and refuse hellos for
// the rest, so connect() keeps only the endpoints eligible for this
// workspace's arch. make_fleet_backend_factory() gives Campaign a
// per-cell factory, pinning each architecture's cells to the daemons
// that can run them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/evaluator.hpp"
#include "service/client.hpp"

namespace ft::service {

struct FleetOptions {
  /// Transport knobs applied to every per-daemon session.
  ClientOptions client;
  /// Framing preference offered to every daemon. Negotiation is
  /// per-endpoint: a mixed fleet where one daemon is JSON-only simply
  /// downgrades that one session, the rest of the fleet stays binary,
  /// and the answers are bit-identical either way.
  std::vector<Framing> framings = {Framing::kJson};
  /// Health probe period. Endpoints idle for a full period get a
  /// ping; a failed probe drains the endpoint. <= 0 disables probing
  /// (transport errors during dispatch still drain).
  double probe_interval_seconds = 2.0;
  /// A chunk bounced by `overloaded` give-ups or endpoint deaths is
  /// re-dispatched at most this many times before the batch fails.
  int max_chunk_redispatch = 8;
  /// Circuit breaker: this many CONSECUTIVE transport failures open
  /// the breaker; below it, a dead endpoint is retried on the next
  /// probe tick (a single torn connection is not an outage).
  int breaker_failure_threshold = 3;
  /// First open spell lasts this long; each further spell doubles it
  /// (plus deterministic per-endpoint jitter) up to the max. A
  /// successful half-open probe resets the spell count.
  double breaker_reopen_base_seconds = 0.5;
  double breaker_reopen_max_seconds = 30.0;
};

/// EvalBackend over N daemon sessions. Thread-safe like the single
/// RemoteBackend (each endpoint's Client serializes its own wire).
class FleetBackend final : public core::EvalBackend {
 public:
  /// Everything the tests (and curious operators) may want to assert
  /// about scheduling. Monotonic over the backend's lifetime.
  struct Stats {
    std::size_t batches_dispatched = 0;  ///< run_many() calls
    std::size_t chunks_stolen = 0;       ///< chunk ran off its home queue
    std::size_t redispatches = 0;        ///< chunk re-queued after a death
    std::size_t probe_failures = 0;      ///< pings that found a dead daemon
    std::size_t endpoints_drained = 0;   ///< endpoints declared dead
    std::size_t breaker_opens = 0;       ///< open spells entered
    std::size_t breaker_recoveries = 0;  ///< half-open probes that healed
  };

  /// Connects and handshakes every address for one workspace
  /// (program, arch, options, personality). Endpoints that refuse the
  /// arch (`unsupported_architecture` / `unknown_architecture`) are
  /// skipped - that is the heterogeneous-fleet filter - as are
  /// endpoints that are down; any OTHER refusal (bad options, version
  /// skew) rethrows. Throws ServiceError("fleet") when no endpoint
  /// can serve the workspace.
  [[nodiscard]] static std::unique_ptr<FleetBackend> connect(
      const std::vector<std::string>& addresses, const std::string& program,
      const std::string& arch, const core::FuncyTunerOptions& options,
      compiler::Personality personality = compiler::Personality::kIcc,
      const FleetOptions& fleet_options = {});

  ~FleetBackend() override;
  FleetBackend(const FleetBackend&) = delete;
  FleetBackend& operator=(const FleetBackend&) = delete;

  [[nodiscard]] RawResult run(const compiler::ModuleAssignment& assignment,
                              const machine::RunOptions& options) override;
  [[nodiscard]] std::vector<RawResult> run_many(
      std::span<const core::EvalRequest> requests) override;
  [[nodiscard]] bool batches_remotely() const noexcept override {
    return true;
  }

  /// Endpoints that survived the connect-time arch filter.
  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return endpoints_.size();
  }
  /// Endpoints not yet drained.
  [[nodiscard]] std::size_t alive_count() const noexcept;
  /// The consistent-hash home for this workspace: where all chunks go
  /// first while the fleet is healthy. Stable across runs.
  [[nodiscard]] const std::string& home_address() const noexcept;
  [[nodiscard]] Stats stats() const;

 private:
  struct Endpoint {
    std::string address;
    ::ft::service::Endpoint dial;  ///< parsed once, for reconnects
    /// The live wire. Replaced wholesale by a successful half-open
    /// reconnect; every user takes a shared_ptr SNAPSHOT under
    /// wire_mutex and works on that, so a reconnect can never pull a
    /// session out from under a dispatching thread.
    std::shared_ptr<Client> client;
    std::mutex wire_mutex;  ///< guards replacement of `client`
    std::atomic<bool> alive{true};
    /// Chunks currently being served by this endpoint's wire.
    std::atomic<std::size_t> inflight{0};
    // --- circuit breaker (guarded by breaker_mutex) ---
    std::mutex breaker_mutex;
    int consecutive_failures = 0;
    int open_spells = 0;      ///< consecutive failed reopen attempts
    double reopen_at = 0.0;   ///< monotonic seconds; 0 = retry now
    std::uint64_t jitter_state = 0;  ///< per-endpoint backoff jitter
  };

  FleetBackend() = default;

  /// Successor of the workspace-key hash on the endpoint ring.
  [[nodiscard]] std::size_t ring_successor(std::uint64_t key_hash) const;
  /// First alive endpoint at or after `start` in ring order; -1 when
  /// the whole fleet is dead.
  [[nodiscard]] int next_alive(std::size_t start) const;
  /// Snapshot of the endpoint's current wire (see Endpoint::client).
  [[nodiscard]] std::shared_ptr<Client> client_for(std::size_t index);
  void drain(std::size_t index);
  /// Breaker bookkeeping for one transport failure: deactivates the
  /// endpoint and, at the failure threshold, opens the breaker
  /// (exponential reopen backoff with deterministic jitter).
  void note_transport_failure(std::size_t index);
  /// Resets the consecutive-failure count after served traffic.
  void note_success(std::size_t index);
  /// One probe pass: ping alive+idle endpoints, half-open reconnect
  /// dead ones whose breaker backoff has elapsed.
  void probe_pass();
  void probe_loop();

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  ConnectOptions connect_options_;  ///< for half-open reconnects
  /// Ring positions: (hash, endpoint index), sorted by hash. Virtual
  /// replica nodes smooth the shard distribution.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::size_t home_ = 0;  ///< ring_successor(workspace hash)
  FleetOptions options_;

  std::thread probe_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

/// Adapts a fleet to Campaign: returns a CampaignOptions::backend_factory
/// that connects a FleetBackend per cell (per program x architecture,
/// with that cell's effective options), so heterogeneous fleets route
/// each architecture's cells to the daemons advertising it.
[[nodiscard]] std::function<std::shared_ptr<core::EvalBackend>(
    const ir::Program&, const machine::Architecture&,
    const core::FuncyTunerOptions&)>
make_fleet_backend_factory(
    std::vector<std::string> addresses, FleetOptions options = {},
    compiler::Personality personality = compiler::Personality::kIcc);

}  // namespace ft::service
