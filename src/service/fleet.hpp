// Client-side fleet of ftuned daemons behind one EvalBackend. `ftune
// --remote addr1,addr2,...` shards evaluation batches across N daemons
// by consistent hash of the workspace key, rebalances queued chunks by
// work stealing, health-probes every endpoint with ping/pong, and on a
// probe failure or transport error drains the dead daemon and
// re-dispatches its inflight chunks through the survivors. Because
// every daemon computes the same deterministic raw measurements,
// WHERE a request runs never changes WHAT it returns - fleet output
// is bit-identical to a single daemon and to in-process evaluation,
// including under daemon deaths mid-batch.
//
// Heterogeneous fleets: daemons started with `--archs` advertise the
// architectures they serve in the welcome frame and refuse hellos for
// the rest, so connect() keeps only the endpoints eligible for this
// workspace's arch. make_fleet_backend_factory() gives Campaign a
// per-cell factory, pinning each architecture's cells to the daemons
// that can run them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/evaluator.hpp"
#include "service/client.hpp"

namespace ft::service {

struct FleetOptions {
  /// Transport knobs applied to every per-daemon session.
  ClientOptions client;
  /// Framing preference offered to every daemon. Negotiation is
  /// per-endpoint: a mixed fleet where one daemon is JSON-only simply
  /// downgrades that one session, the rest of the fleet stays binary,
  /// and the answers are bit-identical either way.
  std::vector<Framing> framings = {Framing::kJson};
  /// Health probe period. Endpoints idle for a full period get a
  /// ping; a failed probe drains the endpoint. <= 0 disables probing
  /// (transport errors during dispatch still drain).
  double probe_interval_seconds = 2.0;
  /// A chunk bounced by `overloaded` give-ups or endpoint deaths is
  /// re-dispatched at most this many times before the batch fails.
  int max_chunk_redispatch = 8;
};

/// EvalBackend over N daemon sessions. Thread-safe like the single
/// RemoteBackend (each endpoint's Client serializes its own wire).
class FleetBackend final : public core::EvalBackend {
 public:
  /// Everything the tests (and curious operators) may want to assert
  /// about scheduling. Monotonic over the backend's lifetime.
  struct Stats {
    std::size_t batches_dispatched = 0;  ///< run_many() calls
    std::size_t chunks_stolen = 0;       ///< chunk ran off its home queue
    std::size_t redispatches = 0;        ///< chunk re-queued after a death
    std::size_t probe_failures = 0;      ///< pings that found a dead daemon
    std::size_t endpoints_drained = 0;   ///< endpoints declared dead
  };

  /// Connects and handshakes every address for one workspace
  /// (program, arch, options, personality). Endpoints that refuse the
  /// arch (`unsupported_architecture` / `unknown_architecture`) are
  /// skipped - that is the heterogeneous-fleet filter - as are
  /// endpoints that are down; any OTHER refusal (bad options, version
  /// skew) rethrows. Throws ServiceError("fleet") when no endpoint
  /// can serve the workspace.
  [[nodiscard]] static std::unique_ptr<FleetBackend> connect(
      const std::vector<std::string>& addresses, const std::string& program,
      const std::string& arch, const core::FuncyTunerOptions& options,
      compiler::Personality personality = compiler::Personality::kIcc,
      const FleetOptions& fleet_options = {});

  ~FleetBackend() override;
  FleetBackend(const FleetBackend&) = delete;
  FleetBackend& operator=(const FleetBackend&) = delete;

  [[nodiscard]] RawResult run(const compiler::ModuleAssignment& assignment,
                              const machine::RunOptions& options) override;
  [[nodiscard]] std::vector<RawResult> run_many(
      std::span<const core::EvalRequest> requests) override;
  [[nodiscard]] bool batches_remotely() const noexcept override {
    return true;
  }

  /// Endpoints that survived the connect-time arch filter.
  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return endpoints_.size();
  }
  /// Endpoints not yet drained.
  [[nodiscard]] std::size_t alive_count() const noexcept;
  /// The consistent-hash home for this workspace: where all chunks go
  /// first while the fleet is healthy. Stable across runs.
  [[nodiscard]] const std::string& home_address() const noexcept;
  [[nodiscard]] Stats stats() const;

 private:
  struct Endpoint {
    std::string address;
    std::unique_ptr<Client> client;
    std::atomic<bool> alive{true};
    /// Chunks currently being served by this endpoint's wire.
    std::atomic<std::size_t> inflight{0};
  };

  FleetBackend() = default;

  /// Successor of the workspace-key hash on the endpoint ring.
  [[nodiscard]] std::size_t ring_successor(std::uint64_t key_hash) const;
  /// First alive endpoint at or after `start` in ring order; -1 when
  /// the whole fleet is dead.
  [[nodiscard]] int next_alive(std::size_t start) const;
  void drain(std::size_t index);
  void probe_loop();

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Ring positions: (hash, endpoint index), sorted by hash. Virtual
  /// replica nodes smooth the shard distribution.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::size_t home_ = 0;  ///< ring_successor(workspace hash)
  FleetOptions options_;

  std::thread probe_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

/// Adapts a fleet to Campaign: returns a CampaignOptions::backend_factory
/// that connects a FleetBackend per cell (per program x architecture,
/// with that cell's effective options), so heterogeneous fleets route
/// each architecture's cells to the daemons advertising it.
[[nodiscard]] std::function<std::shared_ptr<core::EvalBackend>(
    const ir::Program&, const machine::Architecture&,
    const core::FuncyTunerOptions&)>
make_fleet_backend_factory(
    std::vector<std::string> addresses, FleetOptions options = {},
    compiler::Personality personality = compiler::Personality::kIcc);

}  // namespace ft::service
