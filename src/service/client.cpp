#include "service/client.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "support/rng.hpp"

namespace ft::service {

namespace {

[[noreturn]] void throw_error_frame(const ErrorFrame& error) {
  throw ServiceError(error.code.empty() ? "error" : error.code,
                     "ftuned refused: " + error.code +
                         (error.detail.empty() ? "" : ": " + error.detail));
}

}  // namespace

std::unique_ptr<Client> Client::connect(const Endpoint& endpoint,
                                        const ConnectOptions& options) {
  auto client = std::unique_ptr<Client>(new Client());
  client->jitter_state_ =
      options.transport.jitter_seed ^ support::fnv1a64(endpoint.spec);
  client->session_ = service::connect(endpoint, options);
  return client;
}

std::unique_ptr<Client> Client::connect(
    const std::string& address, const std::string& program,
    const std::string& arch, const core::FuncyTunerOptions& options,
    compiler::Personality personality,
    const ClientOptions& client_options) {
  ConnectOptions connect_options;
  connect_options.workspace =
      WorkspaceSpec{program, arch, personality, options};
  connect_options.transport = client_options;
  return connect(Endpoint::parse(address), connect_options);
}

Client::~Client() {
  if (session_.valid()) {
    encode_bye_frame(session_.framing(), &write_buffer_.payload);
    (void)write_frame(session_.fd(), write_buffer_.payload, -1,
                      session_.chaos());
  }
}

void Client::roundtrip_locked() {
  const int timeout_ms = session_.io_timeout_ms();
  for (int attempt = 0;; ++attempt) {
    if (!write_frame(session_.fd(), write_buffer_.payload, timeout_ms,
                     session_.chaos())) {
      throw ServiceError("io", "connection to ftuned lost (send)");
    }
    const FrameStatus status =
        read_frame(session_.fd(), read_buffer_, kDefaultMaxFrameBytes,
                   timeout_ms, session_.chaos());
    if (status == FrameStatus::kTimeout) {
      // The stream is mid-frame and unsynchronized: this session is
      // unusable, so tear it down before reporting. "timeout" is a
      // retryable TRANSPORT error - a fleet re-dispatches elsewhere.
      session_.abort();
      throw ServiceError("timeout",
                         "no reply from ftuned within " +
                             std::to_string(timeout_ms) + " ms");
    }
    if (status != FrameStatus::kOk) {
      throw ServiceError("io", "connection to ftuned lost (recv)");
    }
    std::string error;
    const DecodeStatus decoded = decode_frame(
        session_.framing(), read_buffer_.payload, &reply_, &error);
    if (decoded != DecodeStatus::kOk) {
      throw ServiceError("bad_frame",
                         "unparseable reply from ftuned: " + error);
    }
    if (reply_.kind == FrameKind::kBye) {
      // An unsolicited bye while we are owed a reply: the daemon is
      // shutting down and our request will never be answered (a drain
      // can win the race against a frame still in its socket buffer).
      // Surface it as the transport-class "draining" so a fleet
      // reroutes the work instead of failing the run.
      session_.abort();
      throw ServiceError("draining",
                         "ftuned said bye while a reply was pending");
    }
    if (reply_.kind != FrameKind::kError) return;
    // Only "overloaded" is worth waiting out on THIS session: the
    // daemon is alive and will drain its queue. Other retryable codes
    // ("draining", "deadline") mean this daemon wants the work to go
    // ELSEWHERE - propagate immediately so a fleet can reroute instead
    // of blind-resending into a server that is shutting down.
    if (!reply_.error.retryable || reply_.error.code != "overloaded" ||
        attempt + 1 >= session_.transport().overload_max_attempts) {
      throw_error_frame(reply_.error);
    }
    // Backpressure: the daemon is at max_inflight. Exponential backoff
    // with deterministic jitter (so N workers that hit the wall at
    // once fan out instead of stampeding in lockstep), then resend the
    // identical frame - results are deterministic, so a retry can
    // never change the answer.
    const double base = session_.transport().overload_base_sleep_ms *
                        std::ldexp(1.0, attempt);
    const double jitter =
        base * 0.5 *
        (static_cast<double>(support::splitmix64(jitter_state_) >> 11) *
         0x1.0p-53);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        base + jitter));
  }
}

core::EvalResponse Client::call(const core::EvalRequest& request) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  encode_eval_frame(session_.framing(), seq, request,
                    &write_buffer_.payload);
  roundtrip_locked();
  if (reply_.kind != FrameKind::kResult || reply_.responses.size() != 1) {
    throw ServiceError("bad_frame", "malformed result from ftuned");
  }
  if (reply_.seq != seq) {
    throw ServiceError("bad_frame", "result sequence mismatch");
  }
  return std::move(reply_.responses.front());
}

std::vector<core::EvalResponse> Client::call_many(
    std::span<const core::EvalRequest> requests) {
  std::vector<core::EvalResponse> all;
  all.reserve(requests.size());
  std::lock_guard lock(mutex_);
  const std::size_t max_batch = session_.welcome().max_batch;
  const std::size_t chunk_limit =
      max_batch > 0 ? max_batch : requests.size();
  for (std::size_t begin = 0; begin < requests.size();
       begin += chunk_limit) {
    const std::size_t count =
        std::min(chunk_limit, requests.size() - begin);
    const std::uint64_t seq = next_seq_++;
    encode_eval_batch_frame(session_.framing(), seq,
                            requests.subspan(begin, count),
                            &write_buffer_.payload);
    roundtrip_locked();
    if (reply_.kind != FrameKind::kResultBatch ||
        reply_.responses.size() != count) {
      throw ServiceError("bad_frame",
                         "malformed result batch from ftuned");
    }
    if (reply_.seq != seq) {
      throw ServiceError("bad_frame", "result sequence mismatch");
    }
    for (core::EvalResponse& response : reply_.responses) {
      all.push_back(std::move(response));
    }
  }
  return all;
}

void Client::ping() {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  encode_ping_frame(session_.framing(), seq, &write_buffer_.payload);
  roundtrip_locked();
  if (reply_.kind != FrameKind::kPong || reply_.seq != seq) {
    throw ServiceError("bad_frame", "expected a pong frame");
  }
}

core::EvalBackend::RawResult RemoteBackend::run(
    const compiler::ModuleAssignment& assignment,
    const machine::RunOptions& options) {
  core::EvalRequest request;
  request.assignment = assignment;
  request.rep_base = options.rep_base;
  request.repetitions = options.repetitions;
  request.instrumented = options.instrumented;
  request.noise = options.noise;
  request.aggregate = options.aggregate;
  const core::EvalResponse response = client_->call(request);
  if (!response.ok()) {
    throw ServiceError("remote_fault",
                       "daemon-side raw run failed: " +
                           response.outcome.error.detail);
  }
  return RawResult{response.outcome.result, response.modules_compiled};
}

std::vector<core::EvalBackend::RawResult> RemoteBackend::run_many(
    std::span<const core::EvalRequest> requests) {
  const std::vector<core::EvalResponse> responses =
      client_->call_many(requests);
  std::vector<RawResult> results;
  results.reserve(responses.size());
  for (const core::EvalResponse& response : responses) {
    if (!response.ok()) {
      throw ServiceError("remote_fault",
                         "daemon-side raw run failed: " +
                             response.outcome.error.detail);
    }
    results.push_back(
        RawResult{response.outcome.result, response.modules_compiled});
  }
  return results;
}

}  // namespace ft::service
