#include "service/client.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "service/framing.hpp"
#include "support/rng.hpp"

namespace ft::service {

namespace {

[[noreturn]] void throw_error_frame(const ErrorFrame& error) {
  throw ServiceError(error.code.empty() ? "error" : error.code,
                     "ftuned refused: " + error.code +
                         (error.detail.empty() ? "" : ": " + error.detail));
}

}  // namespace

std::unique_ptr<Client> Client::connect(
    const std::string& address, const std::string& program,
    const std::string& arch, const core::FuncyTunerOptions& options,
    compiler::Personality personality,
    const ClientOptions& client_options) {
  auto client = std::unique_ptr<Client>(new Client());
  client->options_ = client_options;
  client->jitter_state_ =
      client_options.jitter_seed ^ support::fnv1a64(address);
  client->socket_ = Socket::connect(Address::parse(address));
  const int timeout_ms = client_options.io_timeout_ms();

  HelloFrame hello;
  hello.program = program;
  hello.arch = arch;
  hello.personality =
      personality == compiler::Personality::kGcc ? "gcc" : "icc";
  hello.options = options;
  if (!write_frame(client->socket_.fd(), encode_hello(hello),
                   timeout_ms)) {
    throw ServiceError("connect", "cannot send hello to " + address);
  }

  std::string payload;
  const FrameStatus status = read_frame(
      client->socket_.fd(), &payload, kDefaultMaxFrameBytes, timeout_ms);
  if (status == FrameStatus::kTimeout) {
    throw ServiceError("timeout",
                       "handshake with " + address + " timed out");
  }
  if (status != FrameStatus::kOk) {
    throw ServiceError("connect",
                       "connection closed during handshake with " +
                           address);
  }
  support::JsonValue frame;
  std::string error;
  if (!support::JsonValue::parse(payload, &frame, &error)) {
    throw ServiceError("bad_frame",
                       "unparseable handshake reply: " + error);
  }
  ErrorFrame refusal;
  if (frame_type(frame) == "error" && decode_error(frame, &refusal)) {
    throw_error_frame(refusal);
  }
  if (frame_type(frame) != "welcome" ||
      !decode_welcome(frame, &client->welcome_, &error)) {
    throw ServiceError("bad_frame", "expected a welcome frame: " + error);
  }
  return client;
}

Client::~Client() {
  if (socket_.valid()) {
    (void)write_frame(socket_.fd(), encode_bye());
  }
}

support::JsonValue Client::roundtrip_locked(const std::string& frame) {
  const int timeout_ms = options_.io_timeout_ms();
  for (int attempt = 0;; ++attempt) {
    if (!write_frame(socket_.fd(), frame, timeout_ms)) {
      throw ServiceError("io", "connection to ftuned lost (send)");
    }
    std::string payload;
    const FrameStatus status = read_frame(
        socket_.fd(), &payload, kDefaultMaxFrameBytes, timeout_ms);
    if (status == FrameStatus::kTimeout) {
      // The stream is mid-frame and unsynchronized: this session is
      // unusable, so tear it down before reporting. "timeout" is a
      // retryable TRANSPORT error - a fleet re-dispatches elsewhere.
      socket_.shutdown_both();
      throw ServiceError("timeout",
                         "no reply from ftuned within " +
                             std::to_string(timeout_ms) + " ms");
    }
    if (status != FrameStatus::kOk) {
      throw ServiceError("io", "connection to ftuned lost (recv)");
    }
    support::JsonValue reply;
    std::string error;
    if (!support::JsonValue::parse(payload, &reply, &error)) {
      throw ServiceError("bad_frame",
                         "unparseable reply from ftuned: " + error);
    }
    if (frame_type(reply) != "error") return reply;
    ErrorFrame refusal;
    if (!decode_error(reply, &refusal)) {
      throw ServiceError("bad_frame", "malformed error frame");
    }
    if (!refusal.retryable ||
        attempt + 1 >= options_.overload_max_attempts) {
      throw_error_frame(refusal);
    }
    // Backpressure: the daemon is at max_inflight. Exponential backoff
    // with deterministic jitter (so N workers that hit the wall at
    // once fan out instead of stampeding in lockstep), then resend the
    // identical frame - results are deterministic, so a retry can
    // never change the answer.
    const double base =
        options_.overload_base_sleep_ms * std::ldexp(1.0, attempt);
    const double jitter =
        base * 0.5 *
        (static_cast<double>(support::splitmix64(jitter_state_) >> 11) *
         0x1.0p-53);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        base + jitter));
  }
}

core::EvalResponse Client::call(const core::EvalRequest& request) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  const support::JsonValue reply =
      roundtrip_locked(encode_eval(seq, request));
  std::vector<core::EvalResponse> responses;
  std::string error;
  if (!decode_result(reply, &responses, &error) ||
      responses.size() != 1) {
    throw ServiceError("bad_frame",
                       "malformed result from ftuned: " + error);
  }
  if (frame_seq(reply) != seq) {
    throw ServiceError("bad_frame", "result sequence mismatch");
  }
  return std::move(responses.front());
}

std::vector<core::EvalResponse> Client::call_many(
    std::span<const core::EvalRequest> requests) {
  std::vector<core::EvalResponse> all;
  all.reserve(requests.size());
  std::lock_guard lock(mutex_);
  const std::size_t chunk_limit =
      welcome_.max_batch > 0 ? welcome_.max_batch : requests.size();
  for (std::size_t begin = 0; begin < requests.size();
       begin += chunk_limit) {
    const std::size_t count =
        std::min(chunk_limit, requests.size() - begin);
    const std::uint64_t seq = next_seq_++;
    const support::JsonValue reply = roundtrip_locked(
        encode_eval_batch(seq, requests.subspan(begin, count)));
    std::vector<core::EvalResponse> responses;
    std::string error;
    if (!decode_result(reply, &responses, &error) ||
        responses.size() != count) {
      throw ServiceError("bad_frame",
                         "malformed result batch from ftuned: " + error);
    }
    if (frame_seq(reply) != seq) {
      throw ServiceError("bad_frame", "result sequence mismatch");
    }
    for (core::EvalResponse& response : responses) {
      all.push_back(std::move(response));
    }
  }
  return all;
}

void Client::ping() {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  const support::JsonValue reply =
      roundtrip_locked(encode_ping(seq));
  if (frame_type(reply) != "pong" || frame_seq(reply) != seq) {
    throw ServiceError("bad_frame", "expected a pong frame");
  }
}

core::EvalBackend::RawResult RemoteBackend::run(
    const compiler::ModuleAssignment& assignment,
    const machine::RunOptions& options) {
  core::EvalRequest request;
  request.assignment = assignment;
  request.rep_base = options.rep_base;
  request.repetitions = options.repetitions;
  request.instrumented = options.instrumented;
  request.noise = options.noise;
  request.aggregate = options.aggregate;
  const core::EvalResponse response = client_->call(request);
  if (!response.ok()) {
    throw ServiceError("remote_fault",
                       "daemon-side raw run failed: " +
                           response.outcome.error.detail);
  }
  return RawResult{response.outcome.result, response.modules_compiled};
}

std::vector<core::EvalBackend::RawResult> RemoteBackend::run_many(
    std::span<const core::EvalRequest> requests) {
  const std::vector<core::EvalResponse> responses =
      client_->call_many(requests);
  std::vector<RawResult> results;
  results.reserve(responses.size());
  for (const core::EvalResponse& response : responses) {
    if (!response.ok()) {
      throw ServiceError("remote_fault",
                         "daemon-side raw run failed: " +
                             response.outcome.error.detail);
    }
    results.push_back(
        RawResult{response.outcome.result, response.modules_compiled});
  }
  return results;
}

}  // namespace ft::service
