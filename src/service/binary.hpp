// Compact binary framing for the ftuned protocol (Framing::kBinary).
//
// Layout: every payload is `u8 tag, u64le seq, fields...`. All
// integers are little-endian fixed width; doubles are their IEEE-754
// bit pattern as u64le (bit-exactness is structural - no %.17g
// round-trip argument needed); strings are u32le length + raw bytes;
// compilation vectors are u32le count + raw choice bytes.
//
//   tag  frame         fields after the (tag, seq) header
//   ---  ------------  ------------------------------------------------
//    1   hello         str program, str arch, str personality,
//                      u64 seed, f64 noise_sigma, f64 attribution_sigma,
//                      f64 fault_rate, u64 fault_seed, f64 compile_share,
//                      f64 crash_share, f64 timeout_share,
//                      f64 outlier_rate, f64 outlier_min_scale,
//                      f64 outlier_max_scale, caps
//    2   welcome       str server, u64 session, u64 max_batch,
//                      u8 framing, caps
//    3   error         str code, str detail, u8 retryable, u8 fatal
//    4   eval          request
//    5   eval_batch    u32 count, request*
//    6   result        response
//    7   result_batch  u32 count, response*
//    8   ping          -
//    9   pong          -
//   10   bye           -
//
//   caps     = u32 protocol, u8 framing_count, u8 framing*,
//              u64 max_frame_bytes, u32 arch_count, str*
//   request  = u32 loop_count, cv* loops, cv nonloop, u64 rep_base,
//              u32 repetitions, u8 instrumented, u8 noise,
//              u8 aggregate (0 mean, 1 median, 2 trimmed)
//   response = u8 served (0 run, 1 cache, 2 journal), u32 attempts,
//              u64 modules_compiled, u8 ok;
//              ok:  f64 end_to_end, f64 stddev, u32 loop_count, f64*
//              !ok: str fault_kind, str detail
//
// hello and welcome never travel binary on the wire (negotiation runs
// before the framing switch) - their codecs exist for symmetry and so
// the round-trip tests cover every frame type.
//
// The decoder is fuzz-safe by construction: a bounds-checked cursor
// rejects any truncated field, and element counts are validated
// against the bytes actually remaining before any allocation, so a
// forged count cannot force a huge reserve.
#pragma once

#include "service/protocol.hpp"

namespace ft::service {

// Encoders append to *out after clearing it (same contract as the
// framing-dispatched encoders in protocol.hpp).
void binary_encode_hello(const HelloFrame& hello, std::string* out);
void binary_encode_welcome(const WelcomeFrame& welcome, std::string* out);
void binary_encode_error(const ErrorFrame& error, std::string* out);
void binary_encode_eval(std::uint64_t seq,
                        const core::EvalRequest& request, std::string* out);
void binary_encode_eval_batch(std::uint64_t seq,
                              std::span<const core::EvalRequest> requests,
                              std::string* out);
void binary_encode_result(std::uint64_t seq,
                          const core::EvalResponse& response,
                          std::string* out);
void binary_encode_result_batch(
    std::uint64_t seq, std::span<const core::EvalResponse> responses,
    std::string* out);
void binary_encode_ping(std::uint64_t seq, std::string* out);
void binary_encode_pong(std::uint64_t seq, std::string* out);
void binary_encode_bye(std::string* out);

/// Decodes one binary payload into *out (reset first). kUnparseable
/// for an empty payload or unknown tag byte with no readable header;
/// kUnknownType for a well-formed header whose tag we don't know;
/// kMalformed (reason in *error) for a known tag with invalid or
/// truncated contents.
[[nodiscard]] DecodeStatus binary_decode_frame(std::string_view payload,
                                               AnyFrame* out,
                                               std::string* error);

}  // namespace ft::service
