// Minimal RAII stream-socket layer for the evaluation service.
// Addresses are spelled "unix:/path/to.sock" or "tcp:host:port"
// (numeric IPv4 only - the daemon is a LAN/localhost service, so no
// DNS dependency). Listener::accept_within polls, so an accept loop
// can interleave idle-timeout checks without signals.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ft::service {

namespace chaos {
class ChaosEngine;
}

/// Service-layer failure with a stable machine-readable code (the same
/// codes travel in wire error frames: "bad_frame", "overloaded", ...).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(std::string code, const std::string& what)
      : std::runtime_error(what), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

struct Address {
  bool is_unix = true;
  std::string path;  ///< unix socket path
  std::string host;  ///< numeric IPv4 for tcp
  int port = 0;

  /// Parses "unix:PATH" or "tcp:host:port"; throws ServiceError
  /// ("bad_address") otherwise.
  [[nodiscard]] static Address parse(const std::string& spec);
  [[nodiscard]] std::string display() const;
};

/// Move-only owner of one connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to a listening service; throws ServiceError ("connect").
  /// A non-null chaos engine may fail the dial (same error), which is
  /// how seeded runs exercise down-endpoint handling.
  [[nodiscard]] static Socket connect(const Address& address,
                                      chaos::ChaosEngine* chaos = nullptr);

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// O_NONBLOCK, for event-loop ownership (the epoll server must
  /// never let one slow peer block the loop thread).
  void set_nonblocking() noexcept;
  /// Wakes any thread blocked in recv() on this socket.
  void shutdown_both() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Move-only owner of one bound+listening socket. Unlinks its unix
/// path on close.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; throws ServiceError ("bind"). A stale unix
  /// socket file is replaced. tcp port 0 binds an ephemeral port
  /// (readback via address()).
  [[nodiscard]] static Listener bind(const Address& address);

  /// Accepts one connection, waiting at most `timeout_ms`; returns an
  /// invalid Socket on timeout or when the listener was closed. EINTR
  /// (in the poll or the accept) retries against the SAME absolute
  /// deadline - a signal storm cannot extend the wait.
  [[nodiscard]] Socket accept_within(int timeout_ms);

  /// Accepts without waiting; invalid Socket when nothing is pending.
  /// Pair with set_nonblocking() + an epoll registration on fd().
  [[nodiscard]] Socket accept_nonblocking();

  /// Raw fd for event-loop registration (epoll_ctl).
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void set_nonblocking() noexcept;

  [[nodiscard]] const Address& address() const noexcept { return address_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  Address address_;
};

/// One-time process-wide SIG_IGN for SIGPIPE. Every service-layer send
/// already passes MSG_NOSIGNAL; this is the belt-and-braces layer for
/// anything else that may ever write to a dead peer (called from
/// Server::start and service::connect). Idempotent and thread-safe;
/// never overrides a handler the application installed itself.
void ignore_sigpipe() noexcept;

}  // namespace ft::service
