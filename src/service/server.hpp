// The ftuned evaluation daemon: an epoll event loop + small worker
// pool. ONE loop thread owns every socket (non-blocking accept and
// session fds, level-triggered epoll), runs per-session state
// machines over reusable read/write buffers, and writes replies as
// vectored sends (length prefix + payload in one sendmsg). Eval
// batches - the expensive part - execute on a worker pool OFF the
// loop thread; finished work posts back through a completion queue
// and an eventfd wakeup. Compared to the old thread-per-connection
// design this removes a thread (and its stack, wakeups and context
// switches) per client, and lets hundreds of mostly-idle sessions
// cost nothing.
//
// Per-session ordering: the wire is strictly request -> response, so
// a session has at most one job in flight ("busy"); frames arriving
// meanwhile queue in its backlog, and its EPOLLIN interest is dropped
// while busy so the kernel's receive window - not our memory -
// absorbs an overeager client.
//
// Division of labor (the bit-identity invariant): the daemon executes
// *raw* measurements only - compile + link + run on a workspace whose
// engine is constructed exactly like a local FuncyTuner's (same seed,
// noise model, attribution sigma and fault config, so engine-side
// outlier spikes reproduce too). All tuning-state bookkeeping (fault
// injection decisions, retries, quarantine, checkpoint journal, the
// client's EvalCache) stays in the *client's* Evaluator. Because the
// measurement stack is deterministic per (content, noise key), the
// daemon's answers are bit-identical to what the client's own engine
// would have produced - under either framing.
//
// Workspaces are keyed by (program, arch, personality, measurement
// options), so any number of clients tuning the same cell share one
// ExecutionEngine (and its compiled-module cache) and one optional
// daemon-side result cache. A batch frame becomes ONE task-group
// submission over the shared pool (request batching), results return
// in request order. Backpressure: when admitted-but-unfinished
// requests would exceed max_inflight, the frame is refused with a
// retryable "overloaded" error instead of queueing unboundedly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/funcy_tuner.hpp"
#include "service/chaos.hpp"
#include "service/framing.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace ft::service {

struct ServerOptions {
  std::string listen = "unix:/tmp/ftuned.sock";
  /// Exit serve() after this many seconds with no connected sessions
  /// and no frame activity; 0 = run until stop().
  double idle_timeout_seconds = 0.0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Admitted-but-unfinished evaluation requests across all sessions;
  /// a frame that would exceed it is refused with "overloaded".
  std::size_t max_inflight = 256;
  /// Requests accepted per eval_batch frame (advertised in welcome).
  std::size_t max_batch = 1024;
  /// Daemon-side raw-result cache entries per workspace; 0 disables.
  /// Purely a cost optimization: replayed results are bit-identical
  /// (the reason an EvalCache may memoize at all).
  std::size_t cache_entries = 0;
  /// Directory for the persistent disk cache tier shared with other
  /// ftuned/ftune processes (core/persistent_cache.hpp). Non-empty
  /// implies a memory tier per workspace even when cache_entries is 0.
  std::string cache_dir;
  /// Size budget for cache_dir in bytes; 0 = PersistentCache default.
  std::size_t cache_disk_bytes = 0;
  /// Architectures this daemon serves (empty = all known). A hello for
  /// an unserved arch is refused with the fatal code
  /// "unsupported_architecture"; the served set is advertised in the
  /// welcome frame so heterogeneous fleets can pin campaign cells.
  std::vector<std::string> archs;
  /// Framings this daemon accepts in negotiation. JSON is forced into
  /// the set (it is the negotiation carrier and compatibility
  /// baseline); listing only {kJson} makes a JSON-only daemon, which
  /// is how mixed fleets exercise per-endpoint downgrade.
  std::vector<Framing> framings = {Framing::kJson, Framing::kBinary};
  /// Worker threads executing eval batches off the event loop;
  /// 0 = one per hardware thread (capped at 16, floored at 2).
  std::size_t workers = 0;
  /// SIGTERM drain: after request_drain(), inflight work gets this
  /// long to finish before the daemon force-exits. New eval frames are
  /// refused with retryable "draining" the whole time.
  double drain_grace_seconds = 10.0;
  /// A job that waited in the worker queue longer than this is refused
  /// with retryable "deadline" instead of computing a result the
  /// client has likely stopped waiting for. <= 0 disables.
  double request_deadline_seconds = 0.0;
  /// Slow-loris defense: a connection that owes us bytes (never said
  /// hello, or has a partial frame parked in its inbox) and makes no
  /// read progress for this long is destroyed. Idle GREETED sessions
  /// with no partial frame are legal and never reaped. <= 0 disables.
  double read_progress_timeout_seconds = 30.0;
  /// Connection cap; at the cap a new connection evicts the
  /// oldest-idle session (not busy, nothing queued), or is dropped
  /// when every session is active. 0 = unlimited.
  std::size_t max_sessions = 0;
  /// Server-side fault injection (--chaos-seed / FT_CHAOS_SEED):
  /// torn/reset writes in the outbox flush, spurious retryable
  /// "overloaded" refusals. Disabled unless the seed is nonzero.
  chaos::ChaosConfig chaos = chaos::config_from_env();
};

class Server {
 public:
  struct Stats {
    std::size_t sessions_accepted = 0;
    std::size_t frames_served = 0;
    std::size_t evaluations = 0;
    std::size_t batch_frames = 0;
    std::size_t cache_hits = 0;
    std::size_t errors_sent = 0;
    std::size_t overloads = 0;
    std::size_t binary_sessions = 0;  ///< negotiated a non-JSON framing
    std::size_t drain_refusals = 0;   ///< frames refused while draining
    std::size_t deadline_refusals = 0;  ///< request_deadline expiries
    std::size_t cancelled_jobs = 0;  ///< dead-session work skipped
    std::size_t loris_kills = 0;     ///< read-progress timeouts
    std::size_t evictions = 0;       ///< oldest-idle cap evictions
  };

  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the event loop + worker pool.
  /// Throws ServiceError on bind failure.
  void start();
  /// start() + block until idle timeout or stop(). Returns 0.
  int serve();
  /// Asynchronously shuts down: wakes the loop, closes every session
  /// and the listener, joins all threads. Idempotent.
  void stop();
  /// Blocks until the event loop exits (idle timeout or stop()), then
  /// tears down the worker pool.
  void wait();
  /// SIGTERM graceful drain, async-signal-safe (an atomic store plus
  /// an eventfd write): stop accepting, let inflight work finish
  /// (bounded by drain_grace_seconds), refuse new eval frames with
  /// retryable "draining", then bye every session and exit the loop.
  /// Pair with wait() to block until the drain completes.
  void request_drain() noexcept;
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound address (tcp port 0 resolves to the ephemeral port).
  [[nodiscard]] const Address& address() const noexcept {
    return listener_.address();
  }
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  /// One (program, arch, personality, measurement options) evaluation
  /// context, shared by every session that greets with the same key.
  /// Workspaces are never destroyed while the server runs, so worker
  /// jobs may hold raw pointers across a session's death.
  struct Workspace {
    std::unique_ptr<core::FuncyTuner> tuner;
    std::unique_ptr<core::EvalCache> cache;  ///< optional (cache_entries)
    /// Folded into cache keys: EvalCache::Key has no aggregate/noise
    /// fields, so those request bits must live in the salt.
    std::uint64_t salt = 0;
  };

  /// One queued reply: 4-byte big-endian length prefix + payload,
  /// written as a two-entry iovec. `offset` tracks partial sends
  /// across the concatenation.
  struct OutFrame {
    unsigned char prefix[4];
    std::string payload;
    std::size_t offset = 0;
  };

  /// Per-connection state machine, owned by the loop thread.
  struct SessionState {
    std::uint64_t id = 0;
    Socket socket;
    Framing framing = Framing::kJson;
    Workspace* workspace = nullptr;
    bool greeted = false;
    bool busy = false;     ///< one worker job in flight (ordering)
    bool closing = false;  ///< flush outbox, then close
    double last_rx = 0.0;  ///< last byte received (read-progress clock)
    std::string inbox;     ///< raw received bytes, frames extracted
    std::deque<std::string> backlog;  ///< frames parked while busy
    std::deque<OutFrame> outbox;
    std::uint32_t interest = 0;  ///< current epoll event mask
  };

  /// Work shipped to the pool. Holds no session pointer: the session
  /// may die (peer hangup) while the job runs, so workers reference it
  /// only by id and the loop drops completions for dead sessions.
  struct Job {
    std::uint64_t session_id = 0;
    bool is_hello = false;
    Framing framing = Framing::kJson;
    Workspace* workspace = nullptr;
    std::string payload;
    double enqueued = 0.0;  ///< queue-entry time (request deadline)
  };

  /// A worker's answer, applied on the loop thread.
  struct Completion {
    std::uint64_t session_id = 0;
    std::string reply;  ///< empty = nothing to send (bye)
    bool close = false;
    /// Handshake results (is_hello jobs only):
    bool greeted = false;
    Framing framing = Framing::kJson;
    Workspace* workspace = nullptr;
  };

  struct AtomicStats {
    std::atomic<std::size_t> sessions_accepted{0};
    std::atomic<std::size_t> frames_served{0};
    std::atomic<std::size_t> evaluations{0};
    std::atomic<std::size_t> batch_frames{0};
    std::atomic<std::size_t> cache_hits{0};
    std::atomic<std::size_t> errors_sent{0};
    std::atomic<std::size_t> overloads{0};
    std::atomic<std::size_t> binary_sessions{0};
    std::atomic<std::size_t> drain_refusals{0};
    std::atomic<std::size_t> deadline_refusals{0};
    std::atomic<std::size_t> cancelled_jobs{0};
    std::atomic<std::size_t> loris_kills{0};
    std::atomic<std::size_t> evictions{0};
  };

  // --- loop thread ---------------------------------------------------------
  void event_loop();
  void accept_ready();
  /// The bool-returning handlers report "session still alive": false
  /// means the session was destroyed and its pointer is dead.
  bool session_readable(SessionState* session);
  bool session_writable(SessionState* session);
  /// Pulls complete frames out of the inbox and dispatches/backlogs.
  bool extract_frames(SessionState* session);
  void handle_frame(SessionState* session, std::string payload);
  void dispatch_job(SessionState* session, std::string payload);
  void apply_completions();
  /// Queues one reply and flushes as much of the outbox as the socket
  /// accepts right now (EPOLLOUT only when the kernel buffer fills).
  bool queue_reply(SessionState* session, std::string payload);
  /// sendmsg the outbox; false on a dead socket.
  bool flush_outbox(SessionState* session);
  void update_interest(SessionState* session);
  void destroy_session(SessionState* session);
  void wake_loop() noexcept;
  /// One drain-state step per loop tick (see request_drain); true
  /// means "exit the loop now".
  bool drain_step(double now);
  /// Destroys connections that owe bytes but made no read progress
  /// within read_progress_timeout_seconds (slow-loris defense).
  void sweep_stalled_sessions(double now);
  /// True while `id` still has a live connection; workers check before
  /// starting (and thus never burn a batch for) a dead session.
  [[nodiscard]] bool session_live(std::uint64_t id);

  // --- worker pool ---------------------------------------------------------
  void worker_loop();
  void run_job(Job job);
  void post(Completion completion);
  /// Encodes an error reply under `framing` into a completion.
  Completion error_completion(std::uint64_t session_id, Framing framing,
                              const ErrorFrame& error);
  Completion serve_hello(const Job& job);

  /// Serves one eval/eval_batch frame worth of requests as a single
  /// parallel submission; results are in request order.
  [[nodiscard]] std::vector<core::EvalResponse> serve_requests(
      Workspace& workspace,
      const std::vector<core::EvalRequest>& requests);
  [[nodiscard]] core::EvalResponse serve_one(
      Workspace& workspace, const core::EvalRequest& request);
  Workspace* workspace_for(const HelloFrame& hello);
  void touch() noexcept;

  ServerOptions options_;
  Listener listener_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  // Drain progress, owned by the loop thread:
  bool drain_initiated_ = false;
  bool drain_bye_sent_ = false;
  double drain_deadline_ = 0.0;
  std::shared_ptr<chaos::ChaosEngine> chaos_;  ///< null when disabled
  std::mutex teardown_mutex_;  ///< makes stop()/wait() idempotent

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions + stop() wake the loop
  std::unordered_map<int, std::unique_ptr<SessionState>> sessions_;
  std::unordered_map<std::uint64_t, SessionState*> sessions_by_id_;
  std::uint64_t next_session_id_ = 1;
  std::vector<char> read_scratch_;  ///< shared recv buffer (loop only)

  std::vector<std::thread> workers_;
  std::mutex jobs_mutex_;
  std::condition_variable jobs_ready_;
  std::deque<Job> jobs_;
  bool workers_shutdown_ = false;

  std::mutex completions_mutex_;
  std::deque<Completion> completions_;

  /// Session ids with a live connection; the loop thread maintains it,
  /// workers read it to skip evaluation work for dead sessions.
  std::mutex live_mutex_;
  std::unordered_set<std::uint64_t> live_sessions_;

  std::mutex workspaces_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Workspace>>
      workspaces_;
  /// One disk tier for every workspace (options_.cache_dir): workspace
  /// salts keep their entries disjoint inside the shared directory.
  std::shared_ptr<core::PersistentCache> disk_cache_;

  std::atomic<std::size_t> inflight_{0};
  /// Monotonic activity clock for the idle timeout (seconds).
  std::atomic<double> last_activity_{0.0};

  AtomicStats stats_;
};

}  // namespace ft::service
