// The ftuned evaluation daemon. One Server owns a listening socket,
// an accept thread and one session thread per connected client; each
// session speaks the framed protocol of service/protocol.hpp.
//
// Division of labor (the bit-identity invariant): the daemon executes
// *raw* measurements only - compile + link + run on a workspace whose
// engine is constructed exactly like a local FuncyTuner's (same seed,
// noise model, attribution sigma and fault config, so engine-side
// outlier spikes reproduce too). All tuning-state bookkeeping (fault
// injection decisions, retries, quarantine, checkpoint journal, the
// client's EvalCache) stays in the *client's* Evaluator. Because the
// measurement stack is deterministic per (content, noise key), the
// daemon's answers are bit-identical to what the client's own engine
// would have produced.
//
// Workspaces are keyed by (program, arch, personality, measurement
// options), so any number of clients tuning the same cell share one
// ExecutionEngine (and its compiled-module cache) and one optional
// daemon-side result cache. A batch frame becomes ONE task-group
// submission over the shared pool (request batching), results return
// in request order. Backpressure: when admitted-but-unfinished
// requests would exceed max_inflight, the frame is refused with a
// retryable "overloaded" error instead of queueing unboundedly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/funcy_tuner.hpp"
#include "service/framing.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace ft::service {

struct ServerOptions {
  std::string listen = "unix:/tmp/ftuned.sock";
  /// Exit serve() after this many seconds with no connected sessions
  /// and no frame activity; 0 = run until stop().
  double idle_timeout_seconds = 0.0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Admitted-but-unfinished evaluation requests across all sessions;
  /// a frame that would exceed it is refused with "overloaded".
  std::size_t max_inflight = 256;
  /// Requests accepted per eval_batch frame (advertised in welcome).
  std::size_t max_batch = 1024;
  /// Daemon-side raw-result cache entries per workspace; 0 disables.
  /// Purely a cost optimization: replayed results are bit-identical
  /// (the reason an EvalCache may memoize at all).
  std::size_t cache_entries = 0;
  /// Architectures this daemon serves (empty = all known). A hello for
  /// an unserved arch is refused with the fatal code
  /// "unsupported_architecture"; the served set is advertised in the
  /// welcome frame so heterogeneous fleets can pin campaign cells.
  std::vector<std::string> archs;
};

class Server {
 public:
  struct Stats {
    std::size_t sessions_accepted = 0;
    std::size_t frames_served = 0;
    std::size_t evaluations = 0;
    std::size_t batch_frames = 0;
    std::size_t cache_hits = 0;
    std::size_t errors_sent = 0;
    std::size_t overloads = 0;
  };

  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the accept thread. Throws
  /// ServiceError on bind failure.
  void start();
  /// start() + block until idle timeout or stop(). Returns 0.
  int serve();
  /// Asynchronously shuts down: closes the listener, wakes every
  /// session, joins all threads. Idempotent.
  void stop();
  /// Blocks until the accept loop exits (idle timeout or stop()).
  void wait();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound address (tcp port 0 resolves to the ephemeral port).
  [[nodiscard]] const Address& address() const noexcept {
    return listener_.address();
  }
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  /// One (program, arch, personality, measurement options) evaluation
  /// context, shared by every session that greets with the same key.
  struct Workspace {
    std::unique_ptr<core::FuncyTuner> tuner;
    std::unique_ptr<core::EvalCache> cache;  ///< optional (cache_entries)
    /// Folded into cache keys: EvalCache::Key has no aggregate/noise
    /// fields, so those request bits must live in the salt.
    std::uint64_t salt = 0;
  };

  struct Session {
    Socket socket;
    std::thread thread;
    std::uint64_t id = 0;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void session_loop(Session* session);
  /// Handshake: reads hello, resolves/creates the workspace, sends
  /// welcome. Returns nullptr (after an error frame) on failure.
  Workspace* handshake(Session* session);
  /// Serves one eval/eval_batch frame worth of requests as a single
  /// parallel submission; results are in request order.
  [[nodiscard]] std::vector<core::EvalResponse> serve_requests(
      Workspace& workspace,
      const std::vector<core::EvalRequest>& requests);
  [[nodiscard]] core::EvalResponse serve_one(
      Workspace& workspace, const core::EvalRequest& request);
  Workspace* workspace_for(const HelloFrame& hello);
  bool send_error(Session* session, const ErrorFrame& error);
  void touch() noexcept;
  void reap_finished_sessions();

  ServerOptions options_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<std::size_t> active_sessions_{0};
  std::uint64_t next_session_id_ = 1;

  std::mutex workspaces_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Workspace>>
      workspaces_;

  std::atomic<std::size_t> inflight_{0};
  /// Monotonic activity clock for the idle timeout (seconds).
  std::atomic<double> last_activity_{0.0};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace ft::service
