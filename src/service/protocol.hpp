// The ftuned wire protocol: typed frames over service/framing. Frames
// travel in one of two negotiated framings:
//
//   - JSON (the default and compatibility baseline): every frame is a
//     JSON object with a "type" member; doubles travel as %.17g
//     (bit-exact round-trip) and 64-bit integers as decimal strings,
//     the same conventions as the checkpoint journal.
//   - binary (opt-in, negotiated in hello/welcome): fixed-width tags
//     and raw little-endian doubles - bit-exactness is structural
//     instead of a printf-format property, and encode/decode cost
//     drops to memcpy speed.
//
// hello and welcome are ALWAYS JSON - they carry the negotiation, so
// they must be readable before its outcome is known. Every frame
// after welcome uses the negotiated framing, both directions.
//
// EvalRequest / EvalResponse from core/evaluator.hpp are serialized
// field-for-field: the in-process evaluation currency IS the wire
// payload, so remote evaluation cannot drift from local semantics.
//
// Frame inventory (client -> server / server -> client):
//   hello       -> welcome | error      session setup + negotiation
//   eval        -> result | error       one raw evaluation
//   eval_batch  -> result_batch | error coalesced batch
//   ping        -> pong                 liveness probe
//   bye         -> (close)              orderly shutdown
//
// An error frame carries a stable code, the offending seq (0 for
// session-level errors), and retryable/fatal bits. After a fatal
// error the server closes the connection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.hpp"
#include "core/funcy_tuner.hpp"
#include "service/framing.hpp"
#include "support/crc32.hpp"
#include "support/json.hpp"

namespace ft::service {

/// Bumped on any incompatible frame change; a hello with a different
/// version is refused with a structured "unsupported_version" error.
inline constexpr int kProtocolVersion = 1;

/// Payload encodings a session can speak. JSON is mandatory on every
/// implementation (it is the negotiation carrier and the bit-identity
/// baseline); binary is the opt-in fast path, and binary-crc32 is
/// binary with a 4-byte little-endian CRC32 trailer over the payload -
/// a corrupted frame is rejected as `bad_frame` instead of being
/// decoded into garbage. Negotiated like any other framing: peers that
/// predate it simply skip the unknown name.
enum class Framing : std::uint8_t {
  kJson = 0,
  kBinary = 1,
  kBinaryCrc = 2,
};

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes`; used by the
/// binary-crc32 framing and its tests. The implementation lives in
/// support/crc32 so the persistent eval-cache's on-disk entries share
/// the exact codec without depending on the service layer.
[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) noexcept {
  return support::crc32(bytes);
}

[[nodiscard]] const char* framing_name(Framing framing);
/// False for names this build does not know. Unknown names are how
/// FUTURE framings look to us - callers must skip them, not fail the
/// handshake.
[[nodiscard]] bool framing_from_name(std::string_view name, Framing* out);

/// Versioned capability set exchanged in hello (what the client can
/// speak, preference-ordered) and welcome (what the server serves).
/// Unknown keys and unknown framing names are ignored on decode, so
/// adding capabilities never breaks older peers; a peer that sent no
/// capabilities at all gets the conservative defaults below (protocol
/// 1, JSON only), which is exactly what pre-negotiation daemons spoke.
struct Capabilities {
  int protocol = kProtocolVersion;
  /// In a hello: client preference order. In a welcome: the server's
  /// supported set. JSON is always present.
  std::vector<Framing> framings = {Framing::kJson};
  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Architecture names this daemon serves, in canonical table order;
  /// empty in a hello. Heterogeneous fleets pin campaign cells to
  /// daemons advertising the cell's arch.
  std::vector<std::string> archs;
};

/// First client-preferred framing the server also supports. JSON is
/// implicitly in both sets, so negotiation cannot fail - worst case
/// both sides fall back to the baseline.
[[nodiscard]] Framing negotiate_framing(
    const std::vector<Framing>& client_order,
    const std::vector<Framing>& server_supported);

/// Session opener: names the workspace the client wants to evaluate
/// in. `options` carries only the measurement-relevant fields (seed,
/// noise, attribution, faults) - retries/cache/journal policy stays
/// client-side and is never transmitted.
struct HelloFrame {
  std::string program;      ///< benchmark name (programs::by_name)
  std::string arch;         ///< machine::architecture_by_name key
  std::string personality = "icc";  ///< "icc" | "gcc"
  core::FuncyTunerOptions options;
  Capabilities caps;        ///< caps.protocol doubles as the version
};

struct WelcomeFrame {
  std::string server = "ftuned";
  std::uint64_t session = 0;
  std::size_t max_batch = 0;  ///< requests the server accepts per frame
  /// The framing the server picked for every frame after this one.
  Framing framing = Framing::kJson;
  Capabilities caps;          ///< caps.archs = served architectures
};

struct ErrorFrame {
  std::string code;    ///< bad_frame, bad_request, unknown_program,
                       ///< unknown_architecture, overloaded,
                       ///< oversized_frame, not_ready,
                       ///< unsupported_version,
                       ///< unsupported_architecture
  std::string detail;
  std::uint64_t seq = 0;
  bool retryable = false;  ///< resend later (backpressure)
  bool fatal = false;      ///< server closes the connection after this
};

// --- unified decode --------------------------------------------------------

enum class FrameKind : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kError = 3,
  kEval = 4,
  kEvalBatch = 5,
  kResult = 6,
  kResultBatch = 7,
  kPing = 8,
  kPong = 9,
  kBye = 10,
};

/// One decoded frame of any kind. Reused across frames: reset() keeps
/// vector/string capacity, so a session's steady-state decode path
/// allocates nothing.
struct AnyFrame {
  FrameKind kind = FrameKind::kBye;
  std::uint64_t seq = 0;
  HelloFrame hello;
  WelcomeFrame welcome;
  ErrorFrame error;
  std::vector<core::EvalRequest> requests;    ///< eval / eval_batch
  std::vector<core::EvalResponse> responses;  ///< result / result_batch
  void reset();
};

enum class DecodeStatus {
  kOk,
  kUnparseable,   ///< not JSON / not a known binary envelope
  kUnknownType,   ///< parsed fine but names a frame type we don't know
  kMalformed,     ///< known type, invalid contents (reason in *error)
};

/// Decodes one payload under the given framing into *out (reset
/// first). On kMalformed, *error holds a human-readable reason.
[[nodiscard]] DecodeStatus decode_frame(Framing framing,
                                        std::string_view payload,
                                        AnyFrame* out, std::string* error);

// --- framing-dispatched encoders -------------------------------------------
// All append to *out after clearing it, so callers thread one
// FrameBuffer through their whole write path and reach steady-state
// zero allocation. hello/welcome are JSON-only on the wire (see file
// header); their binary forms exist for symmetry and round-trip tests.

void encode_hello_frame(Framing framing, const HelloFrame& hello,
                        std::string* out);
void encode_welcome_frame(Framing framing, const WelcomeFrame& welcome,
                          std::string* out);
void encode_error_frame(Framing framing, const ErrorFrame& error,
                        std::string* out);
void encode_eval_frame(Framing framing, std::uint64_t seq,
                       const core::EvalRequest& request, std::string* out);
void encode_eval_batch_frame(Framing framing, std::uint64_t seq,
                             std::span<const core::EvalRequest> requests,
                             std::string* out);
void encode_result_frame(Framing framing, std::uint64_t seq,
                         const core::EvalResponse& response,
                         std::string* out);
void encode_result_batch_frame(
    Framing framing, std::uint64_t seq,
    std::span<const core::EvalResponse> responses, std::string* out);
void encode_ping_frame(Framing framing, std::uint64_t seq,
                       std::string* out);
void encode_pong_frame(Framing framing, std::uint64_t seq,
                       std::string* out);
void encode_bye_frame(Framing framing, std::string* out);

// --- JSON encoders (exact, deterministic text) -----------------------------
// The historical API; the framing-dispatched encoders above delegate
// here for Framing::kJson.

[[nodiscard]] std::string encode_hello(const HelloFrame& hello);
[[nodiscard]] std::string encode_welcome(const WelcomeFrame& welcome);
[[nodiscard]] std::string encode_error(const ErrorFrame& error);
[[nodiscard]] std::string encode_eval(std::uint64_t seq,
                                      const core::EvalRequest& request);
[[nodiscard]] std::string encode_eval_batch(
    std::uint64_t seq, std::span<const core::EvalRequest> requests);
[[nodiscard]] std::string encode_result(
    std::uint64_t seq, const core::EvalResponse& response);
[[nodiscard]] std::string encode_result_batch(
    std::uint64_t seq, std::span<const core::EvalResponse> responses);
[[nodiscard]] std::string encode_ping(std::uint64_t seq);
[[nodiscard]] std::string encode_pong(std::uint64_t seq);
[[nodiscard]] std::string encode_bye();

// --- JSON decoders ---------------------------------------------------------
// Each returns false (with a human-readable reason in `error`) for a
// structurally valid JSON object that is not a valid frame of that
// type. Callers parse the JSON first and dispatch on frame_type().

/// The "type" member, or "" when absent / not an object.
[[nodiscard]] std::string frame_type(const support::JsonValue& frame);
/// The "seq" member, or 0 when absent.
[[nodiscard]] std::uint64_t frame_seq(const support::JsonValue& frame);

[[nodiscard]] bool decode_hello(const support::JsonValue& frame,
                                HelloFrame* out, std::string* error);
[[nodiscard]] bool decode_welcome(const support::JsonValue& frame,
                                  WelcomeFrame* out, std::string* error);
[[nodiscard]] bool decode_error(const support::JsonValue& frame,
                                ErrorFrame* out);

/// Request/response payloads (the "request"/"result" members of
/// eval/result frames). Exposed directly for the round-trip tests.
[[nodiscard]] std::string eval_request_json(
    const core::EvalRequest& request);
[[nodiscard]] bool parse_eval_request(const support::JsonValue& value,
                                      core::EvalRequest* out,
                                      std::string* error);
[[nodiscard]] std::string eval_response_json(
    const core::EvalResponse& response);
[[nodiscard]] bool parse_eval_response(const support::JsonValue& value,
                                       core::EvalResponse* out,
                                       std::string* error);

/// Decodes the request payload(s) of an eval / eval_batch frame.
[[nodiscard]] bool decode_eval(const support::JsonValue& frame,
                               std::vector<core::EvalRequest>* out,
                               std::string* error);
/// Decodes the response payload(s) of a result / result_batch frame.
[[nodiscard]] bool decode_result(const support::JsonValue& frame,
                                 std::vector<core::EvalResponse>* out,
                                 std::string* error);

}  // namespace ft::service
