// The ftuned wire protocol: typed frames over service/framing. Every
// frame is a JSON object with a "type" member; doubles travel as
// %.17g (bit-exact round-trip) and 64-bit integers as decimal strings,
// the same conventions as the checkpoint journal. EvalRequest /
// EvalResponse from core/evaluator.hpp are serialized field-for-field:
// the in-process evaluation currency IS the wire payload, so remote
// evaluation cannot drift from local semantics.
//
// Frame inventory (client -> server / server -> client):
//   hello       -> welcome | error      session setup + options
//   eval        -> result | error       one raw evaluation
//   eval_batch  -> result_batch | error coalesced batch
//   ping        -> pong                 liveness probe
//   bye         -> (close)              orderly shutdown
//
// An error frame carries a stable code, the offending seq (0 for
// session-level errors), and retryable/fatal bits. After a fatal
// error the server closes the connection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/funcy_tuner.hpp"
#include "support/json.hpp"

namespace ft::service {

/// Bumped on any incompatible frame change; a hello with a different
/// version is refused with "unsupported_version".
inline constexpr int kProtocolVersion = 1;

/// Session opener: names the workspace the client wants to evaluate
/// in. `options` carries only the measurement-relevant fields (seed,
/// noise, attribution, faults) - retries/cache/journal policy stays
/// client-side and is never transmitted.
struct HelloFrame {
  int protocol = kProtocolVersion;  ///< filled by decode_hello
  std::string program;      ///< benchmark name (programs::by_name)
  std::string arch;         ///< machine::architecture_by_name key
  std::string personality = "icc";  ///< "icc" | "gcc"
  core::FuncyTunerOptions options;
};

struct WelcomeFrame {
  std::string server = "ftuned";
  std::uint64_t session = 0;
  std::size_t max_batch = 0;  ///< requests the server accepts per frame
  /// Architecture names this daemon serves, in canonical table order.
  /// Heterogeneous fleets pin campaign cells to daemons advertising
  /// the cell's arch. Optional on the wire (absent = pre-fleet daemon
  /// = assume it serves everything), so version 1 stays compatible.
  std::vector<std::string> archs;
};

struct ErrorFrame {
  std::string code;    ///< bad_frame, bad_request, unknown_program,
                       ///< unknown_architecture, overloaded,
                       ///< oversized_frame, not_ready,
                       ///< unsupported_version
  std::string detail;
  std::uint64_t seq = 0;
  bool retryable = false;  ///< resend later (backpressure)
  bool fatal = false;      ///< server closes the connection after this
};

// --- encoders (exact, deterministic text) ----------------------------------

[[nodiscard]] std::string encode_hello(const HelloFrame& hello);
[[nodiscard]] std::string encode_welcome(const WelcomeFrame& welcome);
[[nodiscard]] std::string encode_error(const ErrorFrame& error);
[[nodiscard]] std::string encode_eval(std::uint64_t seq,
                                      const core::EvalRequest& request);
[[nodiscard]] std::string encode_eval_batch(
    std::uint64_t seq, std::span<const core::EvalRequest> requests);
[[nodiscard]] std::string encode_result(
    std::uint64_t seq, const core::EvalResponse& response);
[[nodiscard]] std::string encode_result_batch(
    std::uint64_t seq, std::span<const core::EvalResponse> responses);
[[nodiscard]] std::string encode_ping(std::uint64_t seq);
[[nodiscard]] std::string encode_pong(std::uint64_t seq);
[[nodiscard]] std::string encode_bye();

// --- decoders --------------------------------------------------------------
// Each returns false (with a human-readable reason in `error`) for a
// structurally valid JSON object that is not a valid frame of that
// type. Callers parse the JSON first and dispatch on frame_type().

/// The "type" member, or "" when absent / not an object.
[[nodiscard]] std::string frame_type(const support::JsonValue& frame);
/// The "seq" member, or 0 when absent.
[[nodiscard]] std::uint64_t frame_seq(const support::JsonValue& frame);

[[nodiscard]] bool decode_hello(const support::JsonValue& frame,
                                HelloFrame* out, std::string* error);
[[nodiscard]] bool decode_welcome(const support::JsonValue& frame,
                                  WelcomeFrame* out, std::string* error);
[[nodiscard]] bool decode_error(const support::JsonValue& frame,
                                ErrorFrame* out);

/// Request/response payloads (the "request"/"result" members of
/// eval/result frames). Exposed directly for the round-trip tests.
[[nodiscard]] std::string eval_request_json(
    const core::EvalRequest& request);
[[nodiscard]] bool parse_eval_request(const support::JsonValue& value,
                                      core::EvalRequest* out,
                                      std::string* error);
[[nodiscard]] std::string eval_response_json(
    const core::EvalResponse& response);
[[nodiscard]] bool parse_eval_response(const support::JsonValue& value,
                                       core::EvalResponse* out,
                                       std::string* error);

/// Decodes the request payload(s) of an eval / eval_batch frame.
[[nodiscard]] bool decode_eval(const support::JsonValue& frame,
                               std::vector<core::EvalRequest>* out,
                               std::string* error);
/// Decodes the response payload(s) of a result / result_batch frame.
[[nodiscard]] bool decode_result(const support::JsonValue& frame,
                                 std::vector<core::EvalResponse>* out,
                                 std::string* error);

}  // namespace ft::service
