#include "service/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/persistent_cache.hpp"
#include "machine/architecture.hpp"
#include "programs/benchmarks.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace ft::service {

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::string fmt_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Stable identity of an evaluation context: everything that changes
/// what a raw run measures. Two hellos with the same key share one
/// engine (and its compiled-module cache).
std::uint64_t workspace_key(const HelloFrame& hello) {
  const machine::FaultConfig& faults = hello.options.faults;
  std::ostringstream oss;
  oss << hello.program << '|' << hello.arch << '|' << hello.personality
      << '|' << hello.options.seed << '|'
      << fmt_double(hello.options.noise_sigma_rel) << '|'
      << fmt_double(hello.options.attribution_sigma) << '|'
      << fmt_double(faults.rate) << '|' << faults.seed << '|'
      << fmt_double(faults.compile_share) << '|'
      << fmt_double(faults.crash_share) << '|'
      << fmt_double(faults.timeout_share) << '|'
      << fmt_double(faults.outlier_rate) << '|'
      << fmt_double(faults.outlier_min_scale) << '|'
      << fmt_double(faults.outlier_max_scale);
  return support::fnv1a64(oss.str());
}

/// Wire name of a frame kind, for "unknown frame type 'x'" errors
/// about frames a client has no business sending to a server.
const char* frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kWelcome: return "welcome";
    case FrameKind::kError: return "error";
    case FrameKind::kEval: return "eval";
    case FrameKind::kEvalBatch: return "eval_batch";
    case FrameKind::kResult: return "result";
    case FrameKind::kResultBatch: return "result_batch";
    case FrameKind::kPing: return "ping";
    case FrameKind::kPong: return "pong";
    case FrameKind::kBye: return "bye";
  }
  return "unknown";
}

std::uint32_t payload_length_be(const std::string& inbox,
                                std::size_t pos) {
  return (static_cast<std::uint32_t>(
              static_cast<unsigned char>(inbox[pos]))
          << 24) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(inbox[pos + 1]))
          << 16) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(inbox[pos + 2]))
          << 8) |
         static_cast<std::uint32_t>(
             static_cast<unsigned char>(inbox[pos + 3]));
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  // Canonicalize the served set to display names up front, so the
  // handshake match and the welcome advertisement are insensitive to
  // whether `--archs` used CLI keys ("broadwell") or display names
  // ("Intel Broadwell"). Throws for unknown names - a misconfigured
  // daemon should die at startup, not refuse every client.
  for (std::string& arch : options_.archs) {
    arch = machine::architecture_by_name(arch).name;
  }
  // The disk tier is built at startup (it throws on an unusable
  // directory - a misconfigured daemon should die here, not refuse
  // every client) and shared by every workspace.
  if (!options_.cache_dir.empty()) {
    disk_cache_ = std::make_shared<core::PersistentCache>(
        core::PersistentCache::Options{
            .dir = options_.cache_dir,
            .max_bytes = options_.cache_disk_bytes});
  }
  // JSON is the negotiation carrier and the compatibility baseline:
  // a daemon may refuse to *prefer* it, never to speak it.
  if (std::find(options_.framings.begin(), options_.framings.end(),
                Framing::kJson) == options_.framings.end()) {
    options_.framings.insert(options_.framings.begin(), Framing::kJson);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  // Outbox flushes use MSG_NOSIGNAL, but a peer dying between the
  // poll and the send can still raise SIGPIPE on some paths; one
  // process-wide SIG_IGN turns every such race into a plain EPIPE.
  ignore_sigpipe();
  chaos_ = chaos::make_engine(options_.chaos);
  listener_ = Listener::bind(Address::parse(options_.listen));
  listener_.set_nonblocking();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    listener_.close();
    throw ServiceError("bind", "cannot create event loop fds: " +
                                   std::string(std::strerror(errno)));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listener_.fd();
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &event);
  event.data.fd = wake_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

  read_scratch_.resize(256 * 1024);
  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  drain_initiated_ = false;
  drain_bye_sent_ = false;
  workers_shutdown_ = false;
  touch();
  running_.store(true, std::memory_order_release);

  std::size_t worker_count = options_.workers;
  if (worker_count == 0) {
    worker_count = std::clamp<std::size_t>(
        std::thread::hardware_concurrency(), 2, 16);
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  loop_thread_ = std::thread([this] { event_loop(); });
}

int Server::serve() {
  start();
  wait();
  return 0;
}

void Server::wait() {
  std::lock_guard teardown(teardown_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard lock(jobs_mutex_);
    workers_shutdown_ = true;
  }
  jobs_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  listener_.close();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  {
    std::lock_guard lock(completions_mutex_);
    completions_.clear();
  }
  running_.store(false, std::memory_order_release);
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  wake_loop();
  wait();
}

void Server::request_drain() noexcept {
  // Called from signal handlers (ftuned's SIGTERM): an atomic store
  // plus an eventfd write, both async-signal-safe. Everything
  // stateful happens on the loop thread in drain_step().
  draining_.store(true, std::memory_order_release);
  wake_loop();
}

Server::Stats Server::stats() const {
  Stats out;
  out.sessions_accepted = stats_.sessions_accepted.load();
  out.frames_served = stats_.frames_served.load();
  out.evaluations = stats_.evaluations.load();
  out.batch_frames = stats_.batch_frames.load();
  out.cache_hits = stats_.cache_hits.load();
  out.errors_sent = stats_.errors_sent.load();
  out.overloads = stats_.overloads.load();
  out.binary_sessions = stats_.binary_sessions.load();
  out.drain_refusals = stats_.drain_refusals.load();
  out.deadline_refusals = stats_.deadline_refusals.load();
  out.cancelled_jobs = stats_.cancelled_jobs.load();
  out.loris_kills = stats_.loris_kills.load();
  out.evictions = stats_.evictions.load();
  return out;
}

void Server::touch() noexcept {
  last_activity_.store(now_seconds(), std::memory_order_release);
}

void Server::wake_loop() noexcept {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

// --- event loop (all session state is owned by this thread) ----------------

void Server::event_loop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready =
        ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listener_.fd()) {
        accept_ready();
        continue;
      }
      // Look sessions up by fd, never by stored pointer: an earlier
      // event in this same batch may have destroyed the session.
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      SessionState* session = it->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        destroy_session(session);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        if (!session_readable(session)) continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        (void)session_writable(session);
      }
    }
    apply_completions();
    const double now = now_seconds();
    sweep_stalled_sessions(now);
    if (draining_.load(std::memory_order_acquire)) {
      if (drain_step(now)) break;
      continue;  // the drain owns shutdown; skip the idle exit
    }
    if (options_.idle_timeout_seconds > 0 && sessions_.empty() &&
        inflight_.load(std::memory_order_acquire) == 0 &&
        now - last_activity_.load(std::memory_order_acquire) >
            options_.idle_timeout_seconds) {
      break;  // idle shutdown (never mid-batch: inflight work pins us)
    }
  }
  // Close every session before the workers are joined so any client
  // blocked on a reply observes a transport error, not a stall.
  {
    std::lock_guard lock(live_mutex_);
    live_sessions_.clear();
  }
  sessions_by_id_.clear();
  sessions_.clear();
}

bool Server::drain_step(double now) {
  if (!drain_initiated_) {
    drain_initiated_ = true;
    drain_deadline_ =
        now + std::max(0.0, options_.drain_grace_seconds);
    // Stop accepting first: closing the listener makes new dials fail
    // fast (connection refused), which is what reroutes a fleet.
    if (listener_.valid()) {
      (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(),
                        nullptr);
      listener_.close();
    }
  }
  // Quiescent = no admitted evaluations left AND no session has a job
  // in flight (covers hellos and queued-but-unstarted jobs: a queued
  // job's session is busy until its completion applies).
  bool quiescent = inflight_.load(std::memory_order_acquire) == 0;
  if (quiescent) {
    for (const auto& [fd, session] : sessions_) {
      if (session->busy) {
        quiescent = false;
        break;
      }
    }
  }
  if ((quiescent || now >= drain_deadline_) && !drain_bye_sent_) {
    drain_bye_sent_ = true;
    std::vector<int> fds;
    fds.reserve(sessions_.size());
    for (const auto& [fd, session] : sessions_) fds.push_back(fd);
    for (const int fd : fds) {
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      SessionState* session = it->second.get();
      if (session->closing) continue;
      std::string bye;
      encode_bye_frame(session->framing, &bye);
      session->closing = true;
      session->inbox.clear();
      session->backlog.clear();
      if (!queue_reply(session, std::move(bye))) continue;
      if (session->outbox.empty()) {
        destroy_session(session);
      } else {
        update_interest(session);
      }
    }
  }
  if (drain_bye_sent_ && sessions_.empty()) return true;  // clean exit
  return now >= drain_deadline_;  // grace expired: force the exit
}

void Server::sweep_stalled_sessions(double now) {
  if (options_.read_progress_timeout_seconds <= 0 || sessions_.empty()) {
    return;
  }
  std::vector<int> victims;
  for (const auto& [fd, session] : sessions_) {
    if (session->busy || session->closing) continue;
    // Idle greeted sessions owe us nothing; only a connection holding
    // an unfinished obligation (no hello yet, or a partial frame
    // parked in its inbox) can loris us.
    if (session->greeted && session->inbox.empty()) continue;
    if (now - session->last_rx >
        options_.read_progress_timeout_seconds) {
      victims.push_back(fd);
    }
  }
  for (const int fd : victims) {
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    stats_.loris_kills.fetch_add(1, std::memory_order_relaxed);
    destroy_session(it->second.get());
  }
}

bool Server::session_live(std::uint64_t id) {
  std::lock_guard lock(live_mutex_);
  return live_sessions_.count(id) != 0;
}

void Server::accept_ready() {
  for (;;) {
    Socket socket = listener_.accept_nonblocking();
    if (!socket.valid()) return;
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      // At the cap: evict the oldest-IDLE session (no job in flight,
      // nothing queued to send) in favor of the newcomer. When every
      // session is actively working, the newcomer is the one dropped -
      // active work is never sacrificed for an unknown peer.
      SessionState* oldest = nullptr;
      for (const auto& [fd, state] : sessions_) {
        if (state->busy || !state->outbox.empty()) continue;
        if (oldest == nullptr || state->last_rx < oldest->last_rx) {
          oldest = state.get();
        }
      }
      if (oldest == nullptr) continue;  // drop the new connection
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      destroy_session(oldest);
    }
    socket.set_nonblocking();
    auto session = std::make_unique<SessionState>();
    session->id = next_session_id_++;
    session->socket = std::move(socket);
    session->interest = EPOLLIN;
    session->last_rx = now_seconds();
    const int fd = session->socket.fd();
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      continue;  // drop the connection; nothing else to do
    }
    {
      std::lock_guard lock(live_mutex_);
      live_sessions_.insert(session->id);
    }
    sessions_by_id_.emplace(session->id, session.get());
    sessions_.emplace(fd, std::move(session));
    stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
    touch();
  }
}

bool Server::session_readable(SessionState* session) {
  for (;;) {
    const ssize_t got = ::recv(session->socket.fd(),
                               read_scratch_.data(),
                               read_scratch_.size(), 0);
    if (got > 0) {
      session->inbox.append(read_scratch_.data(),
                            static_cast<std::size_t>(got));
      session->last_rx = now_seconds();
      if (static_cast<std::size_t>(got) < read_scratch_.size()) break;
      continue;
    }
    if (got == 0) {  // peer hung up
      destroy_session(session);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    destroy_session(session);
    return false;
  }
  return extract_frames(session);
}

bool Server::extract_frames(SessionState* session) {
  std::size_t pos = 0;
  while (!session->closing) {
    if (session->inbox.size() - pos < 4) break;
    const std::uint32_t length = payload_length_be(session->inbox, pos);
    if (length > options_.max_frame_bytes) {
      // The stream is unsynchronized past the declared length;
      // nothing to do but refuse and hang up (flush first).
      stats_.errors_sent.fetch_add(1, std::memory_order_relaxed);
      std::string reply;
      encode_error_frame(session->framing,
                         ErrorFrame{"oversized_frame",
                                    session->greeted
                                        ? "frame exceeds max_frame_bytes"
                                        : "hello frame exceeds the cap",
                                    0, false, true},
                         &reply);
      session->closing = true;
      session->inbox.clear();
      session->backlog.clear();
      pos = 0;
      if (!queue_reply(session, std::move(reply))) return false;
      break;
    }
    if (session->inbox.size() - pos < 4 + std::size_t{length}) break;
    std::string payload = session->inbox.substr(pos + 4, length);
    pos += 4 + std::size_t{length};
    touch();
    handle_frame(session, std::move(payload));
  }
  if (pos > 0) session->inbox.erase(0, pos);
  if (session->closing && session->outbox.empty()) {
    destroy_session(session);
    return false;
  }
  update_interest(session);
  return true;
}

void Server::handle_frame(SessionState* session, std::string payload) {
  if (session->busy) {
    // Strict request -> response ordering: one job in flight per
    // session, later frames wait their turn.
    session->backlog.push_back(std::move(payload));
    return;
  }
  dispatch_job(session, std::move(payload));
}

void Server::dispatch_job(SessionState* session, std::string payload) {
  session->busy = true;
  Job job;
  job.session_id = session->id;
  job.is_hello = !session->greeted;
  job.framing = session->framing;
  job.workspace = session->workspace;
  job.payload = std::move(payload);
  job.enqueued = now_seconds();
  {
    std::lock_guard lock(jobs_mutex_);
    jobs_.push_back(std::move(job));
  }
  jobs_ready_.notify_one();
}

void Server::apply_completions() {
  std::deque<Completion> batch;
  {
    std::lock_guard lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const auto it = sessions_by_id_.find(completion.session_id);
    if (it == sessions_by_id_.end()) continue;  // peer already gone
    SessionState* session = it->second;
    session->busy = false;
    if (completion.greeted) {
      session->greeted = true;
      session->workspace = completion.workspace;
    }
    if (!completion.reply.empty() &&
        !queue_reply(session, std::move(completion.reply))) {
      continue;  // session destroyed on a dead socket
    }
    if (completion.greeted) {
      // The welcome itself went out under JSON (the negotiation
      // carrier); everything after it speaks the negotiated framing.
      session->framing = completion.framing;
      if (completion.framing != Framing::kJson) {
        stats_.binary_sessions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (completion.close) {
      session->closing = true;
      session->inbox.clear();
      session->backlog.clear();
    }
    if (session->closing) {
      if (session->outbox.empty()) {
        destroy_session(session);
        continue;
      }
    } else if (!session->backlog.empty()) {
      std::string next = std::move(session->backlog.front());
      session->backlog.pop_front();
      dispatch_job(session, std::move(next));
    }
    update_interest(session);
    touch();
  }
}

bool Server::queue_reply(SessionState* session, std::string payload) {
  OutFrame frame;
  const std::uint32_t length =
      static_cast<std::uint32_t>(payload.size());
  frame.prefix[0] = static_cast<unsigned char>(length >> 24);
  frame.prefix[1] = static_cast<unsigned char>(length >> 16);
  frame.prefix[2] = static_cast<unsigned char>(length >> 8);
  frame.prefix[3] = static_cast<unsigned char>(length);
  frame.payload = std::move(payload);
  session->outbox.push_back(std::move(frame));
  // Optimistic flush: in the common case the kernel buffer swallows
  // the whole reply and no EPOLLOUT round-trip ever happens.
  if (!flush_outbox(session)) {
    destroy_session(session);
    return false;
  }
  update_interest(session);
  return true;
}

bool Server::flush_outbox(SessionState* session) {
  // Seeded fault injection on the server's write path: a torn flush
  // (tiny chunk cap, exercising client-side reassembly) or a
  // mid-frame reset (exercising client-side kTorn handling). Drawn
  // once per flush call so a capped flush still makes progress.
  std::size_t chunk_limit = static_cast<std::size_t>(-1);
  if (chaos_ != nullptr) {
    if (chaos_->should_reset_mid_frame() && !session->outbox.empty()) {
      session->socket.shutdown_both();
      return false;
    }
    chunk_limit = chaos_->torn_chunk_limit();
  }
  while (!session->outbox.empty()) {
    // Vectored write: up to 16 frames, each as prefix + payload
    // remainders - one syscall flushes a burst of replies.
    iovec iov[32];
    int iov_count = 0;
    for (const OutFrame& frame : session->outbox) {
      if (iov_count + 2 > 32) break;
      std::size_t offset = frame.offset;
      if (offset < 4) {
        iov[iov_count].iov_base =
            const_cast<unsigned char*>(frame.prefix) + offset;
        iov[iov_count].iov_len = 4 - offset;
        ++iov_count;
        offset = 0;
      } else {
        offset -= 4;
      }
      if (offset < frame.payload.size()) {
        iov[iov_count].iov_base =
            const_cast<char*>(frame.payload.data()) + offset;
        iov[iov_count].iov_len = frame.payload.size() - offset;
        ++iov_count;
      }
    }
    if (chunk_limit != static_cast<std::size_t>(-1)) {
      std::size_t budget = chunk_limit;
      for (int i = 0; i < iov_count; ++i) {
        iov[i].iov_len = std::min(iov[i].iov_len, budget);
        budget -= iov[i].iov_len;
      }
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iov_count);
    const ssize_t sent = ::sendmsg(session->socket.fd(), &msg,
                                   MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;  // kernel buffer full; EPOLLOUT will resume
      }
      return false;  // dead socket
    }
    std::size_t remaining = static_cast<std::size_t>(sent);
    while (remaining > 0 && !session->outbox.empty()) {
      OutFrame& front = session->outbox.front();
      const std::size_t total = 4 + front.payload.size();
      const std::size_t left = total - front.offset;
      if (remaining >= left) {
        remaining -= left;
        session->outbox.pop_front();
      } else {
        front.offset += remaining;
        remaining = 0;
      }
    }
    if (chunk_limit != static_cast<std::size_t>(-1)) {
      // A genuine short write: leave the remainder for EPOLLOUT so the
      // tear is visible on the wire instead of being resent inline.
      return true;
    }
  }
  return true;
}

bool Server::session_writable(SessionState* session) {
  if (!flush_outbox(session)) {
    destroy_session(session);
    return false;
  }
  if (session->closing && session->outbox.empty()) {
    destroy_session(session);
    return false;
  }
  update_interest(session);
  return true;
}

void Server::update_interest(SessionState* session) {
  std::uint32_t desired = 0;
  // Reading pauses while a job is in flight (and while closing): the
  // kernel's receive window, not our memory, buffers an overeager
  // client - per-session TCP backpressure.
  if (!session->busy && !session->closing) desired |= EPOLLIN;
  if (!session->outbox.empty()) desired |= EPOLLOUT;
  if (desired == session->interest) return;
  epoll_event event{};
  event.events = desired;
  event.data.fd = session->socket.fd();
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->socket.fd(),
                    &event);
  session->interest = desired;
}

void Server::destroy_session(SessionState* session) {
  const int fd = session->socket.fd();
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  {
    std::lock_guard lock(live_mutex_);
    live_sessions_.erase(session->id);
  }
  sessions_by_id_.erase(session->id);
  sessions_.erase(fd);  // closes the socket
  touch();  // idle countdown starts when the last session leaves
}

// --- worker pool -----------------------------------------------------------

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(jobs_mutex_);
      jobs_ready_.wait(lock, [this] {
        return workers_shutdown_ || !jobs_.empty();
      });
      if (workers_shutdown_) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    run_job(std::move(job));
  }
}

void Server::post(Completion completion) {
  {
    std::lock_guard lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  wake_loop();
}

Server::Completion Server::error_completion(std::uint64_t session_id,
                                            Framing framing,
                                            const ErrorFrame& error) {
  stats_.errors_sent.fetch_add(1, std::memory_order_relaxed);
  Completion completion;
  completion.session_id = session_id;
  completion.close = error.fatal;
  encode_error_frame(framing, error, &completion.reply);
  return completion;
}

Server::Completion Server::serve_hello(const Job& job) {
  const std::uint64_t sid = job.session_id;
  // The hello is ALWAYS JSON: it carries the negotiation that decides
  // what everything after the welcome speaks.
  static thread_local AnyFrame frame;
  std::string error;
  const DecodeStatus status =
      decode_frame(Framing::kJson, job.payload, &frame, &error);
  if (status == DecodeStatus::kUnparseable) {
    return error_completion(sid, Framing::kJson,
                            ErrorFrame{"bad_frame", error, 0, false,
                                       true});
  }
  if (frame.kind != FrameKind::kHello ||
      status == DecodeStatus::kUnknownType) {
    return error_completion(sid, Framing::kJson,
                            ErrorFrame{"bad_request",
                                       "expected a hello frame", 0,
                                       false, true});
  }
  if (status != DecodeStatus::kOk) {
    return error_completion(sid, Framing::kJson,
                            ErrorFrame{"bad_request", error, 0, false,
                                       true});
  }
  const HelloFrame& hello = frame.hello;
  if (hello.caps.protocol != kProtocolVersion) {
    return error_completion(
        sid, Framing::kJson,
        ErrorFrame{"unsupported_version",
                   "server speaks protocol version " +
                       std::to_string(kProtocolVersion),
                   0, false, true});
  }
  try {
    (void)programs::by_name(hello.program);
  } catch (const std::exception& reason) {
    return error_completion(sid, Framing::kJson,
                            ErrorFrame{"unknown_program", reason.what(),
                                       0, false, true});
  }
  try {
    (void)machine::architecture_by_name(hello.arch);
  } catch (const std::exception& reason) {
    return error_completion(sid, Framing::kJson,
                            ErrorFrame{"unknown_architecture",
                                       reason.what(), 0, false, true});
  }
  const std::string arch_display =
      machine::architecture_by_name(hello.arch).name;
  if (!options_.archs.empty() &&
      std::find(options_.archs.begin(), options_.archs.end(),
                arch_display) == options_.archs.end()) {
    // Known arch, but this daemon was started without it (e.g. it
    // only has Broadwell measurement hosts behind it). Distinct from
    // unknown_architecture so a fleet can treat the endpoint as
    // ineligible for the cell rather than the hello as malformed.
    return error_completion(
        sid, Framing::kJson,
        ErrorFrame{"unsupported_architecture",
                   "this daemon does not serve " + hello.arch, 0, false,
                   true});
  }

  Workspace* workspace = nullptr;
  try {
    workspace = workspace_for(hello);
  } catch (const std::exception& reason) {
    return error_completion(sid, Framing::kJson,
                            ErrorFrame{"bad_request", reason.what(), 0,
                                       false, true});
  }
  WelcomeFrame welcome;
  welcome.session = sid;
  welcome.max_batch = options_.max_batch;
  welcome.framing =
      negotiate_framing(hello.caps.framings, options_.framings);
  welcome.caps.protocol = kProtocolVersion;
  welcome.caps.framings = options_.framings;
  welcome.caps.max_frame_bytes = options_.max_frame_bytes;
  if (!options_.archs.empty()) {
    welcome.caps.archs = options_.archs;
  } else {
    for (const machine::Architecture& arch :
         machine::all_architectures()) {
      welcome.caps.archs.push_back(arch.name);
    }
  }
  Completion completion;
  completion.session_id = sid;
  completion.greeted = true;
  completion.framing = welcome.framing;
  completion.workspace = workspace;
  encode_welcome_frame(Framing::kJson, welcome, &completion.reply);
  return completion;
}

void Server::run_job(Job job) {
  if (job.is_hello) {
    if (draining_.load(std::memory_order_acquire)) {
      // A greeting mid-drain gets a retryable refusal and a hangup:
      // the client should take its workspace to another daemon.
      stats_.drain_refusals.fetch_add(1, std::memory_order_relaxed);
      post(error_completion(
          job.session_id, Framing::kJson,
          ErrorFrame{"draining", "daemon is draining for shutdown", 0,
                     true, true}));
      return;
    }
    post(serve_hello(job));
    return;
  }
  const std::uint64_t sid = job.session_id;
  const Framing framing = job.framing;
  // thread_local: a worker reuses its decode scratch across jobs, so
  // steady-state batches don't re-grow request vectors from scratch.
  static thread_local AnyFrame frame;
  std::string error;
  const DecodeStatus status =
      decode_frame(framing, job.payload, &frame, &error);
  if (status == DecodeStatus::kUnparseable) {
    // Length framing is still synchronized, so a garbage payload
    // costs only this frame - the session survives.
    post(error_completion(sid, framing,
                          ErrorFrame{"bad_frame", error, 0, false,
                                     false}));
    return;
  }
  if (status != DecodeStatus::kOk) {
    // kUnknownType keeps the decoder's "unknown frame type 'x'" text.
    post(error_completion(sid, framing,
                          ErrorFrame{"bad_request", error, frame.seq,
                                     false, false}));
    return;
  }
  switch (frame.kind) {
    case FrameKind::kBye: {
      Completion completion;
      completion.session_id = sid;
      completion.close = true;
      post(std::move(completion));
      return;
    }
    case FrameKind::kPing: {
      Completion completion;
      completion.session_id = sid;
      encode_pong_frame(framing, frame.seq, &completion.reply);
      stats_.frames_served.fetch_add(1, std::memory_order_relaxed);
      post(std::move(completion));
      return;
    }
    case FrameKind::kEval:
    case FrameKind::kEvalBatch:
      break;
    default:
      // A decodable frame only a server may send (welcome, result,
      // pong, ...) or a second hello: a protocol violation, but a
      // recoverable one.
      post(error_completion(
          sid, framing,
          ErrorFrame{"bad_request",
                     std::string("unknown frame type '") +
                         frame_kind_name(frame.kind) + "'",
                     frame.seq, false, false}));
      return;
  }

  const std::uint64_t seq = frame.seq;
  const bool batch = frame.kind == FrameKind::kEvalBatch;
  const std::vector<core::EvalRequest>& requests = frame.requests;
  if (draining_.load(std::memory_order_acquire)) {
    // Inflight work finishes; NEW evaluations are refused retryably so
    // the client reroutes (a fleet to another endpoint, a lone client
    // to its local fallback) instead of waiting on a dying daemon.
    stats_.drain_refusals.fetch_add(1, std::memory_order_relaxed);
    post(error_completion(
        sid, framing,
        ErrorFrame{"draining", "daemon is draining for shutdown", seq,
                   true, false}));
    return;
  }
  if (options_.request_deadline_seconds > 0 &&
      now_seconds() - job.enqueued > options_.request_deadline_seconds) {
    // The job aged out in the worker queue: by the time we could start
    // it, the client has likely timed out and resent elsewhere -
    // refuse retryably instead of computing an answer nobody reads.
    stats_.deadline_refusals.fetch_add(1, std::memory_order_relaxed);
    post(error_completion(
        sid, framing,
        ErrorFrame{"deadline",
                   "request exceeded the server-side deadline before "
                   "a worker could start it",
                   seq, true, false}));
    return;
  }
  if (!session_live(sid)) {
    // The peer hung up while this frame waited its turn: its reply
    // would be dropped anyway, so skip the evaluation entirely.
    stats_.cancelled_jobs.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (chaos_ != nullptr && chaos_->should_refuse_overloaded() &&
      (frame.kind == FrameKind::kEval ||
       frame.kind == FrameKind::kEvalBatch)) {
    // Injected spurious backpressure: exercises client retry/backoff
    // paths without the daemon actually being saturated.
    stats_.overloads.fetch_add(1, std::memory_order_relaxed);
    post(error_completion(
        sid, framing,
        ErrorFrame{"overloaded", "injected chaos backpressure", seq,
                   true, false}));
    return;
  }
  if (requests.empty()) {
    post(error_completion(sid, framing,
                          ErrorFrame{"bad_request", "empty batch", seq,
                                     false, false}));
    return;
  }
  if (requests.size() > options_.max_batch) {
    post(error_completion(
        sid, framing,
        ErrorFrame{"bad_request",
                   "batch exceeds the advertised max_batch", seq, false,
                   false}));
    return;
  }
  // Admission control: refuse (retryably) instead of queueing without
  // bound.
  const std::size_t admitted = requests.size();
  const std::size_t before =
      inflight_.fetch_add(admitted, std::memory_order_acq_rel);
  if (before + admitted > options_.max_inflight) {
    inflight_.fetch_sub(admitted, std::memory_order_acq_rel);
    stats_.overloads.fetch_add(1, std::memory_order_relaxed);
    post(error_completion(
        sid, framing,
        ErrorFrame{"overloaded", "max_inflight evaluations reached",
                   seq, true, false}));
    return;
  }
  Completion completion;
  completion.session_id = sid;
  try {
    const std::vector<core::EvalResponse> responses =
        serve_requests(*job.workspace, requests);
    if (batch) {
      encode_result_batch_frame(framing, seq, responses,
                                &completion.reply);
    } else {
      encode_result_frame(framing, seq, responses.front(),
                          &completion.reply);
    }
    stats_.frames_served.fetch_add(1, std::memory_order_relaxed);
    stats_.evaluations.fetch_add(admitted, std::memory_order_relaxed);
    if (batch) {
      stats_.batch_frames.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::exception& reason) {
    completion = error_completion(sid, framing,
                                  ErrorFrame{"bad_request",
                                             reason.what(), seq, false,
                                             false});
  }
  inflight_.fetch_sub(admitted, std::memory_order_acq_rel);
  post(std::move(completion));
}

// --- evaluation ------------------------------------------------------------

Server::Workspace* Server::workspace_for(const HelloFrame& hello) {
  const std::uint64_t key = workspace_key(hello);
  std::lock_guard lock(workspaces_mutex_);
  auto it = workspaces_.find(key);
  if (it != workspaces_.end()) return it->second.get();

  core::FuncyTunerOptions options;
  options.seed = hello.options.seed;
  options.noise_sigma_rel = hello.options.noise_sigma_rel;
  options.attribution_sigma = hello.options.attribution_sigma;
  options.faults = hello.options.faults;
  // The daemon never caches through the Evaluator (that cache belongs
  // to the client's bookkeeping); its own raw-result cache is separate.
  options.eval_cache = false;

  auto workspace = std::make_unique<Workspace>();
  workspace->tuner = std::make_unique<core::FuncyTuner>(
      programs::by_name(hello.program),
      machine::architecture_by_name(hello.arch), options,
      hello.personality == "gcc" ? compiler::Personality::kGcc
                                 : compiler::Personality::kIcc);
  if (options_.cache_entries > 0 || disk_cache_ != nullptr) {
    workspace->cache = std::make_unique<core::EvalCache>(
        options_.cache_entries > 0 ? options_.cache_entries
                                   : core::EvalCache::kDefaultMaxEntries);
    if (disk_cache_ != nullptr) workspace->cache->attach_disk(disk_cache_);
  }
  workspace->salt = key;
  Workspace* raw = workspace.get();
  workspaces_.emplace(key, std::move(workspace));
  return raw;
}

core::EvalResponse Server::serve_one(Workspace& workspace,
                                     const core::EvalRequest& request) {
  core::Evaluator& evaluator = workspace.tuner->evaluator();
  core::EvalResponse response;
  core::EvalCache::Key key;
  if (workspace.cache) {
    key.assignment = evaluator.assignment_key(request.assignment);
    key.rep_base = request.rep_base;
    // EvalCache::Key carries no aggregate/noise fields; fold them into
    // the per-workspace salt so requests differing only there can
    // never alias.
    key.salt = workspace.salt ^
               ((static_cast<std::uint64_t>(request.aggregate) * 2 +
                 (request.noise ? 1 : 0) + 1) *
                0x9e3779b97f4a7c15ull);
    key.repetitions = request.repetitions;
    key.instrumented = request.instrumented;
    core::EvalOutcome outcome;
    if (workspace.cache->lookup(key, &outcome)) {
      response.outcome = std::move(outcome);
      response.served_by = core::EvalServedBy::kCacheHit;
      response.modules_compiled = 0;
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
  }
  const core::EvalBackend::RawResult raw =
      evaluator.raw_run(request.assignment, request.run_options());
  response.outcome.result = raw.result;
  response.outcome.attempts = 1;
  response.served_by = core::EvalServedBy::kRun;
  response.modules_compiled = raw.modules_compiled;
  if (workspace.cache) {
    workspace.cache->insert(key, response.outcome, /*rerun_seconds=*/0.0);
  }
  return response;
}

std::vector<core::EvalResponse> Server::serve_requests(
    Workspace& workspace,
    const std::vector<core::EvalRequest>& requests) {
  std::vector<core::EvalResponse> responses(requests.size());
  if (requests.size() == 1) {
    responses[0] = serve_one(workspace, requests[0]);
    return responses;
  }
  // One task-group submission for the whole frame: this is the
  // "batched worker shards" half of the coalescing bargain (the client
  // coalesced N evaluations into one frame; the server fans them back
  // out across the shared pool).
  support::parallel_for(requests.size(), [&](std::size_t i) {
    responses[i] = serve_one(workspace, requests[i]);
  });
  return responses;
}

}  // namespace ft::service
