#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "machine/architecture.hpp"
#include "programs/benchmarks.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace ft::service {

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::string fmt_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Stable identity of an evaluation context: everything that changes
/// what a raw run measures. Two hellos with the same key share one
/// engine (and its compiled-module cache).
std::uint64_t workspace_key(const HelloFrame& hello) {
  const machine::FaultConfig& faults = hello.options.faults;
  std::ostringstream oss;
  oss << hello.program << '|' << hello.arch << '|' << hello.personality
      << '|' << hello.options.seed << '|'
      << fmt_double(hello.options.noise_sigma_rel) << '|'
      << fmt_double(hello.options.attribution_sigma) << '|'
      << fmt_double(faults.rate) << '|' << faults.seed << '|'
      << fmt_double(faults.compile_share) << '|'
      << fmt_double(faults.crash_share) << '|'
      << fmt_double(faults.timeout_share) << '|'
      << fmt_double(faults.outlier_rate) << '|'
      << fmt_double(faults.outlier_min_scale) << '|'
      << fmt_double(faults.outlier_max_scale);
  return support::fnv1a64(oss.str());
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  // Canonicalize the served set to display names up front, so the
  // handshake match and the welcome advertisement are insensitive to
  // whether `--archs` used CLI keys ("broadwell") or display names
  // ("Intel Broadwell"). Throws for unknown names - a misconfigured
  // daemon should die at startup, not refuse every client.
  for (std::string& arch : options_.archs) {
    arch = machine::architecture_by_name(arch).name;
  }
}

Server::~Server() { stop(); }

void Server::start() {
  listener_ = Listener::bind(Address::parse(options_.listen));
  stopping_.store(false, std::memory_order_release);
  touch();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

int Server::serve() {
  start();
  wait();
  return 0;
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is done (idle timeout or stop()); tear down any
  // sessions that are still alive and join every session thread.
  {
    std::lock_guard lock(sessions_mutex_);
    for (const std::unique_ptr<Session>& session : sessions_) {
      session->socket.shutdown_both();
    }
  }
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard lock(sessions_mutex_);
    finished.swap(sessions_);
  }
  for (const std::unique_ptr<Session>& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
  listener_.close();
  running_.store(false, std::memory_order_release);
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  wait();
}

Server::Stats Server::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void Server::touch() noexcept {
  last_activity_.store(now_seconds(), std::memory_order_release);
}

void Server::reap_finished_sessions() {
  std::lock_guard lock(sessions_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket socket = listener_.accept_within(/*timeout_ms=*/200);
    if (!socket.valid()) {
      reap_finished_sessions();
      if (options_.idle_timeout_seconds > 0 &&
          active_sessions_.load(std::memory_order_acquire) == 0 &&
          now_seconds() - last_activity_.load(std::memory_order_acquire) >
              options_.idle_timeout_seconds) {
        break;  // idle shutdown
      }
      continue;
    }
    touch();
    auto session = std::make_unique<Session>();
    session->socket = std::move(socket);
    Session* raw = session.get();
    {
      std::lock_guard lock(sessions_mutex_);
      raw->id = next_session_id_++;
      sessions_.push_back(std::move(session));
    }
    active_sessions_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.sessions_accepted;
    }
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

bool Server::send_error(Session* session, const ErrorFrame& error) {
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.errors_sent;
  }
  return write_frame(session->socket.fd(), encode_error(error));
}

Server::Workspace* Server::workspace_for(const HelloFrame& hello) {
  const std::uint64_t key = workspace_key(hello);
  std::lock_guard lock(workspaces_mutex_);
  auto it = workspaces_.find(key);
  if (it != workspaces_.end()) return it->second.get();

  core::FuncyTunerOptions options;
  options.seed = hello.options.seed;
  options.noise_sigma_rel = hello.options.noise_sigma_rel;
  options.attribution_sigma = hello.options.attribution_sigma;
  options.faults = hello.options.faults;
  // The daemon never caches through the Evaluator (that cache belongs
  // to the client's bookkeeping); its own raw-result cache is separate.
  options.eval_cache = false;

  auto workspace = std::make_unique<Workspace>();
  workspace->tuner = std::make_unique<core::FuncyTuner>(
      programs::by_name(hello.program),
      machine::architecture_by_name(hello.arch), options,
      hello.personality == "gcc" ? compiler::Personality::kGcc
                                 : compiler::Personality::kIcc);
  if (options_.cache_entries > 0) {
    workspace->cache =
        std::make_unique<core::EvalCache>(options_.cache_entries);
  }
  workspace->salt = key;
  Workspace* raw = workspace.get();
  workspaces_.emplace(key, std::move(workspace));
  return raw;
}

Server::Workspace* Server::handshake(Session* session) {
  std::string payload;
  const FrameStatus status = read_frame(session->socket.fd(), &payload,
                                        options_.max_frame_bytes);
  if (status == FrameStatus::kTooLarge) {
    (void)send_error(session, ErrorFrame{"oversized_frame",
                                         "hello frame exceeds the cap",
                                         0, false, true});
    return nullptr;
  }
  if (status != FrameStatus::kOk) return nullptr;
  touch();

  support::JsonValue frame;
  std::string error;
  if (!support::JsonValue::parse(payload, &frame, &error)) {
    (void)send_error(session,
                     ErrorFrame{"bad_frame", error, 0, false, true});
    return nullptr;
  }
  if (frame_type(frame) != "hello") {
    (void)send_error(
        session, ErrorFrame{"bad_request", "expected a hello frame", 0,
                            false, true});
    return nullptr;
  }
  HelloFrame hello;
  if (!decode_hello(frame, &hello, &error)) {
    (void)send_error(session,
                     ErrorFrame{"bad_request", error, 0, false, true});
    return nullptr;
  }
  if (hello.protocol != kProtocolVersion) {
    (void)send_error(
        session,
        ErrorFrame{"unsupported_version",
                   "server speaks protocol version " +
                       std::to_string(kProtocolVersion),
                   0, false, true});
    return nullptr;
  }
  try {
    (void)programs::by_name(hello.program);
  } catch (const std::exception& reason) {
    (void)send_error(session, ErrorFrame{"unknown_program",
                                         reason.what(), 0, false, true});
    return nullptr;
  }
  try {
    (void)machine::architecture_by_name(hello.arch);
  } catch (const std::exception& reason) {
    (void)send_error(session, ErrorFrame{"unknown_architecture",
                                         reason.what(), 0, false, true});
    return nullptr;
  }
  const std::string arch_display =
      machine::architecture_by_name(hello.arch).name;
  if (!options_.archs.empty() &&
      std::find(options_.archs.begin(), options_.archs.end(),
                arch_display) == options_.archs.end()) {
    // Known arch, but this daemon was started without it (e.g. it
    // only has Broadwell measurement hosts behind it). Distinct from
    // unknown_architecture so a fleet can treat the endpoint as
    // ineligible for the cell rather than the hello as malformed.
    (void)send_error(session,
                     ErrorFrame{"unsupported_architecture",
                                "this daemon does not serve " + hello.arch,
                                0, false, true});
    return nullptr;
  }

  Workspace* workspace = workspace_for(hello);
  WelcomeFrame welcome;
  welcome.session = session->id;
  welcome.max_batch = options_.max_batch;
  if (!options_.archs.empty()) {
    welcome.archs = options_.archs;
  } else {
    for (const machine::Architecture& arch :
         machine::all_architectures()) {
      welcome.archs.push_back(arch.name);
    }
  }
  if (!write_frame(session->socket.fd(), encode_welcome(welcome))) {
    return nullptr;
  }
  return workspace;
}

core::EvalResponse Server::serve_one(Workspace& workspace,
                                     const core::EvalRequest& request) {
  core::Evaluator& evaluator = workspace.tuner->evaluator();
  core::EvalResponse response;
  core::EvalCache::Key key;
  if (workspace.cache) {
    key.assignment = evaluator.assignment_key(request.assignment);
    key.rep_base = request.rep_base;
    // EvalCache::Key carries no aggregate/noise fields; fold them into
    // the per-workspace salt so requests differing only there can
    // never alias.
    key.salt = workspace.salt ^
               ((static_cast<std::uint64_t>(request.aggregate) * 2 +
                 (request.noise ? 1 : 0) + 1) *
                0x9e3779b97f4a7c15ull);
    key.repetitions = request.repetitions;
    key.instrumented = request.instrumented;
    core::EvalOutcome outcome;
    if (workspace.cache->lookup(key, &outcome)) {
      response.outcome = std::move(outcome);
      response.served_by = core::EvalServedBy::kCacheHit;
      response.modules_compiled = 0;
      std::lock_guard lock(stats_mutex_);
      ++stats_.cache_hits;
      return response;
    }
  }
  const core::EvalBackend::RawResult raw =
      evaluator.raw_run(request.assignment, request.run_options());
  response.outcome.result = raw.result;
  response.outcome.attempts = 1;
  response.served_by = core::EvalServedBy::kRun;
  response.modules_compiled = raw.modules_compiled;
  if (workspace.cache) {
    workspace.cache->insert(key, response.outcome, /*rerun_seconds=*/0.0);
  }
  return response;
}

std::vector<core::EvalResponse> Server::serve_requests(
    Workspace& workspace,
    const std::vector<core::EvalRequest>& requests) {
  std::vector<core::EvalResponse> responses(requests.size());
  if (requests.size() == 1) {
    responses[0] = serve_one(workspace, requests[0]);
    return responses;
  }
  // One task-group submission for the whole frame: this is the
  // "batched worker shards" half of the coalescing bargain (the client
  // coalesced N evaluations into one frame; the server fans them back
  // out across the shared pool).
  support::parallel_for(requests.size(), [&](std::size_t i) {
    responses[i] = serve_one(workspace, requests[i]);
  });
  return responses;
}

void Server::session_loop(Session* session) {
  Workspace* workspace = handshake(session);
  if (workspace != nullptr) {
    std::string payload;
    while (!stopping_.load(std::memory_order_acquire)) {
      const FrameStatus status = read_frame(
          session->socket.fd(), &payload, options_.max_frame_bytes);
      if (status == FrameStatus::kClosed ||
          status == FrameStatus::kTorn) {
        break;
      }
      touch();
      if (status == FrameStatus::kTooLarge) {
        // The stream is unsynchronized past the declared length;
        // nothing to do but refuse and hang up.
        (void)send_error(
            session, ErrorFrame{"oversized_frame",
                                "frame exceeds max_frame_bytes", 0,
                                false, true});
        break;
      }

      support::JsonValue frame;
      std::string error;
      if (!support::JsonValue::parse(payload, &frame, &error)) {
        // Length framing is still synchronized, so a garbage payload
        // costs only this frame - the session survives.
        (void)send_error(session,
                         ErrorFrame{"bad_frame", error, 0, false, false});
        continue;
      }
      const std::string type = frame_type(frame);
      const std::uint64_t seq = frame_seq(frame);
      if (type == "bye") break;
      if (type == "ping") {
        if (!write_frame(session->socket.fd(), encode_pong(seq))) break;
        std::lock_guard lock(stats_mutex_);
        ++stats_.frames_served;
        continue;
      }
      if (type == "eval" || type == "eval_batch") {
        std::vector<core::EvalRequest> requests;
        if (!decode_eval(frame, &requests, &error) ||
            requests.empty()) {
          (void)send_error(
              session,
              ErrorFrame{"bad_request",
                         error.empty() ? "empty batch" : error, seq,
                         false, false});
          continue;
        }
        if (requests.size() > options_.max_batch) {
          (void)send_error(
              session,
              ErrorFrame{"bad_request",
                         "batch exceeds the advertised max_batch", seq,
                         false, false});
          continue;
        }
        // Admission control: refuse (retryably) instead of queueing
        // without bound.
        const std::size_t admitted = requests.size();
        const std::size_t before =
            inflight_.fetch_add(admitted, std::memory_order_acq_rel);
        if (before + admitted > options_.max_inflight) {
          inflight_.fetch_sub(admitted, std::memory_order_acq_rel);
          {
            std::lock_guard lock(stats_mutex_);
            ++stats_.overloads;
          }
          (void)send_error(
              session, ErrorFrame{"overloaded",
                                  "max_inflight evaluations reached",
                                  seq, true, false});
          continue;
        }
        std::vector<core::EvalResponse> responses;
        bool served = true;
        try {
          responses = serve_requests(*workspace, requests);
        } catch (const std::exception& reason) {
          served = false;
          (void)send_error(session, ErrorFrame{"bad_request",
                                               reason.what(), seq,
                                               false, false});
        }
        inflight_.fetch_sub(admitted, std::memory_order_acq_rel);
        if (!served) continue;
        const std::string reply =
            type == "eval"
                ? encode_result(seq, responses.front())
                : encode_result_batch(seq, responses);
        if (!write_frame(session->socket.fd(), reply)) break;
        touch();
        std::lock_guard lock(stats_mutex_);
        ++stats_.frames_served;
        stats_.evaluations += admitted;
        if (type == "eval_batch") ++stats_.batch_frames;
        continue;
      }
      (void)send_error(
          session, ErrorFrame{"bad_request",
                              "unknown frame type '" + type + "'", seq,
                              false, false});
    }
  }
  session->socket.close();
  active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  touch();  // idle countdown starts when the last session leaves
  session->done.store(true, std::memory_order_release);
}

}  // namespace ft::service
