#include "service/chaos.hpp"

#include <signal.h>

#include <chrono>
#include <cstdlib>

#include "service/socket.hpp"
#include "support/parse_number.hpp"
#include "support/rng.hpp"
#include "support/string_utils.hpp"

namespace ft::service::chaos {

namespace {

/// The storm handler must exist (SIG_DFL would kill the process) and
/// must be installed WITHOUT SA_RESTART, or glibc would transparently
/// restart the very syscalls the storm exists to interrupt.
void storm_handler(int) {}

void install_storm_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action{};
    action.sa_handler = storm_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART
    (void)::sigaction(SIGUSR1, &action, nullptr);
  });
}

double parse_probability(const std::string& name,
                         const std::string& text) {
  double value = 0.0;
  if (!support::parse_double(text, &value) || value < 0.0 ||
      value > 1.0) {
    throw ServiceError("bad_chaos", "chaos fault '" + name +
                                        "' needs a probability in "
                                        "[0,1], got '" +
                                        text + "'");
  }
  return value;
}

double parse_millis(const std::string& name, const std::string& text) {
  double value = 0.0;
  if (!support::parse_double(text, &value) || value < 0.0) {
    throw ServiceError("bad_chaos", "chaos knob '" + name +
                                        "' needs a non-negative "
                                        "millisecond count, got '" +
                                        text + "'");
  }
  return value;
}

}  // namespace

ChaosConfig ChaosConfig::profile(std::uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.torn_write = 0.10;
  config.delayed_read = 0.10;
  config.reset_mid_frame = 0.02;
  config.eintr_storm = 0.05;
  config.stall = 0.01;
  config.spurious_overload = 0.03;
  config.connect_failure = 0.05;
  return config;
}

ChaosConfig ChaosConfig::parse(std::uint64_t seed,
                               const std::string& spec) {
  ChaosConfig config = profile(seed);
  if (spec.empty()) return config;
  if (spec == "off") {
    ChaosConfig quiet;
    quiet.seed = seed;
    return quiet;
  }
  for (const std::string& token : support::split(spec, ',')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw ServiceError("bad_chaos",
                         "chaos spec entry '" + token +
                             "' is not name=value");
    }
    const std::string name = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (name == "torn-write") {
      config.torn_write = parse_probability(name, value);
    } else if (name == "delayed-read") {
      config.delayed_read = parse_probability(name, value);
    } else if (name == "reset") {
      config.reset_mid_frame = parse_probability(name, value);
    } else if (name == "eintr") {
      config.eintr_storm = parse_probability(name, value);
    } else if (name == "stall") {
      config.stall = parse_probability(name, value);
    } else if (name == "overload") {
      config.spurious_overload = parse_probability(name, value);
    } else if (name == "connect") {
      config.connect_failure = parse_probability(name, value);
    } else if (name == "delay-ms") {
      config.delay_ms = parse_millis(name, value);
    } else if (name == "stall-ms") {
      config.stall_ms = parse_millis(name, value);
    } else {
      throw ServiceError("bad_chaos",
                         "unknown chaos fault '" + name + "'");
    }
  }
  return config;
}

ChaosConfig config_from_env() {
  const char* seed_text = std::getenv("FT_CHAOS_SEED");
  if (seed_text == nullptr || *seed_text == '\0') return ChaosConfig{};
  std::int64_t seed = 0;
  if (!support::parse_int64(seed_text, &seed) || seed == 0) {
    return ChaosConfig{};
  }
  const char* spec = std::getenv("FT_CHAOS");
  return ChaosConfig::parse(static_cast<std::uint64_t>(seed),
                            spec == nullptr ? "" : spec);
}

ChaosEngine::ChaosEngine(const ChaosConfig& config) : config_(config) {
  if (config_.eintr_storm > 0.0) install_storm_handler();
}

ChaosEngine::~ChaosEngine() {
  stopping_.store(true, std::memory_order_release);
  if (storm_thread_.joinable()) storm_thread_.join();
}

double ChaosEngine::u01() noexcept {
  const std::uint64_t index =
      counter_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state =
      config_.seed + 0x9e3779b97f4a7c15ull * (index + 1);
  return static_cast<double>(support::splitmix64(state) >> 11) *
         0x1.0p-53;
}

bool ChaosEngine::draw(double probability) noexcept {
  if (probability <= 0.0) return false;
  return u01() < probability;
}

std::uint64_t ChaosEngine::draw_u64() noexcept {
  const std::uint64_t index =
      counter_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state =
      config_.seed + 0x9e3779b97f4a7c15ull * (index + 1);
  return support::splitmix64(state);
}

std::size_t ChaosEngine::torn_chunk_limit() noexcept {
  if (!draw(config_.torn_write)) return static_cast<std::size_t>(-1);
  return 1 + static_cast<std::size_t>(draw_u64() % 7);
}

bool ChaosEngine::should_reset_mid_frame() noexcept {
  return draw(config_.reset_mid_frame);
}

void ChaosEngine::delay_read() noexcept {
  double sleep_ms = 0.0;
  if (draw(config_.stall)) {
    sleep_ms = config_.stall_ms;
  } else if (draw(config_.delayed_read)) {
    sleep_ms = config_.delay_ms;
  }
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
}

bool ChaosEngine::should_fail_connect() noexcept {
  return draw(config_.connect_failure);
}

bool ChaosEngine::should_refuse_overloaded() noexcept {
  return draw(config_.spurious_overload);
}

ChaosEngine::StormScope& ChaosEngine::StormScope::operator=(
    StormScope&& other) noexcept {
  if (this != &other) {
    if (engine_ != nullptr) engine_->storm_remove(pthread_self());
    engine_ = other.engine_;
    other.engine_ = nullptr;
  }
  return *this;
}

ChaosEngine::StormScope::~StormScope() {
  if (engine_ != nullptr) engine_->storm_remove(pthread_self());
}

ChaosEngine::StormScope ChaosEngine::maybe_eintr_storm() noexcept {
  if (!draw(config_.eintr_storm)) return StormScope();
  storm_add(pthread_self());
  return StormScope(this);
}

void ChaosEngine::storm_add(pthread_t thread) noexcept {
  std::lock_guard lock(storm_mutex_);
  storm_targets_.push_back(thread);
  if (!storm_started_) {
    storm_started_ = true;
    storm_thread_ = std::thread([this] { storm_loop(); });
  }
}

void ChaosEngine::storm_remove(pthread_t thread) noexcept {
  std::lock_guard lock(storm_mutex_);
  for (auto it = storm_targets_.begin(); it != storm_targets_.end();
       ++it) {
    if (pthread_equal(*it, thread)) {
      storm_targets_.erase(it);
      return;
    }
  }
}

void ChaosEngine::storm_loop() {
  // A registered thread is inside an I/O call it retries on EINTR, so
  // a 1 ms signal cadence interrupts it many times per frame without
  // starving it of progress entirely.
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard lock(storm_mutex_);
      for (const pthread_t target : storm_targets_) {
        (void)pthread_kill(target, SIGUSR1);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::shared_ptr<ChaosEngine> make_engine(const ChaosConfig& config) {
  if (!config.enabled()) return nullptr;
  return std::make_shared<ChaosEngine>(config);
}

}  // namespace ft::service::chaos
