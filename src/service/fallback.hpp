// Graceful degradation for remote evaluation: LocalFallbackBackend
// wraps any EvalBackend (typically a FleetBackend) and, when the
// primary fails with a transport-class error - fleet exhausted, every
// breaker open, daemon draining - routes the evaluation to a lazily
// constructed in-process engine instead of failing the campaign.
//
// The fallback engine is built EXACTLY the way ftuned builds a
// workspace for the same hello (measurement-relevant option subset,
// Evaluator-level cache off), so locally served results are
// byte-identical to what the fleet would have returned: raw
// compile+link+run is deterministic, and all resilience bookkeeping
// lives in the Evaluator ABOVE this backend either way - which also
// means fallback-served evaluations are journaled like any others.
//
// Every call retries the primary first, so a recovered fleet resumes
// service automatically; fallback is per-call, never a sticky state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/evaluator.hpp"
#include "core/funcy_tuner.hpp"
#include "service/connect.hpp"

namespace ft::service {

class LocalFallbackBackend : public core::EvalBackend {
 public:
  struct Stats {
    std::uint64_t fallback_runs = 0;     ///< single evals served locally
    std::uint64_t fallback_batches = 0;  ///< whole batches served locally
    std::uint64_t fallback_evals = 0;    ///< evals inside those batches
    std::uint64_t primary_recoveries = 0;  ///< primary ok after a fallback
  };

  /// `workspace` must match the spec the primary connected with - it is
  /// what guarantees the local engine computes the same bytes. A null
  /// `primary` (the whole fleet was down at connect time) serves
  /// everything locally from the start.
  LocalFallbackBackend(std::shared_ptr<core::EvalBackend> primary,
                       WorkspaceSpec workspace);
  ~LocalFallbackBackend() override;

  [[nodiscard]] RawResult run(const compiler::ModuleAssignment& assignment,
                              const machine::RunOptions& options) override;
  [[nodiscard]] std::vector<RawResult> run_many(
      std::span<const core::EvalRequest> requests) override;
  [[nodiscard]] bool batches_remotely() const noexcept override {
    return true;
  }

  [[nodiscard]] Stats stats() const;

 private:
  /// Lazily builds the local engine (first fallback pays the
  /// construction cost; healthy runs never do).
  core::Evaluator& local_locked();
  /// True when `code` means "the primary cannot serve right now but
  /// the work itself is fine" - the degradation trigger set.
  [[nodiscard]] static bool degradable(const std::string& code) noexcept;

  std::shared_ptr<core::EvalBackend> primary_;
  WorkspaceSpec workspace_;
  mutable std::mutex mutex_;  ///< guards local_ construction and stats_
  std::unique_ptr<core::FuncyTuner> local_;
  bool degraded_last_call_ = false;
  Stats stats_;
};

}  // namespace ft::service
