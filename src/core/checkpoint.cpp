#include "core/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/funcy_tuner.hpp"
#include "support/parse_number.hpp"
#include "support/rng.hpp"
#include "support/serialization.hpp"

namespace ft::core {

namespace {

/// %.17g round-trips every double bit-exactly, which the resume
/// determinism guarantee depends on.
std::string fmt_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Locates `"name":` and returns the raw value text: the quoted body
/// for strings, the token up to , } ] otherwise. False when absent.
bool field_text(const std::string& line, const std::string& name,
                std::string* out) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t begin = at + needle.size();
  if (begin >= line.size()) return false;
  if (line[begin] == '"') {
    ++begin;
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos) return false;
    *out = line.substr(begin, end - begin);
    return true;
  }
  std::size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ']') {
    ++end;
  }
  if (end == line.size()) return false;  // torn line
  *out = line.substr(begin, end - begin);
  return true;
}

bool field_u64(const std::string& line, const std::string& name,
               std::uint64_t* out) {
  std::string text;
  if (!field_text(line, name, &text) || text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool field_double(const std::string& line, const std::string& name,
                  double* out) {
  std::string text;
  if (!field_text(line, name, &text) || text.empty()) return false;
  return support::parse_double(text, out);
}

}  // namespace

std::uint64_t options_fingerprint(const FuncyTunerOptions& options) {
  std::ostringstream oss;
  oss << options.samples << '|' << options.top_x << '|' << options.seed
      << '|' << fmt_double(options.hot_threshold) << '|'
      << options.final_reps << '|' << fmt_double(options.noise_sigma_rel)
      << '|' << fmt_double(options.attribution_sigma) << '|'
      << options.patience << '|' << fmt_double(options.faults.rate) << '|'
      << options.faults.seed << '|'
      << fmt_double(options.faults.outlier_rate) << '|'
      << options.retry.max_retries << '|'
      << fmt_double(options.retry.eval_timeout_seconds) << '|'
      << options.retry.quarantine_after;
  // Namespaced per-algorithm knobs change evaluation schedules, so
  // they must split journals/caches - but ONLY when actually given:
  // the default (empty) map keeps the fingerprint byte-identical to
  // pre-namespacing builds, so existing journals stay resumable.
  for (const auto& [algorithm, tokens] : options.algorithm_options) {
    oss << '|' << algorithm << ':';
    for (const std::string& token : tokens) oss << token << ',';
  }
  return support::fnv1a64(oss.str());
}

std::string EvalJournal::encode(const JournalRecord& record) {
  std::ostringstream oss;
  oss << "{\"type\":\"eval\",\"key\":\"" << record.key << "\",\"rep\":\""
      << record.rep_base << "\",\"reps\":" << record.repetitions
      << ",\"instr\":" << (record.instrumented ? 1 : 0)
      << ",\"ok\":" << (record.outcome.ok() ? 1 : 0) << ",\"fault\":\""
      << to_string(record.outcome.error.kind) << "\",\"attempts\":"
      << record.outcome.attempts;
  if (record.rerun_seconds >= 0.0) {
    oss << ",\"rerun\":" << fmt_double(record.rerun_seconds);
  }
  if (!record.outcome.ok() && !record.outcome.error.detail.empty()) {
    oss << ",\"detail\":\"" << record.outcome.error.detail << "\"";
  }
  if (record.outcome.ok()) {
    const machine::RunResult& result = record.outcome.result;
    oss << ",\"end\":" << fmt_double(result.end_to_end)
        << ",\"stddev\":" << fmt_double(result.stddev) << ",\"loops\":[";
    for (std::size_t j = 0; j < result.loop_seconds.size(); ++j) {
      if (j) oss << ',';
      oss << fmt_double(result.loop_seconds[j]);
    }
    oss << ']';
  }
  oss << '}';
  return oss.str();
}

bool EvalJournal::decode(const std::string& line, JournalRecord* out) {
  if (line.empty() || line.back() != '}') return false;  // torn tail
  std::string type;
  if (!field_text(line, "type", &type) || type != "eval") return false;

  JournalRecord record;
  std::uint64_t reps = 0, instr = 0, ok = 0, attempts = 0;
  if (!field_u64(line, "key", &record.key) ||
      !field_u64(line, "rep", &record.rep_base) ||
      !field_u64(line, "reps", &reps) ||
      !field_u64(line, "instr", &instr) || !field_u64(line, "ok", &ok) ||
      !field_u64(line, "attempts", &attempts)) {
    return false;
  }
  record.repetitions = static_cast<int>(reps);
  record.instrumented = instr != 0;
  record.outcome.attempts = static_cast<int>(attempts);

  std::string fault;
  if (!field_text(line, "fault", &fault)) return false;
  record.outcome.error.kind = eval_fault_from_string(fault);
  if (ok == 0 && record.outcome.error.kind == EvalFault::kNone) {
    return false;  // failed record with unknown fault kind
  }
  (void)field_text(line, "detail", &record.outcome.error.detail);
  // Optional: absent in journals written before the charged/saved
  // overhead split existed. Leave the -1 "unknown" default then.
  (void)field_double(line, "rerun", &record.rerun_seconds);

  if (ok != 0) {
    machine::RunResult& result = record.outcome.result;
    if (!field_double(line, "end", &result.end_to_end) ||
        !field_double(line, "stddev", &result.stddev)) {
      return false;
    }
    const std::size_t open = line.find("\"loops\":[");
    if (open == std::string::npos) return false;
    std::size_t at = open + 9;
    const std::size_t close = line.find(']', at);
    if (close == std::string::npos) return false;
    while (at < close) {
      double value = 0.0;
      std::size_t consumed = 0;
      if (!support::parse_double_prefix(
              std::string_view(line).substr(at, close - at), &value,
              &consumed) ||
          consumed == 0) {
        return false;
      }
      result.loop_seconds.push_back(value);
      at += consumed + 1;  // skip ',' (or land past ']')
    }
    // Not journaled; recompute exactly as the engine does.
    result.derived_nonloop_seconds =
        result.end_to_end -
        std::accumulate(result.loop_seconds.begin(),
                        result.loop_seconds.end(), 0.0);
  }
  *out = record;
  return true;
}

std::shared_ptr<EvalJournal> EvalJournal::create(
    const std::string& path, std::uint64_t config_fingerprint) {
  auto journal = std::shared_ptr<EvalJournal>(new EvalJournal());
  journal->path_ = path;
  journal->out_ = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*journal->out_) {
    throw std::runtime_error("cannot write journal: " + path);
  }
  *journal->out_ << "{\"type\":\"header\",\"version\":1,"
                 << support::schema_version_field() << ",\"config\":\""
                 << config_fingerprint << "\"}\n";
  journal->out_->flush();
  return journal;
}

std::shared_ptr<EvalJournal> EvalJournal::resume(
    const std::string& path, std::uint64_t config_fingerprint) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read journal: " + path);
  }
  auto journal = std::shared_ptr<EvalJournal>(new EvalJournal());
  journal->path_ = path;

  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (!saw_header) {
      std::string type, config;
      if (!field_text(line, "type", &type) || type != "header") break;
      saw_header = true;
      // Pre-versioning journals (no field) read as schema 1; a journal
      // from a future binary is refused instead of misparsed.
      support::require_schema_version(line, "journal " + path);
      if (config_fingerprint != 0 &&
          field_text(line, "config", &config) &&
          config != std::to_string(config_fingerprint)) {
        throw std::runtime_error(
            "journal " + path +
            " was recorded under different tuning options (config " +
            config + "); refusing to resume");
      }
      continue;
    }
    std::string type;
    if (field_text(line, "type", &type) && type == "snapshot") continue;
    JournalRecord record;
    // First malformed line = the torn tail of a killed process; every
    // complete record before it is kept, the rest re-evaluates.
    if (!decode(line, &record)) break;
    journal->records_[Key{record.key, record.rep_base, record.repetitions,
                          record.instrumented}] =
        Stored{record.outcome, record.rerun_seconds};
    ++journal->loaded_;
    (record.outcome.ok() ? journal->ok_count_ : journal->failed_count_)++;
  }
  in.close();

  // Rewrite the file to the valid prefix so a future resume never
  // stops early at the torn line we just skipped.
  journal->out_ = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*journal->out_) {
    throw std::runtime_error("cannot write journal: " + path);
  }
  *journal->out_ << "{\"type\":\"header\",\"version\":1,"
                 << support::schema_version_field() << ",\"config\":\""
                 << config_fingerprint << "\"}\n";
  for (const auto& [key, stored] : journal->records_) {
    JournalRecord record;
    record.key = std::get<0>(key);
    record.rep_base = std::get<1>(key);
    record.repetitions = std::get<2>(key);
    record.instrumented = std::get<3>(key);
    record.outcome = stored.outcome;
    record.rerun_seconds = stored.rerun_seconds;
    *journal->out_ << encode(record) << '\n';
  }
  journal->out_->flush();
  return journal;
}

bool EvalJournal::lookup(std::uint64_t key, std::uint64_t rep_base,
                         int repetitions, bool instrumented,
                         EvalOutcome* out, double* rerun_seconds) {
  std::lock_guard lock(mutex_);
  const auto it =
      records_.find(Key{key, rep_base, repetitions, instrumented});
  if (it == records_.end()) return false;
  *out = it->second.outcome;
  if (rerun_seconds != nullptr) *rerun_seconds = it->second.rerun_seconds;
  ++replayed_;
  return true;
}

void EvalJournal::for_each(
    const std::function<void(const JournalRecord&)>& visit) {
  std::lock_guard lock(mutex_);
  for (const auto& [key, stored] : records_) {
    JournalRecord record;
    record.key = std::get<0>(key);
    record.rep_base = std::get<1>(key);
    record.repetitions = std::get<2>(key);
    record.instrumented = std::get<3>(key);
    record.outcome = stored.outcome;
    record.rerun_seconds = stored.rerun_seconds;
    visit(record);
  }
}

void EvalJournal::record(const JournalRecord& record) {
  const std::string line = encode(record);
  std::lock_guard lock(mutex_);
  records_[Key{record.key, record.rep_base, record.repetitions,
               record.instrumented}] =
      Stored{record.outcome, record.rerun_seconds};
  ++appended_;
  (record.outcome.ok() ? ok_count_ : failed_count_)++;
  write_locked(line);
}

void EvalJournal::write_locked(const std::string& line) {
  if (!out_ || !*out_) return;
  *out_ << line << '\n';
  if (snapshot_interval_ > 0 && ++since_snapshot_ >= snapshot_interval_) {
    since_snapshot_ = 0;
    *out_ << "{\"type\":\"snapshot\",\"records\":" << (loaded_ + appended_)
          << ",\"ok\":" << ok_count_ << ",\"failed\":" << failed_count_
          << "}\n";
  }
  // Flush every record: the journal's whole point is surviving a kill.
  out_->flush();
}

}  // namespace ft::core
