// Content-addressed evaluation cache: memoizes completed EvalOutcomes
// keyed by a canonical fingerprint of (program/input/arch + per-module
// assignment, noise rep stream, repetitions, instrumentation, and the
// tuner's noise/fault config salt). CFR re-samples pruned top-X spaces
// and EvoCFR recombines converged populations, so identical assignments
// are evaluated over and over; each collision re-pays a full modeled
// compile+link+run. Because the measurement stack is deterministic per
// (content, rep stream) key, replaying the stored outcome is
// bit-identical to re-running it - the cache only removes redundant
// cost, never perturbs results.
//
// The cache is sharded (one mutex + LRU list per shard) so concurrent
// evaluate_batch workers do not serialize on one lock, and bounded by
// an LRU eviction policy per shard. Entries are compared by the full
// key, not just its 64-bit fingerprint, so fingerprint collisions can
// never alias two distinct evaluations.
//
// One cache instance may be shared by every search algorithm and every
// campaign cell: assignment keys mix in a program/input/architecture
// context hash and the per-tuner config salt, so cross-cell entries
// cannot collide.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/evaluator.hpp"

namespace ft::core {

class PersistentCache;

/// Cumulative cache counters (also mirrored into telemetry under
/// cache.*). hits/misses depend on eviction order and in-batch racing
/// of duplicate evaluations, so they are reporting-only - results never
/// depend on them.
struct EvalCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< approximate resident payload size

  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class EvalCache {
 public:
  /// Full identity of one evaluation. `assignment` is
  /// Evaluator::assignment_key (program/input/arch context hash folded
  /// with every module CV); `salt` separates tuners whose options
  /// change measured values (noise sigma, fault config, seed...).
  struct Key {
    std::uint64_t assignment = 0;
    std::uint64_t rep_base = 0;
    std::uint64_t salt = 0;
    int repetitions = 1;
    bool instrumented = false;

    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
    /// 64-bit mix of all fields, optionally masked to `bits` low bits
    /// (a test seam: tiny widths force fingerprint collisions so the
    /// full-key disambiguation path is exercisable).
    [[nodiscard]] std::uint64_t fingerprint(
        unsigned bits = 64) const noexcept;
  };

  struct Options {
    std::size_t max_entries = kDefaultMaxEntries;
    std::size_t shards = 16;      ///< rounded up to a power of two
    unsigned hash_bits = 64;      ///< fingerprint width (test seam)
  };

  static constexpr std::size_t kDefaultMaxEntries = 1u << 20;

  explicit EvalCache(std::size_t max_entries = kDefaultMaxEntries)
      : EvalCache(Options{.max_entries = max_entries}) {}
  explicit EvalCache(const Options& options);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Replays a completed evaluation into `out` (and the modeled seconds
  /// a re-run would cost into `rerun_seconds`, when non-null); promotes
  /// the entry to most-recently-used. False on miss. Thread-safe.
  [[nodiscard]] bool lookup(const Key& key, EvalOutcome* out,
                            double* rerun_seconds = nullptr);

  /// Stores (or refreshes) one completed evaluation. `rerun_seconds`
  /// is the modeled overhead a cache-off re-run of this exact key
  /// would charge - it becomes the "saved" side of the charged/saved
  /// overhead split on every future hit. Caliper reports are stripped
  /// (exactly like the checkpoint journal) to keep entries compact.
  /// Thread-safe.
  void insert(const Key& key, const EvalOutcome& outcome,
              double rerun_seconds);

  /// Attaches a disk-backed second tier (core/persistent_cache.hpp).
  /// Memory misses fall through to disk (a disk hit is promoted into
  /// the memory tier, memory-only), and inserts write through. The
  /// tier may be shared by several EvalCache instances - campaign
  /// grids and ftuned workspaces attach one PersistentCache each.
  void attach_disk(std::shared_ptr<PersistentCache> disk);
  [[nodiscard]] PersistentCache* disk() const noexcept {
    return disk_.get();
  }

  [[nodiscard]] EvalCacheStats stats() const;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  struct Entry {
    Key key;
    EvalOutcome outcome;
    double rerun_seconds = 0.0;
    std::size_t bytes = 0;
  };
  using Lru = std::list<Entry>;

  struct Shard {
    mutable std::mutex mutex;
    Lru lru;  ///< front = most recently used
    /// fingerprint -> entries sharing it (full-key compare resolves
    /// genuine 64-bit collisions).
    std::unordered_map<std::uint64_t, std::vector<Lru::iterator>> index;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t fingerprint) noexcept {
    return shards_[(fingerprint >> 4) & shard_mask_];
  }
  void evict_locked(Shard& shard);
  /// Memory-tier insert; false when the key was already resident (a
  /// duplicate insert only refreshes recency).
  bool insert_memory(const Key& key, const EvalOutcome& outcome,
                     double rerun_seconds);

  std::size_t max_entries_;
  std::size_t per_shard_capacity_;
  std::uint64_t shard_mask_;
  unsigned hash_bits_;
  std::vector<Shard> shards_;
  std::shared_ptr<PersistentCache> disk_;

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> insertions_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace ft::core
