// Serialization of tuning artifacts for offline analysis: the
// collection matrix (Fig 4's T[j][k]) as CSV, tuning results as JSON
// (algorithm, speedup, rendered per-module command lines, convergence
// history). These are the files a tuning campaign archives next to the
// produced executables.
#pragma once

#include <iosfwd>
#include <string>

#include "core/campaign.hpp"
#include "core/collector.hpp"
#include "core/outline.hpp"
#include "core/search.hpp"
#include "flags/flag_space.hpp"

namespace ft::core {

/// CSV with one row per sampled CV: index, CV hash, end-to-end time,
/// derived rest time, then one column per outlined hot loop.
void write_collection_csv(std::ostream& os, const Outline& outline,
                          const Collection& collection);

/// CSV of a search's best-so-far convergence curve.
void write_history_csv(std::ostream& os, const TuningResult& result);

/// JSON object describing a tuning result, including the rendered
/// command line of every module of the winning assignment and the
/// algorithm's typed extras block (schema v3).
[[nodiscard]] std::string tuning_result_json(
    const TuningResult& result, const flags::FlagSpace& space,
    const ir::Program& program);

/// Reads the extras block back from a tuning-result JSON artifact.
/// Schema v3 artifacts yield their "extras" object; v2 artifacts
/// predate the block and read back the old bespoke shape (top-level
/// "independent_seconds"/"independent_speedup" members, when present)
/// so archived results stay consumable. Throws std::runtime_error on
/// malformed JSON or a schema newer than this binary.
[[nodiscard]] ResultExtras read_tuning_result_extras(
    const std::string& json);

/// JSON object describing a finished campaign's whole result grid, in
/// deterministic grid order. This is the artifact the fleet-smoke CI
/// byte-compares between local, single-daemon and fleet runs, so the
/// text must depend only on the tuning inputs - never on where or in
/// what order cells executed.
[[nodiscard]] std::string campaign_json(const Campaign& campaign);

}  // namespace ft::core
