#include "core/campaign.hpp"

#include <mutex>
#include <stdexcept>

#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace ft::core {

Campaign::Campaign(std::vector<ir::Program> programs,
                   std::vector<machine::Architecture> architectures,
                   CampaignOptions options)
    : programs_(std::move(programs)),
      architectures_(std::move(architectures)),
      options_(std::move(options)) {
  if (programs_.empty() || architectures_.empty()) {
    throw std::invalid_argument("campaign needs >=1 program and arch");
  }
}

void Campaign::run() {
  const std::size_t cell_count = programs_.size() * architectures_.size();
  cells_.assign(cell_count, CampaignCell{});

  std::mutex progress_mutex;
  // Cell index c = a * |programs| + p, matching the sequential
  // (arch-major) emission order so lookups and serialization see the
  // same grid regardless of parallel_cells.
  auto run_cell = [&](std::size_t c) {
    const std::size_t a = c / programs_.size();
    const std::size_t p = c % programs_.size();
    FuncyTunerOptions tuner_options = options_.tuner;
    if (options_.salt_seed_per_arch) tuner_options.seed += a;
    const ir::Program& program = programs_[p];
    FuncyTuner tuner(program, architectures_[a], tuner_options);
    const FuncyTuner::AllResults results = tuner.run_all();
    CampaignCell& cell = cells_[c];
    cell.program = program.name();
    cell.architecture = architectures_[a].name;
    cell.baseline_seconds = results.baseline_seconds;
    cell.random = results.random;
    cell.fr = results.fr;
    cell.greedy = results.greedy;
    cell.cfr = results.cfr;
    if (options_.progress) {
      std::lock_guard lock(progress_mutex);
      options_.progress(program.name(), architectures_[a].name);
    }
  };

  if (options_.parallel_cells) {
    // Cells nest their own parallel_for sweeps inside pool workers;
    // safe because waiting callers help execute queued tasks.
    support::parallel_for(cell_count, run_cell);
  } else {
    for (std::size_t c = 0; c < cell_count; ++c) run_cell(c);
  }
  finished_ = true;
}

const CampaignCell& Campaign::cell(const std::string& program,
                                   const std::string& arch) const {
  for (const CampaignCell& c : cells_) {
    if (c.program == program && c.architecture == arch) return c;
  }
  throw std::invalid_argument("unknown campaign cell: " + program + " / " +
                              arch);
}

double Campaign::geomean_speedup(const std::string& algorithm,
                                 const std::string& arch) const {
  std::vector<double> speedups;
  for (const CampaignCell& c : cells_) {
    if (c.architecture != arch) continue;
    if (algorithm == "Random") {
      speedups.push_back(c.random.speedup);
    } else if (algorithm == "FR") {
      speedups.push_back(c.fr.speedup);
    } else if (algorithm == "CFR") {
      speedups.push_back(c.cfr.speedup);
    } else if (algorithm == "G.realized") {
      speedups.push_back(c.greedy.realized.speedup);
    } else if (algorithm == "G.Independent") {
      speedups.push_back(c.greedy.independent_speedup);
    } else {
      throw std::invalid_argument("unknown algorithm: " + algorithm);
    }
  }
  return support::geomean(speedups);
}

}  // namespace ft::core
