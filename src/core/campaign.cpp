#include "core/campaign.hpp"

#include <mutex>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "core/persistent_cache.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace ft::core {

namespace {

/// Case-insensitive ASCII comparison (registry keys are lowercase,
/// display names mixed-case).
bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

const TuningResult& CampaignCell::result(
    const std::string& algorithm) const {
  for (const TuningResult& r : results) {
    if (r.algorithm == algorithm || iequals(r.algorithm, algorithm)) {
      return r;
    }
  }
  // Fall back to registry keys ("greedy" → display "G.realized").
  if (SearchRegistry::global().contains(algorithm)) {
    const std::string display =
        SearchRegistry::global().create(algorithm)->display_name();
    for (const TuningResult& r : results) {
      if (r.algorithm == display) return r;
    }
  }
  throw std::invalid_argument("unknown algorithm: " + algorithm);
}

Campaign::Campaign(std::vector<ir::Program> programs,
                   std::vector<machine::Architecture> architectures,
                   CampaignOptions options)
    : programs_(std::move(programs)),
      architectures_(std::move(architectures)),
      options_(std::move(options)) {
  if (programs_.empty() || architectures_.empty()) {
    throw std::invalid_argument("campaign needs >=1 program and arch");
  }
}

void Campaign::run() {
  const std::size_t cell_count = programs_.size() * architectures_.size();
  cells_.assign(cell_count, CampaignCell{});
  const std::vector<std::string> algorithms =
      options_.algorithms.empty() ? SearchRegistry::global().names()
                                  : options_.algorithms;

  telemetry::SinkScope sink_scope(options_.trace_sink
                                      ? options_.trace_sink
                                      : telemetry::sink());
  bool parallel_cells = options_.parallel_cells;
  if (parallel_cells && telemetry::enabled()) {
    support::log_warn()
        << "campaign: telemetry attached, running cells sequentially "
           "(concurrent cells would interleave trace span ids)";
    parallel_cells = false;
  }
  telemetry::Span campaign_span = telemetry::tracer().begin("campaign");
  if (campaign_span) {
    campaign_span.attr("cells", static_cast<std::uint64_t>(cell_count));
  }

  std::shared_ptr<EvalJournal> journal;
  if (!options_.checkpoint_path.empty()) {
    const std::uint64_t fingerprint = options_fingerprint(options_.tuner);
    journal = options_.resume
                  ? EvalJournal::resume(options_.checkpoint_path, fingerprint)
                  : EvalJournal::create(options_.checkpoint_path, fingerprint);
  }

  // One cache for the whole grid: assignment keys fold in a
  // program/input/arch context hash and each cell salts with its own
  // options fingerprint, so cross-cell entries can never alias.
  std::shared_ptr<EvalCache> cache;
  if (options_.tuner.eval_cache || !options_.tuner.eval_cache_dir.empty()) {
    cache = std::make_shared<EvalCache>(
        options_.tuner.eval_cache_entries != 0
            ? options_.tuner.eval_cache_entries
            : EvalCache::kDefaultMaxEntries);
    if (!options_.tuner.eval_cache_dir.empty()) {
      cache->attach_disk(std::make_shared<PersistentCache>(
          PersistentCache::Options{
              .dir = options_.tuner.eval_cache_dir,
              .max_bytes = options_.tuner.eval_cache_disk_bytes}));
    }
  }

  std::mutex progress_mutex;
  // Cell index c = a * |programs| + p, matching the sequential
  // (arch-major) emission order so lookups and serialization see the
  // same grid regardless of parallel_cells.
  auto run_cell = [&](std::size_t c) {
    const std::size_t a = c / programs_.size();
    const std::size_t p = c % programs_.size();
    FuncyTunerOptions tuner_options = options_.tuner;
    if (options_.salt_seed_per_arch) tuner_options.seed += a;
    // The shared cache (and its shared disk tier) replaces the
    // per-tuner one the flags would build.
    tuner_options.eval_cache = false;
    tuner_options.eval_cache_dir.clear();
    const ir::Program& program = programs_[p];
    telemetry::Span cell_span =
        campaign_span
            ? telemetry::tracer().begin_under(campaign_span.id(),
                                              "campaign.cell")
            : telemetry::Span();
    if (cell_span) {
      cell_span.attr("program", program.name())
          .attr("architecture", architectures_[a].name);
    }
    FuncyTuner tuner(program, architectures_[a], tuner_options);
    if (options_.backend_factory) {
      tuner.evaluator().set_backend(options_.backend_factory(
          program, architectures_[a], tuner_options));
    }
    if (journal) tuner.evaluator().set_journal(journal);
    if (cache) {
      tuner.set_eval_cache(cache);
      // On resume, serve journaled evaluations from memory. Records
      // from other cells warm under this cell's salt too - those
      // entries are simply never looked up (wrong context hash) and
      // age out of the LRU.
      if (options_.resume) tuner.evaluator().warm_cache_from_journal();
    }
    CampaignCell& cell = cells_[c];
    cell.program = program.name();
    cell.architecture = architectures_[a].name;
    cell.baseline_seconds = tuner.baseline_seconds();
    cell.results.reserve(algorithms.size());
    for (const std::string& algorithm : algorithms) {
      cell.results.push_back(tuner.run(algorithm));
    }
    cell_span.end();
    if (options_.progress) {
      std::lock_guard lock(progress_mutex);
      options_.progress(program.name(), architectures_[a].name);
    }
  };

  if (parallel_cells) {
    // Cells nest their own parallel_for sweeps inside pool workers;
    // safe because waiting callers help execute queued tasks.
    support::parallel_for(cell_count, run_cell);
  } else {
    for (std::size_t c = 0; c < cell_count; ++c) run_cell(c);
  }
  finished_ = true;
}

const CampaignCell& Campaign::cell(const std::string& program,
                                   const std::string& arch) const {
  for (const CampaignCell& c : cells_) {
    if (c.program == program && c.architecture == arch) return c;
  }
  throw std::invalid_argument("unknown campaign cell: " + program + " / " +
                              arch);
}

double Campaign::geomean_speedup(const std::string& algorithm,
                                 const std::string& arch) const {
  std::vector<double> speedups;
  for (const CampaignCell& c : cells_) {
    if (c.architecture != arch) continue;
    if (algorithm == "G.Independent") {
      bool found = false;
      for (const TuningResult& r : c.results) {
        const std::optional<double> independent =
            r.extras.get(kExtraIndependentSpeedup);
        if (independent) {
          speedups.push_back(*independent);
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::invalid_argument(
            "G.Independent: no result carries independent_speedup");
      }
    } else {
      speedups.push_back(c.result(algorithm).speedup);
    }
  }
  return support::geomean(speedups);
}

}  // namespace ft::core
