#include "core/model_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/evolution.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace ft::core {

namespace {

// ---------------------------------------------------------------------------
// Feature encoding: one dimension per flag, the chosen option index
// normalized to [0, 1] (single-option flags encode as 0). Surrogates
// only ever compare distances/spreads over these, so the encoding just
// has to be fixed and bounded.

void append_cv_features(const flags::FlagSpace& space,
                        const flags::CompilationVector& cv,
                        std::vector<double>* out) {
  const std::vector<flags::FlagSpec>& specs = space.specs();
  for (std::size_t f = 0; f < specs.size(); ++f) {
    const std::size_t n = specs[f].options.size();
    out->push_back(n > 1 ? static_cast<double>(cv[f]) /
                               static_cast<double>(n - 1)
                         : 0.0);
  }
}

std::vector<double> uniform_features(const flags::FlagSpace& space,
                                     const flags::CompilationVector& cv,
                                     std::size_t module_count) {
  std::vector<double> features;
  features.reserve(space.flag_count() * module_count);
  for (std::size_t m = 0; m < module_count; ++m) {
    append_cv_features(space, cv, &features);
  }
  return features;
}

// ---------------------------------------------------------------------------
// Dense symmetric positive-definite solve (Cholesky). Everything the
// surrogates factor is tiny (tens of rows), so an O(n^3) textbook
// factorization is plenty and - crucially - bit-deterministic.

/// In-place lower Cholesky of a row-major n x n SPD matrix. Throws
/// std::runtime_error when the matrix loses positive-definiteness
/// (callers add a nugget so this only fires on genuine degeneracy).
void cholesky(std::vector<double>& a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= a[i * n + k] * a[j * n + k];
      }
      if (i == j) {
        if (sum <= 0.0) {
          throw std::runtime_error("surrogate: matrix not positive definite");
        }
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
    for (std::size_t j = i + 1; j < n; ++j) a[i * n + j] = 0.0;
  }
}

/// Solves L y = b in place (forward substitution).
void solve_lower(const std::vector<double>& l, std::size_t n,
                 std::vector<double>& b) {
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * b[k];
    b[i] = sum / l[i * n + i];
  }
}

/// Solves L^T x = b in place (backward substitution).
void solve_upper_t(const std::vector<double>& l, std::size_t n,
                   std::vector<double>& b) {
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * b[k];
    b[i] = sum / l[i * n + i];
  }
}

// ---------------------------------------------------------------------------
// Exact Gaussian process with an RBF kernel, for the BO surrogate.

class GaussianProcess {
 public:
  GaussianProcess(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y, double length_scale)
      : x_(&x) {
    const std::size_t n = x.size();
    const std::size_t dim = n == 0 ? 1 : std::max<std::size_t>(x[0].size(), 1);
    // Per-dimension scaling keeps length_scale ~ 1 natural regardless
    // of how many modules x flags the design point concatenates.
    inv_two_l2_ = 1.0 / (2.0 * length_scale * length_scale *
                         static_cast<double>(dim));
    // Normalize targets: the GP models residuals around the mean with
    // unit-ish scale, which keeps the kernel matrix well conditioned.
    double mean = 0.0;
    for (const double v : y) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (const double v : y) var += (v - mean) * (v - mean);
    var /= static_cast<double>(n);
    y_mean_ = mean;
    y_scale_ = var > 0.0 ? std::sqrt(var) : 1.0;

    chol_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        chol_[i * n + j] = kernel(x[i], x[j]);
      }
      chol_[i * n + i] += kNoise + kNugget;
    }
    cholesky(chol_, n);
    alpha_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      alpha_[i] = (y[i] - y_mean_) / y_scale_;
    }
    solve_lower(chol_, n, alpha_);
    solve_upper_t(chol_, n, alpha_);
  }

  /// Posterior mean/stddev at one design point (original y units).
  [[nodiscard]] std::pair<double, double> predict(
      const std::vector<double>& point) const {
    const std::size_t n = alpha_.size();
    std::vector<double> k(n);
    for (std::size_t i = 0; i < n; ++i) k[i] = kernel((*x_)[i], point);
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += k[i] * alpha_[i];
    std::vector<double> v = k;
    solve_lower(chol_, n, v);
    double reduction = 0.0;
    for (const double value : v) reduction += value * value;
    const double variance = std::max(1.0 + kNoise - reduction, 1e-12);
    return {y_mean_ + mean * y_scale_, std::sqrt(variance) * y_scale_};
  }

 private:
  static constexpr double kNoise = 1e-4;   ///< observation noise (norm.)
  static constexpr double kNugget = 1e-8;  ///< numerical jitter

  [[nodiscard]] double kernel(const std::vector<double>& a,
                              const std::vector<double>& b) const {
    double sq = 0.0;
    const std::size_t dim = std::min(a.size(), b.size());
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = a[d] - b[d];
      sq += diff * diff;
    }
    return std::exp(-sq * inv_two_l2_);
  }

  const std::vector<std::vector<double>>* x_;
  double inv_two_l2_ = 0.5;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  std::vector<double> chol_;
  std::vector<double> alpha_;
};

/// Standard normal pdf / cdf for expected improvement.
double normal_pdf(double z) {
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double normal_cdf(double z) {
  constexpr double kInvSqrt2 = 0.7071067811865476;
  return 0.5 * (1.0 + std::erf(z * kInvSqrt2));
}

/// Expected improvement of a minimizing candidate over `best`.
double expected_improvement(double mean, double stddev, double best) {
  if (stddev <= 0.0) return std::max(best - mean, 0.0);
  const double z = (best - mean) / stddev;
  return (best - mean) * normal_cdf(z) + stddev * normal_pdf(z);
}

// ---------------------------------------------------------------------------
// Ridge regression on corpus features (the staged-seed surrogate).

class RidgeModel {
 public:
  RidgeModel(const flags::FlagSpace& space, const Corpus& corpus)
      : space_(&space) {
    const std::size_t dim = space.flag_count() + 1;  // + bias
    std::vector<double> a(dim * dim, 0.0);
    std::vector<double> b(dim, 0.0);
    std::size_t rows = 0;
    for (const CorpusEntry& entry : corpus.entries) {
      if (!std::isfinite(entry.end_to_end)) continue;
      std::vector<double> x;
      x.reserve(dim);
      append_cv_features(space, entry.cv, &x);
      x.push_back(1.0);
      for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          a[i * dim + j] += x[i] * x[j];
        }
        b[i] += x[i] * entry.end_to_end;
      }
      ++rows;
    }
    // Ridge term keeps the normal equations SPD even when the corpus
    // under-determines the fit (few records, constant columns).
    const double lambda =
        1e-3 * static_cast<double>(std::max<std::size_t>(rows, 1)) + 1e-6;
    for (std::size_t i = 0; i < dim; ++i) a[i * dim + i] += lambda;
    cholesky(a, dim);
    solve_lower(a, dim, b);
    solve_upper_t(a, dim, b);
    weights_ = std::move(b);
  }

  [[nodiscard]] double predict(const flags::CompilationVector& cv) const {
    std::vector<double> x;
    x.reserve(weights_.size());
    append_cv_features(*space_, cv, &x);
    x.push_back(1.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * weights_[i];
    return sum;
  }

 private:
  const flags::FlagSpace* space_;
  std::vector<double> weights_;
};

// ---------------------------------------------------------------------------
// Shared finishing protocol (identical to the paper searches).

void finish(TuningResult* result, Evaluator& evaluator,
            double baseline_seconds) {
  result->evaluations = result->history.size();
  result->tuned_seconds = evaluator.final_seconds(result->best_assignment);
  result->baseline_seconds = baseline_seconds;
  result->speedup = result->baseline_seconds / result->tuned_seconds;
}

void record_history(TuningResult* result, double seconds) {
  const double best = result->history.empty()
                          ? std::numeric_limits<double>::infinity()
                          : result->history.back();
  result->history.push_back(std::min(best, seconds));
}

/// Per-flag main-effect spread measured from the corpus (same estimator
/// as core/flag_importance, but over journal/cache records instead of
/// a live collection). 0 for flags the corpus never varies.
std::vector<double> corpus_flag_spreads(const flags::FlagSpace& space,
                                        const Corpus& corpus) {
  const std::size_t flag_count = space.flag_count();
  std::vector<double> spreads(flag_count, 0.0);
  double overall = 0.0;
  std::size_t samples = 0;
  for (const CorpusEntry& entry : corpus.entries) {
    if (!std::isfinite(entry.end_to_end)) continue;
    overall += entry.end_to_end;
    ++samples;
  }
  if (samples < 2 || overall <= 0.0) return spreads;
  overall /= static_cast<double>(samples);
  for (std::size_t f = 0; f < flag_count; ++f) {
    const std::size_t option_count = space.specs()[f].options.size();
    std::vector<double> sums(option_count, 0.0);
    std::vector<std::size_t> counts(option_count, 0);
    for (const CorpusEntry& entry : corpus.entries) {
      if (!std::isfinite(entry.end_to_end)) continue;
      const std::size_t option = entry.cv[f];
      if (option >= option_count) continue;
      sums[option] += entry.end_to_end;
      ++counts[option];
    }
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::size_t represented = 0;
    for (std::size_t o = 0; o < option_count; ++o) {
      if (counts[o] == 0) continue;
      const double mean =
          sums[o] / static_cast<double>(counts[o]) / overall;
      lo = std::min(lo, mean);
      hi = std::max(hi, mean);
      ++represented;
    }
    if (represented >= 2) spreads[f] = hi - lo;
  }
  return spreads;
}

}  // namespace

// ---------------------------------------------------------------------------
// Semantic flag groups.

std::vector<std::vector<std::size_t>> semantic_flag_groups(
    const flags::FlagSpace& space) {
  using flags::SemanticFlag;
  auto category_of = [](SemanticFlag semantic) -> std::size_t {
    switch (semantic) {
      case SemanticFlag::kUnroll:
      case SemanticFlag::kUnrollAggressive:
      case SemanticFlag::kBlockFactor:
      case SemanticFlag::kAlignLoops:
      case SemanticFlag::kLoopFusion:
      case SemanticFlag::kLoopInterchange:
      case SemanticFlag::kLoopDistribution:
      case SemanticFlag::kSwPipelining:
      case SemanticFlag::kRerolling:
        return 0;  // loop structure
      case SemanticFlag::kVectorize:
      case SemanticFlag::kSimdWidthPref:
      case SemanticFlag::kFma:
      case SemanticFlag::kMultiVersion:
      case SemanticFlag::kMatMul:
        return 1;  // vectorization
      case SemanticFlag::kStreamingStores:
      case SemanticFlag::kPrefetch:
      case SemanticFlag::kMemLayoutTrans:
      case SemanticFlag::kStructPad:
      case SemanticFlag::kSafePadding:
      case SemanticFlag::kDynamicAlign:
      case SemanticFlag::kOptCalloc:
      case SemanticFlag::kScalarRep:
        return 2;  // memory behavior
      case SemanticFlag::kIpo:
      case SemanticFlag::kInlineFactor:
      case SemanticFlag::kAnsiAlias:
      case SemanticFlag::kOmitFramePointer:
      case SemanticFlag::kAlignFunctions:
      case SemanticFlag::kJumpTables:
        return 3;  // interprocedural / layout
      default:
        return 4;  // backend (opt level, RA, scheduling, isel, limits)
    }
  };
  std::vector<std::vector<std::size_t>> groups(5);
  const std::vector<flags::FlagSpec>& specs = space.specs();
  for (std::size_t f = 0; f < specs.size(); ++f) {
    groups[category_of(specs[f].semantic)].push_back(f);
  }
  std::erase_if(groups,
                [](const std::vector<std::size_t>& g) { return g.empty(); });
  return groups;
}

// ---------------------------------------------------------------------------
// BO.

TuningResult bo_search(Evaluator& evaluator, const Outline& outline,
                       std::span<const flags::CompilationVector> presampled,
                       const BoOptions& options, double baseline_seconds,
                       const Corpus* corpus) {
  if (presampled.empty()) {
    throw std::invalid_argument("bo_search: empty pre-sampled CV set");
  }
  if (options.acquisition != "ei" && options.acquisition != "mean") {
    throw std::invalid_argument("bo_search: unknown acquisition '" +
                                options.acquisition + "' (ei, mean)");
  }
  TuningResult result;
  result.algorithm = "BO";
  const flags::FlagSpace& space = evaluator.engine().compiler().space();
  const std::size_t module_count = outline.module_count();
  support::Rng rng(options.seed);

  auto draw_indices = [&]() {
    std::vector<std::size_t> indices(module_count);
    for (std::size_t m = 0; m < module_count; ++m) {
      indices[m] = rng.next_below(presampled.size());
    }
    return indices;
  };
  auto make_assignment = [&](const std::vector<std::size_t>& indices) {
    std::vector<flags::CompilationVector> hot_cvs;
    hot_cvs.reserve(outline.hot.size());
    for (std::size_t i = 0; i < outline.hot.size(); ++i) {
      hot_cvs.push_back(presampled[indices[i]]);
    }
    return outline.make_assignment(hot_cvs, presampled[indices.back()]);
  };
  auto features_of = [&](const std::vector<std::size_t>& indices) {
    std::vector<double> features;
    features.reserve(space.flag_count() * module_count);
    for (const std::size_t index : indices) {
      append_cv_features(space, presampled[index], &features);
    }
    return features;
  };

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  // Warm-start from the free corpus: prior uniform measurements enter
  // the surrogate as observations without costing an evaluation.
  constexpr std::size_t kWarmCap = 32;
  if (corpus != nullptr) {
    for (const CorpusEntry& entry : corpus->entries) {
      if (xs.size() >= kWarmCap) break;
      if (!std::isfinite(entry.end_to_end)) continue;
      xs.push_back(uniform_features(space, entry.cv, module_count));
      ys.push_back(entry.end_to_end);
    }
  }
  const std::size_t warm_count = xs.size();

  double best_seconds = std::numeric_limits<double>::infinity();
  // Failed evaluations cannot feed the GP as +inf; a strongly bad but
  // finite penalty keeps the model steering away from them.
  const double penalty = baseline_seconds > 0.0 ? 4.0 * baseline_seconds
                                                : 1.0;
  auto evaluate = [&](const std::vector<std::size_t>& indices) {
    EvalRequest request;
    request.assignment = make_assignment(indices);
    request.rep_base = rep_streams::kBo;
    const double seconds =
        evaluator.evaluate(request, EvalTrace{.label = "bo"}).seconds();
    record_history(&result, seconds);
    if (seconds < best_seconds) {
      best_seconds = seconds;
      result.best_assignment = request.assignment;
    }
    xs.push_back(features_of(indices));
    ys.push_back(std::isfinite(seconds) ? seconds : penalty);
  };

  const std::size_t budget = std::max<std::size_t>(options.iterations, 1);
  const std::size_t warmup = std::min(std::max<std::size_t>(options.warmup,
                                                            1),
                                      budget);
  for (std::size_t i = 0; i < warmup; ++i) evaluate(draw_indices());

  const std::size_t pool =
      std::max<std::size_t>(options.candidates, 1);
  while (result.history.size() < budget) {
    const GaussianProcess gp(xs, ys, options.length_scale);
    double best_measured = std::numeric_limits<double>::infinity();
    for (const double y : ys) best_measured = std::min(best_measured, y);
    std::vector<std::size_t> best_candidate;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < pool; ++c) {
      const std::vector<std::size_t> candidate = draw_indices();
      const auto [mean, stddev] = gp.predict(features_of(candidate));
      const double score =
          options.acquisition == "ei"
              ? expected_improvement(mean, stddev, best_measured)
              : -mean;
      if (score > best_score) {
        best_score = score;
        best_candidate = candidate;
      }
    }
    evaluate(best_candidate);
  }

  if (!std::isfinite(best_seconds)) {
    // Every probe failed; fall back to the O3 default so the final
    // measurement protocol still has a valid executable.
    result.best_assignment = compiler::ModuleAssignment::uniform(
        space.default_cv(), evaluator.engine().program().loops().size());
  }
  result.search_best_seconds = best_seconds;
  result.extras.set(kExtraSurrogateObservations,
                    static_cast<double>(xs.size()));
  result.extras.set(kExtraCorpusSize, static_cast<double>(warm_count));
  finish(&result, evaluator, baseline_seconds);
  return result;
}

// ---------------------------------------------------------------------------
// Group-aware search.

TuningResult group_search(Evaluator& evaluator, const Outline& outline,
                          const GroupOptions& options,
                          double baseline_seconds, const Corpus* corpus) {
  TuningResult result;
  result.algorithm = "Group";
  const flags::FlagSpace& space = evaluator.engine().compiler().space();
  const std::vector<std::vector<std::size_t>> groups =
      semantic_flag_groups(space);
  if (groups.empty()) {
    throw std::invalid_argument("group_search: flag space has no flags");
  }
  const std::size_t module_count = outline.module_count();
  support::Rng rng(options.seed);

  // Co-importance weights: a group's weight is 1 plus the summed
  // main-effect spreads of its flags measured from the corpus, so
  // measurement evidence tilts mutation pressure toward the groups
  // that demonstrably move runtime. Empty corpus -> uniform.
  std::vector<double> spreads(space.flag_count(), 0.0);
  if (corpus != nullptr && !corpus->empty()) {
    spreads = corpus_flag_spreads(space, *corpus);
  }
  std::vector<double> weights(groups.size(), 1.0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const std::size_t f : groups[g]) weights[g] += spreads[f];
  }

  std::vector<flags::CompilationVector> current(module_count,
                                                space.default_cv());
  auto make_assignment = [&](const std::vector<flags::CompilationVector>&
                                 module_cvs) {
    return outline.make_assignment(
        std::span(module_cvs.data(), outline.hot.size()),
        module_cvs.back());
  };
  auto evaluate = [&](const std::vector<flags::CompilationVector>&
                          module_cvs) {
    EvalRequest request;
    request.assignment = make_assignment(module_cvs);
    request.rep_base = rep_streams::kGroup;
    const double seconds =
        evaluator.evaluate(request, EvalTrace{.label = "group"}).seconds();
    record_history(&result, seconds);
    return seconds;
  };

  double incumbent_seconds = evaluate(current);
  result.best_assignment = make_assignment(current);
  double best_seconds = incumbent_seconds;
  const std::size_t group_size = std::max<std::size_t>(options.group_size,
                                                       1);
  std::size_t since_improvement = 0;
  while (result.history.size() <
         std::max<std::size_t>(options.iterations, 1)) {
    const std::size_t g = rng.weighted_index(weights);
    const std::size_t m = rng.next_below(module_count);
    const std::size_t mutate_count =
        1 + rng.next_below(std::min(group_size, groups[g].size()));
    const std::vector<std::size_t> picks =
        rng.sample_without_replacement(groups[g].size(), mutate_count);
    std::vector<flags::CompilationVector> candidate = current;
    for (const std::size_t pick : picks) {
      const std::size_t f = groups[g][pick];
      const std::size_t option_count = space.specs()[f].options.size();
      candidate[m].set(f, static_cast<std::uint8_t>(
                              rng.next_below(option_count)));
    }
    const double seconds = evaluate(candidate);
    if (seconds < incumbent_seconds) {
      incumbent_seconds = seconds;
      current = std::move(candidate);
    }
    if (seconds < best_seconds) {
      best_seconds = seconds;
      result.best_assignment = make_assignment(current);
      since_improvement = 0;
    } else if (options.patience > 0 &&
               ++since_improvement >= options.patience) {
      break;
    }
  }
  result.search_best_seconds = best_seconds;
  result.extras.set(kExtraCorpusSize,
                    static_cast<double>(corpus != nullptr ? corpus->size()
                                                          : 0));
  finish(&result, evaluator, baseline_seconds);
  return result;
}

// ---------------------------------------------------------------------------
// Staged (surrogate-seeded evolutionary) search.

TuningResult staged_search(Evaluator& evaluator, const Outline& outline,
                           const Collection& collection,
                           const Corpus& corpus,
                           const StagedOptions& options,
                           double baseline_seconds) {
  EvolutionOptions evolution;
  evolution.top_x = options.top_x;
  evolution.evaluations = options.iterations;
  evolution.seed = options.seed;

  double seeded = 0.0;
  double seed_predicted = 0.0;
  if (corpus.empty()) {
    support::log_info()
        << "staged: training corpus is empty (no journal or persistent-"
           "cache records to fit from); degrading to evolutionary-only "
           "refinement";
  } else {
    const flags::FlagSpace& space = evaluator.engine().compiler().space();
    const RidgeModel model(space, corpus);
    const std::vector<std::vector<std::size_t>> pruned =
        prune_top_x(collection, options.top_x);
    std::vector<std::size_t> genome(outline.module_count());
    double predicted_sum = 0.0;
    for (std::size_t m = 0; m < genome.size(); ++m) {
      std::size_t best_index = pruned[m].front();
      double best_predicted = std::numeric_limits<double>::infinity();
      for (const std::size_t candidate : pruned[m]) {
        const double predicted = model.predict(collection.cvs[candidate]);
        if (predicted < best_predicted) {
          best_predicted = predicted;
          best_index = candidate;
        }
      }
      genome[m] = best_index;
      predicted_sum += best_predicted;
    }
    evolution.seed_genome = std::move(genome);
    seeded = 1.0;
    seed_predicted =
        predicted_sum / static_cast<double>(outline.module_count());
  }

  TuningResult result = evolutionary_search(evaluator, outline, collection,
                                            evolution, baseline_seconds);
  result.algorithm = "Staged";
  result.extras.set(kExtraCorpusSize, static_cast<double>(corpus.size()));
  result.extras.set(kExtraStagedSeeded, seeded);
  if (seeded != 0.0) {
    result.extras.set(kExtraStagedSeedPredicted, seed_predicted);
  }
  return result;
}

}  // namespace ft::core
