// SearchAlgorithm registry: a uniform name → factory API over the
// paper's four search algorithms (and any experimental ones a caller
// registers). Replaces the run_random / run_fr / run_greedy / run_cfr
// fan-out: ftune, Campaign and the figure benches resolve algorithms by
// key and iterate `names()` instead of hard-coding a string switch.
//
// A SearchAlgorithm consumes a SearchContext - lazy accessors over one
// FuncyTuner's phases - so cheap algorithms (Random) never force the
// expensive collection sweep just by being constructed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/search.hpp"

namespace ft::core {

struct FuncyTunerOptions;

/// Everything a search algorithm may need, behind lazy accessors: each
/// std::function runs (and memoizes, via FuncyTuner) the corresponding
/// phase on first call, so an algorithm only pays for the phases it
/// actually touches.
struct SearchContext {
  Evaluator* evaluator = nullptr;
  const FuncyTunerOptions* options = nullptr;
  std::function<const std::vector<flags::CompilationVector>&()> presampled;
  std::function<const Outline&()> outline;
  std::function<const Collection&()> collection;
  std::function<double()> baseline_seconds;
  /// Incumbent assignment an incremental search starts from (the
  /// "retune" algorithm re-tunes around it instead of searching from
  /// scratch). Null for the from-scratch algorithms, which ignore it.
  const compiler::ModuleAssignment* seed_assignment = nullptr;
};

/// One search algorithm, resolvable by registry key.
class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;
  /// Registry key (stable, lowercase: "random", "fr", "greedy", "cfr").
  [[nodiscard]] virtual std::string name() const = 0;
  /// Human label as the paper prints it ("Random", "FR", "G.realized",
  /// "CFR"); also what TuningResult::algorithm is set to.
  [[nodiscard]] virtual std::string display_name() const = 0;
  [[nodiscard]] virtual TuningResult run(SearchContext& context) const = 0;
};

/// Name → factory map. Registration order is iteration order, so
/// `--algorithm all` reproduces the paper's Random, FR, G, CFR column
/// order. Thread-compatible: register at startup, read from anywhere.
class SearchRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SearchAlgorithm>()>;

  /// Registers (or replaces, keeping its position and visibility) an
  /// algorithm. `listed = false` registers a key create() resolves but
  /// names() omits - for algorithms that only make sense in a special
  /// harness (the online "retune" needs a seed assignment, so
  /// `--algorithm all` and campaign grids must not iterate into it).
  void add(const std::string& name, Factory factory, bool listed = true);
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Instantiates by key (listed or not); throws std::invalid_argument
  /// for unknown names (message lists the registered keys).
  [[nodiscard]] std::unique_ptr<SearchAlgorithm> create(
      const std::string& name) const;
  /// Listed keys in registration order (what `--algorithm all` runs).
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry, pre-populated with the paper's four
  /// algorithms (random, fr, greedy, cfr) plus the unlisted online
  /// "retune".
  [[nodiscard]] static SearchRegistry& global();

 private:
  struct Entry {
    std::string name;
    Factory factory;
    bool listed = true;
  };
  std::vector<Entry> entries_;
};

}  // namespace ft::core
