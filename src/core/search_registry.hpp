// SearchAlgorithm registry: a uniform name → factory API over the
// paper's four search algorithms, the model-guided family (bo, group,
// staged) and any experimental ones a caller registers. Replaces the
// run_random / run_fr / run_greedy / run_cfr fan-out: ftune, Campaign
// and the figure benches resolve algorithms by key and iterate
// `names()` instead of hard-coding a string switch.
//
// A SearchAlgorithm consumes a SearchContext - lazy accessors over one
// FuncyTuner's phases - so cheap algorithms (Random) never force the
// expensive collection sweep just by being constructed. Each
// algorithm additionally owns a declarative options() schema
// (support/options OptionSet) of its private knobs, surfaced by ftune
// as namespaced flags (`--cfr:top-x`, `--bo:acquisition`, ...); the
// old flat FuncyTunerOptions fields stay honored as deprecated
// aliases when the namespaced knob was not given.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/search.hpp"
#include "support/options.hpp"

namespace ft::core {

struct FuncyTunerOptions;

/// One prior measurement usable as model-training evidence: a uniform
/// (every module the same CV) evaluation recovered from the
/// checkpoint journal or the persistent cache tier.
struct CorpusEntry {
  flags::CompilationVector cv;
  double end_to_end = 0.0;
  /// Per-loop times when the record was instrumented (collection
  /// phase); empty for plain end-to-end records.
  std::vector<double> loop_seconds;
};

/// The free training corpus a model-guided search can warm-start
/// from. Entries follow candidate order (default CV first, then the
/// pre-sampled CVs), so the corpus is deterministic for a fixed seed.
struct Corpus {
  std::vector<CorpusEntry> entries;

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }
};

/// Everything a search algorithm may need, behind lazy checked
/// accessors: each phase accessor runs (and memoizes, via FuncyTuner)
/// the corresponding phase on first call, so an algorithm only pays
/// for the phases it actually touches. Accessing a phase the harness
/// never provided throws std::logic_error naming the missing piece
/// (previously these were raw pointers and a null deref).
class SearchContext {
 public:
  using PresampledFn =
      std::function<const std::vector<flags::CompilationVector>&()>;
  using OutlineFn = std::function<const Outline&()>;
  using CollectionFn = std::function<const Collection&()>;
  using BaselineFn = std::function<double()>;

  // --- harness side: wiring ----------------------------------------------
  void provide_evaluator(Evaluator* evaluator) { evaluator_ = evaluator; }
  void provide_options(const FuncyTunerOptions* options) {
    options_ = options;
  }
  void provide_presampled(PresampledFn fn) { presampled_ = std::move(fn); }
  void provide_outline(OutlineFn fn) { outline_ = std::move(fn); }
  void provide_collection(CollectionFn fn) { collection_ = std::move(fn); }
  void provide_baseline_seconds(BaselineFn fn) {
    baseline_seconds_ = std::move(fn);
  }
  void provide_seed_assignment(const compiler::ModuleAssignment* seed) {
    seed_assignment_ = seed;
  }

  // --- algorithm side: checked accessors ---------------------------------
  [[nodiscard]] Evaluator& evaluator() const;
  [[nodiscard]] const FuncyTunerOptions& options() const;
  [[nodiscard]] const std::vector<flags::CompilationVector>& presampled()
      const;
  [[nodiscard]] const Outline& outline() const;
  [[nodiscard]] const Collection& collection() const;
  [[nodiscard]] double baseline_seconds() const;
  /// Incumbent assignment an incremental search starts from (the
  /// "retune" algorithm re-tunes around it instead of searching from
  /// scratch). Optional: check has_seed_assignment() first.
  [[nodiscard]] bool has_seed_assignment() const noexcept {
    return seed_assignment_ != nullptr;
  }
  [[nodiscard]] const compiler::ModuleAssignment& seed_assignment() const;

  /// Lazy (memoized) training corpus over the evaluator's checkpoint
  /// journal and persistent cache disk tier. Probes only the
  /// enumerable uniform candidates - the default CV plus every
  /// pre-sampled CV - at the two record shapes those candidates are
  /// ever measured under: the collection sweep (rep_streams::
  /// kCollection, 1 rep, instrumented) and the Random search
  /// (rep_streams::kRandom, 1 rep, plain). The in-memory cache tier is
  /// deliberately NOT consulted: its contents depend on eviction
  /// order, while journal + disk tier are append-only, which keeps the
  /// corpus - and everything trained on it - bit-identical between
  /// cache-on and cache-off runs and across --resume.
  [[nodiscard]] const Corpus& corpus() const;

  /// Raw namespaced option tokens for one algorithm key (what the user
  /// passed as `--<algorithm>:<knob>[=value]`), normalized to
  /// `--knob=value` form; empty when none were given.
  [[nodiscard]] std::vector<std::string> algorithm_tokens(
      const std::string& algorithm) const;

 private:
  Evaluator* evaluator_ = nullptr;
  const FuncyTunerOptions* options_ = nullptr;
  PresampledFn presampled_;
  OutlineFn outline_;
  CollectionFn collection_;
  BaselineFn baseline_seconds_;
  const compiler::ModuleAssignment* seed_assignment_ = nullptr;
  mutable std::optional<Corpus> corpus_;
};

/// One search algorithm, resolvable by registry key.
class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;
  /// Registry key (stable, lowercase: "random", "fr", "greedy", "cfr",
  /// "bo", "group", "staged").
  [[nodiscard]] virtual std::string name() const = 0;
  /// Human label as the paper prints it ("Random", "FR", "G.realized",
  /// "CFR"); also what TuningResult::algorithm is set to.
  [[nodiscard]] virtual std::string display_name() const = 0;
  /// Declarative schema of this algorithm's private knobs, with
  /// UNprefixed names ("top-x", "acquisition"); ftune surfaces each as
  /// `--<name()>:<knob>`. Default: no knobs.
  [[nodiscard]] virtual support::OptionSet options() const { return {}; }
  [[nodiscard]] virtual TuningResult run(SearchContext& context) const = 0;

 protected:
  /// The context's namespaced tokens for this algorithm, resolved
  /// against options() - strict, so an unknown or malformed knob
  /// throws support::CliError at run time (ftune validates eagerly at
  /// parse time, so users see it before any tuning starts).
  [[nodiscard]] support::OptionSet::Parsed parsed_options(
      const SearchContext& context) const {
    return options().parse(context.algorithm_tokens(name()));
  }
};

/// Name → factory map. Registration order is iteration order, so
/// `--algorithm all` reproduces the paper's Random, FR, G, CFR column
/// order (followed by the model-guided bo, group, staged family).
/// Thread-compatible: register at startup, read from anywhere.
class SearchRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SearchAlgorithm>()>;

  /// Registers (or replaces, keeping its position and visibility) an
  /// algorithm. `listed = false` registers a key create() resolves but
  /// names() omits - for algorithms that only make sense in a special
  /// harness (the online "retune" needs a seed assignment, so
  /// `--algorithm all` and campaign grids must not iterate into it).
  void add(const std::string& name, Factory factory, bool listed = true);
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Instantiates by key (listed or not); throws std::invalid_argument
  /// for unknown names. The message lists only the *listed* keys -
  /// harness-only algorithms must not leak into `--algorithm`
  /// help/errors.
  [[nodiscard]] std::unique_ptr<SearchAlgorithm> create(
      const std::string& name) const;
  /// Listed keys in registration order (what `--algorithm all` runs).
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry, pre-populated with the paper's four
  /// algorithms (random, fr, greedy, cfr), the model-guided family
  /// (bo, group, staged) and the unlisted online "retune".
  [[nodiscard]] static SearchRegistry& global();

 private:
  struct Entry {
    std::string name;
    Factory factory;
    bool listed = true;
  };
  std::vector<Entry> entries_;
};

}  // namespace ft::core
