// Per-flag importance analysis from the collection phase.
//
// The paper identifies performance-critical flags with greedy
// elimination on a single tuned CV (§4.4.1). The collection data
// (per-loop runtimes of 1000 uniformly-compiled random CVs, Fig 4)
// supports a cheaper, global view: for every flag and every module,
// compare the mean measured runtime across the samples that chose each
// option ("main effect"). The resulting per-(module, flag) effect table
// explains WHY the pruned spaces of Algorithm 1 look like they do, and
// which knobs a per-loop tuner actually exercises.
#pragma once

#include <string>
#include <vector>

#include "core/collector.hpp"
#include "core/outline.hpp"
#include "flags/flag_space.hpp"

namespace ft::core {

/// Main effect of one flag on one module.
struct FlagEffect {
  std::size_t flag_index = 0;
  std::string flag_name;
  /// Mean runtime per option, normalized by the module's overall mean
  /// (1.0 = neutral; < 1 = that option is faster on average).
  std::vector<double> option_means;
  /// max(option_means) - min(option_means): the flag's leverage.
  double spread = 0.0;
  /// Index of the fastest option.
  std::size_t best_option = 0;
};

/// Effects of every flag on one module, sorted by descending spread.
struct ModuleImportance {
  std::string module_name;
  std::vector<FlagEffect> effects;
};

/// Computes main effects for all outlined modules (the last entry is
/// the rest module). Requires collection.cvs drawn uniformly (true for
/// the standard pipeline); effect estimates degrade gracefully with
/// fewer samples.
[[nodiscard]] std::vector<ModuleImportance> analyze_flag_importance(
    const flags::FlagSpace& space, const Outline& outline,
    const Collection& collection);

/// Convenience: the top-k flags by spread for one module.
[[nodiscard]] std::vector<FlagEffect> top_flags(
    const ModuleImportance& importance, std::size_t k);

}  // namespace ft::core
