#include "core/outline.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace ft::core {

compiler::ModuleAssignment Outline::make_assignment(
    std::span<const flags::CompilationVector> hot_cvs,
    const flags::CompilationVector& rest_cv) const {
  if (hot_cvs.size() != hot.size()) {
    throw std::invalid_argument("make_assignment: expected " +
                                std::to_string(hot.size()) + " CVs, got " +
                                std::to_string(hot_cvs.size()));
  }
  compiler::ModuleAssignment assignment;
  assignment.loop_cvs.assign(program->loops().size(), rest_cv);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    assignment.loop_cvs[hot[i]] = hot_cvs[i];
  }
  assignment.nonloop_cv = rest_cv;
  return assignment;
}

Outline profile_and_outline(machine::ExecutionEngine& engine,
                            const ir::InputSpec& input, double threshold) {
  telemetry::Span span = telemetry::tracer().begin("outline");
  if (span) span.attr("threshold", threshold);
  machine::RunOptions options;
  options.instrumented = true;
  options.repetitions = 1;
  const machine::RunResult profile =
      engine.run(engine.baseline(), input, options);

  Outline outline;
  outline.program = &engine.program();
  outline.threshold = threshold;
  outline.profile_seconds = profile.end_to_end;
  outline.measured_share.reserve(profile.loop_seconds.size());
  for (std::size_t j = 0; j < profile.loop_seconds.size(); ++j) {
    const double share = profile.loop_seconds[j] / profile.end_to_end;
    outline.measured_share.push_back(share);
    if (share >= threshold) outline.hot.push_back(j);
  }
  if (outline.hot.empty()) {
    throw std::runtime_error("profile found no hot loops in program '" +
                             engine.program().name() + "'");
  }
  if (span) {
    span.attr("hot_loops", static_cast<std::uint64_t>(outline.hot.size()));
  }
  return outline;
}

}  // namespace ft::core
