#include "core/collector.hpp"

#include "telemetry/telemetry.hpp"

namespace ft::core {

Collection collect_per_loop_runtimes(
    Evaluator& evaluator, const Outline& outline,
    std::span<const flags::CompilationVector> cvs) {
  telemetry::Span span = telemetry::tracer().begin("collection");
  if (span) {
    span.attr("samples", static_cast<std::uint64_t>(cvs.size()))
        .attr("hot_loops", static_cast<std::uint64_t>(outline.hot.size()));
  }
  Collection collection;
  collection.cvs.assign(cvs.begin(), cvs.end());
  const std::size_t k_count = cvs.size();
  const std::size_t hot_count = outline.hot.size();

  collection.loop_times.assign(hot_count, std::vector<double>(k_count, 0.0));
  collection.rest_times.assign(k_count, 0.0);
  collection.end_to_end.assign(k_count, 0.0);

  std::vector<EvalRequest> requests(k_count);
  for (std::size_t k = 0; k < k_count; ++k) {
    requests[k].assignment = compiler::ModuleAssignment::uniform(
        collection.cvs[k], outline.program->loops().size());
    requests[k].instrumented = true;  // Caliper measures the hot loops
    // Shared phase rep_base: each CV's noise is decorrelated by its
    // executable fingerprint, and repeat sweeps of one CV (or EvalCache
    // hits) reproduce the identical measurement.
    requests[k].rep_base = rep_streams::kCollection;
  }
  EvalTrace trace;
  trace.label = "collection/batch";
  const std::vector<EvalResponse> responses =
      evaluator.evaluate_batch(requests, trace);

  for (std::size_t k = 0; k < k_count; ++k) {
    const EvalResponse& response = responses[k];
    if (!response.ok()) {
      // A CV that ICEs or crashes here is invalid for every module: +inf
      // rows keep it out of per-module winners and top-X pruning.
      collection.end_to_end[k] = kInvalidSeconds;
      for (std::size_t i = 0; i < hot_count; ++i) {
        collection.loop_times[i][k] = kInvalidSeconds;
      }
      collection.rest_times[k] = kInvalidSeconds;
      continue;
    }
    const machine::RunResult& result = response.outcome.result;

    collection.end_to_end[k] = result.end_to_end;
    double hot_sum = 0.0;
    for (std::size_t i = 0; i < hot_count; ++i) {
      const double t = result.loop_seconds[outline.hot[i]];
      collection.loop_times[i][k] = t;
      hot_sum += t;
    }
    collection.rest_times[k] = result.end_to_end - hot_sum;
  }

  return collection;
}

}  // namespace ft::core
