#include "core/search_registry.hpp"

#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "core/funcy_tuner.hpp"
#include "core/model_search.hpp"
#include "core/persistent_cache.hpp"
#include "support/rng.hpp"

namespace ft::core {

// ---------------------------------------------------------------------------
// SearchContext checked accessors.

namespace {

[[noreturn]] void missing(const char* what) {
  throw std::logic_error(std::string("SearchContext: ") + what +
                         " was not provided by the harness (wire it with "
                         "provide_" +
                         what + " before running the algorithm)");
}

}  // namespace

Evaluator& SearchContext::evaluator() const {
  if (evaluator_ == nullptr) missing("evaluator");
  return *evaluator_;
}

const FuncyTunerOptions& SearchContext::options() const {
  if (options_ == nullptr) missing("options");
  return *options_;
}

const std::vector<flags::CompilationVector>& SearchContext::presampled()
    const {
  if (!presampled_) missing("presampled");
  return presampled_();
}

const Outline& SearchContext::outline() const {
  if (!outline_) missing("outline");
  return outline_();
}

const Collection& SearchContext::collection() const {
  if (!collection_) missing("collection");
  return collection_();
}

double SearchContext::baseline_seconds() const {
  if (!baseline_seconds_) missing("baseline_seconds");
  return baseline_seconds_();
}

const compiler::ModuleAssignment& SearchContext::seed_assignment() const {
  if (seed_assignment_ == nullptr) missing("seed_assignment");
  return *seed_assignment_;
}

const Corpus& SearchContext::corpus() const {
  if (corpus_) return *corpus_;
  Evaluator& evaluator = this->evaluator();
  Corpus corpus;
  EvalJournal* journal = evaluator.journal().get();
  PersistentCache* disk = evaluator.eval_cache() != nullptr
                              ? evaluator.eval_cache()->disk()
                              : nullptr;
  if (journal != nullptr || disk != nullptr) {
    const std::size_t loops = evaluator.engine().program().loops().size();
    const flags::FlagSpace& space = evaluator.engine().compiler().space();
    // Candidate order is fixed (default CV, then the pre-sampled CVs),
    // so the corpus - and everything trained on it - is deterministic.
    std::vector<const flags::CompilationVector*> candidates;
    const flags::CompilationVector default_cv = space.default_cv();
    candidates.push_back(&default_cv);
    for (const flags::CompilationVector& cv : presampled()) {
      candidates.push_back(&cv);
    }
    // The two shapes uniform candidates are ever measured under: the
    // collection sweep (instrumented, with per-loop times) and the
    // Random search (plain end-to-end). Prefer the instrumented
    // record - it strictly subsumes the other's information.
    struct Probe {
      std::uint64_t rep_base;
      bool instrumented;
    };
    constexpr Probe kProbes[] = {
        {rep_streams::kCollection, true},
        {rep_streams::kRandom, false},
    };
    for (const flags::CompilationVector* cv : candidates) {
      const compiler::ModuleAssignment assignment =
          compiler::ModuleAssignment::uniform(*cv, loops);
      const std::uint64_t key = evaluator.assignment_key(assignment);
      for (const Probe& probe : kProbes) {
        EvalOutcome outcome;
        bool hit = journal != nullptr &&
                   journal->lookup(key, probe.rep_base, 1,
                                   probe.instrumented, &outcome);
        if (!hit && disk != nullptr) {
          hit = disk->lookup(
              EvalCache::Key{.assignment = key,
                             .rep_base = probe.rep_base,
                             .salt = evaluator.cache_salt(),
                             .repetitions = 1,
                             .instrumented = probe.instrumented},
              &outcome);
        }
        if (!hit || !outcome.ok()) continue;
        CorpusEntry entry;
        entry.cv = *cv;
        entry.end_to_end = outcome.result.end_to_end;
        if (probe.instrumented) {
          entry.loop_seconds = outcome.result.loop_seconds;
        }
        corpus.entries.push_back(std::move(entry));
        break;
      }
    }
  }
  corpus_ = std::move(corpus);
  return *corpus_;
}

std::vector<std::string> SearchContext::algorithm_tokens(
    const std::string& algorithm) const {
  // Deliberately tolerant of a missing options block: programmatic
  // harnesses that never touch namespaced knobs just get defaults.
  if (options_ == nullptr) return {};
  const auto it = options_->algorithm_options.find(algorithm);
  if (it == options_->algorithm_options.end()) return {};
  return it->second;
}

// ---------------------------------------------------------------------------
// The registered algorithms.

namespace {

/// Deprecated-alias resolution: the namespaced knob wins when the user
/// gave it; otherwise the old flat FuncyTunerOptions field applies.
std::size_t knob_or(const support::OptionSet::Parsed& parsed,
                    const std::string& knob, std::size_t flat) {
  return parsed.given(knob) ? static_cast<std::size_t>(parsed.integer(knob))
                            : flat;
}

class RandomAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "random"; }
  std::string display_name() const override { return "Random"; }
  TuningResult run(SearchContext& context) const override {
    return random_search(context.evaluator(), context.presampled(),
                         context.baseline_seconds());
  }
};

class FrAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "fr"; }
  std::string display_name() const override { return "FR"; }
  support::OptionSet options() const override {
    support::OptionSet set;
    set.integer("samples", 1000,
                "evaluation budget (deprecated alias: flat --samples)");
    return set;
  }
  TuningResult run(SearchContext& context) const override {
    const support::OptionSet::Parsed parsed = parsed_options(context);
    const FuncyTunerOptions& options = context.options();
    return function_random_search(
        context.evaluator(), context.outline(), context.presampled(),
        knob_or(parsed, "samples", options.samples),
        support::Rng(options.seed).fork("fr").next(),
        context.baseline_seconds());
  }
};

class GreedyAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "greedy"; }
  std::string display_name() const override { return "G.realized"; }
  TuningResult run(SearchContext& context) const override {
    // The §3.4 independence bound rides along in TuningResult::extras
    // (kExtraIndependentSeconds / kExtraIndependentSpeedup).
    return greedy_combination(context.evaluator(), context.outline(),
                              context.collection(),
                              context.baseline_seconds())
        .realized;
  }
};

class CfrAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "cfr"; }
  std::string display_name() const override { return "CFR"; }
  support::OptionSet options() const override {
    support::OptionSet set;
    set.integer("top-x", 10,
                "pruned space size per module (deprecated alias: flat "
                "--top-x)")
        .integer("samples", 1000,
                 "evaluation budget K of Algorithm 1 (deprecated alias: "
                 "flat --samples)")
        .integer("patience", 0,
                 "early-stop patience; 0 = fixed budget (deprecated "
                 "alias: flat --patience)");
    return set;
  }
  TuningResult run(SearchContext& context) const override {
    const support::OptionSet::Parsed parsed = parsed_options(context);
    const FuncyTunerOptions& options = context.options();
    CfrOptions cfr_options;
    cfr_options.top_x = knob_or(parsed, "top-x", options.top_x);
    cfr_options.iterations = knob_or(parsed, "samples", options.samples);
    cfr_options.seed = support::Rng(options.seed).fork("cfr").next();
    cfr_options.patience = knob_or(parsed, "patience", options.patience);
    return cfr_search(context.evaluator(), context.outline(),
                      context.collection(), cfr_options,
                      context.baseline_seconds());
  }
};

class BoAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "bo"; }
  std::string display_name() const override { return "BO"; }
  support::OptionSet options() const override {
    support::OptionSet set;
    set.integer("iterations", 60,
                "total measurements, warmup included (NOT aliased to "
                "flat --samples: each step refits an exact GP)")
        .integer("warmup", 8, "seeded random probes before the first fit")
        .integer("candidates", 64, "acquisition pool size per step")
        .text("acquisition", "ei", "acquisition function: ei | mean",
              [](const std::string& raw) {
                return raw == "ei" || raw == "mean"
                           ? std::string()
                           : std::string("must be 'ei' or 'mean'");
              })
        .real("length-scale", 1.0, "RBF kernel length scale");
    return set;
  }
  TuningResult run(SearchContext& context) const override {
    const support::OptionSet::Parsed parsed = parsed_options(context);
    const FuncyTunerOptions& options = context.options();
    BoOptions bo_options;
    bo_options.iterations =
        static_cast<std::size_t>(parsed.integer("iterations"));
    bo_options.warmup = static_cast<std::size_t>(parsed.integer("warmup"));
    bo_options.candidates =
        static_cast<std::size_t>(parsed.integer("candidates"));
    bo_options.acquisition = parsed.text("acquisition");
    bo_options.length_scale = parsed.real("length-scale");
    bo_options.seed = support::Rng(options.seed).fork("bo").next();
    // Reading the corpus here is resume-safe: bo only ever writes the
    // kBo and kFinal streams, which the corpus never probes, so an
    // interrupted-and-resumed run sees the same corpus it saw live.
    return bo_search(context.evaluator(), context.outline(),
                     context.presampled(), bo_options,
                     context.baseline_seconds(), &context.corpus());
  }
};

class GroupAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "group"; }
  std::string display_name() const override { return "Group"; }
  support::OptionSet options() const override {
    support::OptionSet set;
    set.integer("iterations", 120, "evaluation budget")
        .integer("size", 3, "max flags re-drawn per mutation step")
        .integer("patience", 0,
                 "early-stop patience; 0 = fixed budget (deprecated "
                 "alias: flat --patience)");
    return set;
  }
  TuningResult run(SearchContext& context) const override {
    const support::OptionSet::Parsed parsed = parsed_options(context);
    const FuncyTunerOptions& options = context.options();
    GroupOptions group_options;
    group_options.iterations =
        static_cast<std::size_t>(parsed.integer("iterations"));
    group_options.group_size =
        static_cast<std::size_t>(parsed.integer("size"));
    group_options.patience =
        knob_or(parsed, "patience", options.patience);
    group_options.seed = support::Rng(options.seed).fork("group").next();
    // Resume-safe like bo: group writes only kGroup/kFinal, never the
    // corpus-probed streams.
    return group_search(context.evaluator(), context.outline(),
                        group_options, context.baseline_seconds(),
                        &context.corpus());
  }
};

class StagedAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "staged"; }
  std::string display_name() const override { return "Staged"; }
  support::OptionSet options() const override {
    support::OptionSet set;
    set.integer("iterations", 1000,
                "total measurement budget for the refinement stage "
                "(deprecated alias: flat --samples)")
        .integer("top-x", 10,
                 "pruned space size per module (deprecated alias: flat "
                 "--top-x)");
    return set;
  }
  TuningResult run(SearchContext& context) const override {
    const support::OptionSet::Parsed parsed = parsed_options(context);
    const FuncyTunerOptions& options = context.options();
    StagedOptions staged_options;
    staged_options.iterations =
        knob_or(parsed, "iterations", options.samples);
    staged_options.top_x = knob_or(parsed, "top-x", options.top_x);
    staged_options.seed = support::Rng(options.seed).fork("staged").next();
    // Order matters for --resume bit-identity: staged's own collection
    // sweep writes the kCollection records the corpus probes, so force
    // the sweep BEFORE the corpus snapshot. A run resumed mid-staged
    // then replays the full sweep from the journal and reads the exact
    // corpus the uninterrupted run read.
    const Collection& collection = context.collection();
    return staged_search(context.evaluator(), context.outline(),
                         collection, context.corpus(), staged_options,
                         context.baseline_seconds());
  }
};

class RetuneAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "retune"; }
  std::string display_name() const override { return "Retune"; }
  support::OptionSet options() const override {
    support::OptionSet set;
    set.integer("iterations", 60,
                "evaluation budget, the seed costs one (deprecated "
                "alias: flat --samples)")
        .integer("top-x", 10,
                 "pruned candidate space per module (deprecated alias: "
                 "flat --top-x)")
        .integer("patience", 0,
                 "early-stop patience; 0 = fixed budget (deprecated "
                 "alias: flat --patience)");
    return set;
  }
  TuningResult run(SearchContext& context) const override {
    const support::OptionSet::Parsed parsed = parsed_options(context);
    const FuncyTunerOptions& options = context.options();
    RetuneOptions retune_options;
    retune_options.top_x = knob_or(parsed, "top-x", options.top_x);
    retune_options.iterations =
        knob_or(parsed, "iterations", options.samples);
    retune_options.seed = support::Rng(options.seed).fork("retune").next();
    retune_options.patience = knob_or(parsed, "patience", options.patience);
    // Without an incumbent the retune degenerates to hill-climbing
    // from the O3 default - still valid, just slower to converge.
    const compiler::ModuleAssignment seed =
        context.has_seed_assignment()
            ? context.seed_assignment()
            : compiler::ModuleAssignment::uniform(
                  context.evaluator().engine().compiler().space()
                      .default_cv(),
                  context.evaluator().engine().program().loops().size());
    return retune_search(context.evaluator(), context.outline(),
                         context.collection(), seed, retune_options,
                         context.baseline_seconds());
  }
};

}  // namespace

void SearchRegistry::add(const std::string& name, Factory factory,
                         bool listed) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.factory = std::move(factory);
      entry.listed = listed;
      return;
    }
  }
  entries_.push_back({name, std::move(factory), listed});
}

bool SearchRegistry::contains(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return true;
  }
  return false;
}

std::unique_ptr<SearchAlgorithm> SearchRegistry::create(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.factory();
  }
  // List only the listed keys: harness-only algorithms (retune) must
  // not leak into `--algorithm` help and error text.
  std::string known;
  for (const Entry& entry : entries_) {
    if (!entry.listed) continue;
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown search algorithm '" + name +
                              "' (registered: " + known + ")");
}

std::vector<std::string> SearchRegistry::names() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    if (entry.listed) keys.push_back(entry.name);
  }
  return keys;
}

SearchRegistry& SearchRegistry::global() {
  static SearchRegistry registry = [] {
    SearchRegistry r;
    r.add("random", [] { return std::make_unique<RandomAlgorithm>(); });
    r.add("fr", [] { return std::make_unique<FrAlgorithm>(); });
    r.add("greedy", [] { return std::make_unique<GreedyAlgorithm>(); });
    r.add("cfr", [] { return std::make_unique<CfrAlgorithm>(); });
    r.add("bo", [] { return std::make_unique<BoAlgorithm>(); });
    r.add("group", [] { return std::make_unique<GroupAlgorithm>(); });
    r.add("staged", [] { return std::make_unique<StagedAlgorithm>(); });
    r.add("retune", [] { return std::make_unique<RetuneAlgorithm>(); },
          /*listed=*/false);
    return r;
  }();
  return registry;
}

}  // namespace ft::core
