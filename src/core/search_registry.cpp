#include "core/search_registry.hpp"

#include <stdexcept>

#include "core/funcy_tuner.hpp"
#include "support/rng.hpp"

namespace ft::core {

namespace {

class RandomAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "random"; }
  std::string display_name() const override { return "Random"; }
  TuningResult run(SearchContext& context) const override {
    return random_search(*context.evaluator, context.presampled(),
                         context.baseline_seconds());
  }
};

class FrAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "fr"; }
  std::string display_name() const override { return "FR"; }
  TuningResult run(SearchContext& context) const override {
    const FuncyTunerOptions& options = *context.options;
    return function_random_search(
        *context.evaluator, context.outline(), context.presampled(),
        options.samples, support::Rng(options.seed).fork("fr").next(),
        context.baseline_seconds());
  }
};

class GreedyAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "greedy"; }
  std::string display_name() const override { return "G.realized"; }
  TuningResult run(SearchContext& context) const override {
    // The §3.4 extras (independent_seconds/speedup) ride along as
    // optional TuningResult fields.
    return greedy_combination(*context.evaluator, context.outline(),
                              context.collection(),
                              context.baseline_seconds())
        .realized;
  }
};

class CfrAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "cfr"; }
  std::string display_name() const override { return "CFR"; }
  TuningResult run(SearchContext& context) const override {
    const FuncyTunerOptions& options = *context.options;
    CfrOptions cfr_options;
    cfr_options.top_x = options.top_x;
    cfr_options.iterations = options.samples;
    cfr_options.seed = support::Rng(options.seed).fork("cfr").next();
    cfr_options.patience = options.patience;
    return cfr_search(*context.evaluator, context.outline(),
                      context.collection(), cfr_options,
                      context.baseline_seconds());
  }
};

class RetuneAlgorithm final : public SearchAlgorithm {
 public:
  std::string name() const override { return "retune"; }
  std::string display_name() const override { return "Retune"; }
  TuningResult run(SearchContext& context) const override {
    const FuncyTunerOptions& options = *context.options;
    RetuneOptions retune_options;
    retune_options.top_x = options.top_x;
    retune_options.iterations = options.samples;
    retune_options.seed = support::Rng(options.seed).fork("retune").next();
    retune_options.patience = options.patience;
    // Without an incumbent the retune degenerates to hill-climbing
    // from the O3 default - still valid, just slower to converge.
    const compiler::ModuleAssignment seed =
        context.seed_assignment != nullptr
            ? *context.seed_assignment
            : compiler::ModuleAssignment::uniform(
                  context.evaluator->engine().compiler().space().default_cv(),
                  context.evaluator->engine().program().loops().size());
    return retune_search(*context.evaluator, context.outline(),
                         context.collection(), seed, retune_options,
                         context.baseline_seconds());
  }
};

}  // namespace

void SearchRegistry::add(const std::string& name, Factory factory,
                         bool listed) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.factory = std::move(factory);
      entry.listed = listed;
      return;
    }
  }
  entries_.push_back({name, std::move(factory), listed});
}

bool SearchRegistry::contains(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return true;
  }
  return false;
}

std::unique_ptr<SearchAlgorithm> SearchRegistry::create(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.factory();
  }
  std::string known;
  for (const Entry& entry : entries_) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown search algorithm '" + name +
                              "' (registered: " + known + ")");
}

std::vector<std::string> SearchRegistry::names() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    if (entry.listed) keys.push_back(entry.name);
  }
  return keys;
}

SearchRegistry& SearchRegistry::global() {
  static SearchRegistry registry = [] {
    SearchRegistry r;
    r.add("random", [] { return std::make_unique<RandomAlgorithm>(); });
    r.add("fr", [] { return std::make_unique<FrAlgorithm>(); });
    r.add("greedy", [] { return std::make_unique<GreedyAlgorithm>(); });
    r.add("cfr", [] { return std::make_unique<CfrAlgorithm>(); });
    r.add("retune", [] { return std::make_unique<RetuneAlgorithm>(); },
          /*listed=*/false);
    return r;
  }();
  return registry;
}

}  // namespace ft::core
