#include "core/drift.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "core/checkpoint.hpp"

namespace ft::core {

std::vector<ir::InputSpec> make_drift_schedule(
    const ir::InputSpec& tuning, const DriftScheduleOptions& options) {
  std::vector<ir::InputSpec> schedule;
  schedule.reserve(static_cast<std::size_t>(std::max(options.segments, 0)));
  for (int i = 1; i <= options.segments; ++i) {
    ir::InputSpec input = tuning;
    // Distinct names drive distinct calibration, cache and journal
    // contexts (Evaluator folds input.name into every key).
    input.name = tuning.name + "-drift" + std::to_string(i);
    input.work_scale =
        tuning.work_scale * std::pow(1.0 + options.work_drift, i);
    input.ws_scale = tuning.ws_scale * std::pow(1.0 + options.ws_drift, i);
    if (options.timesteps > 0 && options.timesteps != tuning.timesteps) {
      // Same rescaling rule as programs::with_timesteps (fixed startup
      // share; replicated here so core stays below the programs layer).
      constexpr double kStartupSeconds = 0.5;
      const double per_step =
          (tuning.o3_seconds - kStartupSeconds) / tuning.timesteps;
      input.timesteps = options.timesteps;
      input.o3_seconds = kStartupSeconds + per_step * options.timesteps;
    }
    schedule.push_back(std::move(input));
  }
  return schedule;
}

std::string_view to_string(DriftState state) noexcept {
  switch (state) {
    case DriftState::kSteady:
      return "steady";
    case DriftState::kSuspect:
      return "suspect";
    case DriftState::kRetuning:
      return "retuning";
  }
  return "unknown";
}

std::vector<double> DriftMonitor::speedups(const DriftObservation& o3,
                                           const DriftObservation& tuned) {
  const std::size_t loops =
      std::min(o3.loop_seconds.size(), tuned.loop_seconds.size());
  std::vector<double> out;
  out.reserve(loops + 1);
  for (std::size_t j = 0; j < loops; ++j) {
    const double t = tuned.loop_seconds[j];
    out.push_back(t > 0.0 ? o3.loop_seconds[j] / t : 0.0);
  }
  out.push_back(tuned.end_to_end > 0.0 ? o3.end_to_end / tuned.end_to_end
                                       : 0.0);
  return out;
}

void DriftMonitor::baseline(const DriftObservation& o3,
                            const DriftObservation& tuned) {
  reference_ = speedups(o3, tuned);
  strikes_ = 0;
  last_regression_ = 0.0;
  state_ = DriftState::kSteady;
}

DriftState DriftMonitor::observe(const DriftObservation& o3,
                                 const DriftObservation& tuned) {
  const std::vector<double> current = speedups(o3, tuned);
  double worst = 0.0;
  const std::size_t n = std::min(current.size(), reference_.size());
  for (std::size_t j = 0; j < n; ++j) {
    if (reference_[j] <= 0.0) continue;
    worst = std::max(worst, 1.0 - current[j] / reference_[j]);
  }
  last_regression_ = worst;
  if (state_ == DriftState::kRetuning) return state_;  // sticky until swap
  if (worst > options_.threshold) {
    ++strikes_;
    state_ = strikes_ >= options_.confirm ? DriftState::kRetuning
                                          : DriftState::kSuspect;
  } else {
    strikes_ = 0;
    state_ = DriftState::kSteady;
  }
  return state_;
}

void DriftMonitor::reset_after_swap(const DriftObservation& o3,
                                    const DriftObservation& tuned) {
  baseline(o3, tuned);
}

OnlineTuner::OnlineTuner(FuncyTuner& tuner, OnlineTunerOptions options)
    : tuner_(&tuner), options_(std::move(options)) {}

void OnlineTuner::set_journal(std::shared_ptr<EvalJournal> journal) {
  journal_ = std::move(journal);
}

DriftObservation OnlineTuner::observe_assignment(
    Evaluator& evaluator, const compiler::ModuleAssignment& assignment,
    std::uint64_t rep_base) {
  EvalRequest request;
  request.assignment = assignment;
  request.rep_base = rep_base;
  request.repetitions = options_.observation_reps;
  request.instrumented = true;  // the monitor needs per-loop times
  const EvalResponse response =
      evaluator.evaluate(request, EvalTrace{.label = "drift/observe"});
  DriftObservation observation;
  if (response.ok()) {
    observation.end_to_end = response.outcome.result.end_to_end;
    observation.loop_seconds = response.outcome.result.loop_seconds;
  } else {
    observation.end_to_end = kInvalidSeconds;
  }
  return observation;
}

OnlineReport OnlineTuner::run(const compiler::ModuleAssignment& initial) {
  FuncyTuner& tuner = *tuner_;
  OnlineReport report;
  const std::size_t loops = tuner.program().loops().size();
  const compiler::ModuleAssignment o3 =
      compiler::ModuleAssignment::uniform(tuner.space().default_cv(), loops);

  // Per-observation offsets within the kDriftMonitor stream: segments
  // are 0x1000 apart, observations 0x10, the (O3, incumbent, post-swap)
  // probes of one observation 0x1..0x8 - disjoint by construction.
  constexpr std::uint64_t kSegmentStride = 0x1000;
  constexpr std::uint64_t kObservationStride = 0x10;

  // Steady state: snapshot the incumbent's advantage on the tuning
  // input. These run on the tuner's own evaluator (same journal/cache
  // wiring the initial tune used).
  const DriftObservation steady_o3 =
      observe_assignment(tuner.evaluator(), o3, rep_streams::kDriftMonitor);
  const DriftObservation steady_tuned = observe_assignment(
      tuner.evaluator(), initial, rep_streams::kDriftMonitor + 8);
  report.steady_o3_seconds = steady_o3.end_to_end;
  report.steady_tuned_seconds = steady_tuned.end_to_end;
  report.steady_speedup = steady_tuned.end_to_end > 0.0
                              ? steady_o3.end_to_end / steady_tuned.end_to_end
                              : 0.0;

  DriftMonitor monitor(options_.monitor);
  monitor.baseline(steady_o3, steady_tuned);

  compiler::ModuleAssignment current = initial;
  // Segment inputs must outlive their Evaluators (which hold the input
  // by pointer) - a deque never reallocates existing elements.
  std::deque<ir::InputSpec> inputs;
  const std::vector<ir::InputSpec> schedule =
      make_drift_schedule(tuner.tuning_input(), options_.schedule);

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    inputs.push_back(schedule[i]);
    const ir::InputSpec& input = inputs.back();
    Evaluator evaluator(tuner.engine(), input);
    evaluator.set_retry_policy(tuner.options().retry);
    if (tuner.eval_cache() != nullptr) {
      evaluator.set_eval_cache(tuner.eval_cache(),
                               options_fingerprint(tuner.options()));
    }
    if (journal_ != nullptr) evaluator.set_journal(journal_);

    const std::uint64_t segment_base =
        rep_streams::kDriftMonitor + (i + 1) * kSegmentStride;

    DriftSegmentReport segment;
    segment.input = input.name;
    segment.timesteps = input.timesteps;
    segment.work_scale = input.work_scale;
    segment.ws_scale = input.ws_scale;

    // Observe until the monitor either trips or the debounce window is
    // exhausted without confirmation.
    DriftObservation o3_obs;
    DriftObservation tuned_obs;
    DriftState state = monitor.state();
    const int window = std::max(monitor.options().confirm, 1);
    for (int o = 0; o < window && state != DriftState::kRetuning; ++o) {
      const std::uint64_t base = segment_base + o * kObservationStride;
      o3_obs = observe_assignment(evaluator, o3, base);
      tuned_obs = observe_assignment(evaluator, current, base + 8);
      state = monitor.observe(o3_obs, tuned_obs);
    }
    segment.o3_seconds = o3_obs.end_to_end;
    segment.degraded_seconds = tuned_obs.end_to_end;
    segment.degraded_speedup = tuned_obs.end_to_end > 0.0
                                   ? o3_obs.end_to_end / tuned_obs.end_to_end
                                   : 0.0;
    segment.regression = monitor.last_regression();

    if (state == DriftState::kRetuning) {
      // Incremental re-tune on the drifted input, seeded from the
      // degraded incumbent, against the O3 runtime just measured here.
      FuncyTunerOptions retune_options = tuner.options();
      retune_options.samples = options_.retune_samples;
      SearchContext context = tuner.search_context();
      context.provide_evaluator(&evaluator);
      context.provide_options(&retune_options);
      const double segment_baseline = o3_obs.end_to_end;
      context.provide_baseline_seconds(
          [segment_baseline] { return segment_baseline; });
      context.provide_seed_assignment(&current);
      const TuningResult result =
          SearchRegistry::global().create("retune")->run(context);

      segment.retuned = true;
      segment.retune_evaluations = result.evaluations;
      segment.retuned_seconds = result.tuned_seconds;
      segment.retuned_speedup = result.speedup;
      if (result.tuned_seconds < tuned_obs.end_to_end) {
        current = result.best_assignment;  // hot swap
        segment.swapped = true;
      }
      // Re-baseline on the post-decision incumbent so the monitor
      // tracks drift relative to what is actually deployed now.
      const DriftObservation post_o3 =
          observe_assignment(evaluator, o3, segment_base + 0x800);
      const DriftObservation post_tuned =
          observe_assignment(evaluator, current, segment_base + 0x808);
      monitor.reset_after_swap(post_o3, post_tuned);
    }
    segment.state = std::string(to_string(state));
    report.segments.push_back(std::move(segment));
  }
  return report;
}

}  // namespace ft::core
