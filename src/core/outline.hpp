// Hot-loop identification and outlining (paper §3.3).
//
// FuncyTuner profiles the O3 baseline with Caliper annotations and
// outlines every loop whose runtime is at least 1% of the end-to-end
// runtime into its own compilation module. Loops below the threshold
// stay in their original source files and are compiled together with
// the non-loop remainder ("rest" module).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "compiler/compiler.hpp"
#include "ir/program.hpp"
#include "machine/execution_engine.hpp"

namespace ft::core {

/// The outlined view of a program: which loops became modules.
struct Outline {
  const ir::Program* program = nullptr;
  /// Indices into program->loops() of the outlined hot loops.
  std::vector<std::size_t> hot;
  /// Measured runtime share of every loop at profiling time.
  std::vector<double> measured_share;
  /// End-to-end time of the instrumented profiling run.
  double profile_seconds = 0.0;
  double threshold = 0.01;

  /// Outlined modules plus the rest module (the J of §2.1).
  [[nodiscard]] std::size_t module_count() const noexcept {
    return hot.size() + 1;
  }

  /// Builds a compiler assignment: hot_cvs[i] compiles the i-th hot
  /// loop; every cold loop and the non-loop code get `rest_cv`.
  [[nodiscard]] compiler::ModuleAssignment make_assignment(
      std::span<const flags::CompilationVector> hot_cvs,
      const flags::CompilationVector& rest_cv) const;
};

/// Runs the Caliper-instrumented O3 profile and outlines hot loops.
[[nodiscard]] Outline profile_and_outline(machine::ExecutionEngine& engine,
                                          const ir::InputSpec& input,
                                          double threshold = 0.01);

}  // namespace ft::core
