#include "core/search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::core {

namespace {

/// True when at least one evaluation produced a real runtime. Failed
/// evaluations score kInvalidSeconds (+inf), so argmin naturally skips
/// them - but with every candidate invalid (pathological fault rates)
/// the argmin index is meaningless and callers fall back to the
/// compiler's default CV instead of crowning an un-runnable winner.
bool any_valid(const std::vector<double>& seconds) {
  return std::any_of(seconds.begin(), seconds.end(),
                     [](double s) { return std::isfinite(s); });
}

/// Scores (kInvalidSeconds for failures) from a batch of responses.
std::vector<double> seconds_of(const std::vector<EvalResponse>& responses) {
  std::vector<double> seconds;
  seconds.reserve(responses.size());
  for (const EvalResponse& response : responses) {
    seconds.push_back(response.seconds());
  }
  return seconds;
}

/// Materializes `count` generator-built assignments into requests on
/// one shared phase rep_base (content-addressed noise keeps distinct
/// variants decorrelated).
std::vector<EvalRequest> batch_requests(
    std::size_t count, std::uint64_t rep_base,
    const std::function<compiler::ModuleAssignment(std::size_t)>& make) {
  std::vector<EvalRequest> requests(count);
  for (std::size_t k = 0; k < count; ++k) {
    requests[k].assignment = make(k);
    requests[k].rep_base = rep_base;
  }
  return requests;
}

compiler::ModuleAssignment default_assignment(Evaluator& evaluator,
                                              std::size_t loop_count) {
  return compiler::ModuleAssignment::uniform(
      evaluator.engine().compiler().space().default_cv(), loop_count);
}

/// Best-so-far curve and winner from a vector of evaluation results.
void finish_from_history(TuningResult& result,
                         const std::vector<double>& seconds) {
  result.history.clear();
  result.history.reserve(seconds.size());
  double best = std::numeric_limits<double>::infinity();
  for (const double s : seconds) {
    best = std::min(best, s);
    result.history.push_back(best);
  }
  result.search_best_seconds = best;
  result.evaluations = seconds.size();
}

void measure_final(TuningResult& result, Evaluator& evaluator,
                   double baseline_seconds) {
  telemetry::Span span = telemetry::tracer().begin("final_measure");
  result.tuned_seconds = evaluator.final_seconds(result.best_assignment);
  result.baseline_seconds = baseline_seconds;
  result.speedup = baseline_seconds / result.tuned_seconds;
  if (span) {
    span.attr("algorithm", result.algorithm)
        .attr("tuned_seconds", result.tuned_seconds)
        .attr("speedup", result.speedup);
  }
}

}  // namespace

TuningResult random_search(Evaluator& evaluator,
                           std::span<const flags::CompilationVector> cvs,
                           double baseline_seconds) {
  TuningResult result;
  result.algorithm = "Random";
  telemetry::Span span = telemetry::tracer().begin("search:Random");
  if (span) span.attr("samples", static_cast<std::uint64_t>(cvs.size()));
  const std::size_t loop_count =
      evaluator.engine().program().loops().size();

  EvalTrace trace;
  trace.label = "random/batch";
  const std::vector<double> seconds = seconds_of(evaluator.evaluate_batch(
      batch_requests(cvs.size(), rep_streams::kRandom,
                     [&](std::size_t k) {
                       return compiler::ModuleAssignment::uniform(cvs[k],
                                                                  loop_count);
                     }),
      trace));

  finish_from_history(result, seconds);
  if (any_valid(seconds)) {
    const std::size_t winner = support::argmin(seconds);
    result.best_assignment =
        compiler::ModuleAssignment::uniform(cvs[winner], loop_count);
  } else {
    result.best_assignment = default_assignment(evaluator, loop_count);
  }
  measure_final(result, evaluator, baseline_seconds);
  return result;
}

TuningResult function_random_search(
    Evaluator& evaluator, const Outline& outline,
    std::span<const flags::CompilationVector> presampled,
    std::size_t iterations, std::uint64_t seed, double baseline_seconds) {
  TuningResult result;
  result.algorithm = "FR";
  telemetry::Span span = telemetry::tracer().begin("search:FR");
  if (span) {
    span.attr("iterations", static_cast<std::uint64_t>(iterations))
        .attr("seed", seed);
  }
  const std::size_t module_count = outline.module_count();

  // Pre-draw all module CV indices so evaluation order cannot perturb
  // the random stream (deterministic under parallel evaluation).
  support::Rng rng(seed);
  std::vector<std::vector<std::size_t>> picks(
      iterations, std::vector<std::size_t>(module_count));
  for (auto& row : picks) {
    for (auto& pick : row) pick = rng.next_below(presampled.size());
  }

  auto make = [&](std::size_t k) {
    std::vector<flags::CompilationVector> hot_cvs;
    hot_cvs.reserve(outline.hot.size());
    for (std::size_t i = 0; i < outline.hot.size(); ++i) {
      hot_cvs.push_back(presampled[picks[k][i]]);
    }
    return outline.make_assignment(hot_cvs,
                                   presampled[picks[k].back()]);
  };

  EvalTrace trace;
  trace.label = "fr/batch";
  const std::vector<double> seconds = seconds_of(evaluator.evaluate_batch(
      batch_requests(iterations, rep_streams::kFunctionRandom, make), trace));
  finish_from_history(result, seconds);
  result.best_assignment =
      any_valid(seconds)
          ? make(support::argmin(seconds))
          : default_assignment(evaluator,
                               evaluator.engine().program().loops().size());
  measure_final(result, evaluator, baseline_seconds);
  return result;
}

GreedyResult greedy_combination(Evaluator& evaluator, const Outline& outline,
                                const Collection& collection,
                                double baseline_seconds) {
  GreedyResult result;
  result.realized.algorithm = "G.realized";
  telemetry::Span span = telemetry::tracer().begin("search:Greedy");

  // Per-module winners: i = argmin_k T[j][k] (paper §2.2.3). Failed
  // collection rows hold +inf, so the argmin skips them; a module with
  // no valid row at all falls back to the compiler default CV.
  const flags::CompilationVector default_cv =
      evaluator.engine().compiler().space().default_cv();
  std::vector<flags::CompilationVector> hot_cvs;
  hot_cvs.reserve(outline.hot.size());
  double independent_sum = 0.0;
  for (std::size_t j = 0; j < outline.hot.size(); ++j) {
    const std::size_t winner = support::argmin(collection.loop_times[j]);
    const double best = collection.loop_times[j][winner];
    hot_cvs.push_back(std::isfinite(best) ? collection.cvs[winner]
                                          : default_cv);
    independent_sum += best;
  }
  const std::size_t rest_winner = support::argmin(collection.rest_times);
  independent_sum += collection.rest_times[rest_winner];

  result.realized.best_assignment = outline.make_assignment(
      hot_cvs, std::isfinite(collection.rest_times[rest_winner])
                   ? collection.cvs[rest_winner]
                   : default_cv);
  result.realized.evaluations = 1;
  measure_final(result.realized, evaluator, baseline_seconds);
  result.realized.search_best_seconds = result.realized.tuned_seconds;
  result.realized.history = {result.realized.tuned_seconds};

  // G.Independent: the pairwise-independence hypothetical (§3.4) -
  // sums the best per-module times without assembling an executable.
  result.independent_seconds = independent_sum;
  result.independent_speedup = baseline_seconds / independent_sum;
  result.realized.extras.set(kExtraIndependentSeconds, independent_sum);
  result.realized.extras.set(kExtraIndependentSpeedup,
                             result.independent_speedup);
  if (span) {
    span.attr("independent_speedup", result.independent_speedup)
        .attr("realized_speedup", result.realized.speedup);
  }
  return result;
}

std::vector<std::vector<std::size_t>> prune_top_x(
    const Collection& collection, std::size_t top_x) {
  // Failed evaluations (+inf rows) must never occupy top-X slots; they
  // only survive when a module has fewer than top_x valid rows, and
  // even then only as a last-resort non-empty candidate set.
  const auto prune = [top_x](const std::vector<double>& times) {
    std::vector<std::size_t> keep = support::smallest_k(times, top_x);
    std::vector<std::size_t> valid;
    valid.reserve(keep.size());
    for (const std::size_t index : keep) {
      if (std::isfinite(times[index])) valid.push_back(index);
    }
    return valid.empty() ? keep : valid;
  };
  std::vector<std::vector<std::size_t>> pruned;
  pruned.reserve(collection.loop_times.size() + 1);
  for (const std::vector<double>& times : collection.loop_times) {
    pruned.push_back(prune(times));
  }
  pruned.push_back(prune(collection.rest_times));
  return pruned;
}

TuningResult cfr_search(Evaluator& evaluator, const Outline& outline,
                        const Collection& collection,
                        const CfrOptions& options, double baseline_seconds) {
  TuningResult result;
  result.algorithm = "CFR";
  telemetry::Span span = telemetry::tracer().begin("search:CFR");
  if (span) {
    span.attr("iterations", static_cast<std::uint64_t>(options.iterations))
        .attr("top_x", static_cast<std::uint64_t>(options.top_x))
        .attr("patience", static_cast<std::uint64_t>(options.patience))
        .attr("seed", options.seed);
  }

  // Step 2 of Algorithm 1: prune the pre-sampled space per module.
  const std::vector<std::vector<std::size_t>> pruned =
      prune_top_x(collection, options.top_x);
  const std::size_t module_count = outline.module_count();

  // Step 3: re-sample per-module CVs within the pruned spaces.
  support::Rng rng(options.seed);
  std::vector<std::vector<std::size_t>> picks(
      options.iterations, std::vector<std::size_t>(module_count));
  for (auto& row : picks) {
    for (std::size_t m = 0; m < module_count; ++m) {
      const auto& candidates = pruned[m];
      row[m] = candidates[rng.next_below(candidates.size())];
    }
  }

  auto make = [&](std::size_t k) {
    std::vector<flags::CompilationVector> hot_cvs;
    hot_cvs.reserve(outline.hot.size());
    for (std::size_t i = 0; i < outline.hot.size(); ++i) {
      hot_cvs.push_back(collection.cvs[picks[k][i]]);
    }
    return outline.make_assignment(hot_cvs,
                                   collection.cvs[picks[k].back()]);
  };

  std::vector<double> seconds;
  if (options.patience == 0) {
    EvalTrace trace;
    trace.label = "cfr/batch";
    seconds = seconds_of(evaluator.evaluate_batch(
        batch_requests(options.iterations, rep_streams::kCfr, make), trace));
  } else {
    // Sequential with convergence-based early stop: identical results
    // for the evaluations it does run (same phase rep_base, so the
    // same content-addressed noise keys as the batch path).
    seconds.reserve(options.iterations);
    double best = std::numeric_limits<double>::infinity();
    std::size_t since_improvement = 0;
    for (std::size_t k = 0; k < options.iterations; ++k) {
      EvalRequest request;
      request.assignment = make(k);
      request.rep_base = rep_streams::kCfr;
      EvalTrace trace;
      trace.leaf_spans = true;  // sequential: per-eval spans are safe
      trace.label = "cfr/eval";
      const double s = evaluator.evaluate(request, trace).seconds();
      seconds.push_back(s);
      if (s < best) {
        best = s;
        since_improvement = 0;
      } else if (++since_improvement >= options.patience) {
        break;
      }
    }
  }
  finish_from_history(result, seconds);
  result.best_assignment =
      any_valid(seconds)
          ? make(support::argmin(seconds))
          : default_assignment(evaluator,
                               evaluator.engine().program().loops().size());
  measure_final(result, evaluator, baseline_seconds);
  return result;
}

TuningResult retune_search(Evaluator& evaluator, const Outline& outline,
                           const Collection& collection,
                           const compiler::ModuleAssignment& seed_assignment,
                           const RetuneOptions& options,
                           double baseline_seconds) {
  TuningResult result;
  result.algorithm = "Retune";
  telemetry::Span span = telemetry::tracer().begin("search:Retune");
  if (span) {
    span.attr("iterations", static_cast<std::uint64_t>(options.iterations))
        .attr("top_x", static_cast<std::uint64_t>(options.top_x))
        .attr("seed", options.seed);
  }

  // Same pruning as CFR: the collection's top-X spaces stay a good
  // prior under drift (the modules did not change, the input did).
  const std::vector<std::vector<std::size_t>> pruned =
      prune_top_x(collection, options.top_x);
  const std::size_t module_count = outline.module_count();

  // Decompose the incumbent into the outlined view so mutations work
  // per module; make_assignment below re-expands cold loops from the
  // rest CV, exactly how the incumbent was originally assembled.
  std::vector<flags::CompilationVector> best_hot;
  best_hot.reserve(outline.hot.size());
  for (const std::size_t loop : outline.hot) {
    best_hot.push_back(seed_assignment.loop_cvs[loop]);
  }
  flags::CompilationVector best_rest = seed_assignment.nonloop_cv;

  support::Rng rng(options.seed);
  std::vector<double> seconds;
  seconds.reserve(options.iterations);
  double best_seconds = std::numeric_limits<double>::infinity();
  std::size_t since_improvement = 0;

  for (std::size_t k = 0; k < options.iterations; ++k) {
    std::vector<flags::CompilationVector> hot = best_hot;
    flags::CompilationVector rest = best_rest;
    if (k > 0) {
      // Redraw one or two modules from their pruned spaces - small
      // steps around the incumbent, not a from-scratch re-sample.
      const std::size_t mutations = 1 + rng.next_below(2);
      for (std::size_t m = 0; m < mutations; ++m) {
        const std::size_t module = rng.next_below(module_count);
        const auto& candidates = pruned[module];
        const flags::CompilationVector& cv =
            collection.cvs[candidates[rng.next_below(candidates.size())]];
        if (module + 1 == module_count) {
          rest = cv;
        } else {
          hot[module] = cv;
        }
      }
    }
    EvalRequest request;
    request.assignment = outline.make_assignment(hot, rest);
    request.rep_base = rep_streams::kRetune;
    EvalTrace trace;
    trace.leaf_spans = true;  // sequential: per-eval spans are safe
    trace.label = "retune/eval";
    const double s = evaluator.evaluate(request, trace).seconds();
    seconds.push_back(s);
    if (s < best_seconds) {
      best_seconds = s;
      best_hot = std::move(hot);
      best_rest = rest;
      since_improvement = 0;
    } else if (options.patience != 0 &&
               ++since_improvement >= options.patience) {
      break;
    }
  }

  finish_from_history(result, seconds);
  result.best_assignment =
      any_valid(seconds) ? outline.make_assignment(best_hot, best_rest)
                         : seed_assignment;
  measure_final(result, evaluator, baseline_seconds);
  return result;
}

}  // namespace ft::core
