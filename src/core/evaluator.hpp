// Evaluator: compile + link + run one candidate configuration, with a
// parallel batch path for the 1000-variant sweeps. Evaluation is the
// unit the paper counts when reporting tuning overhead, so the
// evaluator tracks both the count and the modeled wall-clock cost
// (compile time + run time) each evaluation would have taken on the
// paper's testbed.
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "compiler/compiler.hpp"
#include "ir/program.hpp"
#include "machine/execution_engine.hpp"

namespace ft::core {

/// Modeled real-world cost of tuning actions, for the §4.3
/// tuning-overhead comparison (seconds of testbed time).
struct OverheadModel {
  double seconds_per_module_compile = 8.0;  ///< ICC object compile (parallel make)
  double link_seconds = 40.0;                ///< xild whole-program link
};

class Evaluator {
 public:
  /// Borrows engine (and through it the compiler); must outlive this.
  Evaluator(machine::ExecutionEngine& engine, const ir::InputSpec& input);

  [[nodiscard]] const ir::InputSpec& input() const noexcept {
    return *input_;
  }
  [[nodiscard]] machine::ExecutionEngine& engine() noexcept {
    return *engine_;
  }

  /// End-to-end seconds of one run of the given assignment (1 rep,
  /// noise on). `rep_base` decorrelates repeated measurements.
  [[nodiscard]] double evaluate(const compiler::ModuleAssignment& assignment,
                                std::uint64_t rep_base = 0,
                                bool instrumented = false);

  /// Full run result (used by the collection phase).
  [[nodiscard]] machine::RunResult run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options);

  /// Evaluates `count` variants concurrently; result[i] is produced by
  /// `make(i)` evaluated at rep_base = i. Deterministic.
  [[nodiscard]] std::vector<double> evaluate_batch(
      std::size_t count,
      const std::function<compiler::ModuleAssignment(std::size_t)>& make,
      bool instrumented = false);

  /// Re-measures an assignment with fresh noise, averaged over `reps`
  /// (the paper's 10-experiment reporting protocol, §4.1).
  [[nodiscard]] double final_seconds(
      const compiler::ModuleAssignment& assignment, int reps = 10);

  /// Total single-run evaluations so far.
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Modeled testbed seconds spent compiling + running so far (§4.3).
  [[nodiscard]] double modeled_overhead_seconds() const noexcept {
    return modeled_overhead_.load(std::memory_order_relaxed);
  }

  void set_overhead_model(const OverheadModel& model) noexcept {
    overhead_model_ = model;
  }

 private:
  void account(std::size_t modules_compiled, double run_seconds,
               int reps);

  machine::ExecutionEngine* engine_;
  const ir::InputSpec* input_;
  OverheadModel overhead_model_;
  std::atomic<std::size_t> evaluations_{0};
  std::atomic<double> modeled_overhead_{0.0};
};

}  // namespace ft::core
