// Evaluator: compile + link + run one candidate configuration, with a
// parallel batch path for the 1000-variant sweeps. Evaluation is the
// unit the paper counts when reporting tuning overhead, so the
// evaluator tracks both the count and the modeled wall-clock cost
// (compile time + run time) each evaluation would have taken on the
// paper's testbed.
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "compiler/compiler.hpp"
#include "ir/program.hpp"
#include "machine/execution_engine.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::core {

/// Disjoint noise-stream offsets, one per measurement phase. Every
/// phase keys its i-th measurement at `offset + i`, so two phases that
/// evaluate the same number of variants still draw independent noise
/// (previously Random, FR, CFR and the collection sweep all reused
/// keys 0..N-1 and their noise was correlated index-for-index). The
/// 1<<16 spacing holds as long as a phase evaluates fewer than 65536
/// variants; the paper's protocol uses 1000.
namespace rep_streams {
inline constexpr std::uint64_t kCollection = 0;             ///< §2.2.2 sweep
inline constexpr std::uint64_t kRandom = 1ull << 16;        ///< Random search
inline constexpr std::uint64_t kFunctionRandom = 2ull << 16;///< FR search
inline constexpr std::uint64_t kCfr = 3ull << 16;           ///< CFR (Alg. 1)
inline constexpr std::uint64_t kEvolution = 4ull << 16;     ///< EvoCFR
inline constexpr std::uint64_t kCobayn = 5ull << 16;        ///< Cobayn inference
inline constexpr std::uint64_t kCobaynTraining = 6ull << 16;///< Cobayn training
inline constexpr std::uint64_t kFinal = 1ull << 20;         ///< final_seconds
inline constexpr std::uint64_t kCrossInput = 1ull << 21;    ///< other inputs
}  // namespace rep_streams

/// Modeled real-world cost of tuning actions, for the §4.3
/// tuning-overhead comparison (seconds of testbed time).
struct OverheadModel {
  double seconds_per_module_compile = 8.0;  ///< ICC object compile (parallel make)
  double link_seconds = 40.0;                ///< xild whole-program link
};

/// Everything an evaluation needs besides the assignment itself: the
/// phase's noise stream, the instrumentation switch and the telemetry
/// attachment point. Replaces the old positional
/// `evaluate(assignment, rep_base, instrumented)` parameters - call
/// sites read as `evaluate(a, {.rep_base = rep_streams::kCfr + k})`.
struct EvalContext {
  /// Offset into the noise stream; pass the owning phase's
  /// `rep_streams` constant (plus the per-variant index for
  /// sequential loops).
  std::uint64_t rep_base = 0;
  bool instrumented = false;  ///< Caliper annotations compiled in?
  /// Span to parent telemetry under; 0 = the calling thread's
  /// innermost open span.
  telemetry::SpanId parent_span = 0;
  /// Emit per-evaluation eval→compile/run leaf spans. Only enable for
  /// sequential callers: spans begun from batch workers would get
  /// scheduling-dependent ids and break trace diffability.
  bool leaf_spans = false;
  /// Span label for this evaluation/batch (defaults to "eval" /
  /// "evaluate_batch").
  std::string label;
};

class Evaluator {
 public:
  /// Borrows engine (and through it the compiler); must outlive this.
  Evaluator(machine::ExecutionEngine& engine, const ir::InputSpec& input);

  [[nodiscard]] const ir::InputSpec& input() const noexcept {
    return *input_;
  }
  [[nodiscard]] machine::ExecutionEngine& engine() noexcept {
    return *engine_;
  }

  /// End-to-end seconds of one run of the given assignment (1 rep,
  /// noise on). `context.rep_base` decorrelates repeated measurements.
  [[nodiscard]] double evaluate(const compiler::ModuleAssignment& assignment,
                                const EvalContext& context = {});

  /// Full run result (used by the collection phase).
  [[nodiscard]] machine::RunResult run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options);

  /// Evaluates `count` variants concurrently; result[i] is produced by
  /// `make(i)` evaluated at noise key `context.rep_base + i`.
  /// Deterministic for a fixed rep_base. Callers pass their phase's
  /// rep_streams offset so concurrent or successive phases draw
  /// disjoint noise. Emits one batch-level span (from the calling
  /// thread, so traces stay deterministic under any pool schedule).
  [[nodiscard]] std::vector<double> evaluate_batch(
      std::size_t count,
      const std::function<compiler::ModuleAssignment(std::size_t)>& make,
      const EvalContext& context = {});

  /// Re-measures an assignment with fresh noise, averaged over `reps`
  /// (the paper's 10-experiment reporting protocol, §4.1).
  [[nodiscard]] double final_seconds(
      const compiler::ModuleAssignment& assignment, int reps = 10);

  /// Total single-run evaluations so far.
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Modeled testbed seconds spent compiling + running so far (§4.3).
  [[nodiscard]] double modeled_overhead_seconds() const noexcept {
    return modeled_overhead_.load(std::memory_order_relaxed);
  }

  void set_overhead_model(const OverheadModel& model) noexcept {
    overhead_model_ = model;
  }

 private:
  void account(std::size_t modules_compiled, double run_seconds,
               int reps);

  machine::ExecutionEngine* engine_;
  const ir::InputSpec* input_;
  OverheadModel overhead_model_;
  std::atomic<std::size_t> evaluations_{0};
  std::atomic<double> modeled_overhead_{0.0};
};

}  // namespace ft::core
