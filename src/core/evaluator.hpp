// Evaluator: compile + link + run one candidate configuration, with a
// parallel batch path for the 1000-variant sweeps. Evaluation is the
// unit the paper counts when reporting tuning overhead, so the
// evaluator tracks both the count and the modeled wall-clock cost
// (compile time + run time) each evaluation would have taken on the
// paper's testbed.
//
// The request/response pair below is the *only* evaluation currency:
// every search, baseline and bench tool submits EvalRequest and gets
// EvalResponse back, and the same two structs are the wire payload of
// the `ftuned` service (src/service/protocol.hpp serializes them
// field-for-field). Raw measurement is abstracted behind EvalBackend,
// so a remote daemon can execute the compile+link+run while all
// resilience bookkeeping (retries, quarantine, journal, cache) stays
// on the client - the key to remote runs being bit-identical to local
// ones.
#pragma once

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compiler/compiler.hpp"
#include "ir/program.hpp"
#include "machine/execution_engine.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::core {

class EvalCache;
class EvalJournal;

/// Disjoint noise-stream offsets, one per measurement phase. Every
/// phase keys its measurements at its own offset, so two phases that
/// evaluate the same assignment still draw independent noise
/// (previously Random, FR, CFR and the collection sweep all reused
/// keys 0..N-1 and their noise was correlated index-for-index).
///
/// Within a phase, noise is content-addressed: the executable
/// fingerprint is already mixed into every noise key, so distinct
/// variants measured under one shared phase offset draw independent
/// noise, while *identical* assignments measure identically - which is
/// exactly what makes EvalCache hits bit-identical to re-running.
namespace rep_streams {
inline constexpr std::uint64_t kCollection = 0;             ///< §2.2.2 sweep
inline constexpr std::uint64_t kRandom = 1ull << 16;        ///< Random search
inline constexpr std::uint64_t kFunctionRandom = 2ull << 16;///< FR search
inline constexpr std::uint64_t kCfr = 3ull << 16;           ///< CFR (Alg. 1)
inline constexpr std::uint64_t kEvolution = 4ull << 16;     ///< EvoCFR
inline constexpr std::uint64_t kCobayn = 5ull << 16;        ///< Cobayn inference
inline constexpr std::uint64_t kCobaynTraining = 6ull << 16;///< Cobayn training
inline constexpr std::uint64_t kOpenTuner = 7ull << 16;     ///< OpenTuner baseline
inline constexpr std::uint64_t kCombinedElimination = 8ull << 16;  ///< CE
inline constexpr std::uint64_t kFlagElimination = 9ull << 16;      ///< FE
inline constexpr std::uint64_t kRetune = 10ull << 16;       ///< online re-tune
inline constexpr std::uint64_t kDriftMonitor = 11ull << 16; ///< drift probes
inline constexpr std::uint64_t kBo = 12ull << 16;           ///< Bayesian opt
inline constexpr std::uint64_t kGroup = 13ull << 16;        ///< group-aware
inline constexpr std::uint64_t kFinal = 1ull << 20;         ///< final_seconds
inline constexpr std::uint64_t kCrossInput = 1ull << 21;    ///< other inputs
}  // namespace rep_streams

/// Modeled real-world cost of tuning actions, for the §4.3
/// tuning-overhead comparison (seconds of testbed time).
struct OverheadModel {
  double seconds_per_module_compile = 8.0;  ///< ICC object compile (parallel make)
  double link_seconds = 40.0;                ///< xild whole-program link
};

/// Classified evaluation failure. Compile ICEs are permanent (a
/// property of the CV's flag interactions); crashes and timeouts are
/// transient and retryable; quarantined evaluations were skipped
/// because their CV/assignment failed repeatedly before.
enum class EvalFault {
  kNone,
  kCompileFailure,
  kRunCrash,
  kRunTimeout,
  kQuarantined,
};

[[nodiscard]] std::string_view to_string(EvalFault fault) noexcept;
/// Inverse of to_string; kNone for unknown text.
[[nodiscard]] EvalFault eval_fault_from_string(std::string_view name) noexcept;

struct EvalError {
  EvalFault kind = EvalFault::kNone;
  std::string detail;  ///< e.g. hex hash of the ICE-ing CV
};

/// Result<RunResult, EvalError>: a measurement or a classified failure.
struct EvalOutcome {
  machine::RunResult result;  ///< valid only when ok()
  EvalError error;
  int attempts = 1;  ///< run attempts made (retries included)

  [[nodiscard]] bool ok() const noexcept {
    return error.kind == EvalFault::kNone;
  }
  [[nodiscard]] double seconds_or(double fallback) const noexcept {
    return ok() ? result.end_to_end : fallback;
  }
};

/// Score of a failed evaluation: +inf sorts after every real runtime,
/// so searches skip invalid candidates without special-casing.
inline constexpr double kInvalidSeconds =
    std::numeric_limits<double>::infinity();

/// Bounded-retry policy for transient evaluation faults, with
/// deterministic wall-clock accounting (each retry charges
/// backoff_seconds * 2^attempt of modeled testbed time).
struct RetryPolicy {
  int max_retries = 2;        ///< extra attempts after the first
  double backoff_seconds = 1.0;
  /// Modeled per-evaluation runtime budget in seconds; a run exceeding
  /// it fails as kRunTimeout. 0 = unlimited. Injected timeouts burn
  /// the full budget (or one link time when unlimited).
  double eval_timeout_seconds = 0.0;
  /// Failed evaluations of the same assignment before it is
  /// quarantined (skipped without compiling); <= 0 disables.
  int quarantine_after = 2;
};

/// Cumulative fault/retry/quarantine counters (also mirrored into the
/// telemetry metrics registry under fault.* / eval.* / journal.*).
struct ResilienceStats {
  std::size_t compile_failures = 0;
  std::size_t run_crashes = 0;
  std::size_t run_timeouts = 0;
  std::size_t retries = 0;
  std::size_t failed_evaluations = 0;
  std::size_t quarantine_hits = 0;     ///< evaluations skipped
  std::size_t quarantined = 0;         ///< entries on the list
  std::size_t journal_replayed = 0;
  std::size_t journal_appended = 0;
  std::size_t cache_hits = 0;    ///< evaluations served by the EvalCache
  std::size_t cache_misses = 0;  ///< cache consults that fell through
  /// Modeled testbed seconds cache hits avoided re-charging.
  double cache_saved_seconds = 0.0;
};

/// One evaluation, fully specified. This struct *is* the service wire
/// payload: everything that determines the measured value is in here
/// (plus the session-level options fingerprint), nothing that is
/// presentation (spans, labels) ever is.
struct EvalRequest {
  compiler::ModuleAssignment assignment;
  /// Offset into the noise stream; pass the owning phase's
  /// `rep_streams` constant (plus the per-variant index for
  /// sequential loops).
  std::uint64_t rep_base = 0;
  int repetitions = 1;
  bool instrumented = false;  ///< Caliper annotations compiled in?
  bool noise = true;          ///< apply the measurement-noise model
  machine::Aggregation aggregate = machine::Aggregation::kMean;

  [[nodiscard]] machine::RunOptions run_options() const noexcept {
    machine::RunOptions options;
    options.repetitions = repetitions;
    options.instrumented = instrumented;
    options.noise = noise;
    options.rep_base = rep_base;
    options.aggregate = aggregate;
    return options;
  }
};

/// How an EvalResponse was produced (diagnostic only; not scored).
enum class EvalServedBy {
  kRun,            ///< measured now (or failed trying)
  kCacheHit,       ///< replayed from the EvalCache
  kJournalReplay,  ///< replayed from the checkpoint journal
};

/// The answer to one EvalRequest; also the service wire payload.
struct EvalResponse {
  EvalOutcome outcome;
  EvalServedBy served_by = EvalServedBy::kRun;
  /// Modules that actually hit the compiler (0 on replays).
  std::size_t modules_compiled = 0;

  [[nodiscard]] bool ok() const noexcept { return outcome.ok(); }
  [[nodiscard]] double seconds() const noexcept {
    return outcome.seconds_or(kInvalidSeconds);
  }
};

/// Presentation-only evaluation context: telemetry attachment and
/// labeling. Deliberately separate from EvalRequest so the wire
/// payload never carries trace state.
struct EvalTrace {
  /// Span to parent telemetry under; 0 = the calling thread's
  /// innermost open span.
  telemetry::SpanId parent_span = 0;
  /// Emit per-evaluation eval→compile/run leaf spans. Only enable for
  /// sequential callers: spans begun from batch workers would get
  /// scheduling-dependent ids and break trace diffability.
  bool leaf_spans = false;
  /// Span label for this evaluation/batch (defaults to "eval" /
  /// "evaluate_batch").
  std::string label;
};

/// Raw measurement executor: compile + link + run, nothing else. The
/// default (no backend attached) executes inline on this process's
/// engine; the service client substitutes a socket round-trip to
/// `ftuned`. Implementations carry NO tuning state - retries, fault
/// decisions, quarantine, journal and cache bookkeeping all stay in
/// the Evaluator, which is what makes remote results bit-identical to
/// local ones.
class EvalBackend {
 public:
  struct RawResult {
    machine::RunResult result;
    std::size_t modules_compiled = 0;
  };

  virtual ~EvalBackend() = default;

  /// One raw measurement. Must be thread-safe (local batches call it
  /// from pool workers).
  [[nodiscard]] virtual RawResult run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options) = 0;

  /// Batched raw measurements; result[i] answers requests[i]. The
  /// default loops over run(); the remote backend coalesces the whole
  /// span into a single wire frame.
  [[nodiscard]] virtual std::vector<RawResult> run_many(
      std::span<const EvalRequest> requests);

  /// True when run_many() is cheaper than per-item run() calls (the
  /// remote backend: one frame vs. N round-trips). evaluate_batch
  /// coalesces all pending raw runs into one run_many when set.
  [[nodiscard]] virtual bool batches_remotely() const noexcept {
    return false;
  }
};

/// Everything an evaluation needs besides the assignment itself: the
/// phase's noise stream, the instrumentation switch and the telemetry
/// attachment point. Superseded by EvalRequest + EvalTrace; kept so
/// pre-redesign call sites (`evaluate(a, {.rep_base = ...})`) keep
/// compiling via the shim overloads below.
struct EvalContext {
  std::uint64_t rep_base = 0;
  bool instrumented = false;
  telemetry::SpanId parent_span = 0;
  bool leaf_spans = false;
  std::string label;

  [[nodiscard]] EvalTrace trace() const {
    return EvalTrace{parent_span, leaf_spans, label};
  }
};

class Evaluator {
 public:
  /// Borrows engine (and through it the compiler); must outlive this.
  Evaluator(machine::ExecutionEngine& engine, const ir::InputSpec& input);

  [[nodiscard]] const ir::InputSpec& input() const noexcept {
    return *input_;
  }
  [[nodiscard]] machine::ExecutionEngine& engine() noexcept {
    return *engine_;
  }

  // --- the unified request/response API ------------------------------------

  /// Evaluates one request: quarantine check, cache/journal replay,
  /// fault injection and retries, then (at most) one raw backend run.
  /// Never throws on evaluation failure - the fault is classified in
  /// the response.
  [[nodiscard]] EvalResponse evaluate(const EvalRequest& request,
                                      const EvalTrace& trace = {});

  /// Evaluates a batch concurrently; result[i] answers requests[i].
  /// Deterministic for fixed requests: quarantine promotion happens
  /// only at the batch boundary, and noise keys are content-addressed,
  /// so results are independent of worker scheduling. With a remote
  /// backend, all raw runs the batch needs coalesce into a single
  /// run_many() wire call. Emits one batch-level span (from the
  /// calling thread, so traces stay deterministic under any pool
  /// schedule).
  [[nodiscard]] std::vector<EvalResponse> evaluate_batch(
      const std::vector<EvalRequest>& requests, const EvalTrace& trace = {});

  /// Substitutes the raw measurement executor (e.g. the service
  /// client). Pass nullptr to return to inline local execution.
  void set_backend(std::shared_ptr<EvalBackend> backend);
  [[nodiscard]] const std::shared_ptr<EvalBackend>& backend() const noexcept {
    return backend_;
  }

  /// Raw compile+link+run via the current backend, with NO accounting,
  /// resilience or caching - the primitive `ftuned` calls server-side.
  [[nodiscard]] EvalBackend::RawResult raw_run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options);

  // --- pre-redesign shims ---------------------------------------------------

  /// End-to-end seconds of one run (1 rep, noise on); kInvalidSeconds
  /// on failure. Shim over evaluate(EvalRequest).
  [[nodiscard]] double evaluate(const compiler::ModuleAssignment& assignment,
                                const EvalContext& context = {});

  /// evaluate() with the failure classified instead of collapsed to
  /// +inf. Shim over evaluate(EvalRequest).
  [[nodiscard]] EvalOutcome try_evaluate(
      const compiler::ModuleAssignment& assignment,
      const EvalContext& context = {});

  /// Full run result (used by legacy callers). Bypasses fault
  /// injection, retries and the journal - prefer evaluate().
  [[nodiscard]] machine::RunResult run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options);

  /// Resilient run with positional options. Shim over
  /// evaluate(EvalRequest).
  [[nodiscard]] EvalOutcome try_run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options);

  /// Generator-style batch shim: result[i] = seconds of `make(i)`
  /// at noise key `context.rep_base`.
  [[nodiscard]] std::vector<double> evaluate_batch(
      std::size_t count,
      const std::function<compiler::ModuleAssignment(std::size_t)>& make,
      const EvalContext& context = {});

  /// Re-measures an assignment with fresh noise, averaged over `reps`
  /// (the paper's 10-experiment reporting protocol, §4.1).
  [[nodiscard]] double final_seconds(
      const compiler::ModuleAssignment& assignment, int reps = 10);

  /// Total single-run evaluations so far (cache hits included: a hit
  /// satisfies the same logical evaluation a re-run would have).
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Modeled testbed seconds actually charged so far (§4.3). With an
  /// EvalCache attached this is the *charged* side of the split; hits
  /// accumulate the avoided cost in saved_overhead_seconds() instead,
  /// and charged + saved equals the cache-off total exactly (the
  /// deterministic fault/noise streams make every avoided re-run's
  /// cost computable at insert time).
  [[nodiscard]] double modeled_overhead_seconds() const noexcept {
    return modeled_overhead_.load(std::memory_order_relaxed);
  }
  /// Modeled testbed seconds EvalCache hits avoided re-charging.
  [[nodiscard]] double saved_overhead_seconds() const noexcept {
    return saved_overhead_.load(std::memory_order_relaxed);
  }

  void set_overhead_model(const OverheadModel& model) noexcept {
    overhead_model_ = model;
  }

  // --- resilience ---------------------------------------------------------

  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retry_policy_ = policy;
  }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_policy_;
  }

  /// Attaches a checkpoint journal: completed evaluations are appended
  /// to it, and evaluations it already holds are replayed instead of
  /// re-run.
  void set_journal(std::shared_ptr<EvalJournal> journal);
  [[nodiscard]] const std::shared_ptr<EvalJournal>& journal() const noexcept {
    return journal_;
  }

  /// Attaches a (possibly shared) content-addressed evaluation cache:
  /// completed evaluations are memoized and replayed bit-identically
  /// before any modeled compile/link/run is charged. `salt` must
  /// fingerprint every option that changes measured values (noise,
  /// faults, seed...) so tuners with different configs sharing one
  /// cache can never alias - pass options_fingerprint(options).
  void set_eval_cache(std::shared_ptr<EvalCache> cache,
                      std::uint64_t salt = 0);
  [[nodiscard]] const std::shared_ptr<EvalCache>& eval_cache()
      const noexcept {
    return cache_;
  }
  /// The salt set_eval_cache() was given (0 when no cache attached).
  /// SearchContext::corpus() needs it to probe the persistent disk
  /// tier with the exact keys this evaluator's insertions used.
  [[nodiscard]] std::uint64_t cache_salt() const noexcept {
    return cache_salt_;
  }

  /// Seeds the attached cache with every record the attached journal
  /// holds, so a --resume run replays journaled evaluations from
  /// memory without consulting the journal per lookup. No-op unless
  /// both are attached.
  void warm_cache_from_journal();

  /// Stable fingerprint of (program, input, architecture, assignment):
  /// the identity journal records and quarantine entries are keyed by.
  [[nodiscard]] std::uint64_t assignment_key(
      const compiler::ModuleAssignment& assignment) const;

  [[nodiscard]] bool is_quarantined(
      const compiler::ModuleAssignment& assignment) const;

  /// Marks a caller-managed parallel evaluation region (evaluate_batch
  /// brackets its own): quarantine promotion is deferred to the region
  /// boundaries so whether an evaluation is quarantine-skipped never
  /// depends on worker scheduling.
  void begin_parallel_region();
  void end_parallel_region();

  [[nodiscard]] ResilienceStats resilience_stats() const;

 private:
  /// State carried from the pre-run phase of one evaluation to its
  /// post-run phase. When `needs_run` is false the response was fully
  /// served (replay, quarantine skip, injected failure) and no raw
  /// backend run happens; otherwise exactly one raw_run() settles it.
  struct PendingRun {
    machine::RunOptions options;
    std::uint64_t key = 0;
    bool fast = false;       ///< non-resilient fast path
    bool needs_run = false;
    int prior_attempts = 0;  ///< injected faults burned before the run
    double rerun_cost = 0.0;
    EvalOutcome outcome;     ///< valid when !needs_run (and not fast)
  };

  /// Everything before the (at most one) raw run: fast-path check,
  /// quarantine promotion at depth 0, cache and journal replay, fault
  /// plan. Returns true when `out` is complete and no run is needed.
  [[nodiscard]] bool pre_evaluate(const EvalRequest& request,
                                  EvalResponse* out, PendingRun* pending);
  /// Settles a pending evaluation with its raw measurement: overhead
  /// accounting, budget check, journal record, cache insert.
  void post_evaluate(PendingRun* pending, const EvalBackend::RawResult& raw,
                     EvalResponse* out);
  /// pre_evaluate → raw_run → post_evaluate for one request.
  [[nodiscard]] EvalResponse evaluate_one(const EvalRequest& request);

  void account(std::size_t modules_compiled, double run_seconds,
               int reps);
  /// Adds raw modeled seconds (fault cleanup, retry backoff) to the
  /// overhead total without counting an evaluation.
  void account_overhead(double seconds);
  /// Adds modeled seconds a cache hit avoided re-charging.
  void account_saved(double seconds);

  /// Fault/quarantine state machine up to (but excluding) the single
  /// real run: quarantine skip, compile-ICE injection, injected
  /// crash/timeout attempts with deterministic backoff accounting.
  void plan_attempts(const compiler::ModuleAssignment& assignment,
                     PendingRun* pending);

  /// Registers one fully-failed evaluation of `key`; queues the key
  /// for quarantine once it reaches retry_policy_.quarantine_after.
  void note_failure(std::uint64_t key);
  /// Applies queued quarantines. Called only at deterministic points
  /// (outside batches / between batches) so that whether an evaluation
  /// is quarantine-skipped never depends on worker scheduling.
  void promote_quarantines();

  machine::ExecutionEngine* engine_;
  const ir::InputSpec* input_;
  OverheadModel overhead_model_;
  std::shared_ptr<EvalBackend> backend_;
  std::atomic<std::size_t> evaluations_{0};
  std::atomic<double> modeled_overhead_{0.0};

  RetryPolicy retry_policy_;
  std::shared_ptr<EvalJournal> journal_;
  std::shared_ptr<EvalCache> cache_;
  std::uint64_t cache_salt_ = 0;
  std::atomic<double> saved_overhead_{0.0};
  std::atomic<std::size_t> cache_hits_{0};
  std::atomic<std::size_t> cache_misses_{0};
  std::uint64_t context_hash_ = 0;  ///< program/input/arch mix
  std::atomic<int> batch_depth_{0};
  std::atomic<bool> has_quarantine_{false};

  mutable std::mutex resilience_mutex_;
  std::unordered_map<std::uint64_t, int> failure_counts_;
  std::vector<std::uint64_t> pending_quarantine_;
  std::unordered_set<std::uint64_t> quarantined_keys_;
  /// CVs whose flag interactions ICE the compiler (hash of the CV):
  /// any assignment touching one is skipped. Applied eagerly - the
  /// skip is score-identical to re-hitting the deterministic ICE.
  std::unordered_set<std::uint64_t> quarantined_cvs_;

  std::atomic<std::size_t> compile_failures_{0};
  std::atomic<std::size_t> run_crashes_{0};
  std::atomic<std::size_t> run_timeouts_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> failed_evaluations_{0};
  std::atomic<std::size_t> quarantine_hits_{0};
};

}  // namespace ft::core
