// Evaluator: compile + link + run one candidate configuration, with a
// parallel batch path for the 1000-variant sweeps. Evaluation is the
// unit the paper counts when reporting tuning overhead, so the
// evaluator tracks both the count and the modeled wall-clock cost
// (compile time + run time) each evaluation would have taken on the
// paper's testbed.
#pragma once

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compiler/compiler.hpp"
#include "ir/program.hpp"
#include "machine/execution_engine.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::core {

class EvalCache;
class EvalJournal;

/// Disjoint noise-stream offsets, one per measurement phase. Every
/// phase keys its measurements at its own offset, so two phases that
/// evaluate the same assignment still draw independent noise
/// (previously Random, FR, CFR and the collection sweep all reused
/// keys 0..N-1 and their noise was correlated index-for-index).
///
/// Within a phase, noise is content-addressed: the executable
/// fingerprint is already mixed into every noise key, so distinct
/// variants measured under one shared phase offset draw independent
/// noise, while *identical* assignments measure identically - which is
/// exactly what makes EvalCache hits bit-identical to re-running.
namespace rep_streams {
inline constexpr std::uint64_t kCollection = 0;             ///< §2.2.2 sweep
inline constexpr std::uint64_t kRandom = 1ull << 16;        ///< Random search
inline constexpr std::uint64_t kFunctionRandom = 2ull << 16;///< FR search
inline constexpr std::uint64_t kCfr = 3ull << 16;           ///< CFR (Alg. 1)
inline constexpr std::uint64_t kEvolution = 4ull << 16;     ///< EvoCFR
inline constexpr std::uint64_t kCobayn = 5ull << 16;        ///< Cobayn inference
inline constexpr std::uint64_t kCobaynTraining = 6ull << 16;///< Cobayn training
inline constexpr std::uint64_t kOpenTuner = 7ull << 16;     ///< OpenTuner baseline
inline constexpr std::uint64_t kCombinedElimination = 8ull << 16;  ///< CE
inline constexpr std::uint64_t kFlagElimination = 9ull << 16;      ///< FE
inline constexpr std::uint64_t kFinal = 1ull << 20;         ///< final_seconds
inline constexpr std::uint64_t kCrossInput = 1ull << 21;    ///< other inputs
}  // namespace rep_streams

/// Modeled real-world cost of tuning actions, for the §4.3
/// tuning-overhead comparison (seconds of testbed time).
struct OverheadModel {
  double seconds_per_module_compile = 8.0;  ///< ICC object compile (parallel make)
  double link_seconds = 40.0;                ///< xild whole-program link
};

/// Classified evaluation failure. Compile ICEs are permanent (a
/// property of the CV's flag interactions); crashes and timeouts are
/// transient and retryable; quarantined evaluations were skipped
/// because their CV/assignment failed repeatedly before.
enum class EvalFault {
  kNone,
  kCompileFailure,
  kRunCrash,
  kRunTimeout,
  kQuarantined,
};

[[nodiscard]] std::string_view to_string(EvalFault fault) noexcept;
/// Inverse of to_string; kNone for unknown text.
[[nodiscard]] EvalFault eval_fault_from_string(std::string_view name) noexcept;

struct EvalError {
  EvalFault kind = EvalFault::kNone;
  std::string detail;  ///< e.g. hex hash of the ICE-ing CV
};

/// Result<RunResult, EvalError>: a measurement or a classified failure.
struct EvalOutcome {
  machine::RunResult result;  ///< valid only when ok()
  EvalError error;
  int attempts = 1;  ///< run attempts made (retries included)

  [[nodiscard]] bool ok() const noexcept {
    return error.kind == EvalFault::kNone;
  }
  [[nodiscard]] double seconds_or(double fallback) const noexcept {
    return ok() ? result.end_to_end : fallback;
  }
};

/// Score of a failed evaluation: +inf sorts after every real runtime,
/// so searches skip invalid candidates without special-casing.
inline constexpr double kInvalidSeconds =
    std::numeric_limits<double>::infinity();

/// Bounded-retry policy for transient evaluation faults, with
/// deterministic wall-clock accounting (each retry charges
/// backoff_seconds * 2^attempt of modeled testbed time).
struct RetryPolicy {
  int max_retries = 2;        ///< extra attempts after the first
  double backoff_seconds = 1.0;
  /// Modeled per-evaluation runtime budget in seconds; a run exceeding
  /// it fails as kRunTimeout. 0 = unlimited. Injected timeouts burn
  /// the full budget (or one link time when unlimited).
  double eval_timeout_seconds = 0.0;
  /// Failed evaluations of the same assignment before it is
  /// quarantined (skipped without compiling); <= 0 disables.
  int quarantine_after = 2;
};

/// Cumulative fault/retry/quarantine counters (also mirrored into the
/// telemetry metrics registry under fault.* / eval.* / journal.*).
struct ResilienceStats {
  std::size_t compile_failures = 0;
  std::size_t run_crashes = 0;
  std::size_t run_timeouts = 0;
  std::size_t retries = 0;
  std::size_t failed_evaluations = 0;
  std::size_t quarantine_hits = 0;     ///< evaluations skipped
  std::size_t quarantined = 0;         ///< entries on the list
  std::size_t journal_replayed = 0;
  std::size_t journal_appended = 0;
  std::size_t cache_hits = 0;    ///< evaluations served by the EvalCache
  std::size_t cache_misses = 0;  ///< cache consults that fell through
  /// Modeled testbed seconds cache hits avoided re-charging.
  double cache_saved_seconds = 0.0;
};

/// Everything an evaluation needs besides the assignment itself: the
/// phase's noise stream, the instrumentation switch and the telemetry
/// attachment point. Replaces the old positional
/// `evaluate(assignment, rep_base, instrumented)` parameters - call
/// sites read as `evaluate(a, {.rep_base = rep_streams::kCfr + k})`.
struct EvalContext {
  /// Offset into the noise stream; pass the owning phase's
  /// `rep_streams` constant (plus the per-variant index for
  /// sequential loops).
  std::uint64_t rep_base = 0;
  bool instrumented = false;  ///< Caliper annotations compiled in?
  /// Span to parent telemetry under; 0 = the calling thread's
  /// innermost open span.
  telemetry::SpanId parent_span = 0;
  /// Emit per-evaluation eval→compile/run leaf spans. Only enable for
  /// sequential callers: spans begun from batch workers would get
  /// scheduling-dependent ids and break trace diffability.
  bool leaf_spans = false;
  /// Span label for this evaluation/batch (defaults to "eval" /
  /// "evaluate_batch").
  std::string label;
};

class Evaluator {
 public:
  /// Borrows engine (and through it the compiler); must outlive this.
  Evaluator(machine::ExecutionEngine& engine, const ir::InputSpec& input);

  [[nodiscard]] const ir::InputSpec& input() const noexcept {
    return *input_;
  }
  [[nodiscard]] machine::ExecutionEngine& engine() noexcept {
    return *engine_;
  }

  /// End-to-end seconds of one run of the given assignment (1 rep,
  /// noise on). `context.rep_base` decorrelates repeated measurements.
  /// Returns kInvalidSeconds when the evaluation fails under the
  /// resilient path (fault injection / timeout budget / quarantine).
  [[nodiscard]] double evaluate(const compiler::ModuleAssignment& assignment,
                                const EvalContext& context = {});

  /// evaluate() with the failure classified instead of collapsed to
  /// +inf.
  [[nodiscard]] EvalOutcome try_evaluate(
      const compiler::ModuleAssignment& assignment,
      const EvalContext& context = {});

  /// Full run result (used by the collection phase). Bypasses fault
  /// injection, retries and the journal - prefer try_run.
  [[nodiscard]] machine::RunResult run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options);

  /// Resilient run: quarantine check, fault injection (from the
  /// engine's FaultModel), bounded retries with deterministic backoff
  /// accounting, per-evaluation timeout budget, and journal
  /// record/replay. Identical to run() when no fault model, journal or
  /// timeout budget is configured.
  [[nodiscard]] EvalOutcome try_run(
      const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options);

  /// Evaluates `count` variants concurrently; result[i] is produced by
  /// `make(i)` evaluated at noise key `context.rep_base` (shared by the
  /// whole batch - per-variant decorrelation comes from the executable
  /// fingerprint mixed into every noise key, so identical assignments
  /// measure identically and are cacheable). Deterministic for a fixed
  /// rep_base. Callers pass their phase's rep_streams offset so
  /// concurrent or successive phases draw disjoint noise. Emits one
  /// batch-level span (from the calling thread, so traces stay
  /// deterministic under any pool schedule).
  [[nodiscard]] std::vector<double> evaluate_batch(
      std::size_t count,
      const std::function<compiler::ModuleAssignment(std::size_t)>& make,
      const EvalContext& context = {});

  /// Re-measures an assignment with fresh noise, averaged over `reps`
  /// (the paper's 10-experiment reporting protocol, §4.1).
  [[nodiscard]] double final_seconds(
      const compiler::ModuleAssignment& assignment, int reps = 10);

  /// Total single-run evaluations so far (cache hits included: a hit
  /// satisfies the same logical evaluation a re-run would have).
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Modeled testbed seconds actually charged so far (§4.3). With an
  /// EvalCache attached this is the *charged* side of the split; hits
  /// accumulate the avoided cost in saved_overhead_seconds() instead,
  /// and charged + saved equals the cache-off total exactly (the
  /// deterministic fault/noise streams make every avoided re-run's
  /// cost computable at insert time).
  [[nodiscard]] double modeled_overhead_seconds() const noexcept {
    return modeled_overhead_.load(std::memory_order_relaxed);
  }
  /// Modeled testbed seconds EvalCache hits avoided re-charging.
  [[nodiscard]] double saved_overhead_seconds() const noexcept {
    return saved_overhead_.load(std::memory_order_relaxed);
  }

  void set_overhead_model(const OverheadModel& model) noexcept {
    overhead_model_ = model;
  }

  // --- resilience ---------------------------------------------------------

  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retry_policy_ = policy;
  }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_policy_;
  }

  /// Attaches a checkpoint journal: completed evaluations are appended
  /// to it, and evaluations it already holds are replayed instead of
  /// re-run.
  void set_journal(std::shared_ptr<EvalJournal> journal);
  [[nodiscard]] const std::shared_ptr<EvalJournal>& journal() const noexcept {
    return journal_;
  }

  /// Attaches a (possibly shared) content-addressed evaluation cache:
  /// completed evaluations are memoized and replayed bit-identically
  /// before any modeled compile/link/run is charged. `salt` must
  /// fingerprint every option that changes measured values (noise,
  /// faults, seed...) so tuners with different configs sharing one
  /// cache can never alias - pass options_fingerprint(options).
  void set_eval_cache(std::shared_ptr<EvalCache> cache,
                      std::uint64_t salt = 0);
  [[nodiscard]] const std::shared_ptr<EvalCache>& eval_cache()
      const noexcept {
    return cache_;
  }

  /// Seeds the attached cache with every record the attached journal
  /// holds, so a --resume run replays journaled evaluations from
  /// memory without consulting the journal per lookup. No-op unless
  /// both are attached.
  void warm_cache_from_journal();

  /// Stable fingerprint of (program, input, architecture, assignment):
  /// the identity journal records and quarantine entries are keyed by.
  [[nodiscard]] std::uint64_t assignment_key(
      const compiler::ModuleAssignment& assignment) const;

  [[nodiscard]] bool is_quarantined(
      const compiler::ModuleAssignment& assignment) const;

  /// Marks a caller-managed parallel evaluation region (evaluate_batch
  /// brackets its own): quarantine promotion is deferred to the region
  /// boundaries so whether an evaluation is quarantine-skipped never
  /// depends on worker scheduling.
  void begin_parallel_region();
  void end_parallel_region();

  [[nodiscard]] ResilienceStats resilience_stats() const;

 private:
  void account(std::size_t modules_compiled, double run_seconds,
               int reps);
  /// Adds raw modeled seconds (fault cleanup, retry backoff) to the
  /// overhead total without counting an evaluation.
  void account_overhead(double seconds);
  /// Adds modeled seconds a cache hit avoided re-charging.
  void account_saved(double seconds);

  /// Fault/retry/timeout state machine behind try_run (journal, cache
  /// and fast path already handled by the caller). `rerun_cost`
  /// accumulates the modeled seconds an identical re-run would charge
  /// (object pool warm, fault stream deterministic) - the value a
  /// cache hit later reports as "saved".
  [[nodiscard]] EvalOutcome attempt_run(
      std::uint64_t key, const compiler::ModuleAssignment& assignment,
      const machine::RunOptions& options, double* rerun_cost);

  /// Registers one fully-failed evaluation of `key`; queues the key
  /// for quarantine once it reaches retry_policy_.quarantine_after.
  void note_failure(std::uint64_t key);
  /// Applies queued quarantines. Called only at deterministic points
  /// (outside batches / between batches) so that whether an evaluation
  /// is quarantine-skipped never depends on worker scheduling.
  void promote_quarantines();

  machine::ExecutionEngine* engine_;
  const ir::InputSpec* input_;
  OverheadModel overhead_model_;
  std::atomic<std::size_t> evaluations_{0};
  std::atomic<double> modeled_overhead_{0.0};

  RetryPolicy retry_policy_;
  std::shared_ptr<EvalJournal> journal_;
  std::shared_ptr<EvalCache> cache_;
  std::uint64_t cache_salt_ = 0;
  std::atomic<double> saved_overhead_{0.0};
  std::atomic<std::size_t> cache_hits_{0};
  std::atomic<std::size_t> cache_misses_{0};
  std::uint64_t context_hash_ = 0;  ///< program/input/arch mix
  std::atomic<int> batch_depth_{0};
  std::atomic<bool> has_quarantine_{false};

  mutable std::mutex resilience_mutex_;
  std::unordered_map<std::uint64_t, int> failure_counts_;
  std::vector<std::uint64_t> pending_quarantine_;
  std::unordered_set<std::uint64_t> quarantined_keys_;
  /// CVs whose flag interactions ICE the compiler (hash of the CV):
  /// any assignment touching one is skipped. Applied eagerly - the
  /// skip is score-identical to re-hitting the deterministic ICE.
  std::unordered_set<std::uint64_t> quarantined_cvs_;

  std::atomic<std::size_t> compile_failures_{0};
  std::atomic<std::size_t> run_crashes_{0};
  std::atomic<std::size_t> run_timeouts_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> failed_evaluations_{0};
  std::atomic<std::size_t> quarantine_hits_{0};
};

}  // namespace ft::core
