#include "core/flag_importance.hpp"

#include <algorithm>

namespace ft::core {

namespace {

ModuleImportance analyze_module(const flags::FlagSpace& space,
                                const std::string& module_name,
                                const std::vector<double>& times,
                                const Collection& collection) {
  ModuleImportance importance;
  importance.module_name = module_name;

  double overall_mean = 0.0;
  for (const double t : times) overall_mean += t;
  overall_mean /= static_cast<double>(times.size());
  if (overall_mean <= 0.0) return importance;

  for (std::size_t flag = 0; flag < space.flag_count(); ++flag) {
    const std::size_t option_count = space.specs()[flag].options.size();
    FlagEffect effect;
    effect.flag_index = flag;
    effect.flag_name = space.specs()[flag].name;
    effect.option_means.assign(option_count, 0.0);
    std::vector<std::size_t> counts(option_count, 0);
    for (std::size_t k = 0; k < times.size(); ++k) {
      const std::uint8_t option = collection.cvs[k][flag];
      if (option < option_count) {
        effect.option_means[option] += times[k];
        ++counts[option];
      }
    }
    double lo = 1e300, hi = -1e300;
    for (std::size_t option = 0; option < option_count; ++option) {
      if (counts[option] == 0) {
        effect.option_means[option] = 1.0;  // unobserved: assume neutral
      } else {
        effect.option_means[option] /=
            static_cast<double>(counts[option]) * overall_mean;
      }
      if (effect.option_means[option] < lo) {
        lo = effect.option_means[option];
        effect.best_option = option;
      }
      hi = std::max(hi, effect.option_means[option]);
    }
    effect.spread = hi - lo;
    importance.effects.push_back(std::move(effect));
  }

  std::sort(importance.effects.begin(), importance.effects.end(),
            [](const FlagEffect& a, const FlagEffect& b) {
              if (a.spread != b.spread) return a.spread > b.spread;
              return a.flag_index < b.flag_index;
            });
  return importance;
}

}  // namespace

std::vector<ModuleImportance> analyze_flag_importance(
    const flags::FlagSpace& space, const Outline& outline,
    const Collection& collection) {
  std::vector<ModuleImportance> result;
  result.reserve(outline.hot.size() + 1);
  for (std::size_t i = 0; i < outline.hot.size(); ++i) {
    result.push_back(analyze_module(
        space, outline.program->loops()[outline.hot[i]].name,
        collection.loop_times[i], collection));
  }
  result.push_back(analyze_module(space, "rest", collection.rest_times,
                                  collection));
  return result;
}

std::vector<FlagEffect> top_flags(const ModuleImportance& importance,
                                  std::size_t k) {
  std::vector<FlagEffect> top(
      importance.effects.begin(),
      importance.effects.begin() +
          static_cast<long>(std::min(k, importance.effects.size())));
  return top;
}

}  // namespace ft::core
