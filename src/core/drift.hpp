// Online drift detection and re-tuning (the "production" scenario on
// top of Fig 8's timestep scaling): a tuned assignment keeps running
// while the input profile drifts - per-time-step work and working-set
// size shift segment by segment - until its per-loop advantage over
// the O3 baseline erodes. A monitor watches per-loop runtime regression
// against a steady-state snapshot; past a threshold (debounced over
// consecutive observations) it triggers an incremental re-tune seeded
// from the current best assignment (the registry's unlisted "retune"
// algorithm), and hot-swaps the winner in when it actually beats the
// degraded incumbent on the drifted input.
//
// Resume contract: every measurement flows through per-segment
// Evaluators that share the campaign's EvalJournal and EvalCache, so a
// killed run restarted against the same journal replays every
// evaluation bit-identically - same observations, same monitor
// decisions, same swaps, same report. Swap events themselves are
// derived state and are deliberately NOT journaled (EvalJournal
// replay regenerates them; a foreign record kind would read as a torn
// tail on resume).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/funcy_tuner.hpp"

namespace ft::core {

/// How the input profile drifts away from the tuning input.
struct DriftScheduleOptions {
  int segments = 3;          ///< drifted segments after steady state
  /// Per-segment multiplicative drift of per-time-step work and of the
  /// working-set size (segment i runs at (1+drift)^i; negative values
  /// shrink). The interesting regime for re-tuning is a shrinking
  /// working set: streaming-store and prefetch choices that paid off
  /// when the data streamed past the LLC turn hostile once it re-fits
  /// in cache.
  double work_drift = 0.25;
  double ws_drift = -0.5;
  /// Time-steps per segment; 0 keeps the tuning input's count.
  int timesteps = 0;
};

/// The drifted inputs, in order: segment i is the tuning input with
/// work/ws scales compounded i+1 times (and the o3_seconds target kept
/// pinned - O3 is the contract runtime drift is judged against).
[[nodiscard]] std::vector<ir::InputSpec> make_drift_schedule(
    const ir::InputSpec& tuning, const DriftScheduleOptions& options);

/// One instrumented measurement of an assignment on the current input.
struct DriftObservation {
  double end_to_end = 0.0;
  std::vector<double> loop_seconds;
};

enum class DriftState : std::uint8_t {
  kSteady,    ///< within threshold of the baseline snapshot
  kSuspect,   ///< regressed, awaiting confirmation (debounce)
  kRetuning,  ///< confirmed regression; a re-tune is due
};

[[nodiscard]] std::string_view to_string(DriftState state) noexcept;

/// Regression detector over per-loop speedups. baseline() snapshots
/// the steady-state per-loop (and end-to-end) speedup of the incumbent
/// vs O3; each observe() recomputes them on the current input and
/// reports the worst relative drop. The state machine is
/// kSteady -> kSuspect -> kRetuning with `confirm` consecutive
/// regressed observations required to trip (a single noisy probe never
/// triggers a re-tune), and a clean observation resetting the count.
/// kRetuning is sticky until reset_after_swap().
class DriftMonitor {
 public:
  struct Options {
    /// Relative drop in any per-loop (or the end-to-end) speedup vs
    /// the steady snapshot considered a regression.
    double threshold = 0.10;
    int confirm = 2;  ///< consecutive regressed observations to trip
  };

  explicit DriftMonitor(Options options) : options_(options) {}

  /// Snapshots the steady-state reference (O3 and incumbent measured
  /// on the same input, same protocol).
  void baseline(const DriftObservation& o3, const DriftObservation& tuned);

  /// Feeds one (O3, incumbent) observation pair; returns the state
  /// after the transition.
  DriftState observe(const DriftObservation& o3,
                     const DriftObservation& tuned);

  /// Re-baselines on the post-swap measurement and returns to kSteady.
  void reset_after_swap(const DriftObservation& o3,
                        const DriftObservation& tuned);

  [[nodiscard]] DriftState state() const noexcept { return state_; }
  /// Worst relative speedup drop seen by the latest observe() (can be
  /// negative when the incumbent got faster).
  [[nodiscard]] double last_regression() const noexcept {
    return last_regression_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  [[nodiscard]] static std::vector<double> speedups(
      const DriftObservation& o3, const DriftObservation& tuned);

  Options options_;
  std::vector<double> reference_;  ///< per-loop + end-to-end speedups
  int strikes_ = 0;
  double last_regression_ = 0.0;
  DriftState state_ = DriftState::kSteady;
};

/// One drift segment's outcome in the report.
struct DriftSegmentReport {
  std::string input;           ///< drifted input name
  int timesteps = 0;
  double work_scale = 1.0;
  double ws_scale = 1.0;
  double o3_seconds = 0.0;       ///< O3 measured on this input
  double degraded_seconds = 0.0; ///< incumbent measured on this input
  double degraded_speedup = 0.0;
  double regression = 0.0;       ///< monitor's worst relative drop
  std::string state;             ///< monitor state after observation
  bool retuned = false;          ///< a re-tune ran
  bool swapped = false;          ///< ...and its winner was hot-swapped
  double retuned_seconds = 0.0;  ///< post-swap incumbent (if retuned)
  double retuned_speedup = 0.0;
  std::size_t retune_evaluations = 0;
};

struct OnlineReport {
  double steady_o3_seconds = 0.0;     ///< tuning input, O3
  double steady_tuned_seconds = 0.0;  ///< tuning input, initial tune
  double steady_speedup = 0.0;
  std::vector<DriftSegmentReport> segments;
};

struct OnlineTunerOptions {
  DriftScheduleOptions schedule;
  DriftMonitor::Options monitor;
  /// Evaluation budget per triggered re-tune (RetuneOptions iterations).
  std::size_t retune_samples = 60;
  /// Repetitions per monitor observation (more reps = less noise per
  /// probe, so the debounce can stay short).
  int observation_reps = 5;
};

/// Runs the online scenario over one FuncyTuner: monitors the given
/// initial assignment across the drift schedule, re-tunes on confirmed
/// regression and hot-swaps improvements. Deterministic for fixed
/// options; attach a journal to make a killed run resumable.
class OnlineTuner {
 public:
  OnlineTuner(FuncyTuner& tuner, OnlineTunerOptions options);

  /// The journal every per-segment evaluator records into (and replays
  /// from on resume). Optional.
  void set_journal(std::shared_ptr<EvalJournal> journal);

  [[nodiscard]] OnlineReport run(
      const compiler::ModuleAssignment& initial);

 private:
  [[nodiscard]] DriftObservation observe_assignment(
      Evaluator& evaluator, const compiler::ModuleAssignment& assignment,
      std::uint64_t rep_base);

  FuncyTuner* tuner_;
  OnlineTunerOptions options_;
  std::shared_ptr<EvalJournal> journal_;
};

}  // namespace ft::core
