#include "core/serialization.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/json.hpp"
#include "support/serialization.hpp"

namespace ft::core {

namespace {

/// JSON has no literal for inf/nan; failed measurements (scored
/// kInvalidSeconds) serialize as null so the output stays parseable.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream oss;
  oss << value;
  return oss.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_collection_csv(std::ostream& os, const Outline& outline,
                          const Collection& collection) {
  os << "cv_index,cv_hash,end_to_end,rest";
  for (const std::size_t j : outline.hot) {
    os << ',' << outline.program->loops()[j].name;
  }
  os << '\n';
  for (std::size_t k = 0; k < collection.sample_count(); ++k) {
    os << k << ',' << collection.cvs[k].hash() << ','
       << collection.end_to_end[k] << ',' << collection.rest_times[k];
    for (std::size_t i = 0; i < outline.hot.size(); ++i) {
      os << ',' << collection.loop_times[i][k];
    }
    os << '\n';
  }
}

void write_history_csv(std::ostream& os, const TuningResult& result) {
  os << "evaluation,best_so_far_seconds\n";
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    os << (i + 1) << ',' << result.history[i] << '\n';
  }
}

std::string tuning_result_json(const TuningResult& result,
                               const flags::FlagSpace& space,
                               const ir::Program& program) {
  std::ostringstream oss;
  oss << "{" << support::schema_version_field()
      << ",\"algorithm\":\"" << json_escape(result.algorithm) << "\""
      << ",\"speedup\":" << json_number(result.speedup)
      << ",\"tuned_seconds\":" << json_number(result.tuned_seconds)
      << ",\"baseline_seconds\":" << json_number(result.baseline_seconds)
      << ",\"evaluations\":" << result.evaluations << ",\"extras\":{";
  bool first_extra = true;
  for (const auto& [key, value] : result.extras.items()) {
    if (!first_extra) oss << ',';
    first_extra = false;
    oss << "\"" << json_escape(key) << "\":" << json_number(value);
  }
  oss << "},\"modules\":{";
  bool first = true;
  for (std::size_t j = 0; j < result.best_assignment.loop_cvs.size();
       ++j) {
    if (!first) oss << ',';
    first = false;
    oss << "\"" << json_escape(program.loops()[j].name) << "\":\""
        << json_escape(space.render(result.best_assignment.loop_cvs[j]))
        << "\"";
  }
  if (!first) oss << ',';
  oss << "\"nonloop\":\""
      << json_escape(space.render(result.best_assignment.nonloop_cv))
      << "\"}}";
  return oss.str();
}

ResultExtras read_tuning_result_extras(const std::string& json) {
  support::require_schema_version(json, "tuning result");
  support::JsonValue document;
  std::string error;
  if (!support::JsonValue::parse(json, &document, &error)) {
    throw std::runtime_error("tuning result: malformed JSON: " + error);
  }
  ResultExtras extras;
  if (const support::JsonValue* block = document.find("extras");
      block != nullptr && block->is_object()) {
    // Schema v3: the typed block.
    for (const auto& [key, value] : block->members()) {
      if (value.is_number()) extras.set(key, value.number());
    }
    return extras;
  }
  // Schema v2 and earlier: the bespoke top-level pair (absent unless a
  // pre-v3 writer was patched to emit it; read it anyway so archived
  // greedy artifacts round-trip).
  double value = 0.0;
  if (document.get(kExtraIndependentSeconds, &value)) {
    extras.set(kExtraIndependentSeconds, value);
  }
  if (document.get(kExtraIndependentSpeedup, &value)) {
    extras.set(kExtraIndependentSpeedup, value);
  }
  return extras;
}

std::string campaign_json(const Campaign& campaign) {
  std::ostringstream oss;
  oss << "{" << support::schema_version_field() << ",\"cells\":[";
  bool first_cell = true;
  for (const CampaignCell& cell : campaign.cells()) {
    if (!first_cell) oss << ',';
    first_cell = false;
    oss << "{\"program\":\"" << json_escape(cell.program)
        << "\",\"architecture\":\"" << json_escape(cell.architecture)
        << "\",\"baseline_seconds\":" << json_number(cell.baseline_seconds)
        << ",\"results\":[";
    for (std::size_t i = 0; i < cell.results.size(); ++i) {
      const TuningResult& result = cell.results[i];
      if (i) oss << ',';
      oss << "{\"algorithm\":\"" << json_escape(result.algorithm)
          << "\",\"speedup\":" << json_number(result.speedup)
          << ",\"tuned_seconds\":" << json_number(result.tuned_seconds)
          << ",\"evaluations\":" << result.evaluations << '}';
    }
    oss << "]}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace ft::core
