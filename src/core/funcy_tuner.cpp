#include "core/funcy_tuner.hpp"

#include "support/rng.hpp"

namespace ft::core {

FuncyTuner::FuncyTuner(ir::Program program, machine::Architecture arch,
                       FuncyTunerOptions options,
                       compiler::Personality personality)
    : options_(options),
      program_(std::move(program)),
      space_(personality == compiler::Personality::kIcc
                 ? flags::icc_space()
                 : flags::gcc_space()),
      compiler_(space_, std::move(arch), personality),
      engine_(std::make_unique<machine::ExecutionEngine>(
          program_, compiler_,
          machine::NoiseModel(options.seed, options.noise_sigma_rel),
          /*caliper_overhead_per_event=*/2e-4,
          options.attribution_sigma)),
      tuning_input_(program_.tuning_input()),
      evaluator_(std::make_unique<Evaluator>(*engine_, tuning_input_)) {}

const std::vector<flags::CompilationVector>& FuncyTuner::presampled() {
  if (presampled_.empty()) {
    support::Rng rng = support::Rng(options_.seed).fork("presample");
    presampled_ = space_.sample_many(rng, options_.samples);
  }
  return presampled_;
}

const Outline& FuncyTuner::outline() {
  if (!outline_) {
    outline_ = profile_and_outline(*engine_, tuning_input_,
                                   options_.hot_threshold);
  }
  return *outline_;
}

const Collection& FuncyTuner::collection() {
  if (!collection_) {
    collection_ =
        collect_per_loop_runtimes(*evaluator_, outline(), presampled());
  }
  return *collection_;
}

double FuncyTuner::baseline_seconds() {
  if (!baseline_seconds_) {
    const compiler::ModuleAssignment o3 = compiler::ModuleAssignment::uniform(
        space_.default_cv(), program_.loops().size());
    baseline_seconds_ = evaluator_->final_seconds(o3, options_.final_reps);
  }
  return *baseline_seconds_;
}

TuningResult FuncyTuner::run_random() {
  return random_search(*evaluator_, presampled(), baseline_seconds());
}

TuningResult FuncyTuner::run_fr() {
  return function_random_search(
      *evaluator_, outline(), presampled(), options_.samples,
      support::Rng(options_.seed).fork("fr").next(), baseline_seconds());
}

GreedyResult FuncyTuner::run_greedy() {
  return greedy_combination(*evaluator_, outline(), collection(),
                            baseline_seconds());
}

TuningResult FuncyTuner::run_cfr() {
  CfrOptions cfr_options;
  cfr_options.top_x = options_.top_x;
  cfr_options.iterations = options_.samples;
  cfr_options.seed = support::Rng(options_.seed).fork("cfr").next();
  return cfr_search(*evaluator_, outline(), collection(), cfr_options,
                    baseline_seconds());
}

FuncyTuner::AllResults FuncyTuner::run_all() {
  AllResults results;
  results.baseline_seconds = baseline_seconds();
  results.random = run_random();
  results.fr = run_fr();
  results.greedy = run_greedy();
  results.cfr = run_cfr();
  return results;
}

std::vector<double> FuncyTuner::per_loop_speedups(
    const compiler::ModuleAssignment& assignment) {
  const compiler::Executable tuned = compiler_.build(program_, assignment);
  const std::vector<double> tuned_truth =
      engine_->true_module_seconds(tuned, tuning_input_);
  const std::vector<double> base_truth =
      engine_->true_module_seconds(engine_->baseline(), tuning_input_);
  std::vector<double> speedups(program_.loops().size());
  for (std::size_t j = 0; j < speedups.size(); ++j) {
    speedups[j] = base_truth[j] / tuned_truth[j];
  }
  return speedups;
}

std::vector<std::string> FuncyTuner::per_loop_decisions(
    const compiler::ModuleAssignment& assignment) {
  const compiler::Executable tuned = compiler_.build(program_, assignment);
  std::vector<std::string> summaries;
  summaries.reserve(tuned.loops.size());
  for (const compiler::LinkedLoop& loop : tuned.loops) {
    summaries.push_back(loop.codegen.summary());
  }
  return summaries;
}

double FuncyTuner::seconds_on(const ir::InputSpec& input,
                              const compiler::ModuleAssignment& assignment,
                              int reps) {
  const compiler::Executable exe = compiler_.build(program_, assignment);
  machine::RunOptions options;
  options.repetitions = reps;
  options.rep_base = rep_streams::kCrossInput;
  return engine_->run(exe, input, options).end_to_end;
}

double FuncyTuner::baseline_seconds_on(const ir::InputSpec& input,
                                       int reps) {
  machine::RunOptions options;
  options.repetitions = reps;
  options.rep_base = rep_streams::kCrossInput;
  return engine_->run(engine_->baseline(), input, options).end_to_end;
}

}  // namespace ft::core
