#include "core/funcy_tuner.hpp"

#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "core/persistent_cache.hpp"
#include "support/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::core {

FuncyTuner::FuncyTuner(ir::Program program, machine::Architecture arch,
                       FuncyTunerOptions options,
                       compiler::Personality personality)
    : options_(options),
      program_(std::move(program)),
      space_(personality == compiler::Personality::kIcc
                 ? flags::icc_space()
                 : flags::gcc_space()),
      compiler_(space_, std::move(arch), personality),
      engine_(std::make_unique<machine::ExecutionEngine>(
          program_, compiler_,
          machine::NoiseModel(options.seed, options.noise_sigma_rel),
          /*caliper_overhead_per_event=*/2e-4,
          options.attribution_sigma)),
      tuning_input_(program_.tuning_input()),
      evaluator_(std::make_unique<Evaluator>(*engine_, tuning_input_)) {
  if (options_.faults.rate > 0 || options_.faults.outlier_rate > 0) {
    engine_->set_fault_model(machine::FaultModel(options_.faults));
  }
  evaluator_->set_retry_policy(options_.retry);
  if (options_.eval_cache || !options_.eval_cache_dir.empty()) {
    auto cache = std::make_shared<EvalCache>(
        options_.eval_cache_entries != 0 ? options_.eval_cache_entries
                                         : EvalCache::kDefaultMaxEntries);
    if (!options_.eval_cache_dir.empty()) {
      cache->attach_disk(std::make_shared<PersistentCache>(
          PersistentCache::Options{.dir = options_.eval_cache_dir,
                                   .max_bytes =
                                       options_.eval_cache_disk_bytes}));
    }
    set_eval_cache(std::move(cache));
  }
}

void FuncyTuner::set_eval_cache(std::shared_ptr<EvalCache> cache) {
  evaluator_->set_eval_cache(std::move(cache),
                             options_fingerprint(options_));
}

const std::shared_ptr<EvalCache>& FuncyTuner::eval_cache() const noexcept {
  return evaluator_->eval_cache();
}

const std::vector<flags::CompilationVector>& FuncyTuner::presampled() {
  if (presampled_.empty()) {
    support::Rng rng = support::Rng(options_.seed).fork("presample");
    presampled_ = space_.sample_many(rng, options_.samples);
  }
  return presampled_;
}

const Outline& FuncyTuner::outline() {
  if (!outline_) {
    outline_ = profile_and_outline(*engine_, tuning_input_,
                                   options_.hot_threshold);
  }
  return *outline_;
}

const Collection& FuncyTuner::collection() {
  if (!collection_) {
    collection_ =
        collect_per_loop_runtimes(*evaluator_, outline(), presampled());
  }
  return *collection_;
}

double FuncyTuner::baseline_seconds() {
  if (!baseline_seconds_) {
    telemetry::Span span = telemetry::tracer().begin("baseline");
    const compiler::ModuleAssignment o3 = compiler::ModuleAssignment::uniform(
        space_.default_cv(), program_.loops().size());
    baseline_seconds_ = evaluator_->final_seconds(o3, options_.final_reps);
    if (span) span.attr("seconds", *baseline_seconds_);
  }
  return *baseline_seconds_;
}

SearchContext FuncyTuner::search_context() {
  SearchContext context;
  context.provide_evaluator(evaluator_.get());
  context.provide_options(&options_);
  context.provide_presampled(
      [this]() -> decltype(auto) { return presampled(); });
  context.provide_outline([this]() -> decltype(auto) { return outline(); });
  context.provide_collection(
      [this]() -> decltype(auto) { return collection(); });
  context.provide_baseline_seconds([this] { return baseline_seconds(); });
  return context;
}

TuningResult FuncyTuner::run(const std::string& algorithm) {
  const std::unique_ptr<SearchAlgorithm> search =
      SearchRegistry::global().create(algorithm);
  SearchContext context = search_context();
  return search->run(context);
}

TuningResult FuncyTuner::run_random() { return run("random"); }

TuningResult FuncyTuner::run_fr() { return run("fr"); }

GreedyResult FuncyTuner::run_greedy() {
  GreedyResult result;
  result.realized = run("greedy");
  // The registry carries the §3.4 numbers in TuningResult::extras;
  // rebuild the typed pair for legacy callers.
  result.independent_seconds =
      result.realized.extras.get_or(kExtraIndependentSeconds, 0);
  result.independent_speedup =
      result.realized.extras.get_or(kExtraIndependentSpeedup, 0);
  return result;
}

TuningResult FuncyTuner::run_cfr() { return run("cfr"); }

FuncyTuner::AllResults FuncyTuner::run_all() {
  AllResults results;
  results.baseline_seconds = baseline_seconds();
  results.random = run_random();
  results.fr = run_fr();
  results.greedy = run_greedy();
  results.cfr = run_cfr();
  return results;
}

std::vector<double> FuncyTuner::per_loop_speedups(
    const compiler::ModuleAssignment& assignment) {
  const compiler::Executable tuned = compiler_.build(program_, assignment);
  const std::vector<double> tuned_truth =
      engine_->true_module_seconds(tuned, tuning_input_);
  const std::vector<double> base_truth =
      engine_->true_module_seconds(engine_->baseline(), tuning_input_);
  std::vector<double> speedups(program_.loops().size());
  for (std::size_t j = 0; j < speedups.size(); ++j) {
    speedups[j] = base_truth[j] / tuned_truth[j];
  }
  return speedups;
}

std::vector<std::string> FuncyTuner::per_loop_decisions(
    const compiler::ModuleAssignment& assignment) {
  const compiler::Executable tuned = compiler_.build(program_, assignment);
  std::vector<std::string> summaries;
  summaries.reserve(tuned.loops.size());
  for (const compiler::LinkedLoop& loop : tuned.loops) {
    summaries.push_back(loop.codegen.summary());
  }
  return summaries;
}

double FuncyTuner::seconds_on(const ir::InputSpec& input,
                              const compiler::ModuleAssignment& assignment,
                              int reps) {
  const compiler::Executable exe = compiler_.build(program_, assignment);
  machine::RunOptions options;
  options.repetitions = reps;
  options.rep_base = rep_streams::kCrossInput;
  return engine_->run(exe, input, options).end_to_end;
}

double FuncyTuner::baseline_seconds_on(const ir::InputSpec& input,
                                       int reps) {
  machine::RunOptions options;
  options.repetitions = reps;
  options.rep_base = rep_streams::kCrossInput;
  return engine_->run(engine_->baseline(), input, options).end_to_end;
}

}  // namespace ft::core
