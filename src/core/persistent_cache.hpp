// Persistent second tier of the evaluation cache: a ccache-style,
// content-addressed directory of completed EvalOutcomes, shared by
// every process pointed at the same --eval-cache-dir. The in-memory
// sharded-LRU EvalCache stays the first tier; on a memory miss the
// disk tier is consulted, and every insert is written through, so a
// repeated campaign - a new `ftune` process, a restarted `ftuned`
// daemon, a whole fleet of clients - starts warm instead of cold.
//
// Layout: one file per entry at <dir>/<shard>/<fingerprint>, where
// shard is the low byte of the key fingerprint (hex) and the filename
// its full 64-bit fingerprint (hex). The file body is a fixed little-
// endian binary encoding of (full key, outcome, modeled rerun cost)
// with a CRC-32 trailer - the same codec the service layer's
// binary-crc32 framing uses (support/crc32).
//
// Atomicity protocol (the crash-consistency contract the fault-point
// test harness sweeps): an entry is written to a same-directory
// temp file opened O_EXCL, fully written, fsync'd, then rename(2)d
// onto its final name. Readers open final names only, so at every
// kill point they observe either no entry or a complete one - a torn
// entry is impossible to serve by construction, and the CRC trailer
// plus a full-key compare rejects anything a corrupted disk serves
// up anyway. Rejected files are quarantined to <dir>/corrupt/ (never
// re-read, kept for forensics) and counted in cache.disk.rejected.
//
// The tier is lock-free across processes: no lock file, no shared
// index. Two writers racing on one key rename byte-identical bodies
// (the measurement stack is deterministic per key), so last-rename-
// wins is harmless; readers of a concurrently-evicted entry keep
// their already-open fd. Within a process a mutex serializes only
// eviction scans.
//
// Eviction: a size budget (--eval-cache-disk-size). Inserts track an
// approximate byte total (seeded by a directory scan at attach time);
// when the budget is exceeded the evictor rescans, sorts by mtime and
// unlinks oldest-first down to 90% of the budget. Lookup hits bump
// their entry's mtime, so recency survives across processes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "core/eval_cache.hpp"

namespace ft::core {

/// Cumulative disk-tier counters for this process (mirrored into
/// telemetry under cache.disk.*). Like the memory tier's stats they
/// are reporting-only: results never depend on them.
struct PersistentCacheStats {
  std::size_t hits = 0;        ///< entries served from disk
  std::size_t misses = 0;      ///< consults that found no usable entry
  std::size_t insertions = 0;  ///< entries written by this process
  std::size_t evictions = 0;   ///< entries unlinked by the size budget
  std::size_t rejected = 0;    ///< corrupt entries quarantined
  std::size_t bytes = 0;       ///< approximate resident on-disk bytes
  std::size_t entries = 0;     ///< approximate on-disk entry count
};

class PersistentCache {
 public:
  struct Options {
    std::string dir;
    /// Size budget in bytes; exceeding it evicts oldest-mtime entries
    /// down to 90%. 0 = kDefaultMaxBytes.
    std::size_t max_bytes = 0;
    /// Inserts between budget checks (a check is one statfs-free
    /// atomic compare; the expensive rescans happen only over budget).
    std::size_t evict_check_interval = 16;
  };

  static constexpr std::size_t kDefaultMaxBytes =
      std::size_t{256} << 20;  // 256 MiB

  /// Creates <dir> (and its corrupt/ quarantine) if missing and seeds
  /// the byte accounting from a scan. Throws std::runtime_error when
  /// the directory cannot be created or is not writable.
  explicit PersistentCache(Options options);

  PersistentCache(const PersistentCache&) = delete;
  PersistentCache& operator=(const PersistentCache&) = delete;

  /// Replays a completed evaluation from disk. False on miss; corrupt
  /// entries are quarantined and read as misses. Thread-safe and safe
  /// against concurrent writers/evictors in other processes.
  [[nodiscard]] bool lookup(const EvalCache::Key& key, EvalOutcome* out,
                            double* rerun_seconds = nullptr);

  /// Writes one completed evaluation through the temp+fsync+rename
  /// protocol. A key already present on disk is left untouched (both
  /// bodies would be byte-identical). Thread-safe.
  void insert(const EvalCache::Key& key, const EvalOutcome& outcome,
              double rerun_seconds);

  [[nodiscard]] PersistentCacheStats stats() const;
  [[nodiscard]] const std::string& dir() const noexcept {
    return options_.dir;
  }
  [[nodiscard]] std::size_t max_bytes() const noexcept {
    return max_bytes_;
  }

  /// Entry path for a key (exposed for tests/tools).
  [[nodiscard]] std::string entry_path(const EvalCache::Key& key) const;

  // --- test seams ----------------------------------------------------------

  /// Crash-injection hook, invoked with a step name at every point of
  /// the write protocol: "tmp-open", "half-write", "write", "sync",
  /// "rename", "dir-sync". The crash-consistency harness forks a
  /// writer whose hook _exit()s at one step per sweep and then asserts
  /// the directory still satisfies the all-or-nothing contract.
  using FaultHook = std::function<void(std::string_view step)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Binary entry codec (CRC trailer included), exposed so the
  /// corruption-fuzz tests can build and mutilate entries directly.
  [[nodiscard]] static std::string encode_entry(const EvalCache::Key& key,
                                                const EvalOutcome& outcome,
                                                double rerun_seconds);
  /// Validates the CRC trailer and decodes; false for any torn,
  /// truncated or corrupted body.
  [[nodiscard]] static bool decode_entry(std::string_view bytes,
                                         EvalCache::Key* key,
                                         EvalOutcome* outcome,
                                         double* rerun_seconds);

 private:
  void hook(std::string_view step) {
    if (fault_hook_) fault_hook_(step);
  }
  [[nodiscard]] std::string shard_dir(std::uint64_t fingerprint) const;
  /// Quarantines a corrupt entry file into <dir>/corrupt/.
  void quarantine(const std::string& path);
  /// Rescans, sorts by mtime and unlinks oldest entries until the
  /// total is back under 90% of the budget.
  void evict_over_budget();

  Options options_;
  std::size_t max_bytes_ = kDefaultMaxBytes;
  FaultHook fault_hook_;
  std::atomic<std::uint64_t> tmp_seq_{0};
  std::mutex evict_mutex_;
  std::atomic<std::size_t> inserts_since_check_{0};

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> insertions_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace ft::core
