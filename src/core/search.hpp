// The four space-search algorithms of paper §2.2:
//   Random - classical per-program random search (prior work),
//   FR     - per-function random search (no runtime guidance),
//   G      - greedy combination of per-loop winners (prior work's
//            assembly rule), reported as realized AND independent
//            (the hypothetical upper bound of §3.4),
//   CFR    - Caliper-guided random search (Algorithm 1): prune each
//            loop's CV space to its top-X performers, then re-sample
//            heterogeneous assignments and measure realized runtimes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "core/evaluator.hpp"
#include "core/outline.hpp"

namespace ft::core {

/// Typed key/value extras a search algorithm attaches to its result:
/// greedy's §3.4 independence bound, bo's surrogate statistics,
/// staged's seed quality. Replaces the bespoke per-algorithm optional
/// fields TuningResult used to grow one pair at a time. Keys iterate
/// in sorted order, so serialized extras are deterministic.
class ResultExtras {
 public:
  void set(const std::string& key, double value) { values_[key] = value; }
  /// nullopt when the algorithm did not report `key`.
  [[nodiscard]] std::optional<double> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] double get_or(const std::string& key,
                              double fallback) const {
    return get(key).value_or(fallback);
  }
  [[nodiscard]] bool contains(const std::string& key) const {
    return values_.count(key) != 0;
  }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] const std::map<std::string, double>& items()
      const noexcept {
    return values_;
  }

 private:
  std::map<std::string, double> values_;
};

/// Well-known extras keys (greedy's §3.4 hypothetical bound).
inline constexpr const char* kExtraIndependentSeconds =
    "independent_seconds";
inline constexpr const char* kExtraIndependentSpeedup =
    "independent_speedup";

/// Result of one search algorithm on one (program, arch, input).
struct TuningResult {
  std::string algorithm;
  compiler::ModuleAssignment best_assignment;
  double search_best_seconds = 0.0;  ///< best runtime seen during search
  double tuned_seconds = 0.0;        ///< re-measured (10 reps, fresh noise)
  double baseline_seconds = 0.0;     ///< O3, same protocol
  double speedup = 0.0;              ///< baseline / tuned
  std::vector<double> history;       ///< best-so-far after each evaluation
  std::size_t evaluations = 0;
  /// Algorithm-specific extras; empty for searches that report none.
  ResultExtras extras;
};

/// Greedy combination reports two numbers (paper §3.4).
struct GreedyResult {
  TuningResult realized;       ///< actually assembled and measured
  double independent_seconds = 0.0;  ///< sum of per-module best times
  double independent_speedup = 0.0;  ///< the no-interference upper bound
};

/// Per-program random search over `cvs` (uniform compilation).
[[nodiscard]] TuningResult random_search(
    Evaluator& evaluator, std::span<const flags::CompilationVector> cvs,
    double baseline_seconds);

/// Per-function random search: per iteration, each module draws a CV
/// uniformly (with replacement) from the pre-sampled set.
[[nodiscard]] TuningResult function_random_search(
    Evaluator& evaluator, const Outline& outline,
    std::span<const flags::CompilationVector> presampled,
    std::size_t iterations, std::uint64_t seed, double baseline_seconds);

/// Greedy combination from collected per-loop runtimes.
[[nodiscard]] GreedyResult greedy_combination(Evaluator& evaluator,
                                              const Outline& outline,
                                              const Collection& collection,
                                              double baseline_seconds);

struct CfrOptions {
  std::size_t top_x = 10;        ///< pruned space size per module
  std::size_t iterations = 1000; ///< K of Algorithm 1
  std::uint64_t seed = 42;
  /// Convergence-based early stop (§4.3 suggests exploiting CFR's
  /// convergence trend to cut tuning overhead): abort the search when
  /// the best-so-far has not improved for this many consecutive
  /// evaluations. 0 disables early stopping (the paper's fixed-budget
  /// protocol). Early-stopped searches run sequentially.
  std::size_t patience = 0;
};

/// Caliper-guided random search (Algorithm 1).
[[nodiscard]] TuningResult cfr_search(Evaluator& evaluator,
                                      const Outline& outline,
                                      const Collection& collection,
                                      const CfrOptions& options,
                                      double baseline_seconds);

/// Pruned candidate indices per module (top-X smallest measured times;
/// exposed for tests of Algorithm 1's pruning step). The last entry is
/// the rest module.
[[nodiscard]] std::vector<std::vector<std::size_t>> prune_top_x(
    const Collection& collection, std::size_t top_x);

struct RetuneOptions {
  std::size_t iterations = 60;  ///< evaluations (the seed costs one)
  std::size_t top_x = 10;       ///< pruned candidate space per module
  std::uint64_t seed = 42;
  std::size_t patience = 0;     ///< early stop; 0 = fixed budget
};

/// Incremental re-tuning (the online drift response): hill-climbs from
/// `seed_assignment` by re-drawing one or two modules per step from the
/// collection's pruned top-X spaces, evaluating on `evaluator`'s input
/// (typically a drifted one, not the tuning input). The seed is
/// evaluated first, so the result can never score worse than the
/// incumbent on the search metric.
[[nodiscard]] TuningResult retune_search(
    Evaluator& evaluator, const Outline& outline,
    const Collection& collection,
    const compiler::ModuleAssignment& seed_assignment,
    const RetuneOptions& options, double baseline_seconds);

}  // namespace ft::core
