#include "core/evolution.hpp"

#include <algorithm>
#include <limits>

#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace ft::core {

namespace {

/// Genome: for each module, an index into collection.cvs (drawn from
/// that module's pruned candidate list).
struct Individual {
  std::vector<std::size_t> genome;
  double seconds = std::numeric_limits<double>::infinity();
};

}  // namespace

TuningResult evolutionary_search(Evaluator& evaluator,
                                 const Outline& outline,
                                 const Collection& collection,
                                 const EvolutionOptions& options,
                                 double baseline_seconds) {
  TuningResult result;
  result.algorithm = "EvoCFR";

  const std::vector<std::vector<std::size_t>> pruned =
      prune_top_x(collection, options.top_x);
  const std::size_t module_count = outline.module_count();
  support::Rng rng(options.seed);

  auto make_assignment = [&](const std::vector<std::size_t>& genome) {
    std::vector<flags::CompilationVector> hot_cvs;
    hot_cvs.reserve(outline.hot.size());
    for (std::size_t i = 0; i < outline.hot.size(); ++i) {
      hot_cvs.push_back(collection.cvs[genome[i]]);
    }
    return outline.make_assignment(hot_cvs,
                                   collection.cvs[genome.back()]);
  };

  auto random_genome = [&]() {
    std::vector<std::size_t> genome(module_count);
    for (std::size_t m = 0; m < module_count; ++m) {
      genome[m] = pruned[m][rng.next_below(pruned[m].size())];
    }
    return genome;
  };

  auto record_history = [&](double seconds) {
    double best = result.history.empty()
                      ? std::numeric_limits<double>::infinity()
                      : result.history.back();
    result.history.push_back(std::min(best, seconds));
  };
  // The whole search shares one phase rep_base: noise is
  // content-addressed (executable fingerprint keyed), so re-evaluating
  // a genome the population already measured reproduces the identical
  // time - the redundancy the EvalCache elides.
  auto evaluate = [&](Individual& individual) {
    EvalRequest request;
    request.assignment = make_assignment(individual.genome);
    request.rep_base = rep_streams::kEvolution;
    individual.seconds = evaluator.evaluate(request).seconds();
    record_history(individual.seconds);
  };

  // --- generation 0: CFR-style independent samples ------------------------
  // Gen-0 individuals are independent, so they evaluate as one parallel
  // batch (same phase noise keys as the sequential order); history is
  // reconstructed in index order afterwards.
  const std::size_t population_size =
      std::min(options.population, options.evaluations);
  std::vector<Individual> population(population_size);
  for (Individual& individual : population) {
    individual.genome = random_genome();
  }
  if (!options.seed_genome.empty()) {
    const bool shape_ok =
        options.seed_genome.size() == module_count &&
        std::all_of(options.seed_genome.begin(), options.seed_genome.end(),
                    [&](std::size_t index) {
                      return index < collection.cvs.size();
                    });
    if (shape_ok) {
      // The random draws above already consumed the RNG, so installing
      // the seed perturbs nothing downstream of gen 0.
      population.front().genome = options.seed_genome;
    } else {
      support::log_warn() << "evolutionary_search: ignoring malformed "
                             "seed genome (size/index mismatch)";
    }
  }
  std::vector<EvalRequest> gen0_requests(population_size);
  for (std::size_t i = 0; i < population_size; ++i) {
    gen0_requests[i].assignment = make_assignment(population[i].genome);
    gen0_requests[i].rep_base = rep_streams::kEvolution;
  }
  const std::vector<EvalResponse> gen0 = evaluator.evaluate_batch(
      gen0_requests, EvalTrace{.label = "evolution/gen0"});
  for (std::size_t i = 0; i < population_size; ++i) {
    population[i].seconds = gen0[i].seconds();
    record_history(population[i].seconds);
  }

  auto tournament = [&]() -> const Individual& {
    const Individual& a = population[rng.next_below(population.size())];
    const Individual& b = population[rng.next_below(population.size())];
    return a.seconds < b.seconds ? a : b;
  };

  // --- steady-state evolution ------------------------------------------------
  while (result.history.size() < options.evaluations) {
    Individual child;
    if (rng.bernoulli(options.crossover_rate)) {
      const Individual& mother = tournament();
      const Individual& father = tournament();
      child.genome.resize(module_count);
      for (std::size_t m = 0; m < module_count; ++m) {
        child.genome[m] =
            rng.bernoulli(0.5) ? mother.genome[m] : father.genome[m];
      }
    } else {
      child.genome = tournament().genome;
    }
    for (std::size_t m = 0; m < module_count; ++m) {
      if (rng.bernoulli(options.mutation_rate /
                        static_cast<double>(module_count))) {
        child.genome[m] = pruned[m][rng.next_below(pruned[m].size())];
      }
    }
    evaluate(child);

    // Replace the tournament loser.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < population.size(); ++i) {
      if (population[i].seconds > population[worst].seconds) worst = i;
    }
    if (child.seconds < population[worst].seconds) {
      population[worst] = std::move(child);
    }
  }

  // --- winner ------------------------------------------------------------------
  std::size_t best = 0;
  for (std::size_t i = 1; i < population.size(); ++i) {
    if (population[i].seconds < population[best].seconds) best = i;
  }
  result.best_assignment = make_assignment(population[best].genome);
  result.search_best_seconds = population[best].seconds;
  result.evaluations = result.history.size();
  result.tuned_seconds = evaluator.final_seconds(result.best_assignment);
  result.baseline_seconds = baseline_seconds;
  result.speedup = baseline_seconds / result.tuned_seconds;
  return result;
}

}  // namespace ft::core
