// Campaign driver: the (benchmarks x architectures x algorithms)
// experiment grid of the paper's Fig 5, as a reusable API. A facility
// running FuncyTuner tunes a whole application catalog per machine
// generation; this module structures that sweep, parallelizes it and
// returns a queryable result grid.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/funcy_tuner.hpp"
#include "ir/program.hpp"
#include "machine/architecture.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::core {

/// One cell of the campaign grid: every registry algorithm's result, in
/// registration order (the paper's Random, FR, G, CFR column order).
struct CampaignCell {
  std::string program;
  std::string architecture;
  double baseline_seconds = 0.0;
  std::vector<TuningResult> results;

  /// Lookup by display name ("Random", "G.realized", ...) or registry
  /// key ("random", "greedy", ...); throws std::invalid_argument on
  /// unknown names.
  [[nodiscard]] const TuningResult& result(
      const std::string& algorithm) const;
};

struct CampaignOptions {
  /// Per-cell tuner options. When tuner.eval_cache is set the campaign
  /// builds ONE shared EvalCache for the whole grid instead of one per
  /// cell (context hashes + per-cell salts keep entries disjoint), and
  /// warms it from the checkpoint journal on resume.
  FuncyTunerOptions tuner;
  /// Salt added to the seed per architecture index, so different
  /// platforms draw different pre-samples (the paper tunes each
  /// machine independently).
  bool salt_seed_per_arch = true;
  /// Run the grid cells concurrently on the shared pool. Each cell is
  /// a self-contained tuner (own engine, seed-derived noise), so the
  /// result grid is bit-identical to a sequential run; only the
  /// progress callback order varies. Cells issue their own
  /// parallel_for sweeps from inside pool workers, which the
  /// task-group runtime supports (waiters help execute queued tasks).
  bool parallel_cells = false;
  /// Optional progress callback: (program, architecture) just
  /// finished. Invoked serially (under a lock when parallel_cells).
  std::function<void(const std::string&, const std::string&)> progress;
  /// Algorithms to run per cell (registry keys); empty = every
  /// algorithm registered with SearchRegistry::global().
  std::vector<std::string> algorithms;
  /// Telemetry sink installed (via SinkScope) for the duration of
  /// run(). Forces sequential cells: concurrent cells would interleave
  /// span ids and break trace determinism.
  std::shared_ptr<telemetry::Sink> trace_sink;
  /// JSONL evaluation journal shared by every cell (records are keyed
  /// by a program/input/arch context hash, so one file serves the whole
  /// grid). Empty disables checkpointing.
  std::string checkpoint_path;
  /// Resume from an existing journal at checkpoint_path instead of
  /// truncating it: already-journaled evaluations replay instead of
  /// re-running, which continues a killed campaign bit-identically.
  bool resume = false;
  /// Optional raw-measurement backend factory, called once per cell
  /// with that cell's program, architecture and *effective* tuner
  /// options (per-arch seed salt applied). The returned backend is
  /// attached to the cell's Evaluator - this is how a campaign targets
  /// a remote `ftuned` daemon. Results stay bit-identical: only the
  /// raw compile+link+run moves; all resilience bookkeeping remains in
  /// the cell's own Evaluator. Null return = evaluate in-process.
  std::function<std::shared_ptr<EvalBackend>(
      const ir::Program&, const machine::Architecture&,
      const FuncyTunerOptions&)>
      backend_factory;
};

class Campaign {
 public:
  Campaign(std::vector<ir::Program> programs,
           std::vector<machine::Architecture> architectures,
           CampaignOptions options = {});

  /// Runs every cell (concurrently when options.parallel_cells; each
  /// cell also parallelizes its own 1000-variant evaluations
  /// internally). The result grid is identical either way.
  void run();
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  [[nodiscard]] const std::vector<CampaignCell>& cells() const noexcept {
    return cells_;
  }
  /// Lookup by (program, architecture) names; throws on unknown cell.
  [[nodiscard]] const CampaignCell& cell(const std::string& program,
                                         const std::string& arch) const;

  /// Geometric mean of one algorithm's speedups on one architecture.
  /// `algorithm` is a display name or registry key of a per-cell
  /// result, or "G.Independent" (greedy's §3.4 hypothetical, read from
  /// the optional TuningResult fields).
  [[nodiscard]] double geomean_speedup(const std::string& algorithm,
                                       const std::string& arch) const;

 private:
  std::vector<ir::Program> programs_;
  std::vector<machine::Architecture> architectures_;
  CampaignOptions options_;
  std::vector<CampaignCell> cells_;
  bool finished_ = false;
};

}  // namespace ft::core
