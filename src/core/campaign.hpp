// Campaign driver: the (benchmarks x architectures x algorithms)
// experiment grid of the paper's Fig 5, as a reusable API. A facility
// running FuncyTuner tunes a whole application catalog per machine
// generation; this module structures that sweep, parallelizes it and
// returns a queryable result grid.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/funcy_tuner.hpp"
#include "ir/program.hpp"
#include "machine/architecture.hpp"

namespace ft::core {

/// One cell of the campaign grid.
struct CampaignCell {
  std::string program;
  std::string architecture;
  double baseline_seconds = 0.0;
  TuningResult random;
  TuningResult fr;
  GreedyResult greedy;
  TuningResult cfr;
};

struct CampaignOptions {
  FuncyTunerOptions tuner;
  /// Salt added to the seed per architecture index, so different
  /// platforms draw different pre-samples (the paper tunes each
  /// machine independently).
  bool salt_seed_per_arch = true;
  /// Run the grid cells concurrently on the shared pool. Each cell is
  /// a self-contained tuner (own engine, seed-derived noise), so the
  /// result grid is bit-identical to a sequential run; only the
  /// progress callback order varies. Cells issue their own
  /// parallel_for sweeps from inside pool workers, which the
  /// task-group runtime supports (waiters help execute queued tasks).
  bool parallel_cells = false;
  /// Optional progress callback: (program, architecture) just
  /// finished. Invoked serially (under a lock when parallel_cells).
  std::function<void(const std::string&, const std::string&)> progress;
};

class Campaign {
 public:
  Campaign(std::vector<ir::Program> programs,
           std::vector<machine::Architecture> architectures,
           CampaignOptions options = {});

  /// Runs every cell (concurrently when options.parallel_cells; each
  /// cell also parallelizes its own 1000-variant evaluations
  /// internally). The result grid is identical either way.
  void run();
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  [[nodiscard]] const std::vector<CampaignCell>& cells() const noexcept {
    return cells_;
  }
  /// Lookup by (program, architecture) names; throws on unknown cell.
  [[nodiscard]] const CampaignCell& cell(const std::string& program,
                                         const std::string& arch) const;

  /// Geometric mean of one algorithm's speedups on one architecture.
  /// `algorithm` is one of "Random", "G.realized", "FR", "CFR",
  /// "G.Independent".
  [[nodiscard]] double geomean_speedup(const std::string& algorithm,
                                       const std::string& arch) const;

 private:
  std::vector<ir::Program> programs_;
  std::vector<machine::Architecture> architectures_;
  CampaignOptions options_;
  std::vector<CampaignCell> cells_;
  bool finished_ = false;
};

}  // namespace ft::core
