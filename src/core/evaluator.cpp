#include "core/evaluator.hpp"

#include <algorithm>
#include <cstdio>

#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "telemetry/metrics.hpp"

namespace ft::core {

namespace {

std::string hex64(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

void count_metric(const char* name, std::uint64_t n = 1) {
  if (!telemetry::enabled()) return;
  telemetry::metrics().counter(name).add(n);
}

}  // namespace

std::string_view to_string(EvalFault fault) noexcept {
  switch (fault) {
    case EvalFault::kNone: return "none";
    case EvalFault::kCompileFailure: return "compile";
    case EvalFault::kRunCrash: return "crash";
    case EvalFault::kRunTimeout: return "timeout";
    case EvalFault::kQuarantined: return "quarantined";
  }
  return "none";
}

EvalFault eval_fault_from_string(std::string_view name) noexcept {
  if (name == "compile") return EvalFault::kCompileFailure;
  if (name == "crash") return EvalFault::kRunCrash;
  if (name == "timeout") return EvalFault::kRunTimeout;
  if (name == "quarantined") return EvalFault::kQuarantined;
  return EvalFault::kNone;
}

std::vector<EvalBackend::RawResult> EvalBackend::run_many(
    std::span<const EvalRequest> requests) {
  std::vector<RawResult> results;
  results.reserve(requests.size());
  for (const EvalRequest& request : requests) {
    results.push_back(run(request.assignment, request.run_options()));
  }
  return results;
}

Evaluator::Evaluator(machine::ExecutionEngine& engine,
                     const ir::InputSpec& input)
    : engine_(&engine), input_(&input) {
  // Mixed into every assignment key so journal records and quarantine
  // entries never collide across campaign cells sharing one journal.
  context_hash_ = support::fnv1a64(engine.program().name()) ^
                  support::fnv1a64(input.name) * 0x9e3779b97f4a7c15ULL ^
                  support::fnv1a64(engine.arch().name) * 0xc2b2ae3d27d4eb4fULL;
}

void Evaluator::set_backend(std::shared_ptr<EvalBackend> backend) {
  backend_ = std::move(backend);
}

void Evaluator::account(std::size_t modules_compiled, double run_seconds,
                        int reps) {
  evaluations_.fetch_add(static_cast<std::size_t>(reps),
                         std::memory_order_relaxed);
  // Only modules that actually hit the compiler (cache misses) cost
  // compile time: the tuning harness keeps previously built objects
  // around, so CFR's 1000 assembled variants reuse the ~top-X * J
  // object pool after the first few iterations.
  const double cost =
      static_cast<double>(modules_compiled) *
          overhead_model_.seconds_per_module_compile +
      overhead_model_.link_seconds + run_seconds * reps;
  account_overhead(cost);
  if (telemetry::enabled()) {
    static telemetry::Counter& evals =
        telemetry::metrics().counter("evaluator.evaluations");
    // Modeled overhead inherits the cache-miss attribution race, so it
    // is snapshot-only (never traced).
    static telemetry::Gauge& overhead = telemetry::metrics().gauge(
        "evaluator.modeled_overhead_seconds", /*deterministic=*/false);
    evals.add(static_cast<std::uint64_t>(reps));
    overhead.set(modeled_overhead_.load(std::memory_order_relaxed));
  }
}

void Evaluator::account_overhead(double seconds) {
  double expected = modeled_overhead_.load(std::memory_order_relaxed);
  while (!modeled_overhead_.compare_exchange_weak(
      expected, expected + seconds, std::memory_order_relaxed)) {
  }
}

void Evaluator::account_saved(double seconds) {
  double expected = saved_overhead_.load(std::memory_order_relaxed);
  while (!saved_overhead_.compare_exchange_weak(
      expected, expected + seconds, std::memory_order_relaxed)) {
  }
  if (telemetry::enabled()) {
    telemetry::metrics()
        .gauge("cache.saved_seconds", /*deterministic=*/false)
        .set(saved_overhead_.load(std::memory_order_relaxed));
  }
}

EvalBackend::RawResult Evaluator::raw_run(
    const compiler::ModuleAssignment& assignment,
    const machine::RunOptions& options) {
  if (backend_) return backend_->run(assignment, options);
  // Engine and compiler are internally synchronized; this is safe from
  // evaluate_batch workers.
  compiler::Compiler& compiler = engine_->compiler();
  const std::size_t misses_before = compiler.cache_misses();
  const compiler::Executable exe =
      compiler.build(engine_->program(), assignment);
  // Under parallel batches the delta may misattribute individual
  // misses between concurrent evaluations, but the accumulated total
  // (what §4.3 reports) stays exact.
  EvalBackend::RawResult raw;
  raw.modules_compiled = compiler.cache_misses() - misses_before;
  raw.result = engine_->run(exe, *input_, options);
  return raw;
}

machine::RunResult Evaluator::run(
    const compiler::ModuleAssignment& assignment,
    const machine::RunOptions& options) {
  const EvalBackend::RawResult raw = raw_run(assignment, options);
  account(raw.modules_compiled, raw.result.end_to_end, options.repetitions);
  return raw.result;
}

std::uint64_t Evaluator::assignment_key(
    const compiler::ModuleAssignment& assignment) const {
  std::uint64_t key = context_hash_;
  for (const flags::CompilationVector& cv : assignment.loop_cvs) {
    key = (key ^ cv.hash()) * 0x100000001b3ULL;  // FNV-style fold
  }
  key = (key ^ assignment.nonloop_cv.hash()) * 0x100000001b3ULL;
  return key;
}

bool Evaluator::is_quarantined(
    const compiler::ModuleAssignment& assignment) const {
  if (!has_quarantine_.load(std::memory_order_acquire)) return false;
  std::lock_guard lock(resilience_mutex_);
  if (quarantined_keys_.count(assignment_key(assignment)) != 0) return true;
  if (quarantined_cvs_.empty()) return false;
  if (quarantined_cvs_.count(assignment.nonloop_cv.hash()) != 0) return true;
  for (const flags::CompilationVector& cv : assignment.loop_cvs) {
    if (quarantined_cvs_.count(cv.hash()) != 0) return true;
  }
  return false;
}

void Evaluator::note_failure(std::uint64_t key) {
  failed_evaluations_.fetch_add(1, std::memory_order_relaxed);
  count_metric("eval.failures");
  if (retry_policy_.quarantine_after <= 0) return;
  std::lock_guard lock(resilience_mutex_);
  if (++failure_counts_[key] == retry_policy_.quarantine_after) {
    pending_quarantine_.push_back(key);
  }
}

void Evaluator::begin_parallel_region() {
  promote_quarantines();
  batch_depth_.fetch_add(1, std::memory_order_relaxed);
}

void Evaluator::end_parallel_region() {
  if (batch_depth_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    promote_quarantines();
  }
}

void Evaluator::promote_quarantines() {
  std::lock_guard lock(resilience_mutex_);
  for (const std::uint64_t key : pending_quarantine_) {
    quarantined_keys_.insert(key);
  }
  pending_quarantine_.clear();
  const bool any = !quarantined_keys_.empty() || !quarantined_cvs_.empty();
  has_quarantine_.store(any, std::memory_order_release);
  if (telemetry::enabled()) {
    // Scheduling decides which of several racing failures trips the
    // threshold, so the reading is snapshot-only.
    telemetry::metrics()
        .gauge("eval.quarantined", /*deterministic=*/false)
        .set(static_cast<double>(quarantined_keys_.size() +
                                 quarantined_cvs_.size()));
  }
}

bool Evaluator::pre_evaluate(const EvalRequest& request, EvalResponse* out,
                             PendingRun* pending) {
  pending->options = request.run_options();
  const machine::RunOptions& options = pending->options;
  const bool resilient = engine_->fault_model().enabled() ||
                         journal_ != nullptr || cache_ != nullptr ||
                         retry_policy_.eval_timeout_seconds > 0.0 ||
                         has_quarantine_.load(std::memory_order_acquire);
  if (!resilient) {
    // Fast path: bit-identical to the pre-resilience pipeline.
    pending->fast = true;
    pending->needs_run = true;
    return false;
  }

  // Quarantine promotion is deferred to deterministic points: between
  // batches (evaluate_batch promotes before dispatching) and, for
  // sequential callers, before every evaluation.
  if (batch_depth_.load(std::memory_order_relaxed) == 0) {
    promote_quarantines();
  }

  pending->key = assignment_key(request.assignment);
  // Quarantined assignments bypass the cache: a cache-off run would
  // quarantine-skip them (charging nothing), and replaying the cached
  // pre-quarantine outcome instead would break the charged + saved ==
  // cache-off invariant. plan_attempts produces the identical skip.
  // The key (and its fingerprint hash) is built only when a cache
  // tier exists: with both tiers off the resilient path must spend
  // nothing on cache bookkeeping and emit no cache.* telemetry.
  if (cache_ && !is_quarantined(request.assignment)) {
    const EvalCache::Key cache_key{pending->key, options.rep_base,
                                   cache_salt_, options.repetitions,
                                   options.instrumented};
    double saved = 0.0;
    if (cache_->lookup(cache_key, &out->outcome, &saved)) {
      if (!out->outcome.ok()) {
        // Rebuild quarantine state exactly as the re-run would have.
        note_failure(pending->key);
      }
      // The hit satisfies the same logical evaluations a re-run would
      // have performed; only the modeled cost moves to "saved".
      evaluations_.fetch_add(static_cast<std::size_t>(options.repetitions),
                             std::memory_order_relaxed);
      account_saved(saved);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::metrics()
            .counter("evaluator.evaluations")
            .add(static_cast<std::uint64_t>(options.repetitions));
      }
      out->served_by = EvalServedBy::kCacheHit;
      return true;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  double rerun_cost = 0.0;
  if (journal_ &&
      journal_->lookup(pending->key, options.rep_base, options.repetitions,
                       options.instrumented, &out->outcome, &rerun_cost)) {
    if (!out->outcome.ok() &&
        out->outcome.error.kind != EvalFault::kQuarantined) {
      // Rebuild quarantine state exactly as the original run did.
      note_failure(pending->key);
    }
    count_metric("journal.replayed");
    if (cache_ && out->outcome.error.kind != EvalFault::kQuarantined) {
      cache_->insert({pending->key, options.rep_base, cache_salt_,
                      options.repetitions, options.instrumented},
                     out->outcome, std::max(rerun_cost, 0.0));
    }
    out->served_by = EvalServedBy::kJournalReplay;
    return true;
  }

  plan_attempts(request.assignment, pending);
  if (pending->needs_run) return false;

  // Served without a real run (quarantine skip / injected permanent
  // failure): record it exactly as the monolithic path did.
  out->outcome = pending->outcome;
  out->served_by = EvalServedBy::kRun;
  if (journal_) {
    journal_->record({pending->key, options.rep_base, options.repetitions,
                      options.instrumented, out->outcome,
                      pending->rerun_cost});
    count_metric("journal.appended");
  }
  if (cache_ && out->outcome.error.kind != EvalFault::kQuarantined) {
    cache_->insert({pending->key, options.rep_base, cache_salt_,
                    options.repetitions, options.instrumented},
                   out->outcome, pending->rerun_cost);
  }
  return true;
}

void Evaluator::plan_attempts(const compiler::ModuleAssignment& assignment,
                              PendingRun* pending) {
  // pending->rerun_cost accumulates what re-running this exact
  // evaluation would charge: the object pool stays warm (0 compile
  // seconds) and the fault/noise streams are deterministic per
  // (key, rep_base, attempt), so every branch below knows its re-run
  // cost exactly.
  const std::uint64_t key = pending->key;
  if (is_quarantined(assignment)) {
    quarantine_hits_.fetch_add(1, std::memory_order_relaxed);
    count_metric("eval.quarantine_hits");
    pending->outcome.error = {EvalFault::kQuarantined, hex64(key)};
    pending->outcome.attempts = 0;
    return;
  }

  const machine::FaultModel& faults = engine_->fault_model();
  if (faults.enabled()) {
    // Compile ICEs are a permanent property of a CV's flag interaction:
    // fail without retrying and quarantine the CV itself, so later
    // assignments touching it are skipped before the compiler runs.
    const auto ice = [&](const flags::CompilationVector& cv) -> bool {
      if (!faults.compile_fails(cv.hash())) return false;
      {
        std::lock_guard lock(resilience_mutex_);
        quarantined_cvs_.insert(cv.hash());
      }
      has_quarantine_.store(true, std::memory_order_release);
      compile_failures_.fetch_add(1, std::memory_order_relaxed);
      count_metric("fault.compile_failures");
      // The ICE still burned one modeled module compile.
      account_overhead(overhead_model_.seconds_per_module_compile);
      pending->outcome.error = {EvalFault::kCompileFailure, hex64(cv.hash())};
      return true;
    };
    bool failed = ice(assignment.nonloop_cv);
    for (std::size_t j = 0; !failed && j < assignment.loop_cvs.size(); ++j) {
      failed = ice(assignment.loop_cvs[j]);
    }
    if (failed) {
      note_failure(key);
      return;
    }
  }

  const double budget = retry_policy_.eval_timeout_seconds;
  const machine::RunOptions& options = pending->options;
  for (int attempt = 0;; ++attempt) {
    const machine::FaultModel::RunFault fault =
        faults.run_fault(key, options.rep_base, attempt);
    if (fault == machine::FaultModel::RunFault::kNone) {
      // The fault stream cleared this attempt: exactly one real run
      // settles the evaluation (post_evaluate).
      pending->needs_run = true;
      pending->prior_attempts = attempt;
      return;
    }

    // Injected transient fault: account the modeled wall-clock it
    // burned, then retry with deterministic exponential backoff.
    if (fault == machine::FaultModel::RunFault::kCrash) {
      run_crashes_.fetch_add(1, std::memory_order_relaxed);
      count_metric("fault.run_crashes");
      account_overhead(overhead_model_.link_seconds);
      pending->rerun_cost += overhead_model_.link_seconds;
    } else {
      run_timeouts_.fetch_add(1, std::memory_order_relaxed);
      count_metric("fault.run_timeouts");
      const double burned =
          budget > 0.0 ? budget : overhead_model_.link_seconds;
      account_overhead(burned);
      pending->rerun_cost += burned;
    }
    if (attempt >= retry_policy_.max_retries) {
      pending->outcome.attempts = attempt + 1;
      pending->outcome.error = {
          fault == machine::FaultModel::RunFault::kCrash
              ? EvalFault::kRunCrash
              : EvalFault::kRunTimeout,
          "retries exhausted"};
      note_failure(key);
      return;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    count_metric("eval.retries");
    const double backoff = retry_policy_.backoff_seconds *
                           static_cast<double>(1 << std::min(attempt, 16));
    account_overhead(backoff);
    pending->rerun_cost += backoff;
  }
}

void Evaluator::post_evaluate(PendingRun* pending,
                              const EvalBackend::RawResult& raw,
                              EvalResponse* out) {
  const machine::RunOptions& options = pending->options;
  account(raw.modules_compiled, raw.result.end_to_end, options.repetitions);
  out->modules_compiled = raw.modules_compiled;
  out->served_by = EvalServedBy::kRun;
  if (pending->fast) {
    out->outcome.result = raw.result;
    return;
  }

  out->outcome.result = raw.result;
  out->outcome.attempts = pending->prior_attempts + 1;
  // A re-run charges no compile time (objects pooled) but still pays
  // the link and the measured runtime - even on a budget overrun,
  // which re-measures before failing.
  pending->rerun_cost += overhead_model_.link_seconds +
                         raw.result.end_to_end * options.repetitions;
  const double budget = retry_policy_.eval_timeout_seconds;
  if (budget > 0.0 && raw.result.end_to_end > budget) {
    // Genuine budget overrun. Measurements are deterministic per rep
    // key, so retrying would reproduce it - fail immediately.
    run_timeouts_.fetch_add(1, std::memory_order_relaxed);
    count_metric("fault.run_timeouts");
    out->outcome.result = machine::RunResult{};
    out->outcome.error = {EvalFault::kRunTimeout, "budget exceeded"};
    note_failure(pending->key);
  }

  if (journal_) {
    journal_->record({pending->key, options.rep_base, options.repetitions,
                      options.instrumented, out->outcome,
                      pending->rerun_cost});
    count_metric("journal.appended");
  }
  if (cache_ && out->outcome.error.kind != EvalFault::kQuarantined) {
    const EvalCache::Key cache_key{pending->key, options.rep_base,
                                   cache_salt_, options.repetitions,
                                   options.instrumented};
    cache_->insert(cache_key, out->outcome, pending->rerun_cost);
  }
}

EvalResponse Evaluator::evaluate_one(const EvalRequest& request) {
  EvalResponse response;
  PendingRun pending;
  if (pre_evaluate(request, &response, &pending)) return response;
  const EvalBackend::RawResult raw =
      raw_run(request.assignment, pending.options);
  post_evaluate(&pending, raw, &response);
  return response;
}

EvalResponse Evaluator::evaluate(const EvalRequest& request,
                                 const EvalTrace& trace) {
  telemetry::Span span;
  if (trace.leaf_spans && telemetry::enabled()) {
    const std::string_view name =
        trace.label.empty() ? std::string_view("eval") : trace.label;
    span = trace.parent_span != 0
               ? telemetry::tracer().begin_under(trace.parent_span, name)
               : telemetry::tracer().begin(name);
    span.attr("rep_base", request.rep_base)
        .attr("instrumented", std::int64_t{request.instrumented});
  }
  const EvalResponse response = evaluate_one(request);
  if (span) {
    span.attr("seconds", response.seconds());
    if (!response.ok()) {
      span.attr("fault", to_string(response.outcome.error.kind));
    }
  }
  return response;
}

std::vector<EvalResponse> Evaluator::evaluate_batch(
    const std::vector<EvalRequest>& requests, const EvalTrace& trace) {
  // One batch-level span from the calling thread: per-evaluation spans
  // inside the pool would interleave non-deterministically.
  telemetry::Span span;
  if (telemetry::enabled()) {
    const std::string_view name = trace.label.empty()
                                      ? std::string_view("evaluate_batch")
                                      : trace.label;
    span = trace.parent_span != 0
               ? telemetry::tracer().begin_under(trace.parent_span, name)
               : telemetry::tracer().begin(name);
    span.attr("count", static_cast<std::uint64_t>(requests.size()));
    if (!requests.empty()) {
      span.attr("rep_base", requests.front().rep_base)
          .attr("instrumented",
                std::int64_t{requests.front().instrumented});
    }
  }
  std::vector<EvalResponse> responses(requests.size());
  // Quarantines queued by earlier phases take effect at this
  // deterministic boundary; none are applied mid-batch, so whether an
  // evaluation is skipped never depends on worker scheduling.
  begin_parallel_region();
  if (backend_ && backend_->batches_remotely()) {
    // Coalesced path: the sequential pre-pass resolves replays and
    // injected faults locally, then every evaluation that still needs
    // a real measurement rides a single run_many() wire call.
    std::vector<PendingRun> pendings(requests.size());
    std::vector<std::size_t> to_run;
    std::vector<EvalRequest> raw_requests;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!pre_evaluate(requests[i], &responses[i], &pendings[i])) {
        to_run.push_back(i);
        raw_requests.push_back(requests[i]);
      }
    }
    if (!to_run.empty()) {
      const std::vector<EvalBackend::RawResult> raws =
          backend_->run_many(raw_requests);
      for (std::size_t j = 0; j < to_run.size(); ++j) {
        const std::size_t i = to_run[j];
        post_evaluate(&pendings[i], raws[j], &responses[i]);
      }
    }
  } else {
    support::parallel_for(requests.size(), [&](std::size_t i) {
      // Every variant usually shares the batch's rep_base: noise keys
      // mix in the executable fingerprint, so distinct variants stay
      // decorrelated while duplicate assignments measure identically
      // (the property the EvalCache's bit-identity contract rests on).
      responses[i] = evaluate_one(requests[i]);
    });
  }
  end_parallel_region();
  return responses;
}

double Evaluator::evaluate(const compiler::ModuleAssignment& assignment,
                           const EvalContext& context) {
  return try_evaluate(assignment, context).seconds_or(kInvalidSeconds);
}

EvalOutcome Evaluator::try_evaluate(
    const compiler::ModuleAssignment& assignment,
    const EvalContext& context) {
  EvalRequest request;
  request.assignment = assignment;
  request.rep_base = context.rep_base;
  request.instrumented = context.instrumented;
  EvalTrace trace = context.trace();
  return evaluate(request, trace).outcome;
}

EvalOutcome Evaluator::try_run(const compiler::ModuleAssignment& assignment,
                               const machine::RunOptions& options) {
  EvalRequest request;
  request.assignment = assignment;
  request.rep_base = options.rep_base;
  request.repetitions = options.repetitions;
  request.instrumented = options.instrumented;
  request.noise = options.noise;
  request.aggregate = options.aggregate;
  return evaluate_one(request).outcome;
}

void Evaluator::set_journal(std::shared_ptr<EvalJournal> journal) {
  journal_ = std::move(journal);
}

void Evaluator::set_eval_cache(std::shared_ptr<EvalCache> cache,
                               std::uint64_t salt) {
  cache_ = std::move(cache);
  cache_salt_ = salt;
}

void Evaluator::warm_cache_from_journal() {
  if (!cache_ || !journal_) return;
  journal_->for_each([this](const JournalRecord& record) {
    // Quarantine skips are never cached (see pre_evaluate); everything
    // else replays bit-identically. Legacy journals without the rerun
    // field warm with saved = 0 - conservatively under-reporting
    // savings rather than inventing them.
    if (record.outcome.error.kind == EvalFault::kQuarantined) return;
    cache_->insert({record.key, record.rep_base, cache_salt_,
                    record.repetitions, record.instrumented},
                   record.outcome, std::max(record.rerun_seconds, 0.0));
  });
}

ResilienceStats Evaluator::resilience_stats() const {
  ResilienceStats stats;
  stats.compile_failures =
      compile_failures_.load(std::memory_order_relaxed);
  stats.run_crashes = run_crashes_.load(std::memory_order_relaxed);
  stats.run_timeouts = run_timeouts_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.failed_evaluations =
      failed_evaluations_.load(std::memory_order_relaxed);
  stats.quarantine_hits = quarantine_hits_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(resilience_mutex_);
    stats.quarantined = quarantined_keys_.size() + quarantined_cvs_.size();
  }
  if (journal_) {
    stats.journal_replayed = journal_->replayed();
    stats.journal_appended = journal_->appended();
  }
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.cache_saved_seconds =
      saved_overhead_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<double> Evaluator::evaluate_batch(
    std::size_t count,
    const std::function<compiler::ModuleAssignment(std::size_t)>& make,
    const EvalContext& context) {
  // Materialize the requests up front (make() was already required to
  // be thread-safe and order-independent) and ride the unified batch
  // path.
  std::vector<EvalRequest> requests(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests[i].assignment = make(i);
    requests[i].rep_base = context.rep_base;
    requests[i].instrumented = context.instrumented;
  }
  EvalTrace trace = context.trace();
  trace.leaf_spans = false;  // workers never emit spans
  const std::vector<EvalResponse> responses = evaluate_batch(requests, trace);
  std::vector<double> seconds(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) seconds[i] = responses[i].seconds();
  return seconds;
}

double Evaluator::final_seconds(const compiler::ModuleAssignment& assignment,
                                int reps) {
  EvalRequest request;
  request.assignment = assignment;
  request.repetitions = reps;
  request.rep_base = rep_streams::kFinal;  // fresh noise vs. search runs
  if (engine_->fault_model().enabled()) {
    // Outlier spikes are in play: score with the trimmed mean so one
    // contaminated rep cannot flip a winner (plain mean otherwise, the
    // paper's protocol - keeps fault-free results bit-identical).
    request.aggregate = machine::Aggregation::kTrimmedMean;
  }
  return evaluate(request).outcome.seconds_or(kInvalidSeconds);
}

}  // namespace ft::core
