#include "core/evaluator.hpp"

#include "support/thread_pool.hpp"
#include "telemetry/metrics.hpp"

namespace ft::core {

Evaluator::Evaluator(machine::ExecutionEngine& engine,
                     const ir::InputSpec& input)
    : engine_(&engine), input_(&input) {}

void Evaluator::account(std::size_t modules_compiled, double run_seconds,
                        int reps) {
  evaluations_.fetch_add(static_cast<std::size_t>(reps),
                         std::memory_order_relaxed);
  // Only modules that actually hit the compiler (cache misses) cost
  // compile time: the tuning harness keeps previously built objects
  // around, so CFR's 1000 assembled variants reuse the ~top-X * J
  // object pool after the first few iterations.
  const double cost =
      static_cast<double>(modules_compiled) *
          overhead_model_.seconds_per_module_compile +
      overhead_model_.link_seconds + run_seconds * reps;
  double expected = modeled_overhead_.load(std::memory_order_relaxed);
  while (!modeled_overhead_.compare_exchange_weak(
      expected, expected + cost, std::memory_order_relaxed)) {
  }
  if (telemetry::enabled()) {
    static telemetry::Counter& evals =
        telemetry::metrics().counter("evaluator.evaluations");
    // Modeled overhead inherits the cache-miss attribution race, so it
    // is snapshot-only (never traced).
    static telemetry::Gauge& overhead = telemetry::metrics().gauge(
        "evaluator.modeled_overhead_seconds", /*deterministic=*/false);
    evals.add(static_cast<std::uint64_t>(reps));
    overhead.set(modeled_overhead_.load(std::memory_order_relaxed));
  }
}

double Evaluator::evaluate(const compiler::ModuleAssignment& assignment,
                           const EvalContext& context) {
  telemetry::Span span;
  if (context.leaf_spans && telemetry::enabled()) {
    const std::string_view name =
        context.label.empty() ? std::string_view("eval") : context.label;
    span = context.parent_span != 0
               ? telemetry::tracer().begin_under(context.parent_span, name)
               : telemetry::tracer().begin(name);
    span.attr("rep_base", context.rep_base)
        .attr("instrumented", std::int64_t{context.instrumented});
  }
  machine::RunOptions options;
  options.repetitions = 1;
  options.instrumented = context.instrumented;
  options.rep_base = context.rep_base;
  const double seconds = run(assignment, options).end_to_end;
  if (span) span.attr("seconds", seconds);
  return seconds;
}

machine::RunResult Evaluator::run(
    const compiler::ModuleAssignment& assignment,
    const machine::RunOptions& options) {
  // Engine and compiler are internally synchronized; this is safe from
  // evaluate_batch workers.
  compiler::Compiler& compiler = engine_->compiler();
  const std::size_t misses_before = compiler.cache_misses();
  const compiler::Executable exe =
      compiler.build(engine_->program(), assignment);
  // Under parallel batches the delta may misattribute individual
  // misses between concurrent evaluations, but the accumulated total
  // (what §4.3 reports) stays exact.
  const std::size_t compiled = compiler.cache_misses() - misses_before;
  const machine::RunResult result = engine_->run(exe, *input_, options);
  account(compiled, result.end_to_end, options.repetitions);
  return result;
}

std::vector<double> Evaluator::evaluate_batch(
    std::size_t count,
    const std::function<compiler::ModuleAssignment(std::size_t)>& make,
    const EvalContext& context) {
  // One batch-level span from the calling thread: per-evaluation spans
  // inside the pool would interleave non-deterministically.
  telemetry::Span span;
  if (telemetry::enabled()) {
    const std::string_view name = context.label.empty()
                                      ? std::string_view("evaluate_batch")
                                      : context.label;
    span = context.parent_span != 0
               ? telemetry::tracer().begin_under(context.parent_span, name)
               : telemetry::tracer().begin(name);
    span.attr("count", static_cast<std::uint64_t>(count))
        .attr("rep_base", context.rep_base)
        .attr("instrumented", std::int64_t{context.instrumented});
  }
  std::vector<double> seconds(count, 0.0);
  EvalContext worker = context;
  worker.leaf_spans = false;  // workers never emit spans (see above)
  worker.parent_span = 0;
  support::parallel_for(count, [&](std::size_t i) {
    EvalContext one = worker;
    one.rep_base = context.rep_base + i;
    seconds[i] = evaluate(make(i), one);
  });
  return seconds;
}

double Evaluator::final_seconds(const compiler::ModuleAssignment& assignment,
                                int reps) {
  machine::RunOptions options;
  options.repetitions = reps;
  options.rep_base = rep_streams::kFinal;  // fresh noise vs. search runs
  return run(assignment, options).end_to_end;
}

}  // namespace ft::core
