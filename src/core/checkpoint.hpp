// Checkpoint/resume for long tuning campaigns: a JSONL journal of
// completed evaluations plus periodic progress snapshots.
//
// Every evaluation the resilient path completes (success OR classified
// failure) is appended as one self-contained line keyed by
// (assignment+context fingerprint, noise rep_base, repetitions,
// instrumented). Because the whole stack is deterministic for a fixed
// seed, replaying the journal instead of re-running reproduces
// bit-identical search trajectories: `ftune tune --resume <journal>`
// continues a killed campaign and lands on exactly the result an
// uninterrupted run would have produced.
//
// The loader tolerates a torn tail (a line cut short by process death):
// it stops at the first malformed line and resumes from there. A
// config fingerprint in the header line guards against replaying a
// journal recorded under different tuning options.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "core/evaluator.hpp"

namespace ft::core {

struct FuncyTunerOptions;

/// Stable fingerprint of every option that changes measured values or
/// the evaluation schedule (seed, samples, noise, faults, retry...).
/// Journals refuse to resume under a different fingerprint.
[[nodiscard]] std::uint64_t options_fingerprint(
    const FuncyTunerOptions& options);

/// One journaled evaluation.
struct JournalRecord {
  std::uint64_t key = 0;       ///< Evaluator::assignment_key
  std::uint64_t rep_base = 0;  ///< noise-stream offset
  int repetitions = 1;
  bool instrumented = false;
  EvalOutcome outcome;  ///< caliper_report is not journaled
  /// Modeled seconds a re-run of this exact evaluation would charge
  /// (link + measured run time; compile objects are already pooled).
  /// Feeds the eval cache's charged/saved overhead split when a resume
  /// warms the cache from the journal. < 0 = unknown (legacy journal
  /// lines without the field).
  double rerun_seconds = -1.0;
};

class EvalJournal {
 public:
  /// Starts a fresh journal at `path` (truncates). Every record is
  /// flushed as soon as it is appended, so a killed process loses at
  /// most the in-flight evaluations.
  [[nodiscard]] static std::shared_ptr<EvalJournal> create(
      const std::string& path, std::uint64_t config_fingerprint);

  /// Loads completed records from `path` (ignoring a torn tail) and
  /// re-opens it for appending. Throws std::runtime_error when the
  /// file is unreadable or was recorded under a different config
  /// fingerprint (pass 0 to skip the check).
  [[nodiscard]] static std::shared_ptr<EvalJournal> resume(
      const std::string& path, std::uint64_t config_fingerprint);

  /// Replays a completed evaluation into `out` (and its modeled re-run
  /// cost into `rerun_seconds` when non-null; -1 when the journal line
  /// predates the field); false on miss. Thread-safe.
  [[nodiscard]] bool lookup(std::uint64_t key, std::uint64_t rep_base,
                            int repetitions, bool instrumented,
                            EvalOutcome* out,
                            double* rerun_seconds = nullptr);

  /// Visits every loaded/appended record (snapshot under the journal
  /// lock); used to warm an EvalCache on resume. Thread-safe.
  void for_each(const std::function<void(const JournalRecord&)>& visit);

  /// Appends one completed evaluation (and a snapshot line every
  /// `snapshot_interval` records) and flushes. Thread-safe.
  void record(const JournalRecord& record);

  /// Snapshot cadence in records (default 64; 0 disables snapshots).
  void set_snapshot_interval(std::size_t interval) noexcept {
    snapshot_interval_ = interval;
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Records loaded from disk at resume time.
  [[nodiscard]] std::size_t loaded() const noexcept { return loaded_; }
  /// Records appended by this process.
  [[nodiscard]] std::size_t appended() const noexcept { return appended_; }
  /// Lookup hits served so far.
  [[nodiscard]] std::size_t replayed() const noexcept { return replayed_; }

  /// Serializes one record as a journal line (exposed for tests).
  [[nodiscard]] static std::string encode(const JournalRecord& record);
  /// Parses a journal line; false for snapshots/headers/torn lines.
  [[nodiscard]] static bool decode(const std::string& line,
                                   JournalRecord* out);

 private:
  EvalJournal() = default;
  void write_locked(const std::string& line);

  using Key = std::tuple<std::uint64_t, std::uint64_t, int, bool>;
  struct Stored {
    EvalOutcome outcome;
    double rerun_seconds = -1.0;
  };

  std::string path_;
  std::mutex mutex_;
  std::map<Key, Stored> records_;
  std::unique_ptr<std::ofstream> out_;
  std::size_t snapshot_interval_ = 64;
  std::size_t since_snapshot_ = 0;
  std::size_t loaded_ = 0;
  std::size_t appended_ = 0;
  std::size_t ok_count_ = 0;
  std::size_t failed_count_ = 0;
  std::size_t replayed_ = 0;
};

}  // namespace ft::core
