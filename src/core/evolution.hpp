// Evolutionary per-loop search: an extension beyond the paper.
//
// CFR (Algorithm 1) re-samples per-module CVs independently within the
// pruned top-X spaces. That ignores what realized measurements reveal
// about *combinations* - which modules' choices conflict through the
// link. This extension replaces the blind re-sampling with a steady-
// state genetic algorithm over module assignments:
//   * genome     = one pruned-space index per module,
//   * crossover  = exchange per-module choices between two parents
//                  (module boundaries are the natural crossover points),
//   * mutation   = re-draw one module's choice from its pruned space,
//   * selection  = tournament on measured end-to-end runtime.
// Population seeding uses CFR-style independent samples, so the first
// generation IS plain CFR - everything after is learning about
// interference. Evaluated by `bench/extension_evolution`.
#pragma once

#include "core/collector.hpp"
#include "core/evaluator.hpp"
#include "core/outline.hpp"
#include "core/search.hpp"

namespace ft::core {

struct EvolutionOptions {
  std::size_t top_x = 10;        ///< pruned space per module (as CFR)
  std::size_t evaluations = 1000;  ///< total measurement budget
  std::size_t population = 32;
  double crossover_rate = 0.7;
  double mutation_rate = 0.25;
  std::uint64_t seed = 42;
  /// Optional solver-provided start: one collection.cvs index per
  /// module, installed as individual 0 of generation 0 (the staged
  /// search seeds its surrogate pick here). Empty = fully random
  /// gen-0, bit-identical to the pre-seeding behavior. Ignored (with
  /// a warning) when the size does not match the module count or an
  /// index is out of range.
  std::vector<std::size_t> seed_genome;
};

/// Runs the per-loop evolutionary search. Reports algorithm "EvoCFR".
[[nodiscard]] TuningResult evolutionary_search(Evaluator& evaluator,
                                               const Outline& outline,
                                               const Collection& collection,
                                               const EvolutionOptions& options,
                                               double baseline_seconds);

}  // namespace ft::core
