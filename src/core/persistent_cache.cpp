#include "core/persistent_cache.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "support/crc32.hpp"
#include "telemetry/metrics.hpp"

namespace ft::core {

namespace fs = std::filesystem;

namespace {

/// Disk-tier telemetry is reporting-only (hit/miss depends on what
/// other processes left behind), so every metric is non-deterministic
/// (snapshot-only, never traced).
void count_metric(const char* name, std::uint64_t n = 1) {
  if (!telemetry::enabled()) return;
  telemetry::metrics().counter(name, /*deterministic=*/false).add(n);
}

constexpr char kMagic[4] = {'F', 'T', 'C', '1'};
constexpr std::size_t kMaxStringBytes = 1u << 20;
constexpr std::size_t kMaxLoops = 1u << 20;

void put_u32(std::string* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void put_double(std::string* out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader over an entry body.
struct Reader {
  std::string_view bytes;
  std::size_t at = 0;

  [[nodiscard]] bool u8(std::uint8_t* out) {
    if (at + 1 > bytes.size()) return false;
    *out = static_cast<std::uint8_t>(bytes[at++]);
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t* out) {
    if (at + 4 > bytes.size()) return false;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[at + i]))
               << (8 * i);
    }
    at += 4;
    *out = value;
    return true;
  }
  [[nodiscard]] bool u64(std::uint64_t* out) {
    if (at + 8 > bytes.size()) return false;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[at + i]))
               << (8 * i);
    }
    at += 8;
    *out = value;
    return true;
  }
  [[nodiscard]] bool real(double* out) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  [[nodiscard]] bool str(std::string* out, std::size_t cap) {
    std::uint32_t length = 0;
    if (!u32(&length) || length > cap || at + length > bytes.size()) {
      return false;
    }
    out->assign(bytes.data() + at, length);
    at += length;
    return true;
  }
};

std::string hex(std::uint64_t value, int width) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%0*llx", width,
                static_cast<unsigned long long>(value));
  return buffer;
}

/// True for final entry names (16 hex chars) - temp and quarantine
/// files never match, so scans and eviction skip them.
bool is_entry_name(const std::string& name) {
  if (name.size() != 16) return false;
  for (const char c : name) {
    const bool ok =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

/// write(2) the whole span, tolerating partial writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string PersistentCache::encode_entry(const EvalCache::Key& key,
                                          const EvalOutcome& outcome,
                                          double rerun_seconds) {
  std::string body;
  body.reserve(128 + outcome.result.loop_seconds.size() * 8);
  body.append(kMagic, sizeof(kMagic));
  put_u64(&body, key.assignment);
  put_u64(&body, key.rep_base);
  put_u64(&body, key.salt);
  put_u32(&body, static_cast<std::uint32_t>(key.repetitions));
  body.push_back(key.instrumented ? 1 : 0);
  body.push_back(static_cast<char>(outcome.error.kind));
  put_u32(&body, static_cast<std::uint32_t>(outcome.attempts));
  put_u32(&body, static_cast<std::uint32_t>(outcome.error.detail.size()));
  body.append(outcome.error.detail);
  put_double(&body, outcome.result.end_to_end);
  put_double(&body, outcome.result.stddev);
  put_double(&body, outcome.result.derived_nonloop_seconds);
  put_u32(&body,
          static_cast<std::uint32_t>(outcome.result.loop_seconds.size()));
  for (const double seconds : outcome.result.loop_seconds) {
    put_double(&body, seconds);
  }
  put_double(&body, rerun_seconds);
  put_u32(&body, support::crc32(body));
  return body;
}

bool PersistentCache::decode_entry(std::string_view bytes,
                                   EvalCache::Key* key, EvalOutcome* outcome,
                                   double* rerun_seconds) {
  if (bytes.size() < sizeof(kMagic) + 4) return false;
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  Reader trailer{bytes, bytes.size() - 4};
  std::uint32_t declared = 0;
  if (!trailer.u32(&declared) || support::crc32(body) != declared) {
    return false;
  }
  if (std::memcmp(body.data(), kMagic, sizeof(kMagic)) != 0) return false;

  Reader in{body, sizeof(kMagic)};
  std::uint32_t repetitions = 0, attempts = 0;
  std::uint8_t instrumented = 0, fault = 0;
  EvalCache::Key decoded;
  EvalOutcome result;
  if (!in.u64(&decoded.assignment) || !in.u64(&decoded.rep_base) ||
      !in.u64(&decoded.salt) || !in.u32(&repetitions) ||
      !in.u8(&instrumented) || !in.u8(&fault) || !in.u32(&attempts)) {
    return false;
  }
  decoded.repetitions = static_cast<int>(repetitions);
  decoded.instrumented = instrumented != 0;
  if (fault > static_cast<std::uint8_t>(EvalFault::kQuarantined)) {
    return false;
  }
  result.error.kind = static_cast<EvalFault>(fault);
  result.attempts = static_cast<int>(attempts);
  if (!in.str(&result.error.detail, kMaxStringBytes)) return false;
  std::uint32_t loops = 0;
  if (!in.real(&result.result.end_to_end) ||
      !in.real(&result.result.stddev) ||
      !in.real(&result.result.derived_nonloop_seconds) ||
      !in.u32(&loops) || loops > kMaxLoops) {
    return false;
  }
  result.result.loop_seconds.resize(loops);
  for (std::uint32_t j = 0; j < loops; ++j) {
    if (!in.real(&result.result.loop_seconds[j])) return false;
  }
  double rerun = 0.0;
  if (!in.real(&rerun) || in.at != body.size()) return false;

  *key = decoded;
  *outcome = std::move(result);
  if (rerun_seconds != nullptr) *rerun_seconds = rerun;
  return true;
}

PersistentCache::PersistentCache(Options options)
    : options_(std::move(options)),
      max_bytes_(options_.max_bytes != 0 ? options_.max_bytes
                                         : kDefaultMaxBytes) {
  if (options_.dir.empty()) {
    throw std::runtime_error("persistent cache: empty directory");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  fs::create_directories(fs::path(options_.dir) / "corrupt", ec);
  if (!fs::is_directory(options_.dir)) {
    throw std::runtime_error("persistent cache: cannot create " +
                             options_.dir);
  }

  // Seed the byte accounting and sweep temp litter left by crashed
  // writers. Only stale temps (>60s old) go: a live writer's temp may
  // be mid-protocol in another process.
  const auto now = fs::file_time_type::clock::now();
  std::size_t bytes = 0, entries = 0;
  for (const auto& shard : fs::directory_iterator(options_.dir, ec)) {
    if (!shard.is_directory(ec) || shard.path().filename() == "corrupt") {
      continue;
    }
    for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
      const std::string name = file.path().filename().string();
      if (is_entry_name(name)) {
        bytes += static_cast<std::size_t>(file.file_size(ec));
        ++entries;
      } else {
        const auto age = now - file.last_write_time(ec);
        if (age > std::chrono::seconds(60)) fs::remove(file.path(), ec);
      }
    }
  }
  bytes_.store(bytes, std::memory_order_relaxed);
  entries_.store(entries, std::memory_order_relaxed);
}

std::string PersistentCache::shard_dir(std::uint64_t fingerprint) const {
  return options_.dir + "/" + hex(fingerprint & 0xFF, 2);
}

std::string PersistentCache::entry_path(const EvalCache::Key& key) const {
  const std::uint64_t fingerprint = key.fingerprint();
  return shard_dir(fingerprint) + "/" + hex(fingerprint, 16);
}

void PersistentCache::quarantine(const std::string& path) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  count_metric("cache.disk.rejected");
  const std::string target = options_.dir + "/corrupt/" +
                             fs::path(path).filename().string() + "." +
                             std::to_string(::getpid()) + "." +
                             std::to_string(tmp_seq_.fetch_add(1));
  // rename keeps the bytes for forensics; if it fails (already moved
  // by a racing reader) just drop the file from the serving set.
  if (::rename(path.c_str(), target.c_str()) != 0) {
    std::error_code ec;
    fs::remove(path, ec);
  }
}

bool PersistentCache::lookup(const EvalCache::Key& key, EvalOutcome* out,
                             double* rerun_seconds) {
  const std::string path = entry_path(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      count_metric("cache.disk.misses");
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }

  EvalCache::Key decoded;
  EvalOutcome outcome;
  double rerun = 0.0;
  if (!decode_entry(bytes, &decoded, &outcome, &rerun)) {
    quarantine(path);
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_metric("cache.disk.misses");
    return false;
  }
  if (!(decoded == key)) {
    // Genuine 64-bit fingerprint collision: the entry is valid, just
    // not ours. Leave it for its owner.
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_metric("cache.disk.misses");
    return false;
  }

  // Bump recency for the cross-process LRU (mtime is the eviction
  // order). Best-effort: a racing eviction may have unlinked the path.
  (void)::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
  *out = std::move(outcome);
  if (rerun_seconds != nullptr) *rerun_seconds = rerun;
  hits_.fetch_add(1, std::memory_order_relaxed);
  count_metric("cache.disk.hits");
  return true;
}

void PersistentCache::insert(const EvalCache::Key& key,
                             const EvalOutcome& outcome,
                             double rerun_seconds) {
  const std::uint64_t fingerprint = key.fingerprint();
  const std::string shard = shard_dir(fingerprint);
  const std::string path = shard + "/" + hex(fingerprint, 16);

  // Deterministic stack: an existing entry for this key is
  // byte-identical to what we would write. Skip the I/O.
  struct ::stat existing{};
  if (::stat(path.c_str(), &existing) == 0) return;

  std::error_code ec;
  fs::create_directories(shard, ec);

  const std::string body = encode_entry(key, outcome, rerun_seconds);
  const std::string tmp = shard + "/tmp-" + hex(fingerprint, 16) + "-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(tmp_seq_.fetch_add(1));

  // temp (O_EXCL) -> write -> fsync -> rename: the all-or-nothing
  // protocol. The hook() calls are the crash-consistency test seams -
  // a forked writer _exit()s at one step per sweep.
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return;  // best-effort tier: never fail the evaluation
  hook("tmp-open");
  const std::size_t half = body.size() / 2;
  bool ok = write_all(fd, body.data(), half);
  if (ok) hook("half-write");
  ok = ok && write_all(fd, body.data() + half, body.size() - half);
  if (ok) hook("write");
  ok = ok && ::fsync(fd) == 0;
  if (ok) hook("sync");
  ::close(fd);
  ok = ok && ::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    ::unlink(tmp.c_str());
    return;
  }
  hook("rename");
  // Persist the rename itself: fsync the shard directory so the entry
  // survives power loss, not just process death.
  const int dirfd = ::open(shard.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
  hook("dir-sync");

  insertions_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t total =
      bytes_.fetch_add(body.size(), std::memory_order_relaxed) +
      body.size();
  count_metric("cache.disk.insertions");
  if (telemetry::enabled()) {
    telemetry::metrics()
        .gauge("cache.disk.bytes", /*deterministic=*/false)
        .set(static_cast<double>(total));
  }

  if (total > max_bytes_) {
    const std::size_t since =
        inserts_since_check_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (since >= options_.evict_check_interval || total > max_bytes_ * 2) {
      evict_over_budget();
    }
  }
}

void PersistentCache::evict_over_budget() {
  std::unique_lock lock(evict_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another thread is already at it
  inserts_since_check_.store(0, std::memory_order_relaxed);

  struct Candidate {
    fs::file_time_type mtime;
    std::size_t size = 0;
    std::string path;
  };
  std::vector<Candidate> candidates;
  std::size_t total = 0;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(options_.dir, ec)) {
    if (!shard.is_directory(ec) || shard.path().filename() == "corrupt") {
      continue;
    }
    for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
      if (!is_entry_name(file.path().filename().string())) continue;
      Candidate candidate;
      candidate.size = static_cast<std::size_t>(file.file_size(ec));
      candidate.mtime = file.last_write_time(ec);
      candidate.path = file.path().string();
      total += candidate.size;
      candidates.push_back(std::move(candidate));
    }
  }

  const std::size_t target = max_bytes_ - max_bytes_ / 10;  // 90%
  if (total > target) {
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    for (const Candidate& victim : candidates) {
      if (total <= target) break;
      if (!fs::remove(victim.path, ec) || ec) continue;
      total -= std::min(total, victim.size);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      count_metric("cache.disk.evictions");
    }
  }
  // The rescan total is authoritative; racing processes drift the
  // running counter, this snaps it back.
  bytes_.store(total, std::memory_order_relaxed);
}

PersistentCacheStats PersistentCache::stats() const {
  PersistentCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ft::core
