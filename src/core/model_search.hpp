// Model-guided search family (beyond the paper; see PAPERS.md):
//   bo     - Bayesian optimization over the per-module CV space: an
//            exact Gaussian-process surrogate (RBF kernel over
//            normalized per-module flag choices) with expected-
//            improvement acquisition over seeded candidate pools.
//            Wu et al. tune Polly/PolyBench this way; here the design
//            point is per-loop, so the GP input is the concatenation
//            of every module's choices.
//   group  - group-aware search in the spirit of GroupTuner: instead
//            of mutating single flags, each step re-draws a small set
//            of flags inside ONE semantic group (loop structure,
//            vectorization, memory, interprocedural, backend) of one
//            module. Group selection is weighted by journal-measured
//            co-importance (main-effect spreads computed from the
//            training corpus); with no corpus the weights are uniform
//            and the groups are definition-only.
//   staged - two-stage solver-seeded search (Odyssey's MP-then-genetic
//            flow): fit a cheap ridge surrogate on the journaled/
//            cached corpus, pick the per-module argmin over the
//            pruned top-X candidates as a seed genome, then refine
//            with the existing evolutionary machinery. With an empty
//            corpus it degrades to plain evolutionary search (logged,
//            never a crash).
//
// All three are deterministic for a fixed seed and measure through
// the same Evaluator currency as every other search, so the usual
// contracts (cache-on/off, local/remote/fleet, journal-resume
// bit-identity) hold by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/collector.hpp"
#include "core/evaluator.hpp"
#include "core/outline.hpp"
#include "core/search.hpp"
#include "core/search_registry.hpp"

namespace ft::core {

/// Extras keys the model-guided family reports.
inline constexpr const char* kExtraSurrogateObservations =
    "surrogate_observations";  ///< training points the final model saw
inline constexpr const char* kExtraCorpusSize = "corpus_size";
inline constexpr const char* kExtraStagedSeeded =
    "staged_seeded";  ///< 1 when the surrogate picked the seed genome
inline constexpr const char* kExtraStagedSeedPredicted =
    "staged_seed_predicted_seconds";  ///< surrogate's estimate of the seed

struct BoOptions {
  std::size_t iterations = 60;  ///< total measurements (incl. warmup)
  std::size_t warmup = 8;       ///< seeded random probes before the GP
  std::size_t candidates = 64;  ///< acquisition pool size per step
  std::string acquisition = "ei";  ///< "ei" | "mean"
  double length_scale = 1.0;    ///< RBF length scale (per-dim scaled)
  std::uint64_t seed = 42;
};

/// Bayesian optimization over per-module assignments drawn from the
/// pre-sampled CV set. `corpus` (optional) warm-starts the surrogate
/// with prior uniform measurements at zero measurement cost.
[[nodiscard]] TuningResult bo_search(
    Evaluator& evaluator, const Outline& outline,
    std::span<const flags::CompilationVector> presampled,
    const BoOptions& options, double baseline_seconds,
    const Corpus* corpus = nullptr);

struct GroupOptions {
  std::size_t iterations = 120;  ///< measurements (the start costs one)
  std::size_t group_size = 3;    ///< max flags re-drawn per step
  std::uint64_t seed = 42;
  std::size_t patience = 0;      ///< early stop; 0 = fixed budget
};

/// Group-aware hill climb from the O3 default: each step mutates up
/// to `group_size` flags of one semantic flag group of one module.
/// `corpus` (optional) weights group choice by measured co-importance.
[[nodiscard]] TuningResult group_search(
    Evaluator& evaluator, const Outline& outline,
    const GroupOptions& options, double baseline_seconds,
    const Corpus* corpus = nullptr);

struct StagedOptions {
  std::size_t top_x = 10;         ///< pruned space per module (as CFR)
  std::size_t iterations = 1000;  ///< total measurement budget
  std::uint64_t seed = 42;
};

/// Two-stage search: corpus-trained ridge surrogate seeds the start,
/// evolutionary search refines. Empty corpus → evolutionary-only.
[[nodiscard]] TuningResult staged_search(Evaluator& evaluator,
                                         const Outline& outline,
                                         const Collection& collection,
                                         const Corpus& corpus,
                                         const StagedOptions& options,
                                         double baseline_seconds);

/// Semantic flag groups of `space` (indices into space.specs()), in a
/// fixed category order: loop structure, vectorization, memory,
/// interprocedural, backend. Every flag lands in exactly one group;
/// empty groups are dropped. Exposed for tests and the group search.
[[nodiscard]] std::vector<std::vector<std::size_t>> semantic_flag_groups(
    const flags::FlagSpace& space);

}  // namespace ft::core
