#include "core/eval_cache.hpp"

#include <algorithm>

#include "core/persistent_cache.hpp"
#include "telemetry/metrics.hpp"

namespace ft::core {

namespace {

/// Cache telemetry is reporting-only: hits/misses depend on eviction
/// order and on in-batch races between duplicate evaluations, so every
/// cache.* metric is registered non-deterministic (snapshot-only,
/// never traced).
void count_metric(const char* name, std::uint64_t n = 1) {
  if (!telemetry::enabled()) return;
  telemetry::metrics().counter(name, /*deterministic=*/false).add(n);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t payload_bytes(const EvalOutcome& outcome) {
  return sizeof(EvalCache::Key) + sizeof(EvalOutcome) +
         outcome.result.loop_seconds.size() * sizeof(double) +
         outcome.error.detail.size();
}

}  // namespace

std::uint64_t EvalCache::Key::fingerprint(unsigned bits) const noexcept {
  // splitmix64-style finalization over the folded fields; the fold
  // constants keep (assignment, rep_base) and (rep_base, assignment)
  // from cancelling.
  std::uint64_t h = assignment;
  h ^= rep_base * 0x9e3779b97f4a7c15ULL;
  h ^= salt * 0xc2b2ae3d27d4eb4fULL;
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(repetitions))
        << 1) |
       static_cast<std::uint64_t>(instrumented);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  if (bits >= 64) return h;
  return h & ((std::uint64_t{1} << bits) - 1);
}

EvalCache::EvalCache(const Options& options)
    : max_entries_(std::max<std::size_t>(options.max_entries, 1)),
      hash_bits_(options.hash_bits),
      shards_(round_up_pow2(std::max<std::size_t>(options.shards, 1))) {
  shard_mask_ = shards_.size() - 1;
  per_shard_capacity_ =
      std::max<std::size_t>(max_entries_ / shards_.size(), 1);
}

bool EvalCache::lookup(const Key& key, EvalOutcome* out,
                       double* rerun_seconds) {
  const std::uint64_t fingerprint = key.fingerprint(hash_bits_);
  Shard& shard = shard_for(fingerprint);
  {
    std::lock_guard lock(shard.mutex);
    const auto chain = shard.index.find(fingerprint);
    if (chain != shard.index.end()) {
      for (const Lru::iterator it : chain->second) {
        if (!(it->key == key)) continue;  // fingerprint collision
        *out = it->outcome;
        if (rerun_seconds != nullptr) *rerun_seconds = it->rerun_seconds;
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        count_metric("cache.hits");
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  count_metric("cache.misses");

  // Second tier: a disk hit is promoted into the memory tier
  // (memory-only - the entry is already on disk) so the hot key stops
  // paying file I/O.
  if (disk_ != nullptr) {
    EvalOutcome from_disk;
    double rerun = 0.0;
    if (disk_->lookup(key, &from_disk, &rerun)) {
      insert_memory(key, from_disk, rerun);
      *out = std::move(from_disk);
      if (rerun_seconds != nullptr) *rerun_seconds = rerun;
      return true;
    }
  }
  return false;
}

void EvalCache::attach_disk(std::shared_ptr<PersistentCache> disk) {
  disk_ = std::move(disk);
}

void EvalCache::insert(const Key& key, const EvalOutcome& outcome,
                       double rerun_seconds) {
  const bool fresh = insert_memory(key, outcome, rerun_seconds);
  // Write-through happens outside the shard mutex; PersistentCache
  // does its own dedupe (an on-disk entry for this key is
  // byte-identical by the determinism contract).
  if (fresh && disk_ != nullptr) {
    EvalOutcome stripped = outcome;
    stripped.result.caliper_report.clear();
    disk_->insert(key, stripped, rerun_seconds);
  }
}

bool EvalCache::insert_memory(const Key& key, const EvalOutcome& outcome,
                              double rerun_seconds) {
  const std::uint64_t fingerprint = key.fingerprint(hash_bits_);
  Shard& shard = shard_for(fingerprint);
  std::lock_guard lock(shard.mutex);

  if (const auto chain = shard.index.find(fingerprint);
      chain != shard.index.end()) {
    for (const Lru::iterator it : chain->second) {
      if (it->key == key) {
        // Duplicate insert (two batch workers raced on the same
        // assignment, or a journal warm overlapped appended records):
        // the deterministic stack guarantees equal payloads, so just
        // refresh recency.
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        return false;
      }
    }
  }

  Entry entry;
  entry.key = key;
  entry.outcome = outcome;
  // Mirror the checkpoint journal: Caliper text is never part of the
  // replayed outcome (no consumer reads it back), so drop it here too.
  entry.outcome.result.caliper_report.clear();
  entry.rerun_seconds = rerun_seconds;
  entry.bytes = payload_bytes(entry.outcome);

  // Evict BEFORE touching shard.index[fingerprint]: eviction may erase
  // that exact map node (victim shares the fingerprint and its chain
  // empties), which would dangle a reference taken earlier.
  if (shard.lru.size() >= per_shard_capacity_) evict_locked(shard);
  shard.lru.push_front(std::move(entry));
  shard.index[fingerprint].push_back(shard.lru.begin());

  insertions_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(shard.lru.front().bytes, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    telemetry::metrics()
        .gauge("cache.bytes", /*deterministic=*/false)
        .set(static_cast<double>(bytes_.load(std::memory_order_relaxed)));
    telemetry::metrics()
        .gauge("cache.entries", /*deterministic=*/false)
        .set(static_cast<double>(entries_.load(std::memory_order_relaxed)));
  }
  return true;
}

void EvalCache::evict_locked(Shard& shard) {
  const Lru::iterator victim = std::prev(shard.lru.end());
  const std::uint64_t fingerprint = victim->key.fingerprint(hash_bits_);
  const auto chain = shard.index.find(fingerprint);
  if (chain != shard.index.end()) {
    auto& entries = chain->second;
    entries.erase(std::remove(entries.begin(), entries.end(), victim),
                  entries.end());
    if (entries.empty()) shard.index.erase(chain);
  }
  bytes_.fetch_sub(victim->bytes, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  count_metric("cache.evictions");
  shard.lru.erase(victim);
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ft::core
