// The FuncyTuner per-loop runtime collection framework (paper Fig 4):
// compile the whole program uniformly with each of the K pre-sampled
// CVs, run the Caliper-instrumented variant, and record per-loop
// runtimes T[j][k]. Non-loop time cannot be measured directly (§3.3);
// it is derived as end-to-end minus the sum of hot-loop times.
#pragma once

#include <span>
#include <vector>

#include "core/evaluator.hpp"
#include "core/outline.hpp"
#include "flags/compilation_vector.hpp"

namespace ft::core {

struct Collection {
  /// The K pre-sampled CVs (shared by FR, G and CFR).
  std::vector<flags::CompilationVector> cvs;
  /// loop_times[j][k]: runtime of hot loop j under uniform CV k.
  std::vector<std::vector<double>> loop_times;
  /// Derived non-loop (rest) time per CV.
  std::vector<double> rest_times;
  /// End-to-end time per CV.
  std::vector<double> end_to_end;

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return cvs.size();
  }
};

/// Runs the collection phase (parallel across CVs, deterministic).
[[nodiscard]] Collection collect_per_loop_runtimes(
    Evaluator& evaluator, const Outline& outline,
    std::span<const flags::CompilationVector> cvs);

}  // namespace ft::core
