// FuncyTuner façade: owns the whole per-loop compilation stack for one
// (program, architecture) pair - flag space, compiler, execution
// engine, profiler, collection phase and the four search algorithms -
// and exposes the introspection the paper's figures need (per-loop
// speedups for Fig 9, codegen decision summaries for Table 3, and
// cross-input evaluation for Figs 7 and 8).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "core/evaluator.hpp"
#include "core/outline.hpp"
#include "core/search.hpp"
#include "core/search_registry.hpp"
#include "flags/spaces.hpp"
#include "machine/execution_engine.hpp"

namespace ft::core {

struct FuncyTunerOptions {
  std::size_t samples = 1000;   ///< pre-sampled CVs (paper: 1000)
  std::size_t top_x = 10;       ///< CFR pruned-space size
  std::uint64_t seed = 42;
  double hot_threshold = 0.01;  ///< outline loops >= 1% of runtime
  int final_reps = 10;          ///< reporting protocol (§4.1)
  double noise_sigma_rel = 0.008;
  /// Extra error on per-region Caliper readings (§3.3 noise-tolerance
  /// claim; see ExecutionEngine). The noise ablation sweeps this.
  double attribution_sigma = 0.03;
  /// CFR convergence-based early stop (CfrOptions::patience); 0 runs
  /// the paper's fixed-budget protocol.
  std::size_t patience = 0;
  /// Fault injection (off by default: rate 0 leaves every existing
  /// result bit-identical).
  machine::FaultConfig faults;
  /// Retry/quarantine/timeout policy for the resilient evaluation path.
  RetryPolicy retry;
  /// Memoize completed evaluations in a content-addressed EvalCache
  /// (bit-identical results, redundant modeled cost moved from
  /// "charged" to "saved"). Off by default.
  bool eval_cache = false;
  /// LRU bound for the cache; 0 = EvalCache::kDefaultMaxEntries.
  std::size_t eval_cache_entries = 0;
  /// Directory for the disk-backed second cache tier, shared across
  /// processes (core/persistent_cache.hpp). Empty = memory tier only.
  /// Setting a dir implies a memory tier even when eval_cache is
  /// false. Excluded from options_fingerprint: where entries live
  /// never changes what they contain.
  std::string eval_cache_dir;
  /// Size budget for the disk tier in bytes;
  /// 0 = PersistentCache::kDefaultMaxBytes.
  std::size_t eval_cache_disk_bytes = 0;
  /// Per-algorithm namespaced knobs: registry key → option tokens in
  /// `--knob=value` form, exactly as the user's `--<algo>:<knob>`
  /// flags were given (SearchAlgorithm::options() declares the
  /// schema). Mixed into options_fingerprint only when non-empty, so
  /// existing journals/caches recorded without namespaced knobs stay
  /// resumable.
  std::map<std::string, std::vector<std::string>> algorithm_options;
};

class FuncyTuner {
 public:
  FuncyTuner(ir::Program program, machine::Architecture arch,
             FuncyTunerOptions options = {},
             compiler::Personality personality = compiler::Personality::kIcc);

  // Non-movable: the internal engine/evaluator hold stable pointers.
  FuncyTuner(const FuncyTuner&) = delete;
  FuncyTuner& operator=(const FuncyTuner&) = delete;

  [[nodiscard]] const ir::Program& program() const noexcept {
    return program_;
  }
  [[nodiscard]] const flags::FlagSpace& space() const noexcept {
    return space_;
  }
  [[nodiscard]] Evaluator& evaluator() noexcept { return *evaluator_; }

  /// Attaches a (possibly cross-tuner shared) evaluation cache, salted
  /// with this tuner's options fingerprint so tuners with different
  /// noise/fault configs can never alias each other's entries.
  void set_eval_cache(std::shared_ptr<EvalCache> cache);
  [[nodiscard]] const std::shared_ptr<EvalCache>& eval_cache()
      const noexcept;
  [[nodiscard]] machine::ExecutionEngine& engine() noexcept {
    return *engine_;
  }
  [[nodiscard]] const FuncyTunerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const ir::InputSpec& tuning_input() const noexcept {
    return tuning_input_;
  }

  /// The K pre-sampled CVs shared by all per-loop algorithms.
  [[nodiscard]] const std::vector<flags::CompilationVector>& presampled();

  /// Lazy phases (each runs at most once).
  [[nodiscard]] const Outline& outline();
  [[nodiscard]] const Collection& collection();
  [[nodiscard]] double baseline_seconds();

  /// Lazy accessors over this tuner's phases, for SearchAlgorithm::run.
  [[nodiscard]] SearchContext search_context();

  /// Runs one registry algorithm ("random", "fr", "greedy", "cfr", or
  /// anything registered with SearchRegistry::global()). Throws
  /// std::invalid_argument for unknown names.
  [[nodiscard]] TuningResult run(const std::string& algorithm);

  /// The four algorithms of §2.2 (registry wrappers, kept for callers
  /// that want the typed GreedyResult).
  [[nodiscard]] TuningResult run_random();
  [[nodiscard]] TuningResult run_fr();
  [[nodiscard]] GreedyResult run_greedy();
  [[nodiscard]] TuningResult run_cfr();

  struct AllResults {
    TuningResult random;
    TuningResult fr;
    GreedyResult greedy;
    TuningResult cfr;
    double baseline_seconds = 0.0;
  };
  [[nodiscard]] AllResults run_all();

  // --- introspection ------------------------------------------------------

  /// Noise-free per-loop speedups vs. the O3 baseline (program loop
  /// order) of an assignment on the tuning input (Fig 9).
  [[nodiscard]] std::vector<double> per_loop_speedups(
      const compiler::ModuleAssignment& assignment);

  /// Table 3 style decision summaries per loop (program loop order).
  [[nodiscard]] std::vector<std::string> per_loop_decisions(
      const compiler::ModuleAssignment& assignment);

  /// End-to-end seconds of an assignment on an arbitrary input
  /// (Figs 7/8 evaluate tuned executables on unseen inputs).
  [[nodiscard]] double seconds_on(const ir::InputSpec& input,
                                  const compiler::ModuleAssignment&,
                                  int reps = 10);
  /// O3 seconds on an arbitrary input, same protocol.
  [[nodiscard]] double baseline_seconds_on(const ir::InputSpec& input,
                                           int reps = 10);

 private:
  FuncyTunerOptions options_;
  ir::Program program_;
  flags::FlagSpace space_;
  compiler::Compiler compiler_;
  std::unique_ptr<machine::ExecutionEngine> engine_;
  ir::InputSpec tuning_input_;
  std::unique_ptr<Evaluator> evaluator_;

  std::vector<flags::CompilationVector> presampled_;
  std::optional<Outline> outline_;
  std::optional<Collection> collection_;
  std::optional<double> baseline_seconds_;
};

}  // namespace ft::core
