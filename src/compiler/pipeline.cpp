#include "compiler/pipeline.hpp"

#include <algorithm>
#include <cmath>

namespace ft::compiler {

using flags::SemanticFlag;

namespace {

/// Register-pressure model: scalar pressure inflated by unrolling and
/// wide vectors; the register-allocation strategy shifts it slightly.
double pressure_after(const ir::LoopFeatures& f, int unroll, int width,
                      int ra_strategy, Personality personality) {
  double pressure = f.register_pressure;
  pressure *= 1.0 + 0.16 * static_cast<double>(unroll - 1);
  if (width >= 256) {
    pressure *= 1.18;
  } else if (width > 0) {
    pressure *= 1.08;
  }
  if (personality == Personality::kGcc) pressure *= 1.05;
  switch (ra_strategy) {
    case 1:  // block
      pressure *= 0.95;
      break;
    case 2:  // trace
      pressure *= 1.05;
      break;
    case 3:  // region
      pressure *= 0.90;
      break;
    default:
      break;
  }
  return pressure;
}

int heuristic_unroll(const ir::LoopFeatures& f) {
  if (f.body_size <= 20) return 4;
  if (f.body_size <= 32) return 3;
  if (f.body_size <= 48) return 2;
  return 1;
}

}  // namespace

double spill_severity_for(const ir::LoopFeatures& features, int unroll,
                          int vector_width, int ra_strategy,
                          Personality personality) {
  const double pressure = pressure_after(features, unroll, vector_width,
                                         ra_strategy, personality);
  return std::max(0.0, pressure - 0.95);
}

double vectorizer_estimate(const ir::LoopFeatures& f, int width_bits,
                           const machine::Architecture& arch,
                           Personality personality, bool dynamic_info) {
  const double lanes = static_cast<double>(width_bits) / 64.0;  // FP64
  // Static heuristics see branch structure, not taken rates; PGO
  // substitutes the dynamic divergence. Penalties scale with the number
  // of extra lanes, which is why wider is not always estimated better
  // (e.g. ICC's 128-bit choice for CloverLeaf's mom9 on Broadwell).
  const double divergence =
      dynamic_info ? f.divergence : f.static_branchiness;
  const double extra_lanes = lanes - 1.0;
  const double div_penalty = 1.0 + divergence * 0.8 * extra_lanes;
  const double stride_penalty =
      1.0 + (1.0 - f.unit_stride_frac) * 0.7 * extra_lanes;
  double estimate =
      lanes / (div_penalty * stride_penalty * (1.0 + f.dependence * 2.5));
  if (personality == Personality::kGcc) estimate *= 0.85;
  if (arch.split_256 && width_bits == 256) estimate *= 0.8;
  return estimate;
}

CompiledModule compile_module(const ir::LoopModule& module,
                              const flags::CompilationVector& cv,
                              const flags::SemanticSettings& settings,
                              const machine::Architecture& arch,
                              Personality personality,
                              const PgoProfile* pgo) {
  const ir::LoopFeatures& f = module.features;
  const bool dynamic_info = pgo != nullptr && pgo->valid;

  CompiledModule object;
  object.module_name = module.name;
  object.cv = cv;
  object.settings = settings;
  object.is_loop = module.is_loop;

  LoopCodeGen& g = object.codegen;
  g.opt_level = settings.get(SemanticFlag::kOptLevel);

  // ---- optimization level -------------------------------------------------
  const bool loop_opts_enabled = g.opt_level >= 2;
  if (g.opt_level == 2) {
    g.compute_mult *= 1.04;
    g.mem_mult *= 1.03;
  } else if (g.opt_level <= 1) {
    g.compute_mult *= 1.18;
    g.mem_mult *= 1.10;
  }

  // ---- vectorizer ----------------------------------------------------------
  // Legality: provable absence of loop-carried dependences. Unprovable
  // pointer aliasing blocks auto-vectorization unless the compiler can
  // multi-version with runtime checks; an explicit width request acts
  // like a `#pragma simd` assertion and overrides the alias doubt.
  g.multi_versioned = settings.get(SemanticFlag::kMultiVersion) == 1;
  const bool dep_legal = f.dependence < 0.85 && loop_opts_enabled &&
                         settings.get(SemanticFlag::kVectorize) == 1;
  const bool alias_clear = f.alias_uncertainty < 0.6 || g.multi_versioned;
  const int simd_pref = settings.get(SemanticFlag::kSimdWidthPref);
  if (dep_legal) {
    if (simd_pref > 0) {
      // Explicit width request: the tuner forcing its will.
      g.vector_width = std::min(simd_pref, arch.max_simd_bits);
    } else if (alias_clear) {
      // Auto: profitability estimate from (mostly static) features.
      double threshold = personality == Personality::kIcc ? 1.10 : 1.30;
      if (g.multi_versioned) threshold *= 0.85;
      double best_estimate = 0.0;
      int best_width = 0;
      for (const int width : {128, 256}) {
        if (width > arch.max_simd_bits) continue;
        const double estimate =
            vectorizer_estimate(f, width, arch, personality, dynamic_info);
        if (estimate > threshold && estimate > best_estimate + 1e-9) {
          best_estimate = estimate;
          best_width = width;
        }
      }
      g.vector_width = best_width;
      // PGO knows real trip counts: skip vectorizing short loops.
      if (dynamic_info && f.trip_count < 64.0) g.vector_width = 0;
    }
  }

  // ---- unroller -------------------------------------------------------------
  int unroll = 1;
  if (loop_opts_enabled) {
    const int requested = settings.get(SemanticFlag::kUnroll);
    if (requested < 0) {
      unroll = heuristic_unroll(f);
      // The auto-unroller consults its own (lenient) register-pressure
      // estimate, made before vectorization - it prevents the worst
      // blow-ups but still over-unrolls borderline loops (dt keeps its
      // spilling unroll2, Table 3).
      while (unroll > 1 &&
             pressure_after(f, unroll, /*width=*/0, /*ra=*/0,
                            personality) > 1.1) {
        unroll /= 2;
      }
      if (settings.get(SemanticFlag::kUnrollAggressive) == 1) unroll *= 2;
    } else {
      unroll = std::max(requested, 1);
    }
    const int cap =
        settings.get(SemanticFlag::kOverrideLimits) == 1 ? 16 : 8;
    unroll = std::clamp(unroll, 1, cap);
    if (dynamic_info) {
      // PGO trip counts: never unroll beyond a fraction of the trips.
      while (unroll > 1 &&
             static_cast<double>(unroll) * 8.0 > f.trip_count) {
        unroll /= 2;
      }
      unroll = std::max(unroll, 1);
    }
  }
  g.unroll = unroll;

  // Aggressive multi-versioning is not free: every versioned loop pays
  // runtime alias/dispatch checks on top of the code growth.
  if (g.multi_versioned) {
    g.compute_mult *= 1.025;
    g.overhead_mult *= 1.04;
  }

  // ---- register allocation / spilling ---------------------------------------
  const int ra_strategy = settings.get(SemanticFlag::kRegAllocStrategy);
  const double pressure =
      pressure_after(f, g.unroll, g.vector_width, ra_strategy, personality);
  g.spill_severity = std::max(0.0, pressure - 0.95);
  if (ra_strategy == 2) g.compute_mult *= 0.99;  // trace: better ILP
  if (ra_strategy == 3) g.compute_mult *= 1.01;  // region: compile cost

  // ---- streaming stores ------------------------------------------------------
  switch (settings.get(SemanticFlag::kStreamingStores)) {
    case 1:
      g.streaming_stores = true;
      break;
    case 2:
      g.streaming_stores = false;
      break;
    default:
      // Auto: static heuristic keys on store share and (with PGO) the
      // true working set vs. LLC; statically it only sees trip counts.
      if (dynamic_info) {
        g.streaming_stores =
            f.store_frac >= 0.45 && f.working_set_mb > arch.total_llc_mb();
      } else {
        g.streaming_stores = f.store_frac >= 0.45 && f.trip_count >= 4096;
      }
      break;
  }

  // ---- prefetching -------------------------------------------------------------
  g.prefetch = settings.get(SemanticFlag::kPrefetch);

  // ---- cache blocking -----------------------------------------------------------
  const int block = settings.get(SemanticFlag::kBlockFactor);
  if (block > 0 && loop_opts_enabled && f.unit_stride_frac > 0.5) {
    g.tile = block;
  }

  // ---- FMA contraction -------------------------------------------------------------
  g.fma = settings.get(SemanticFlag::kFma) == 1 && arch.has_fma &&
          f.fp_intensity > 0.0;

  // ---- instruction scheduling (IO) ---------------------------------------------------
  switch (settings.get(SemanticFlag::kScheduling)) {
    case 1:  // list: wins on big straight-line bodies only
      g.sched_reordered = true;
      g.compute_mult *=
          (f.body_size > 50.0 && f.divergence < 0.2) ? 0.97 : 1.02;
      break;
    case 2:  // trace: wins only when branches actually diverge
      g.sched_reordered = true;
      g.compute_mult *=
          (f.static_branchiness > 0.5 && f.divergence > 0.35) ? 0.96
                                                              : 1.025;
      break;
    case 3:  // aggressive: needs dependence-free bodies
      g.sched_reordered = true;
      g.compute_mult *= f.dependence < 0.05 ? 0.96 : 1.03;
      break;
    default:
      break;
  }

  // ---- instruction selection (IS) -----------------------------------------------------
  if (settings.get(SemanticFlag::kInstrSelection) == 1) {
    g.aggressive_isel = true;
    g.compute_mult *= f.fp_intensity > 0.85 ? 0.985 : 1.015;
  }

  // ---- software pipelining ---------------------------------------------------------------
  g.sw_pipelined =
      settings.get(SemanticFlag::kSwPipelining) == 1 && loop_opts_enabled;
  if (g.sw_pipelined) {
    g.compute_mult *= f.dependence < 0.3 ? 0.985 : 1.005;
  }

  // ---- the long tail of minor flags -------------------------------------------------------
  if (settings.get(SemanticFlag::kScalarRep) == 0) g.compute_mult *= 1.02;
  if (settings.get(SemanticFlag::kLoopFusion) == 0 && f.shared_data > 0.3) {
    g.mem_mult *= 1.02;
  }
  if (settings.get(SemanticFlag::kLoopInterchange) == 0 &&
      f.unit_stride_frac < 0.5) {
    g.mem_mult *= 1.06;  // interchange was fixing the stride
  }
  if (settings.get(SemanticFlag::kLoopDistribution) == 1) {
    g.compute_mult *= f.body_size > 60.0 ? 0.98 : 1.01;
  }
  if (settings.get(SemanticFlag::kRerolling) == 0) g.compute_mult *= 1.005;
  if (settings.get(SemanticFlag::kOmitFramePointer) == 0) {
    g.compute_mult *= 1.012;
  }
  if (settings.get(SemanticFlag::kAlignLoops) == 0) g.overhead_mult *= 1.03;
  if (settings.get(SemanticFlag::kDynamicAlign) == 0) {
    g.compute_mult *= g.vectorized() ? 1.02 : 0.998;
  }
  if (settings.get(SemanticFlag::kAlignFunctions) == 32) {
    g.overhead_mult *= 0.997;
  }
  if (settings.get(SemanticFlag::kJumpTables) == 0) {
    g.compute_mult *= f.static_branchiness > 0.3 ? 1.02 : 0.999;
  }
  if (settings.get(SemanticFlag::kMatMul) == 1) g.overhead_mult *= 1.002;
  if (settings.get(SemanticFlag::kSafePadding) == 1) {
    g.compute_mult *= g.vectorized() ? 0.988 : 1.004;
  }
  switch (settings.get(SemanticFlag::kMemLayoutTrans)) {
    case 0:
      g.mem_mult *= 1.02;
      break;
    case 2:
      g.mem_mult *= f.shared_data > 0.45 ? 0.99 : 1.005;
      break;
    case 3:
      g.mem_mult *= f.shared_data > 0.6 ? 0.98 : 1.02;
      break;
    default:
      break;
  }
  if (settings.get(SemanticFlag::kOptCalloc) == 1) {
    g.overhead_mult *= module.is_loop ? 1.001 : 0.995;
  }

  // Strict aliasing: with heavily shared data the strict model forces
  // runtime disambiguation checks; -no-ansi-alias removes them at the
  // price of weaker optimization on private-data code. (This is why the
  // paper's best CVs retain -no-ansi-alias, §4.4.2.)
  if (settings.get(SemanticFlag::kAnsiAlias) == 1) {
    if (f.shared_data > 0.5) g.overhead_mult *= 1.015;
  } else {
    if (f.shared_data < 0.2) g.compute_mult *= 1.02;
  }

  // ---- inlining within the module -------------------------------------------------------
  const double inline_factor =
      static_cast<double>(settings.get(SemanticFlag::kInlineFactor));
  g.inline_growth =
      1.0 + f.call_density * std::min(inline_factor / 100.0, 4.0) * 0.15;
  if (inline_factor < 100.0) {
    g.overhead_mult *=
        1.0 + f.call_density * 0.3 * (1.0 - inline_factor / 100.0);
  } else if (inline_factor > 100.0) {
    g.overhead_mult *=
        1.0 -
        f.call_density * 0.04 * std::min(2.0, inline_factor / 100.0 - 1.0);
  }

  // ---- code size ---------------------------------------------------------------------------
  const double unroll_growth = 1.0 + 0.35 * static_cast<double>(g.unroll - 1);
  const double vec_growth = g.vectorized() ? 1.25 : 1.0;
  const double mv_growth = g.multi_versioned ? 1.15 : 1.0;
  g.code_size =
      f.body_size * unroll_growth * vec_growth * mv_growth * g.inline_growth;

  return object;
}

}  // namespace ft::compiler
