// The optimizing pass pipeline of the simulated compiler.
//
// compile_module() maps (loop features, decoded flag settings,
// architecture, optional PGO profile) to the optimization decisions in a
// LoopCodeGen, the way a production compiler's heuristics would - using
// only *statically visible* features unless a PGO profile supplies
// dynamic truth. The deliberate gap between static heuristics and the
// machine model's true cost is the tuning headroom the paper's search
// exploits (DESIGN.md §4).
#pragma once

#include <string>

#include "compiler/codegen.hpp"
#include "flags/compilation_vector.hpp"
#include "flags/semantics.hpp"
#include "ir/program.hpp"
#include "machine/architecture.hpp"

namespace ft::compiler {

/// Compiler personality: ICC-like (aggressive, processor-specific
/// flags) vs GCC-like (more conservative vectorizer). Fig 1 needs both.
enum class Personality { kIcc, kGcc };

[[nodiscard]] inline const char* personality_name(Personality p) noexcept {
  return p == Personality::kIcc ? "ICC" : "GCC";
}

/// Profile-guided-optimization data gathered by an instrumentation run.
/// When valid, heuristics see dynamic features (true divergence, trip
/// counts, working sets) instead of static approximations.
struct PgoProfile {
  bool valid = false;
};

/// One compiled object file: the module's flag settings and the
/// resulting codegen decisions.
struct CompiledModule {
  std::string module_name;
  flags::CompilationVector cv;
  flags::SemanticSettings settings;
  LoopCodeGen codegen;
  bool is_loop = true;
};

/// Runs the full pass pipeline on one module.
[[nodiscard]] CompiledModule compile_module(
    const ir::LoopModule& module, const flags::CompilationVector& cv,
    const flags::SemanticSettings& settings,
    const machine::Architecture& arch, Personality personality,
    const PgoProfile* pgo = nullptr);

/// Register-spill severity for a (features, unroll, width) combination
/// under a register-allocation strategy; used by the pipeline and by
/// the linker when IPO re-transforms already-transformed code.
[[nodiscard]] double spill_severity_for(const ir::LoopFeatures& features,
                                        int unroll, int vector_width,
                                        int ra_strategy,
                                        Personality personality);

/// The vectorizer's profitability estimate for a given width, exposed
/// for tests and the case-study bench (Table 3 explanations).
[[nodiscard]] double vectorizer_estimate(const ir::LoopFeatures& features,
                                         int width_bits,
                                         const machine::Architecture& arch,
                                         Personality personality,
                                         bool dynamic_info);

}  // namespace ft::compiler
