#include "compiler/compiler.hpp"

#include <stdexcept>

#include "support/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ft::compiler {

namespace {

/// Deterministic per-build decision counts: counted from the objects a
/// build() returns (cached or not), so the totals depend only on what
/// was built, never on which thread compiled first.
void count_decisions(const std::vector<CompiledModule>& loop_objects) {
  telemetry::MetricsRegistry& registry = telemetry::metrics();
  static telemetry::Counter& vectorized =
      registry.counter("compiler.decisions.vectorized");
  static telemetry::Counter& unrolled =
      registry.counter("compiler.decisions.unrolled");
  static telemetry::Counter& isel =
      registry.counter("compiler.decisions.aggressive_isel");
  static telemetry::Counter& reordered =
      registry.counter("compiler.decisions.sched_reordered");
  static telemetry::Counter& spilled =
      registry.counter("compiler.decisions.spilled");
  static telemetry::Counter& streaming =
      registry.counter("compiler.decisions.streaming_stores");
  for (const CompiledModule& object : loop_objects) {
    const LoopCodeGen& cg = object.codegen;
    if (cg.vectorized()) vectorized.add();
    if (cg.unroll > 1) unrolled.add();
    if (cg.aggressive_isel) isel.add();
    if (cg.sched_reordered) reordered.add();
    if (cg.spills()) spilled.add();
    if (cg.streaming_stores) streaming.add();
  }
}

}  // namespace

ModuleAssignment ModuleAssignment::uniform(const flags::CompilationVector& cv,
                                           std::size_t loop_count) {
  ModuleAssignment assignment;
  assignment.loop_cvs.assign(loop_count, cv);
  assignment.nonloop_cv = cv;
  return assignment;
}

Compiler::Compiler(const flags::FlagSpace& space, machine::Architecture arch,
                   Personality personality)
    : space_(&space), arch_(std::move(arch)), personality_(personality) {}

CompiledModule Compiler::compile(const ir::LoopModule& module,
                                 const flags::CompilationVector& cv,
                                 const PgoProfile* pgo) {
  const bool pgo_valid = pgo != nullptr && pgo->valid;
  std::uint64_t key = cv.hash();
  key ^= support::fnv1a64(module.name);
  if (pgo_valid) key ^= 0xa5a5a5a5a5a5a5a5ULL;

  {
    std::lock_guard lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      if (telemetry::enabled()) {
        // Hit/miss split races under parallel batches (two threads can
        // both miss the same key), so these are snapshot-only metrics.
        static telemetry::Counter& hits = telemetry::metrics().counter(
            "compiler.cache_hits", /*deterministic=*/false);
        hits.add();
      }
      return it->second;
    }
    ++cache_misses_;
  }
  if (telemetry::enabled()) {
    static telemetry::Counter& misses = telemetry::metrics().counter(
        "compiler.cache_misses", /*deterministic=*/false);
    misses.add();
  }

  CompiledModule object = compile_module(module, cv, space_->decode(cv),
                                         arch_, personality_, pgo);
  {
    std::lock_guard lock(cache_mutex_);
    cache_.emplace(key, object);
  }
  return object;
}

Executable Compiler::build(const ir::Program& program,
                           const ModuleAssignment& assignment,
                           const PgoProfile* pgo) {
  if (assignment.loop_cvs.size() != program.loops().size()) {
    throw std::invalid_argument(
        "build: assignment has " + std::to_string(assignment.loop_cvs.size()) +
        " loop CVs but program has " +
        std::to_string(program.loops().size()) + " loops");
  }
  std::vector<CompiledModule> loop_objects;
  loop_objects.reserve(program.loops().size());
  for (std::size_t j = 0; j < program.loops().size(); ++j) {
    loop_objects.push_back(
        compile(program.loops()[j], assignment.loop_cvs[j], pgo));
  }
  const CompiledModule nonloop_object =
      compile(program.nonloop(), assignment.nonloop_cv, pgo);
  if (telemetry::enabled()) {
    static telemetry::Counter& builds =
        telemetry::metrics().counter("compiler.builds");
    static telemetry::Counter& links =
        telemetry::metrics().counter("compiler.links");
    builds.add();
    links.add();
    count_decisions(loop_objects);
  }
  return link(program, loop_objects, nonloop_object, arch_, personality_,
              pgo, link_options_);
}

Executable Compiler::build_uniform(const ir::Program& program,
                                   const flags::CompilationVector& cv,
                                   const PgoProfile* pgo) {
  return build(program,
               ModuleAssignment::uniform(cv, program.loops().size()), pgo);
}

Executable Compiler::build_baseline(const ir::Program& program) {
  return build_uniform(program, space_->default_cv());
}

void Compiler::clear_cache() {
  std::lock_guard lock(cache_mutex_);
  cache_.clear();
  cache_hits_ = 0;
  cache_misses_ = 0;
}

}  // namespace ft::compiler
