#include "compiler/compiler.hpp"

#include <stdexcept>

#include "support/rng.hpp"

namespace ft::compiler {

ModuleAssignment ModuleAssignment::uniform(const flags::CompilationVector& cv,
                                           std::size_t loop_count) {
  ModuleAssignment assignment;
  assignment.loop_cvs.assign(loop_count, cv);
  assignment.nonloop_cv = cv;
  return assignment;
}

Compiler::Compiler(const flags::FlagSpace& space, machine::Architecture arch,
                   Personality personality)
    : space_(&space), arch_(std::move(arch)), personality_(personality) {}

CompiledModule Compiler::compile(const ir::LoopModule& module,
                                 const flags::CompilationVector& cv,
                                 const PgoProfile* pgo) {
  const bool pgo_valid = pgo != nullptr && pgo->valid;
  std::uint64_t key = cv.hash();
  key ^= support::fnv1a64(module.name);
  if (pgo_valid) key ^= 0xa5a5a5a5a5a5a5a5ULL;

  {
    std::lock_guard lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
    ++cache_misses_;
  }

  CompiledModule object = compile_module(module, cv, space_->decode(cv),
                                         arch_, personality_, pgo);
  {
    std::lock_guard lock(cache_mutex_);
    cache_.emplace(key, object);
  }
  return object;
}

Executable Compiler::build(const ir::Program& program,
                           const ModuleAssignment& assignment,
                           const PgoProfile* pgo) {
  if (assignment.loop_cvs.size() != program.loops().size()) {
    throw std::invalid_argument(
        "build: assignment has " + std::to_string(assignment.loop_cvs.size()) +
        " loop CVs but program has " +
        std::to_string(program.loops().size()) + " loops");
  }
  std::vector<CompiledModule> loop_objects;
  loop_objects.reserve(program.loops().size());
  for (std::size_t j = 0; j < program.loops().size(); ++j) {
    loop_objects.push_back(
        compile(program.loops()[j], assignment.loop_cvs[j], pgo));
  }
  const CompiledModule nonloop_object =
      compile(program.nonloop(), assignment.nonloop_cv, pgo);
  return link(program, loop_objects, nonloop_object, arch_, personality_,
              pgo, link_options_);
}

Executable Compiler::build_uniform(const ir::Program& program,
                                   const flags::CompilationVector& cv,
                                   const PgoProfile* pgo) {
  return build(program,
               ModuleAssignment::uniform(cv, program.loops().size()), pgo);
}

Executable Compiler::build_baseline(const ir::Program& program) {
  return build_uniform(program, space_->default_cv());
}

void Compiler::clear_cache() {
  std::lock_guard lock(cache_mutex_);
  cache_.clear();
  cache_hits_ = 0;
  cache_misses_ = 0;
}

}  // namespace ft::compiler
