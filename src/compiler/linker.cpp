#include "compiler/linker.hpp"

#include <algorithm>
#include <stdexcept>

namespace ft::compiler {

using flags::SemanticFlag;

namespace {

std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) noexcept {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace

Executable link(const ir::Program& program,
                const std::vector<CompiledModule>& loop_objects,
                const CompiledModule& nonloop_object,
                const machine::Architecture& arch, Personality personality,
                const PgoProfile* pgo, const LinkOptions& options) {
  if (loop_objects.size() != program.loops().size()) {
    throw std::invalid_argument("link: object count != program loop count");
  }

  Executable exe;
  exe.loops.reserve(loop_objects.size());

  // Uniform iff every module was compiled with the same CV.
  const std::uint64_t first_hash = nonloop_object.cv.hash();
  exe.uniform = true;
  for (const CompiledModule& object : loop_objects) {
    if (object.cv.hash() != first_hash) {
      exe.uniform = false;
      break;
    }
  }

  // ---- IPO: caller-driven re-optimization --------------------------------
  // The outlined loop functions are called from the non-loop driver code.
  // When both the driver and a loop object participate in IPO (-ipo on
  // each), small loop bodies are inlined into the driver and re-optimized
  // under the DRIVER's settings.
  const bool driver_ipo =
      nonloop_object.settings.get(SemanticFlag::kIpo) == 1;
  const double driver_inline_factor = static_cast<double>(
      nonloop_object.settings.get(SemanticFlag::kInlineFactor));
  const double inline_limit =
      kIpoInlinableBodySize * std::max(driver_inline_factor, 1.0) / 100.0;

  for (std::size_t j = 0; j < loop_objects.size(); ++j) {
    const CompiledModule& object = loop_objects[j];
    const ir::LoopModule& loop = program.loops()[j];
    LinkedLoop linked;
    linked.name = object.module_name;
    linked.codegen = object.codegen;
    linked.settings = object.settings;

    const bool participates = options.ipo_reoptimization &&
                              object.settings.get(SemanticFlag::kIpo) == 1 &&
                              driver_ipo;
    if (participates && loop.features.body_size <= inline_limit) {
      // Re-run the pipeline under the caller's settings. With matching
      // CVs this reproduces the same decisions and only adds the
      // call-elision benefit. With MISMATCHED CVs the link-time
      // optimizer re-transforms code that was already transformed when
      // the object was compiled: it may re-vectorize a loop tuned
      // scalar and unroll an already-unrolled body again - exactly the
      // behaviour the paper observes for CloverLeaf's mom9 under
      // G.realized (§4.4.2, Table 3) - exploding register pressure.
      CompiledModule reoptimized = compile_module(
          loop, nonloop_object.cv, nonloop_object.settings, arch,
          personality, pgo);
      const bool cv_mismatch =
          object.cv.hash() != nonloop_object.cv.hash();
      if (cv_mismatch) {
        LoopCodeGen& cg = reoptimized.codegen;
        cg.unroll = std::min(16, cg.unroll * object.codegen.unroll);
        cg.vector_width =
            std::max(cg.vector_width, object.codegen.vector_width);
        cg.spill_severity = spill_severity_for(
            loop.features, cg.unroll, cg.vector_width,
            nonloop_object.settings.get(SemanticFlag::kRegAllocStrategy),
            personality);
        cg.code_size = loop.features.body_size *
                       (1.0 + 0.35 * static_cast<double>(cg.unroll - 1)) *
                       (cg.vectorized() ? 1.25 : 1.0) * cg.inline_growth;
      }
      linked.codegen = reoptimized.codegen;
      linked.settings = nonloop_object.settings;
      linked.ipo_reoptimized = cv_mismatch;
      // Inlining into the caller elides the call and enables
      // cross-module constant propagation / scheduling: a genuine gain
      // (which is exactly what makes -ipo attractive to per-loop greedy
      // selection - and arms the mixed-CV override trap).
      linked.codegen.compute_mult *= 0.98;
      linked.codegen.overhead_mult *=
          0.97 - 0.25 * loop.features.call_density;
    } else if (participates) {
      // Large bodies are not inlined; IPO still elides some call glue.
      linked.codegen.overhead_mult *=
          1.0 - 0.10 * loop.features.call_density;
    }
    exe.loops.push_back(std::move(linked));
  }

  exe.nonloop.name = nonloop_object.module_name;
  exe.nonloop.codegen = nonloop_object.codegen;
  exe.nonloop.settings = nonloop_object.settings;
  if (driver_ipo && options.ipo_reoptimization) {
    // The driver benefits from seeing the loop callees it inlined and
    // from whole-program analysis of its own scattered call graph: a
    // genuine few-percent win, which is why the rest module's measured
    // winner almost always carries -ipo - and why greedy assembly walks
    // into the re-optimization trap above.
    double avg_call_benefit = 0.0;
    for (const CompiledModule& object : loop_objects) {
      if (object.settings.get(SemanticFlag::kIpo) == 1)
        avg_call_benefit += 1.0;
    }
    avg_call_benefit /= static_cast<double>(
        std::max<std::size_t>(loop_objects.size(), 1));
    exe.nonloop.codegen.compute_mult *= 0.985;
    exe.nonloop.codegen.overhead_mult *= 1.0 - 0.03 * avg_call_benefit;
  }

  // ---- shared-data layout / alias mismatches ------------------------------
  // Modules touching the same shared structures must agree on padding
  // and aliasing assumptions; every disagreeing pair costs both sides.
  if (!exe.uniform && options.layout_mismatch_penalties) {
    auto module_shared = [&](std::size_t idx) -> double {
      return idx < program.loops().size()
                 ? program.loops()[idx].features.shared_data
                 : program.nonloop().features.shared_data;
    };
    auto module_settings = [&](std::size_t idx)
        -> const flags::SemanticSettings& {
      return idx < exe.loops.size() ? exe.loops[idx].settings
                                    : exe.nonloop.settings;
    };
    const std::size_t module_count = exe.loops.size() + 1;
    std::vector<double> penalties(module_count, 1.0);
    for (std::size_t a = 0; a < module_count; ++a) {
      if (module_shared(a) < 0.25) continue;
      for (std::size_t b = a + 1; b < module_count; ++b) {
        if (module_shared(b) < 0.25) continue;
        const auto& sa = module_settings(a);
        const auto& sb = module_settings(b);
        const double coupling = module_shared(a) * module_shared(b);
        double pair_penalty = 1.0;
        if (sa.get(SemanticFlag::kStructPad) !=
            sb.get(SemanticFlag::kStructPad)) {
          pair_penalty *= 1.0 + 0.02 * coupling;
        }
        if (sa.get(SemanticFlag::kAnsiAlias) !=
            sb.get(SemanticFlag::kAnsiAlias)) {
          pair_penalty *= 1.0 + 0.012 * coupling;
        }
        penalties[a] *= pair_penalty;
        penalties[b] *= pair_penalty;
      }
    }
    for (std::size_t j = 0; j < exe.loops.size(); ++j) {
      exe.loops[j].interference_mult *= std::min(penalties[j], 1.15);
    }
    exe.nonloop.interference_mult *=
        std::min(penalties[module_count - 1], 1.15);
  }

  // ---- instruction-cache pressure -----------------------------------------
  double total_code = exe.nonloop.codegen.code_size;
  for (const LinkedLoop& linked : exe.loops) {
    total_code += linked.codegen.code_size;
  }
  const double icache_limit = arch.icache_kb * 24.0;  // abstract-op budget
  if (total_code > icache_limit && options.icache_pressure) {
    exe.global_mult =
        std::min(1.25, 1.0 + 0.06 * (total_code / icache_limit - 1.0));
  }

  // ---- fingerprint -----------------------------------------------------------
  std::uint64_t h = 0x51ed270b8d5c3f4bULL;
  for (const CompiledModule& object : loop_objects) {
    h = mix_hash(h, object.cv.hash());
  }
  h = mix_hash(h, nonloop_object.cv.hash());
  for (const LinkedLoop& linked : exe.loops) {
    h = mix_hash(h, linked.codegen.hash());
  }
  h = mix_hash(h, exe.nonloop.codegen.hash());
  exe.fingerprint = h;

  return exe;
}

}  // namespace ft::compiler
