// Compiler façade: "icc"/"gcc" driver plus "xild"-style linking, with a
// thread-safe object cache (the tuner compiles the same module with the
// same CV thousands of times across search iterations).
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "compiler/linker.hpp"
#include "compiler/pipeline.hpp"
#include "flags/flag_space.hpp"

namespace ft::compiler {

/// Per-module CV assignment for a program: one CV per hot loop (program
/// loop order) plus one for the merged non-loop module.
struct ModuleAssignment {
  std::vector<flags::CompilationVector> loop_cvs;
  flags::CompilationVector nonloop_cv;

  /// Uniform assignment: every module gets `cv` (traditional model).
  [[nodiscard]] static ModuleAssignment uniform(
      const flags::CompilationVector& cv, std::size_t loop_count);
};

class Compiler {
 public:
  /// The compiler borrows the flag space (decoding CVs) and the
  /// architecture; both must outlive it.
  Compiler(const flags::FlagSpace& space, machine::Architecture arch,
           Personality personality = Personality::kIcc);

  [[nodiscard]] const machine::Architecture& arch() const noexcept {
    return arch_;
  }
  [[nodiscard]] Personality personality() const noexcept {
    return personality_;
  }
  [[nodiscard]] const flags::FlagSpace& space() const noexcept {
    return *space_;
  }

  /// Compiles one module (cached by module name + CV + PGO validity).
  [[nodiscard]] CompiledModule compile(const ir::LoopModule& module,
                                       const flags::CompilationVector& cv,
                                       const PgoProfile* pgo = nullptr);

  /// Compiles all modules of `program` per the assignment and links.
  [[nodiscard]] Executable build(const ir::Program& program,
                                 const ModuleAssignment& assignment,
                                 const PgoProfile* pgo = nullptr);

  /// Convenience: traditional per-program compilation with a single CV.
  [[nodiscard]] Executable build_uniform(const ir::Program& program,
                                         const flags::CompilationVector& cv,
                                         const PgoProfile* pgo = nullptr);

  /// The plain -O3 baseline build (default CV everywhere).
  [[nodiscard]] Executable build_baseline(const ir::Program& program);

  /// Link-effect switches (interference ablation; default all on).
  void set_link_options(const LinkOptions& options) noexcept {
    link_options_ = options;
  }
  [[nodiscard]] const LinkOptions& link_options() const noexcept {
    return link_options_;
  }

  /// Number of pipeline executions that were served from the cache.
  [[nodiscard]] std::size_t cache_hits() const noexcept {
    return cache_hits_;
  }
  [[nodiscard]] std::size_t cache_misses() const noexcept {
    return cache_misses_;
  }
  void clear_cache();

 private:
  const flags::FlagSpace* space_;
  machine::Architecture arch_;
  Personality personality_;
  LinkOptions link_options_;

  mutable std::mutex cache_mutex_;
  std::unordered_map<std::uint64_t, CompiledModule> cache_;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
};

}  // namespace ft::compiler
