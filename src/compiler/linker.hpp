// Link step: combines per-module objects into an executable and applies
// the cross-module effects that make per-module compilation NOT
// independent (the paper's central observation, §1 and §4.4.2):
//
//  * IPO re-optimization - outlined loop functions inlined into their
//    caller are re-optimized under the *caller's* flag settings,
//    overriding tuned per-module decisions (Table 3: G.realized
//    re-vectorizes mom9 although its module CV chose scalar).
//  * shared-data layout/alias mismatches between modules compiled with
//    conflicting -pad / -ansi-alias settings cost marshalling checks.
//  * aggregate code growth overflowing the instruction cache penalizes
//    the whole program.
//
// A uniform link (all modules compiled with the same CV, as in the
// FuncyTuner collection phase, Fig 4) produces none of the mismatch
// penalties - which is exactly why greedily combining per-loop winners
// measured under uniform compilation misleads (G.realized vs
// G.Independent).
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/pipeline.hpp"

namespace ft::compiler {

/// One loop in the final executable: post-link codegen plus link-level
/// penalty factors consumed by the machine cost model.
struct LinkedLoop {
  std::string name;
  LoopCodeGen codegen;
  flags::SemanticSettings settings;
  double interference_mult = 1.0;  ///< static link-mismatch penalties
  bool ipo_reoptimized = false;    ///< codegen replaced by caller's CV
};

/// A fully linked program image.
struct Executable {
  std::vector<LinkedLoop> loops;  ///< in program (time-step) order
  LinkedLoop nonloop;
  double global_mult = 1.0;    ///< icache-pressure penalty, all modules
  std::uint64_t fingerprint = 0;  ///< content hash, keys measurement noise
  bool uniform = true;  ///< all modules were compiled with the same CV
};

/// Body size below which a loop function is inlinable by IPO (scaled by
/// the caller's inline factor).
inline constexpr double kIpoInlinableBodySize = 64.0;

/// Switches for the cross-module link effects; disabling them creates
/// the counterfactual "modules really are independent" world used by
/// the interference ablation (and by tests of the causal claim that
/// greedy combination fails BECAUSE of these effects).
struct LinkOptions {
  bool ipo_reoptimization = true;       ///< caller-driven re-transforms
  bool layout_mismatch_penalties = true;  ///< -pad / -ansi-alias pairs
  bool icache_pressure = true;
  [[nodiscard]] static LinkOptions none() noexcept {
    return {false, false, false};
  }
};

/// Links loop objects (program loop order) plus the non-loop object.
[[nodiscard]] Executable link(const ir::Program& program,
                              const std::vector<CompiledModule>& loop_objects,
                              const CompiledModule& nonloop_object,
                              const machine::Architecture& arch,
                              Personality personality,
                              const PgoProfile* pgo = nullptr,
                              const LinkOptions& options = {});

}  // namespace ft::compiler
