// LoopCodeGen: the optimization decisions the simulated compiler made
// for one loop. This is the record Table 3 of the paper reports
// (S / 128 / 256, unroll factors, IS = instruction selection,
// IO = instruction reordering, RS = register spilling) plus the minor
// quality multipliers accumulated by the smaller passes.
#pragma once

#include <cstdint>
#include <string>

namespace ft::compiler {

struct LoopCodeGen {
  // --- headline decisions (Table 3 vocabulary) ----------------------------
  int vector_width = 0;    ///< 0 = scalar (S), else 128 / 256 bits
  int unroll = 1;          ///< effective unroll factor (1 = none)
  bool aggressive_isel = false;   ///< IS: non-default instruction selection
  bool sched_reordered = false;   ///< IO: non-default instruction reordering
  double spill_severity = 0.0;    ///< RS: register spilling, 0 = none

  // --- other major knobs consumed by the cost model ------------------------
  bool streaming_stores = false;
  int prefetch = 1;       ///< 0..4
  int tile = 0;           ///< cache-blocking factor, 0 = none
  bool fma = false;
  bool sw_pipelined = false;
  bool multi_versioned = false;
  int opt_level = 3;

  // --- minor passes folded into quality multipliers (< 1 is faster) --------
  double compute_mult = 1.0;   ///< applies to the compute component
  double mem_mult = 1.0;       ///< applies to the memory component
  double overhead_mult = 1.0;  ///< applies to loop/call overhead

  // --- bookkeeping ---------------------------------------------------------
  double code_size = 0.0;      ///< post-transformation code size (IR ops)
  double inline_growth = 1.0;  ///< code growth from inlining

  [[nodiscard]] bool vectorized() const noexcept { return vector_width > 0; }
  [[nodiscard]] bool spills() const noexcept { return spill_severity > 0.0; }

  /// Table 3 style summary, e.g. "256, unroll2, IS" or "S".
  [[nodiscard]] std::string summary() const;

  /// Stable content hash (used in executable fingerprints).
  [[nodiscard]] std::uint64_t hash() const noexcept;
};

}  // namespace ft::compiler
