#include "compiler/codegen.hpp"

#include <cmath>

#include "support/rng.hpp"
#include "support/string_utils.hpp"

namespace ft::compiler {

std::string LoopCodeGen::summary() const {
  std::vector<std::string> parts;
  parts.push_back(vector_width > 0 ? std::to_string(vector_width)
                                   : std::string("S"));
  if (unroll > 1) parts.push_back("unroll" + std::to_string(unroll));
  if (aggressive_isel) parts.push_back("IS");
  if (sched_reordered) parts.push_back("IO");
  if (spills()) parts.push_back("RS");
  return support::join(parts, ", ");
}

std::uint64_t LoopCodeGen::hash() const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(vector_width));
  mix(static_cast<std::uint64_t>(unroll));
  mix(aggressive_isel ? 1u : 0u);
  mix(sched_reordered ? 2u : 0u);
  mix(static_cast<std::uint64_t>(spill_severity * 1e6));
  mix(streaming_stores ? 4u : 0u);
  mix(static_cast<std::uint64_t>(prefetch));
  mix(static_cast<std::uint64_t>(tile));
  mix(fma ? 8u : 0u);
  mix(sw_pipelined ? 16u : 0u);
  mix(multi_versioned ? 32u : 0u);
  mix(static_cast<std::uint64_t>(opt_level));
  mix(static_cast<std::uint64_t>(compute_mult * 1e9));
  mix(static_cast<std::uint64_t>(mem_mult * 1e9));
  mix(static_cast<std::uint64_t>(overhead_mult * 1e9));
  mix(static_cast<std::uint64_t>(code_size * 1e3));
  return h;
}

}  // namespace ft::compiler
