#include "caliper/caliper.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ft::caliper {

Caliper::Caliper(Clock* clock, double overhead_per_event)
    : clock_(clock ? clock : &internal_clock_),
      overhead_per_event_(overhead_per_event) {}

void Caliper::charge_overhead() {
  ++events_;
  if (overhead_per_event_ <= 0.0) return;
  if (auto* virtual_clock = dynamic_cast<VirtualClock*>(clock_)) {
    virtual_clock->advance(overhead_per_event_);
  }
}

void Caliper::begin(std::string_view region) {
  charge_overhead();
  Frame frame;
  frame.path = stack_.empty()
                   ? std::string(region)
                   : stack_.back().path + "/" + std::string(region);
  frame.entry_time = clock_->now();
  stack_.push_back(std::move(frame));
}

void Caliper::end(std::string_view region) {
  if (stack_.empty()) {
    throw std::logic_error("caliper: end('" + std::string(region) +
                           "') with no open region");
  }
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  const std::size_t slash = frame.path.rfind('/');
  const std::string_view leaf = slash == std::string::npos
                                    ? std::string_view(frame.path)
                                    : std::string_view(frame.path).substr(
                                          slash + 1);
  if (leaf != region) {
    stack_.push_back(std::move(frame));  // restore for debuggability
    throw std::logic_error("caliper: mismatched end('" +
                           std::string(region) + "'), open region is '" +
                           std::string(leaf) + "'");
  }
  charge_overhead();
  const double elapsed = clock_->now() - frame.entry_time;
  RegionStats& entry = stats_[frame.path];
  if (entry.count == 0) {
    entry.min_inclusive = elapsed;
    entry.max_inclusive = elapsed;
  } else {
    entry.min_inclusive = std::min(entry.min_inclusive, elapsed);
    entry.max_inclusive = std::max(entry.max_inclusive, elapsed);
  }
  ++entry.count;
  entry.inclusive += elapsed;
  entry.exclusive += elapsed - frame.child_time;
  if (!stack_.empty()) stack_.back().child_time += elapsed;
}

double Caliper::inclusive(std::string_view path) const {
  const auto it = stats_.find(std::string(path));
  return it == stats_.end() ? 0.0 : it->second.inclusive;
}

std::uint64_t Caliper::count(std::string_view path) const {
  const auto it = stats_.find(std::string(path));
  return it == stats_.end() ? 0 : it->second.count;
}

double Caliper::top_level_inclusive_total() const {
  double total = 0.0;
  for (const auto& [path, entry] : stats_) {
    if (path.find('/') == std::string::npos) total += entry.inclusive;
  }
  return total;
}

std::string Caliper::report() const {
  std::vector<std::pair<std::string, RegionStats>> rows(stats_.begin(),
                                                        stats_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.inclusive != b.second.inclusive)
      return a.second.inclusive > b.second.inclusive;
    return a.first < b.first;
  });
  std::ostringstream oss;
  oss << "path count inclusive exclusive\n";
  for (const auto& [path, entry] : rows) {
    oss << path << ' ' << entry.count << ' ' << entry.inclusive << ' '
        << entry.exclusive << '\n';
  }
  return oss.str();
}

std::string Caliper::to_json() const {
  std::ostringstream oss;
  oss << "[";
  bool first = true;
  for (const auto& [path, entry] : stats_) {
    if (!first) oss << ",";
    first = false;
    oss << "{\"path\":\"" << path << "\",\"count\":" << entry.count
        << ",\"inclusive\":" << entry.inclusive
        << ",\"exclusive\":" << entry.exclusive
        << ",\"min\":" << entry.min_inclusive
        << ",\"max\":" << entry.max_inclusive << "}";
  }
  oss << "]";
  return oss.str();
}

void Caliper::reset() {
  if (!stack_.empty()) {
    throw std::logic_error("caliper: reset() while regions are open");
  }
  stats_.clear();
  events_ = 0;
}

}  // namespace ft::caliper
