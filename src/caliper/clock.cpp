#include "caliper/clock.hpp"

namespace ft::caliper {

double WallClock::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace ft::caliper
