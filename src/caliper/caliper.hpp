// A Caliper-like performance-introspection library (Boehme et al.,
// SC'16): nested region annotations, per-region aggregation, inclusive
// and exclusive times, and a printable report.
//
// FuncyTuner uses exactly this surface (paper §3.3): per-loop inclusive
// runtimes of instrumented code variants, with <3% annotation overhead.
// The overhead is modeled explicitly: every begin/end event costs
// `overhead_per_event` seconds on the attached clock when the clock is
// virtual (the execution engine advances it), mirroring the cost real
// annotations add to a run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "caliper/clock.hpp"

namespace ft::caliper {

/// Aggregated statistics of one region path ("a/b/c").
struct RegionStats {
  std::uint64_t count = 0;   ///< times the region was entered
  double inclusive = 0.0;    ///< total time inside, children included
  double exclusive = 0.0;    ///< total time minus child-region time
  double min_inclusive = 0.0;  ///< fastest single entry
  double max_inclusive = 0.0;  ///< slowest single entry

  [[nodiscard]] double mean_inclusive() const noexcept {
    return count == 0 ? 0.0 : inclusive / static_cast<double>(count);
  }
};

/// Annotation collector. Single writer; cheap queries.
class Caliper {
 public:
  /// `overhead_per_event` is added to the virtual clock on every
  /// begin/end when `clock` is a VirtualClock (pass nullptr clock to
  /// default to an internal virtual clock).
  explicit Caliper(Clock* clock = nullptr, double overhead_per_event = 0.0);

  /// Enters a region. Regions nest; the full path keys aggregation.
  void begin(std::string_view region);

  /// Leaves the innermost region. `region` must match it (checked).
  void end(std::string_view region);

  /// True while at least one region is open.
  [[nodiscard]] bool in_region() const noexcept { return !stack_.empty(); }
  [[nodiscard]] std::size_t depth() const noexcept { return stack_.size(); }

  /// All aggregated regions, keyed by slash-joined path.
  [[nodiscard]] const std::map<std::string, RegionStats>& stats()
      const noexcept {
    return stats_;
  }

  /// Inclusive time of a path; 0 if never entered.
  [[nodiscard]] double inclusive(std::string_view path) const;
  /// Entry count of a path; 0 if never entered.
  [[nodiscard]] std::uint64_t count(std::string_view path) const;

  /// Sum of inclusive times over top-level regions whose path has no
  /// slash (used to derive non-loop time as end-to-end minus loops).
  [[nodiscard]] double top_level_inclusive_total() const;

  /// Number of begin+end events processed (overhead accounting).
  [[nodiscard]] std::uint64_t event_count() const noexcept {
    return events_;
  }

  /// Flat report, longest inclusive first (like cali-query's table).
  [[nodiscard]] std::string report() const;

  /// JSON rendering of the aggregation (cali-query -j style): an array
  /// of {path, count, inclusive, exclusive, min, max} objects.
  [[nodiscard]] std::string to_json() const;

  /// Clears all aggregation (open regions must be closed first).
  void reset();

  /// The attached clock (internal one if none was supplied).
  [[nodiscard]] Clock& clock() noexcept { return *clock_; }

 private:
  struct Frame {
    std::string path;
    double entry_time = 0.0;
    double child_time = 0.0;
  };

  void charge_overhead();

  VirtualClock internal_clock_;
  Clock* clock_;
  double overhead_per_event_;
  std::vector<Frame> stack_;
  std::map<std::string, RegionStats> stats_;
  std::uint64_t events_ = 0;
};

/// RAII region guard, mirroring Caliper's CALI_CXX_MARK_SCOPE.
class ScopedRegion {
 public:
  ScopedRegion(Caliper& caliper, std::string region)
      : caliper_(caliper), region_(std::move(region)) {
    caliper_.begin(region_);
  }
  ~ScopedRegion() { caliper_.end(region_); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Caliper& caliper_;
  std::string region_;
};

}  // namespace ft::caliper
