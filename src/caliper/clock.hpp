// Time sources for the instrumentation library. The execution engine
// drives a VirtualClock (simulated seconds); WallClock lets the same
// annotation API time real code (used by the tuning-overhead bench and
// the caliper self-tests).
#pragma once

#include <chrono>

namespace ft::caliper {

/// Abstract monotonic time source, in seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual double now() const = 0;
};

/// Simulation time: advanced explicitly by the execution engine.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] double now() const override { return time_; }
  void advance(double seconds) noexcept { time_ += seconds; }
  void reset() noexcept { time_ = 0.0; }

 private:
  double time_ = 0.0;
};

/// Real time from std::chrono::steady_clock.
class WallClock final : public Clock {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double now() const override;

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace ft::caliper
