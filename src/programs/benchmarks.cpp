#include "programs/benchmarks.hpp"

#include <stdexcept>

namespace ft::programs {

namespace {

/// Fluent builder keeping the per-loop tables below readable.
class Loop {
 public:
  Loop(std::string name, double o3_percent) {
    module_.name = std::move(name);
    module_.o3_ratio = o3_percent / 100.0;
  }
  /// flops & memops per iteration, body size (IR ops), trips/invocation.
  Loop& work(double flops, double memops, double body, double trip,
             double invocations = 1) {
    module_.features.flops_per_iter = flops;
    module_.features.memops_per_iter = memops;
    module_.features.body_size = body;
    module_.features.trip_count = trip;
    module_.features.invocations = invocations;
    return *this;
  }
  /// unit-stride fraction, working set (MB), store share, shared-data.
  Loop& memory(double unit_stride, double ws_mb, double store_frac,
               double shared = 0.0) {
    module_.features.unit_stride_frac = unit_stride;
    module_.features.working_set_mb = ws_mb;
    module_.features.store_frac = store_frac;
    module_.features.shared_data = shared;
    return *this;
  }
  /// dynamic divergence, statically visible branchiness, mispredicts.
  Loop& control(double divergence, double static_branchiness,
                double mispredict = 0.0) {
    module_.features.divergence = divergence;
    module_.features.static_branchiness = static_branchiness;
    module_.features.branch_mispredict = mispredict;
    return *this;
  }
  /// loop-carried dependence, alias uncertainty, register pressure.
  Loop& deps(double dependence, double alias_uncertainty,
             double register_pressure) {
    module_.features.dependence = dependence;
    module_.features.alias_uncertainty = alias_uncertainty;
    module_.features.register_pressure = register_pressure;
    return *this;
  }
  /// OpenMP coverage, cross-module call density, fp share.
  Loop& par(double parallel_frac, double call_density = 0.0,
            double fp_intensity = 0.85) {
    module_.features.parallel_frac = parallel_frac;
    module_.features.call_density = call_density;
    module_.features.fp_intensity = fp_intensity;
    return *this;
  }
  operator ir::LoopModule() const { return module_; }  // NOLINT(google-explicit-constructor)

 private:
  ir::LoopModule module_;
};

ir::LoopModule nonloop_module(double o3_percent, double call_density,
                              double shared = 0.4) {
  ir::LoopModule m;
  m.name = "nonloop";
  m.is_loop = false;
  m.o3_ratio = o3_percent / 100.0;
  // Scattered glue code: short trip counts, cache-resident data,
  // dependence-bound and branchy - largely insensitive to loop
  // optimizations (the realistic reason per-loop tuning targets loops).
  m.features.flops_per_iter = 6;
  m.features.memops_per_iter = 5;
  m.features.body_size = 400;  // scattered; never inlinable by IPO
  m.features.trip_count = 2000;
  m.features.invocations = 4;
  m.features.unit_stride_frac = 0.75;
  m.features.working_set_mb = 3;
  m.features.store_frac = 0.3;
  m.features.shared_data = shared;
  m.features.divergence = 0.4;
  m.features.static_branchiness = 0.5;
  m.features.branch_mispredict = 0.35;
  m.features.dependence = 0.7;
  m.features.alias_uncertainty = 0.6;
  m.features.register_pressure = 0.4;
  m.features.parallel_frac = 0.35;
  m.features.call_density = call_density;
  m.features.fp_intensity = 0.5;
  return m;
}

ir::InputSpec input(std::string name, double size, int steps, double work,
                    double ws, double o3_seconds) {
  ir::InputSpec spec;
  spec.name = std::move(name);
  spec.size_param = size;
  spec.timesteps = steps;
  spec.work_scale = work;
  spec.ws_scale = ws;
  spec.o3_seconds = o3_seconds;
  return spec;
}

}  // namespace

ir::Program lulesh() {
  std::vector<ir::LoopModule> loops = {
      Loop("CalcKinematics", 5.5)
          .work(42, 10, 52, 6000)
          .memory(0.9, 440, 0.35, 0.3)
          .control(0.08, 0.70, 0.05)
          .deps(0.05, 0.7, 0.5)
          .par(0.95, 0.05, 0.9),
      Loop("CalcForce", 7.0)
          .work(48, 12, 58, 8000)
          .memory(0.88, 560, 0.3, 0.4)
          .control(0.1, 0.68, 0.08)
          .deps(0.05, 0.68, 0.45)
          .par(0.96, 0.1, 0.92),
      Loop("CalcVolumeForce", 6.0)
          .work(22, 6, 18, 8000)
          .memory(0.92, 360, 0.35, 0.3)
          .control(0.05, 0.08, 0.05)
          .deps(0.04, 0.3, 0.82)
          .par(0.95, 0.0, 0.9),
      Loop("IntegrateStress", 6.0)
          .work(18, 14, 44, 7000)
          .memory(0.45, 600, 0.3, 0.5)
          .control(0.15, 0.2, 0.2)
          .deps(0.1, 0.4, 0.4)
          .par(0.94, 0.05, 0.75),
      Loop("CalcLagrange", 5.0)
          .work(12, 12, 36, 2500)
          .memory(0.95, 520, 0.55, 0.5)
          .control(0.05, 0.05, 0.03)
          .deps(0.03, 0.3, 0.35)
          .par(0.96, 0.0, 0.8),
      Loop("CalcQ", 6.5)
          .work(30, 8, 46, 6000)
          .memory(0.55, 320, 0.25, 0.45)
          .control(0.5, 0.55, 0.35)
          .deps(0.1, 0.35, 0.5)
          .par(0.93, 0.0, 0.85),
      Loop("EvalEOS", 3.5)
          .work(36, 7, 95, 4000)
          .memory(0.85, 160, 0.25, 0.3)
          .control(0.3, 0.4, 0.25)
          .deps(0.12, 0.4, 0.55)
          .par(0.92, 0.35, 0.9),
      Loop("CalcEnergy", 4.0)
          .work(26, 9, 50, 5000)
          .memory(0.8, 240, 0.3, 0.65)
          .control(0.25, 0.3, 0.2)
          .deps(0.15, 0.45, 0.45)
          .par(0.93, 0.1, 0.88),
      Loop("CalcSound", 2.5)
          .work(20, 4, 26, 5000)
          .memory(0.95, 35.0, 0.2, 0.2)
          .control(0.05, 0.06, 0.04)
          .deps(0.05, 0.25, 0.4)
          .par(0.95, 0.0, 0.95),
      Loop("ApplyMaterial", 4.5)
          .work(10, 6, 40, 3000)
          .memory(0.6, 25.0, 0.25, 0.3)
          .control(0.45, 0.5, 0.5)
          .deps(0.1, 0.3, 0.35)
          .par(0.9, 0.15, 0.6),
      Loop("CalcMonotonic", 4.0)
          .work(16, 10, 42, 4000)
          .memory(0.42, 280, 0.3, 0.4)
          .control(0.35, 0.4, 0.3)
          .deps(0.1, 0.4, 0.45)
          .par(0.92, 0.0, 0.8),
  };
  // Loop shares: 54.5% -> non-loop 45.5%.
  std::vector<ir::InputSpec> inputs = {
      input("tuning", 200, 10, 1.0, 1.0, 25.0),
      input("small", 180, 10, 0.73, 0.73, 18.0),
      input("large", 250, 10, 1.95, 1.95, 35.0),
  };
  ir::Program p("LULESH", "C++", 7.2, std::move(loops),
                nonloop_module(45.5, 0.45), std::move(inputs));
  p.set_pgo_instrumentation_fails(true);  // §4.2.2
  return p;
}

ir::Program cloverleaf() {
  // Execution order within a time-step; the five Table 3 kernels keep
  // their published O3 runtime shares (6.3 / 2.9 / 3.5 / 3.5 / 4.2 %).
  std::vector<ir::LoopModule> loops = {
      Loop("dt", 6.3)  // calc_dt reduction: divergent min-reduction
          .work(34, 5, 40, 8000)
          .memory(0.95, 180, 0.1, 0.3)
          .control(0.55, 0.75, 0.45)
          .deps(0.68, 0.2, 0.93)
          .par(0.92, 0.0, 0.9),
      Loop("ideal_gas", 3.0)  // tiny body: O3 over-unrolls into spills
          .work(18, 5, 16, 8000)
          .memory(0.95, 9.0, 0.3, 0.5)
          .control(0.05, 0.08, 0.05)
          .deps(0.03, 0.25, 0.78)
          .par(0.95, 0.0, 0.95),
      Loop("viscosity", 5.2)
          .work(34, 9, 56, 8000)
          .memory(0.55, 280, 0.25, 0.6)
          .control(0.4, 0.45, 0.3)
          .deps(0.1, 0.4, 0.5)
          .par(0.94, 0.0, 0.9),
      Loop("pdv", 7.0)  // alias-blocked but cleanly vectorizable
          .work(45, 12, 50, 8000)
          .memory(0.93, 480, 0.35, 0.4)
          .control(0.08, 0.66, 0.06)
          .deps(0.04, 0.65, 0.45)
          .par(0.95, 0.05, 0.92),
      Loop("acc", 4.2)  // accelerate: Table 3 (O3: S, unroll3)
          .work(30, 8, 28, 8000)
          .memory(0.97, 280, 0.45, 0.4)
          .control(0.03, 0.70, 0.03)
          .deps(0.02, 0.75, 0.35)
          .par(0.96, 0.0, 0.95),
      Loop("flux_calc", 3.8)  // store-stream; O3's static check misses it
          .work(10, 10, 30, 2000)
          .memory(0.95, 400, 0.6, 0.5)
          .control(0.05, 0.06, 0.04)
          .deps(0.03, 0.3, 0.3)
          .par(0.95, 0.0, 0.75),
      Loop("advec_cell1", 5.5)  // gather-heavy, prefetch-sensitive
          .work(20, 14, 60, 8000)
          .memory(0.45, 320, 0.3, 0.5)
          .control(0.3, 0.35, 0.25)
          .deps(0.08, 0.4, 0.45)
          .par(0.93, 0.0, 0.8),
      Loop("cell3", 2.9)  // Table 3: forced 256-bit hurts badly
          .work(24, 8, 48, 8000)
          .memory(0.40, 12.0, 0.25, 0.5)
          .control(0.55, 0.30, 0.15)
          .deps(0.05, 0.35, 0.4)
          .par(0.93, 0.0, 0.85),
      Loop("cell7", 3.5)  // Table 3: milder 256-bit slowdown
          .work(26, 8, 50, 8000)
          .memory(0.55, 14.0, 0.25, 0.5)
          .control(0.45, 0.28, 0.12)
          .deps(0.05, 0.35, 0.4)
          .par(0.93, 0.0, 0.85),
      Loop("advec_mom1", 4.8)  // store-stream producer
          .work(14, 12, 38, 3000)
          .memory(0.95, 480, 0.55, 0.5)
          .control(0.08, 0.1, 0.05)
          .deps(0.05, 0.3, 0.35)
          .par(0.94, 0.0, 0.8),
      Loop("mom9", 3.5)  // Table 3: O3 picks 128-bit; best is S, IS
          .work(28, 9, 46, 8000)
          .memory(0.58, 16.0, 0.3, 0.5)
          .control(0.36, 0.36, 0.1)
          .deps(0.02, 0.3, 0.8)
          .par(0.93, 0.0, 0.85),
      Loop("update_halo", 2.2)  // latency-bound halo exchange
          .work(4, 8, 34, 1500)
          .memory(0.3, 5.0, 0.45, 0.6)
          .control(0.3, 0.35, 0.3)
          .deps(0.05, 0.3, 0.3)
          .par(0.7, 0.1, 0.4),
  };
  // Loop shares: 51.9% -> non-loop 48.1%.
  std::vector<ir::InputSpec> inputs = {
      input("tuning", 2000, 60, 1.0, 1.0, 30.0),
      input("small", 1000, 60, 0.25, 0.25, 8.0),
      input("large", 4000, 60, 4.0, 4.0, 36.0),
  };
  return ir::Program("CL", "C, Fortran", 14.5, std::move(loops),
                     nonloop_module(48.1, 0.5), std::move(inputs));
}

ir::Program amg() {
  // Algebraic multigrid: dominated by irregular, memory-bound sweeps
  // over CSR matrices - deep tuning headroom in prefetch distance,
  // streaming stores and layout transforms (the paper's best case:
  // up to 22% over O3 on the large input).
  std::vector<ir::LoopModule> loops = {
      Loop("relax1", 6.0)
          .work(10, 16, 55, 9000)
          .memory(0.5, 880, 0.25, 0.65)
          .control(0.2, 0.25, 0.3)
          .deps(0.1, 0.5, 0.4)
          .par(0.94, 0.0, 0.7),
      Loop("relax2", 5.0)
          .work(10, 15, 52, 8000)
          .memory(0.48, 760, 0.25, 0.65)
          .control(0.2, 0.25, 0.3)
          .deps(0.1, 0.5, 0.4)
          .par(0.94, 0.0, 0.7),
      Loop("spmv1", 5.5)
          .work(8, 14, 40, 9000)
          .memory(0.45, 720, 0.15, 0.4)
          .control(0.15, 0.2, 0.35)
          .deps(0.08, 0.55, 0.35)
          .par(0.95, 0.0, 0.65),
      Loop("spmv2", 4.0)
          .work(8, 13, 40, 7000)
          .memory(0.45, 600, 0.15, 0.4)
          .control(0.15, 0.2, 0.35)
          .deps(0.08, 0.55, 0.35)
          .par(0.95, 0.0, 0.65),
      Loop("restrict1", 4.0)
          .work(9, 12, 34, 2600)
          .memory(0.9, 28.0, 0.5, 0.5)
          .control(0.08, 0.1, 0.08)
          .deps(0.05, 0.35, 0.3)
          .par(0.94, 0.0, 0.7),
      Loop("interp", 4.0)
          .work(9, 12, 36, 2800)
          .memory(0.88, 30.0, 0.55, 0.5)
          .control(0.1, 0.12, 0.1)
          .deps(0.05, 0.35, 0.3)
          .par(0.94, 0.0, 0.7),
      Loop("axpy1", 3.0)
          .work(6, 9, 20, 3000)
          .memory(0.98, 800, 0.5, 0.4)
          .control(0.02, 0.03, 0.02)
          .deps(0.02, 0.2, 0.25)
          .par(0.97, 0.0, 0.8),
      Loop("axpy2", 2.5)
          .work(6, 9, 20, 2800)
          .memory(0.98, 680, 0.5, 0.4)
          .control(0.02, 0.03, 0.02)
          .deps(0.02, 0.2, 0.25)
          .par(0.97, 0.0, 0.8),
      Loop("dot1", 3.0)
          .work(8, 8, 22, 9000)
          .memory(1.0, 640, 0.02, 0.3)
          .control(0.02, 0.03, 0.02)
          .deps(0.6, 0.2, 0.45)
          .par(0.96, 0.0, 0.9),
      Loop("setup1", 2.0)
          .work(8, 7, 70, 4000)
          .memory(0.5, 240, 0.3, 0.4)
          .control(0.5, 0.55, 0.5)
          .deps(0.2, 0.45, 0.35)
          .par(0.85, 0.2, 0.4),
      Loop("setup2", 2.0)
          .work(7, 6, 80, 3000)
          .memory(0.5, 200, 0.3, 0.4)
          .control(0.45, 0.5, 0.45)
          .deps(0.2, 0.45, 0.35)
          .par(0.85, 0.4, 0.4),
      Loop("coarsen", 2.0)
          .work(9, 9, 58, 4000)
          .memory(0.35, 360, 0.3, 0.5)
          .control(0.55, 0.6, 0.45)
          .deps(0.15, 0.5, 0.4)
          .par(0.88, 0.1, 0.5),
      Loop("norm", 3.0)
          .work(6, 7, 18, 6000)
          .memory(1.0, 480, 0.02, 0.2)
          .control(0.02, 0.03, 0.02)
          .deps(0.7, 0.2, 0.4)
          .par(0.96, 0.0, 0.9),
      Loop("smooth_bdry", 4.5)
          .work(7, 9, 44, 1500)
          .memory(0.3, 15.0, 0.3, 0.5)
          .control(0.35, 0.4, 0.35)
          .deps(0.1, 0.4, 0.3)
          .par(0.6, 0.1, 0.5),
      Loop("pack", 4.0)
          .work(2, 8, 14, 1200)
          .memory(1.0, 6.0, 0.5, 0.6)
          .control(0.03, 0.04, 0.03)
          .deps(0.02, 0.2, 0.2)
          .par(0.8, 0.0, 0.2),
      Loop("unpack", 4.0)
          .work(2, 8, 14, 1200)
          .memory(1.0, 6.0, 0.5, 0.6)
          .control(0.03, 0.04, 0.03)
          .deps(0.02, 0.2, 0.2)
          .par(0.8, 0.0, 0.2),
  };
  // Loop shares: 58.5% -> non-loop 41.5%. The communication and
  // boundary loops (pack/unpack/smooth_bdry) are cache-resident: the
  // streaming/prefetch settings that help the big sweeps wreck them,
  // so no single program-wide CV wins (Random ~ O3 on AMG, Fig 5).
  std::vector<ir::InputSpec> inputs = {
      input("tuning", 25, 25, 1.0, 1.0, 28.0),
      input("small", 20, 25, 0.51, 0.51, 15.0),
      input("large", 30, 25, 1.73, 1.73, 36.0),
  };
  return ir::Program("AMG", "C", 113, std::move(loops),
                     nonloop_module(41.5, 0.5), std::move(inputs));
}

ir::Program optewe() {
  // Seismic FDTD stencils: small register-hungry bodies (inlinable by
  // IPO) over shared wavefield arrays - the configuration where greedy
  // per-module combination collapses (G.realized 0.34 on Sandy Bridge,
  // Fig 5b).
  std::vector<ir::LoopModule> loops = {
      Loop("stress_x", 6.5)
          .work(52, 14, 42, 9000)
          .memory(0.9, 960, 0.35, 0.7)
          .control(0.06, 0.1, 0.05)
          .deps(0.05, 0.55, 0.85)
          .par(0.95, 0.1, 0.95),
      Loop("stress_y", 5.5)
          .work(50, 14, 42, 8500)
          .memory(0.88, 920, 0.35, 0.7)
          .control(0.06, 0.1, 0.05)
          .deps(0.05, 0.55, 0.85)
          .par(0.95, 0.1, 0.95),
      Loop("vel_x", 6.5)
          .work(48, 13, 40, 9000)
          .memory(0.9, 960, 0.4, 0.7)
          .control(0.05, 0.08, 0.04)
          .deps(0.05, 0.55, 0.82)
          .par(0.95, 0.1, 0.95),
      Loop("vel_y", 5.5)
          .work(46, 13, 40, 8500)
          .memory(0.88, 920, 0.4, 0.7)
          .control(0.05, 0.08, 0.04)
          .deps(0.05, 0.55, 0.82)
          .par(0.95, 0.1, 0.95),
      Loop("absorb", 7.0)
          .work(24, 8, 48, 3000)
          .memory(0.6, 160, 0.3, 0.6)
          .control(0.45, 0.5, 0.35)
          .deps(0.1, 0.4, 0.25)
          .par(0.9, 0.05, 0.85),
      Loop("free_surface", 5.5)
          .work(20, 9, 36, 2000)
          .memory(0.7, 18.0, 0.35, 0.7)
          .control(0.25, 0.3, 0.2)
          .deps(0.08, 0.4, 0.45)
          .par(0.85, 0.05, 0.85),
      Loop("source", 1.5)
          .work(14, 5, 24, 500)
          .memory(0.8, 2.0, 0.4, 0.6)
          .control(0.15, 0.2, 0.15)
          .deps(0.05, 0.3, 0.35)
          .par(0.5, 0.1, 0.9),
      Loop("energy", 2.0)
          .work(12, 7, 22, 6000)
          .memory(1.0, 600, 0.02, 0.4)
          .control(0.02, 0.03, 0.02)
          .deps(0.65, 0.2, 0.4)
          .par(0.95, 0.0, 0.9),
  };
  // Loop shares: 40.0% -> non-loop 60.0%.
  std::vector<ir::InputSpec> inputs = {
      input("tuning", 512, 5, 1.0, 1.0, 24.0),
      input("small", 384, 5, 0.42, 0.42, 10.0),
      input("large", 768, 5, 3.38, 3.38, 35.0),
  };
  ir::Program p("Optewe", "C++", 2.7, std::move(loops),
                nonloop_module(60.0, 0.55, 0.6), std::move(inputs));
  p.set_pgo_instrumentation_fails(true);  // §4.2.2
  return p;
}

ir::Program bwaves() {
  std::vector<ir::LoopModule> loops = {
      Loop("jacobian", 11.5)
          .work(60, 12, 70, 8000)
          .memory(0.9, 600, 0.3, 0.4)
          .control(0.06, 0.08, 0.05)
          .deps(0.05, 0.3, 0.6)
          .par(0.95, 0.0, 0.95),
      // Block-tridiagonal solves reuse their blocks across inner
      // sub-iterations: cache-resident, so the streaming/prefetch
      // settings that help the sweeps above hurt them.
      Loop("solve1", 10.0)
          .work(40, 14, 64, 7000)
          .memory(0.8, 25.0, 0.3, 0.5)
          .control(0.1, 0.12, 0.08)
          .deps(0.5, 0.35, 0.55)
          .par(0.93, 0.0, 0.9),
      Loop("solve2", 8.5)
          .work(38, 14, 62, 7000)
          .memory(0.8, 22.0, 0.3, 0.5)
          .control(0.1, 0.12, 0.08)
          .deps(0.5, 0.35, 0.55)
          .par(0.93, 0.0, 0.9),
      Loop("rhs", 8.0)
          .work(18, 13, 44, 3500)
          .memory(0.92, 720, 0.5, 0.5)
          .control(0.08, 0.1, 0.06)
          .deps(0.05, 0.3, 0.4)
          .par(0.95, 0.0, 0.85),
      Loop("flux", 6.5)
          .work(26, 11, 52, 6000)
          .memory(0.7, 480, 0.3, 0.5)
          .control(0.2, 0.25, 0.15)
          .deps(0.08, 0.4, 0.5)
          .par(0.94, 0.0, 0.9),
      Loop("shock", 5.5)  // shock detection: divergent, forced SIMD loses
          .work(24, 8, 48, 6000)
          .memory(0.45, 240, 0.25, 0.5)
          .control(0.6, 0.65, 0.45)
          .deps(0.1, 0.4, 0.45)
          .par(0.92, 0.0, 0.9),
      Loop("bc", 4.5)
          .work(10, 7, 40, 1000)
          .memory(0.5, 10.0, 0.35, 0.5)
          .control(0.4, 0.45, 0.35)
          .deps(0.1, 0.35, 0.35)
          .par(0.7, 0.1, 0.7),
  };
  // Loop shares: 54.5% -> non-loop 45.5%.
  std::vector<ir::InputSpec> inputs = {
      input("tuning", 0, 50, 1.0, 1.0, 30.0),
      input("small", 0, 15, 0.6, 0.15, 2.5),
      input("large", 0, 50, 1.4, 2.5, 36.0),
  };
  return ir::Program("bwaves", "Fortran", 1.2, std::move(loops),
                     nonloop_module(45.5, 0.35), std::move(inputs));
}

ir::Program fma3d() {
  std::vector<ir::LoopModule> loops = {
      Loop("elem1", 6.5)
          .work(50, 12, 120, 5000)
          .memory(0.75, 360, 0.3, 0.4)
          .control(0.2, 0.25, 0.2)
          .deps(0.1, 0.45, 0.5)
          .par(0.92, 0.4, 0.9),
      Loop("elem2", 5.5)
          .work(46, 11, 110, 4500)
          .memory(0.75, 320, 0.3, 0.4)
          .control(0.2, 0.25, 0.2)
          .deps(0.1, 0.45, 0.5)
          .par(0.92, 0.4, 0.9),
      Loop("stress", 5.0)
          .work(40, 10, 48, 6000)
          .memory(0.9, 400, 0.35, 0.4)
          .control(0.08, 0.66, 0.06)
          .deps(0.05, 0.62, 0.5)
          .par(0.94, 0.1, 0.92),
      Loop("strain", 4.5)
          .work(24, 7, 19, 6000)
          .memory(0.92, 280, 0.3, 0.35)
          .control(0.06, 0.08, 0.05)
          .deps(0.04, 0.3, 0.8)
          .par(0.94, 0.0, 0.9),
      Loop("mat1", 4.5)
          .work(30, 8, 85, 4000)
          .memory(0.6, 160, 0.25, 0.35)
          .control(0.55, 0.6, 0.5)
          .deps(0.12, 0.4, 0.45)
          .par(0.9, 0.3, 0.85),
      Loop("mat2", 3.5)
          .work(28, 8, 80, 3500)
          .memory(0.6, 35.0, 0.25, 0.35)
          .control(0.5, 0.55, 0.45)
          .deps(0.12, 0.4, 0.45)
          .par(0.9, 0.3, 0.85),
      Loop("contact", 4.0)
          .work(16, 12, 66, 3000)
          .memory(0.35, 240, 0.3, 0.5)
          .control(0.5, 0.55, 0.45)
          .deps(0.15, 0.5, 0.4)
          .par(0.85, 0.2, 0.6),
      Loop("assemble", 3.5)
          .work(10, 12, 40, 5000)
          .memory(0.55, 440, 0.45, 0.75)
          .control(0.2, 0.25, 0.25)
          .deps(0.2, 0.55, 0.35)
          .par(0.9, 0.1, 0.6),
      Loop("hourglass", 3.5)
          .work(44, 9, 46, 4500)
          .memory(0.9, 240, 0.3, 0.3)
          .control(0.05, 0.07, 0.04)
          .deps(0.05, 0.35, 0.55)
          .par(0.94, 0.0, 0.95),
      Loop("vel_update", 3.0)
          .work(8, 9, 22, 3000)
          .memory(0.97, 360, 0.5, 0.4)
          .control(0.03, 0.04, 0.02)
          .deps(0.02, 0.2, 0.3)
          .par(0.96, 0.0, 0.85),
      Loop("acc_update", 2.5)
          .work(8, 9, 22, 2800)
          .memory(0.97, 320, 0.5, 0.4)
          .control(0.03, 0.04, 0.02)
          .deps(0.02, 0.2, 0.3)
          .par(0.96, 0.0, 0.85),
      Loop("energy", 2.0)
          .work(10, 8, 24, 6000)
          .memory(1.0, 280, 0.02, 0.3)
          .control(0.02, 0.03, 0.02)
          .deps(0.65, 0.2, 0.4)
          .par(0.95, 0.0, 0.9),
      Loop("mass", 1.5)
          .work(8, 7, 26, 2000)
          .memory(0.9, 30.0, 0.3, 0.3)
          .control(0.05, 0.08, 0.05)
          .deps(0.05, 0.3, 0.35)
          .par(0.9, 0.0, 0.8),
      Loop("bc", 1.5)
          .work(8, 6, 38, 1200)
          .memory(0.5, 8.0, 0.3, 0.5)
          .control(0.45, 0.5, 0.4)
          .deps(0.1, 0.35, 0.3)
          .par(0.7, 0.1, 0.6),
  };
  // Loop shares: 51% -> non-loop 49%.
  std::vector<ir::InputSpec> inputs = {
      input("tuning", 0, 20, 1.0, 1.0, 25.0),
      input("small", 0, 10, 0.5, 0.3, 5.0),
      input("large", 0, 20, 1.6, 2.0, 34.0),
  };
  return ir::Program("fma3d", "Fortran", 62, std::move(loops),
                     nonloop_module(49.0, 0.4), std::move(inputs));
}

ir::Program swim() {
  // Shallow-water stencils: three big memory-bound sweeps. The "test"
  // input is so small (time-step < 0.01 s) that its working sets fit in
  // cache and the CV tuned on the training input backfires (§4.3).
  std::vector<ir::LoopModule> loops = {
      Loop("calc1", 18.0)
          .work(25, 16, 46, 9000)
          .memory(0.97, 120, 0.45, 0.5)
          .control(0.03, 0.04, 0.02)
          .deps(0.03, 0.25, 0.45)
          .par(0.96, 0.0, 0.9),
      Loop("calc2", 16.0)
          .work(24, 16, 48, 9000)
          .memory(0.97, 140, 0.45, 0.5)
          .control(0.03, 0.04, 0.02)
          .deps(0.03, 0.25, 0.45)
          .par(0.96, 0.0, 0.9),
      Loop("calc3", 12.0)
          .work(20, 14, 44, 8000)
          .memory(0.95, 130, 0.4, 0.6)
          .control(0.05, 0.06, 0.03)
          .deps(0.4, 0.3, 0.45)
          .par(0.95, 0.0, 0.9),
      Loop("calc3z", 5.0)
          .work(12, 9, 36, 2000)
          .memory(0.6, 20, 0.35, 0.6)
          .control(0.2, 0.25, 0.15)
          .deps(0.1, 0.3, 0.35)
          .par(0.85, 0.0, 0.85),
      Loop("diag", 3.0)
          .work(10, 8, 24, 7000)
          .memory(1.0, 100, 0.02, 0.3)
          .control(0.02, 0.03, 0.02)
          .deps(0.7, 0.2, 0.4)
          .par(0.95, 0.0, 0.9),
  };
  // Loop shares: 54% -> non-loop 46%.
  std::vector<ir::InputSpec> inputs = {
      input("tuning", 0, 90, 1.0, 1.0, 18.0),
      input("small", 0, 120, 0.08, 0.04, 0.9),
      input("large", 0, 90, 1.7, 2.2, 30.0),
  };
  return ir::Program("swim", "Fortran", 0.5, std::move(loops),
                     nonloop_module(46.0, 0.3), std::move(inputs));
}

std::vector<ir::Program> suite() {
  return {lulesh(), cloverleaf(), amg(),   optewe(),
          bwaves(), fma3d(),      swim()};
}

ir::Program by_name(const std::string& name) {
  for (ir::Program& program : suite()) {
    if (program.name() == name) return program;
  }
  throw std::invalid_argument("unknown benchmark: " + name);
}

ir::InputSpec with_timesteps(const ir::InputSpec& base, int timesteps,
                             double startup_seconds) {
  ir::InputSpec spec = base;
  spec.name = base.name + "-steps" + std::to_string(timesteps);
  spec.timesteps = timesteps;
  const double per_step =
      (base.o3_seconds - startup_seconds) / std::max(base.timesteps, 1);
  spec.o3_seconds =
      startup_seconds + per_step * static_cast<double>(timesteps);
  return spec;
}

}  // namespace ft::programs
