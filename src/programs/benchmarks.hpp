// Workload models of the paper's seven benchmarks (Table 1):
// AMG, LULESH, CloverLeaf, Optewe, 351.bwaves, 362.fma3d, 363.swim.
//
// Each model lists the program's hot loops in time-step execution
// order, with feature vectors chosen to reproduce the published
// behaviour: CloverLeaf's five case-study kernels match Table 3's
// O3 ratios and optimization decisions; AMG is dominated by irregular
// memory-bound solver loops (its large tuning headroom); Optewe's
// small, register-hungry stencil bodies make it the greedy-combination
// catastrophe of Fig 5b; swim's "test" input shrinks working sets so
// far that a CV tuned on the training input backfires (§4.3). LULESH
// and Optewe carry the PGO-instrumentation-failure observation
// (§4.2.2). Inputs follow Tables 2 and the §4.3 small/large settings.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ft::programs {

[[nodiscard]] ir::Program lulesh();
[[nodiscard]] ir::Program cloverleaf();
[[nodiscard]] ir::Program amg();
[[nodiscard]] ir::Program optewe();
[[nodiscard]] ir::Program bwaves();
[[nodiscard]] ir::Program fma3d();
[[nodiscard]] ir::Program swim();

/// All seven, in the paper's Fig 5 order:
/// LULESH, CL, AMG, Optewe, bwaves, fma3d, swim.
[[nodiscard]] std::vector<ir::Program> suite();

/// Lookup by name (as printed in the figures); throws on unknown name.
[[nodiscard]] ir::Program by_name(const std::string& name);

/// An input identical to `base` except for the time-step count, with
/// the O3 runtime rescaled around a fixed startup share (used by the
/// Fig 8 time-step scaling study).
[[nodiscard]] ir::InputSpec with_timesteps(const ir::InputSpec& base,
                                           int timesteps,
                                           double startup_seconds = 0.5);

}  // namespace ft::programs
