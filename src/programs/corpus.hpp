// Synthetic training corpus for the COBAYN baseline.
//
// The paper trains COBAYN on cBench (§4.2.1): a few dozen small,
// *serial* kernels. We generate an equivalent corpus of single- to
// three-loop serial programs with randomized-but-plausible feature
// vectors; COBAYN extracts Milepost-like static and MICA-like dynamic
// features from them and learns flag distributions from each program's
// top-100 CVs.
#pragma once

#include <vector>

#include "ir/program.hpp"
#include "support/rng.hpp"

namespace ft::programs {

/// Generates `count` small serial benchmark programs. Deterministic in
/// the RNG state.
[[nodiscard]] std::vector<ir::Program> generate_corpus(support::Rng& rng,
                                                       std::size_t count);

}  // namespace ft::programs
