#include "programs/corpus.hpp"

#include <string>

namespace ft::programs {

std::vector<ir::Program> generate_corpus(support::Rng& rng,
                                         std::size_t count) {
  std::vector<ir::Program> corpus;
  corpus.reserve(count);

  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t loop_count = 1 + rng.next_below(3);
    std::vector<ir::LoopModule> loops;
    loops.reserve(loop_count);

    // Split 55-75% of runtime across the loops.
    const double loop_share = rng.uniform(0.55, 0.75);
    std::vector<double> weights;
    double weight_sum = 0.0;
    for (std::size_t j = 0; j < loop_count; ++j) {
      weights.push_back(rng.uniform(0.5, 2.0));
      weight_sum += weights.back();
    }

    for (std::size_t j = 0; j < loop_count; ++j) {
      ir::LoopModule loop;
      loop.name = "kernel" + std::to_string(j);
      loop.o3_ratio = loop_share * weights[j] / weight_sum;
      ir::LoopFeatures& f = loop.features;
      f.flops_per_iter = rng.uniform(4.0, 60.0);
      f.memops_per_iter = rng.uniform(2.0, 18.0);
      f.body_size = rng.uniform(12.0, 120.0);
      f.trip_count = rng.uniform(200.0, 20000.0);
      f.invocations = rng.uniform(1.0, 8.0);
      f.unit_stride_frac = rng.uniform(0.2, 1.0);
      f.working_set_mb = rng.uniform(0.5, 200.0);
      f.store_frac = rng.uniform(0.05, 0.6);
      f.shared_data = rng.uniform(0.0, 0.7);
      f.divergence = rng.uniform(0.0, 0.6);
      f.static_branchiness = f.divergence * rng.uniform(0.6, 1.4);
      f.branch_mispredict = rng.uniform(0.0, 0.5);
      f.dependence = rng.bernoulli(0.25) ? rng.uniform(0.3, 0.75)
                                         : rng.uniform(0.0, 0.15);
      f.alias_uncertainty = rng.uniform(0.0, 0.8);
      f.register_pressure = rng.uniform(0.2, 0.9);
      f.parallel_frac = 0.0;  // cBench kernels are serial (MICA works)
      f.call_density = rng.uniform(0.0, 0.3);
      f.fp_intensity = rng.uniform(0.3, 1.0);
      f.sanitize();
      loops.push_back(std::move(loop));
    }

    ir::LoopModule nonloop;
    nonloop.name = "nonloop";
    nonloop.is_loop = false;
    nonloop.o3_ratio = 1.0 - loop_share;
    nonloop.features.body_size = 300;
    nonloop.features.trip_count = 500;
    nonloop.features.unit_stride_frac = 0.5;
    nonloop.features.working_set_mb = 10;
    nonloop.features.divergence = 0.4;
    nonloop.features.static_branchiness = 0.45;
    nonloop.features.parallel_frac = 0.0;
    nonloop.features.call_density = rng.uniform(0.1, 0.5);
    nonloop.features.sanitize();

    std::vector<ir::InputSpec> inputs;
    ir::InputSpec tuning;
    tuning.name = "tuning";
    tuning.timesteps = 5;
    tuning.o3_seconds = rng.uniform(2.0, 10.0);
    inputs.push_back(tuning);

    corpus.emplace_back("cbench" + std::to_string(i), "C", 0.3,
                        std::move(loops), std::move(nonloop),
                        std::move(inputs));
  }
  return corpus;
}

}  // namespace ft::programs
