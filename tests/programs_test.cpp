// Tests for the benchmark workload models: the published roster
// (Table 1), per-loop O3 shares (Table 3's CloverLeaf ratios), input
// configurations (Table 2, §4.3) and the COBAYN training corpus.
#include <gtest/gtest.h>

#include <numeric>

#include "programs/benchmarks.hpp"
#include "programs/corpus.hpp"

namespace ft::programs {
namespace {

TEST(Suite, SevenBenchmarksInFigureOrder) {
  const auto programs = suite();
  ASSERT_EQ(programs.size(), 7u);
  const std::vector<std::string> expected = {
      "LULESH", "CL", "AMG", "Optewe", "bwaves", "fma3d", "swim"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(programs[i].name(), expected[i]);
  }
}

TEST(Suite, Table1Languages) {
  EXPECT_EQ(lulesh().language(), "C++");
  EXPECT_EQ(amg().language(), "C");
  EXPECT_EQ(cloverleaf().language(), "C, Fortran");
  EXPECT_EQ(bwaves().language(), "Fortran");
  EXPECT_EQ(swim().language(), "Fortran");
}

TEST(Suite, Table1LinesOfCode) {
  EXPECT_NEAR(amg().loc_k(), 113, 1);
  EXPECT_NEAR(lulesh().loc_k(), 7.2, 0.1);
  EXPECT_NEAR(swim().loc_k(), 0.5, 0.1);
}

TEST(Suite, ByNameRoundTrips) {
  for (const auto& program : suite()) {
    EXPECT_EQ(by_name(program.name()).name(), program.name());
  }
  EXPECT_THROW((void)by_name("nope"), std::invalid_argument);
}

TEST(Suite, PgoFailuresMatchPaper) {
  // §4.2.2: "PGO instrumentation runs fail for LULESH and Optewe".
  EXPECT_TRUE(lulesh().pgo_instrumentation_fails());
  EXPECT_TRUE(optewe().pgo_instrumentation_fails());
  EXPECT_FALSE(cloverleaf().pgo_instrumentation_fails());
  EXPECT_FALSE(amg().pgo_instrumentation_fails());
}

TEST(Cloverleaf, Table3LoopRatios) {
  const ir::Program cl = cloverleaf();
  auto ratio = [&](const std::string& name) {
    for (const auto& loop : cl.loops()) {
      if (loop.name == name) return loop.o3_ratio;
    }
    ADD_FAILURE() << "missing loop " << name;
    return 0.0;
  };
  EXPECT_NEAR(ratio("dt"), 0.063, 1e-9);
  EXPECT_NEAR(ratio("cell3"), 0.029, 1e-9);
  EXPECT_NEAR(ratio("cell7"), 0.035, 1e-9);
  EXPECT_NEAR(ratio("mom9"), 0.035, 1e-9);
  EXPECT_NEAR(ratio("acc"), 0.042, 1e-9);
}

TEST(WithTimesteps, ScalesRuntimeAroundStartup) {
  const ir::InputSpec base = cloverleaf().tuning_input();  // 60 steps
  const ir::InputSpec doubled = with_timesteps(base, 120, 0.5);
  EXPECT_EQ(doubled.timesteps, 120);
  const double per_step = (base.o3_seconds - 0.5) / 60.0;
  EXPECT_NEAR(doubled.o3_seconds, 0.5 + per_step * 120, 1e-9);
  EXPECT_NE(doubled.name, base.name);
}

// Parameterized sweep over all seven workload models.
class SuiteProperty : public ::testing::TestWithParam<std::string> {
 protected:
  ir::Program program() const { return by_name(GetParam()); }
};

TEST_P(SuiteProperty, ModuleCountInPaperRange) {
  // §2.1: J ranges from 5 to 33 (hot loops + rest module).
  const auto p = program();
  EXPECT_GE(p.loops().size() + 1, 5u);
  EXPECT_LE(p.loops().size() + 1, 33u);
}

TEST_P(SuiteProperty, SharesSumToOne) {
  const auto p = program();
  double total = p.nonloop().o3_ratio;
  for (const auto& loop : p.loops()) total += loop.o3_ratio;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(SuiteProperty, EveryLoopAtLeastOnePercent) {
  // §3.3: outlined loops have >= 1% of end-to-end runtime.
  const auto p = program();
  for (const auto& loop : p.loops()) {
    EXPECT_GE(loop.o3_ratio, 0.01) << loop.name;
  }
}

TEST_P(SuiteProperty, AllFeatureVectorsValid) {
  const auto p = program();
  for (const auto& loop : p.loops()) {
    EXPECT_TRUE(ir::features_valid(loop.features)) << loop.name;
  }
  EXPECT_TRUE(ir::features_valid(p.nonloop().features));
}

TEST_P(SuiteProperty, HasTuningSmallAndLargeInputs) {
  const auto p = program();
  EXPECT_TRUE(p.input("tuning").has_value());
  EXPECT_TRUE(p.input("small").has_value());
  EXPECT_TRUE(p.input("large").has_value());
}

TEST_P(SuiteProperty, RunsUnderFortySeconds) {
  // §3.1: inputs sized so each O3 run stays below 40 s.
  const auto p = program();
  for (const auto& input : p.inputs()) {
    EXPECT_LT(input.o3_seconds, 40.0) << input.name;
    EXPECT_GT(input.o3_seconds, 0.0) << input.name;
  }
}

TEST_P(SuiteProperty, SmallInputSmallerThanLarge) {
  const auto p = program();
  EXPECT_LT(p.input("small")->ws_scale, p.input("large")->ws_scale);
  EXPECT_LT(p.input("small")->o3_seconds, p.input("large")->o3_seconds);
}

TEST_P(SuiteProperty, OpenMpParallelHotLoops) {
  // Benchmarks were selected for OpenMP parallelism (§3.1): the bulk
  // of hot-loop runtime must be parallel.
  const auto p = program();
  double weighted = 0.0, total = 0.0;
  for (const auto& loop : p.loops()) {
    weighted += loop.o3_ratio * loop.features.parallel_frac;
    total += loop.o3_ratio;
  }
  EXPECT_GT(weighted / total, 0.7);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteProperty,
                         ::testing::Values("LULESH", "CL", "AMG",
                                           "Optewe", "bwaves", "fma3d",
                                           "swim"));

// --------------------------------------------------------------- corpus ----

TEST(Corpus, GeneratesRequestedCount) {
  support::Rng rng(1);
  EXPECT_EQ(generate_corpus(rng, 10).size(), 10u);
}

TEST(Corpus, DeterministicInRng) {
  support::Rng a(5), b(5);
  const auto ca = generate_corpus(a, 5);
  const auto cb = generate_corpus(b, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ca[i].loops().size(), cb[i].loops().size());
    EXPECT_DOUBLE_EQ(ca[i].loops()[0].features.flops_per_iter,
                     cb[i].loops()[0].features.flops_per_iter);
  }
}

TEST(Corpus, ProgramsAreSerial) {
  // MICA (and COBAYN's dynamic features) only work on serial code;
  // the corpus mirrors cBench's serial kernels.
  support::Rng rng(2);
  for (const auto& program : generate_corpus(rng, 8)) {
    for (const auto& loop : program.loops()) {
      EXPECT_DOUBLE_EQ(loop.features.parallel_frac, 0.0);
    }
  }
}

TEST(Corpus, ValidProgramsWithTuningInput) {
  support::Rng rng(3);
  for (const auto& program : generate_corpus(rng, 8)) {
    EXPECT_GE(program.loops().size(), 1u);
    EXPECT_LE(program.loops().size(), 3u);
    EXPECT_NO_THROW((void)program.tuning_input());
    for (const auto& loop : program.loops()) {
      EXPECT_TRUE(ir::features_valid(loop.features));
    }
  }
}

}  // namespace
}  // namespace ft::programs
