// Tests for the analysis/tooling layer: flag-importance main effects,
// serialization of tuning artifacts, CFR early stopping, link-effect
// ablation switches and the extended Caliper statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "caliper/caliper.hpp"
#include "core/flag_importance.hpp"
#include "core/funcy_tuner.hpp"
#include "core/campaign.hpp"
#include "core/evolution.hpp"
#include "core/serialization.hpp"
#include "machine/architecture.hpp"
#include "programs/benchmarks.hpp"

namespace ft {
namespace {

core::FuncyTunerOptions fast_options(std::size_t samples = 150) {
  core::FuncyTunerOptions options;
  options.samples = samples;
  options.final_reps = 5;
  return options;
}

// ------------------------------------------------------ flag importance ----

class ImportanceTest : public ::testing::Test {
 protected:
  ImportanceTest()
      : tuner_(programs::cloverleaf(), machine::broadwell(),
               fast_options(400)) {}
  core::FuncyTuner tuner_;
};

TEST_F(ImportanceTest, CoversAllModulesAndFlags) {
  const auto importance = core::analyze_flag_importance(
      tuner_.space(), tuner_.outline(), tuner_.collection());
  ASSERT_EQ(importance.size(), tuner_.outline().hot.size() + 1);
  EXPECT_EQ(importance.back().module_name, "rest");
  for (const auto& module : importance) {
    EXPECT_EQ(module.effects.size(), tuner_.space().flag_count());
  }
}

TEST_F(ImportanceTest, EffectsSortedBySpread) {
  const auto importance = core::analyze_flag_importance(
      tuner_.space(), tuner_.outline(), tuner_.collection());
  for (const auto& module : importance) {
    for (std::size_t i = 1; i < module.effects.size(); ++i) {
      EXPECT_GE(module.effects[i - 1].spread, module.effects[i].spread);
    }
  }
}

TEST_F(ImportanceTest, OptionMeansNormalizedAroundOne) {
  const auto importance = core::analyze_flag_importance(
      tuner_.space(), tuner_.outline(), tuner_.collection());
  for (const auto& module : importance) {
    for (const auto& effect : module.effects) {
      double weighted = 0.0;
      for (const double m : effect.option_means) {
        EXPECT_GT(m, 0.0);
        weighted += m;
      }
      // Option means hover around 1 (they are normalized by the
      // module's overall mean).
      EXPECT_GT(weighted / effect.option_means.size(), 0.5);
      EXPECT_LT(weighted / effect.option_means.size(), 1.5);
    }
  }
}

TEST_F(ImportanceTest, BestOptionIsTheMinimum) {
  const auto importance = core::analyze_flag_importance(
      tuner_.space(), tuner_.outline(), tuner_.collection());
  for (const auto& module : importance) {
    for (const auto& effect : module.effects) {
      for (const double m : effect.option_means) {
        EXPECT_LE(effect.option_means[effect.best_option], m + 1e-12);
      }
    }
  }
}

TEST_F(ImportanceTest, UnrollMattersForSpillProneLoop) {
  // CloverLeaf dt has register pressure 0.93: unroll choice must rank
  // among its most important flags.
  const auto importance = core::analyze_flag_importance(
      tuner_.space(), tuner_.outline(), tuner_.collection());
  const auto& dt = importance.front();  // dt is the first hot loop
  ASSERT_EQ(dt.module_name, "dt");
  const auto top = core::top_flags(dt, 3);
  bool unroll_in_top3 = false;
  for (const auto& effect : top) {
    unroll_in_top3 |= (effect.flag_name == "-unroll");
  }
  EXPECT_TRUE(unroll_in_top3);
}

TEST_F(ImportanceTest, TopFlagsClamps) {
  const auto importance = core::analyze_flag_importance(
      tuner_.space(), tuner_.outline(), tuner_.collection());
  EXPECT_EQ(core::top_flags(importance[0], 5).size(), 5u);
  EXPECT_EQ(core::top_flags(importance[0], 1000).size(),
            tuner_.space().flag_count());
}

// -------------------------------------------------------- serialization ----

TEST(Serialization, CollectionCsvShape) {
  core::FuncyTuner tuner(programs::swim(), machine::broadwell(),
                         fast_options(50));
  std::ostringstream oss;
  core::write_collection_csv(oss, tuner.outline(), tuner.collection());
  const std::string csv = oss.str();
  // Header + one row per sample.
  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 51u);
  EXPECT_NE(csv.find("cv_index,cv_hash,end_to_end,rest"),
            std::string::npos);
  EXPECT_NE(csv.find("calc1"), std::string::npos);
}

TEST(Serialization, HistoryCsv) {
  core::TuningResult result;
  result.history = {3.0, 2.5, 2.5};
  std::ostringstream oss;
  core::write_history_csv(oss, result);
  EXPECT_EQ(oss.str(),
            "evaluation,best_so_far_seconds\n1,3\n2,2.5\n3,2.5\n");
}

TEST(Serialization, TuningResultJson) {
  core::FuncyTuner tuner(programs::swim(), machine::broadwell(),
                         fast_options(50));
  core::TuningResult result;
  result.algorithm = "CFR";
  result.speedup = 1.1;
  result.best_assignment = compiler::ModuleAssignment::uniform(
      tuner.space().default_cv(), tuner.program().loops().size());
  const std::string json = core::tuning_result_json(
      result, tuner.space(), tuner.program());
  EXPECT_NE(json.find("\"algorithm\":\"CFR\""), std::string::npos);
  EXPECT_NE(json.find("\"calc1\":\"-O3\""), std::string::npos);
  EXPECT_NE(json.find("\"nonloop\":\"-O3\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ------------------------------------------------------ CFR early stop ----

TEST(CfrPatience, StopsEarlyAndMatchesPrefix) {
  core::FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(),
                         fast_options(300));
  const double baseline = tuner.baseline_seconds();

  core::CfrOptions full;
  full.iterations = 300;
  const auto reference = core::cfr_search(
      tuner.evaluator(), tuner.outline(), tuner.collection(), full,
      baseline);

  core::CfrOptions stopped = full;
  stopped.patience = 40;
  const auto early = core::cfr_search(tuner.evaluator(), tuner.outline(),
                                      tuner.collection(), stopped,
                                      baseline);
  EXPECT_LE(early.evaluations, reference.evaluations);
  // The evaluations it did run are identical to the full run's prefix.
  for (std::size_t i = 0; i < early.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(early.history[i], reference.history[i]);
  }
  EXPECT_GT(early.speedup, 1.0);
}

TEST(CfrPatience, ZeroPatienceDisablesEarlyStop) {
  core::FuncyTuner tuner(programs::swim(), machine::broadwell(),
                         fast_options(120));
  core::CfrOptions options;
  options.iterations = 120;
  options.patience = 0;
  const auto result = core::cfr_search(
      tuner.evaluator(), tuner.outline(), tuner.collection(), options,
      tuner.baseline_seconds());
  EXPECT_EQ(result.evaluations, 120u);
}

// ---------------------------------------------------------- LinkOptions ----

TEST(LinkAblation, DisablingEffectsLiftsGreedy) {
  core::FuncyTuner with_fx(programs::cloverleaf(), machine::broadwell(),
                           fast_options(300));
  core::FuncyTuner without_fx(programs::cloverleaf(),
                              machine::broadwell(), fast_options(300));
  without_fx.engine().compiler().set_link_options(
      compiler::LinkOptions::none());
  const auto greedy_on = with_fx.run_greedy();
  const auto greedy_off = without_fx.run_greedy();
  EXPECT_GT(greedy_off.realized.speedup, greedy_on.realized.speedup);
  // Without link effects the realized assembly approaches the
  // independence hypothetical.
  EXPECT_GT(greedy_off.realized.speedup,
            0.9 * greedy_off.independent_speedup);
}

TEST(LinkAblation, NoneDisablesEverything) {
  const auto options = compiler::LinkOptions::none();
  EXPECT_FALSE(options.ipo_reoptimization);
  EXPECT_FALSE(options.layout_mismatch_penalties);
  EXPECT_FALSE(options.icache_pressure);
  const compiler::LinkOptions defaults;
  EXPECT_TRUE(defaults.ipo_reoptimization);
  EXPECT_TRUE(defaults.layout_mismatch_penalties);
  EXPECT_TRUE(defaults.icache_pressure);
}

// --------------------------------------------------- extended Caliper ----

TEST(CaliperStats, MinMaxPerRegion) {
  caliper::VirtualClock clock;
  caliper::Caliper cal(&clock);
  for (const double t : {1.0, 3.0, 2.0}) {
    cal.begin("r");
    clock.advance(t);
    cal.end("r");
  }
  const auto& stats = cal.stats().at("r");
  EXPECT_DOUBLE_EQ(stats.min_inclusive, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_inclusive, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_inclusive(), 2.0);
}

TEST(CaliperStats, JsonExport) {
  caliper::VirtualClock clock;
  caliper::Caliper cal(&clock);
  cal.begin("a");
  clock.advance(1.5);
  cal.end("a");
  const std::string json = cal.to_json();
  EXPECT_NE(json.find("\"path\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"inclusive\":1.5"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(CaliperStats, EmptyJsonIsEmptyArray) {
  caliper::Caliper cal;
  EXPECT_EQ(cal.to_json(), "[]");
}

}  // namespace
}  // namespace ft

// --------------------------------------------------------- campaign ----

namespace ft {
namespace {

TEST(Campaign, RunsGridAndAnswersQueries) {
  core::CampaignOptions options;
  options.tuner = fast_options(80);
  std::size_t progress_calls = 0;
  options.progress = [&](const std::string&, const std::string&) {
    ++progress_calls;
  };
  core::Campaign campaign(
      {programs::swim(), programs::bwaves()},
      {machine::broadwell(), machine::sandy_bridge()}, options);
  EXPECT_FALSE(campaign.finished());
  campaign.run();
  EXPECT_TRUE(campaign.finished());
  EXPECT_EQ(campaign.cells().size(), 4u);
  EXPECT_EQ(progress_calls, 4u);

  const auto& cell = campaign.cell("swim", "Intel Broadwell");
  EXPECT_GT(cell.result("CFR").speedup, 0.9);
  EXPECT_GT(cell.baseline_seconds, 0.0);
  EXPECT_THROW((void)campaign.cell("nope", "Intel Broadwell"),
               std::invalid_argument);

  const double gm = campaign.geomean_speedup("CFR", "Intel Broadwell");
  EXPECT_GT(gm, 0.9);
  EXPECT_THROW((void)campaign.geomean_speedup("Bogus", "Intel Broadwell"),
               std::invalid_argument);
}

TEST(Campaign, ParallelCellsMatchSequentialGrid) {
  core::CampaignOptions options;
  options.tuner = fast_options(60);
  const std::vector<ir::Program> programs = {programs::swim(),
                                             programs::bwaves()};
  const std::vector<machine::Architecture> archs = {
      machine::broadwell(), machine::sandy_bridge()};

  core::Campaign sequential(programs, archs, options);
  sequential.run();

  options.parallel_cells = true;
  std::size_t progress_calls = 0;
  options.progress = [&](const std::string&, const std::string&) {
    ++progress_calls;
  };
  // Cells run inside pool workers and issue their own nested
  // parallel_for sweeps; results must be bit-identical to sequential.
  core::Campaign parallel(programs, archs, options);
  parallel.run();
  EXPECT_EQ(progress_calls, 4u);
  ASSERT_EQ(parallel.cells().size(), sequential.cells().size());
  for (const auto& cell : sequential.cells()) {
    const auto& other = parallel.cell(cell.program, cell.architecture);
    EXPECT_DOUBLE_EQ(other.baseline_seconds, cell.baseline_seconds);
    ASSERT_EQ(other.results.size(), cell.results.size());
    for (std::size_t i = 0; i < cell.results.size(); ++i) {
      EXPECT_EQ(other.results[i].algorithm, cell.results[i].algorithm);
      EXPECT_DOUBLE_EQ(other.results[i].speedup, cell.results[i].speedup);
    }
  }
}

TEST(Campaign, SaltedSeedsDifferPerArch) {
  core::CampaignOptions options;
  options.tuner = fast_options(60);
  core::Campaign campaign({programs::swim()},
                          {machine::broadwell(), machine::opteron()},
                          options);
  campaign.run();
  // Different salts -> different pre-samples -> (almost surely)
  // different winning CVs across architectures.
  const auto& a = campaign.cell("swim", "Intel Broadwell");
  const auto& b = campaign.cell("swim", "AMD Opteron");
  EXPECT_NE(a.result("cfr").tuned_seconds, b.result("cfr").tuned_seconds);
}

TEST(Campaign, RejectsEmptyInputs) {
  core::CampaignOptions options;
  EXPECT_THROW(core::Campaign({}, {machine::broadwell()}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace ft

// -------------------------------------------------------- evolution ----

namespace ft {
namespace {

TEST(Evolution, RespectsBudgetAndPrunedSpaces) {
  core::FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(),
                         fast_options(200));
  core::EvolutionOptions options;
  options.evaluations = 200;
  options.top_x = 10;
  const auto result = core::evolutionary_search(
      tuner.evaluator(), tuner.outline(), tuner.collection(), options,
      tuner.baseline_seconds());
  EXPECT_EQ(result.algorithm, "EvoCFR");
  EXPECT_EQ(result.evaluations, 200u);
  EXPECT_EQ(result.history.size(), 200u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    ASSERT_LE(result.history[i], result.history[i - 1]);
  }
  // Winner CVs come from the collection's pruned candidates.
  const auto pruned = core::prune_top_x(tuner.collection(), 10);
  const auto& outline = tuner.outline();
  for (std::size_t i = 0; i < outline.hot.size(); ++i) {
    bool found = false;
    for (const std::size_t k : pruned[i]) {
      found |= tuner.collection().cvs[k] ==
               result.best_assignment.loop_cvs[outline.hot[i]];
    }
    EXPECT_TRUE(found) << "module " << i;
  }
}

TEST(Evolution, DeterministicUnderSeed) {
  auto run = [] {
    core::FuncyTuner tuner(programs::swim(), machine::broadwell(),
                           fast_options(150));
    core::EvolutionOptions options;
    options.evaluations = 150;
    return core::evolutionary_search(tuner.evaluator(), tuner.outline(),
                                     tuner.collection(), options,
                                     tuner.baseline_seconds())
        .speedup;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Evolution, CompetitiveWithCfr) {
  core::FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(),
                         fast_options(400));
  const double baseline = tuner.baseline_seconds();
  const auto cfr = tuner.run_cfr();
  core::EvolutionOptions options;
  options.evaluations = 400;
  const auto evo = core::evolutionary_search(
      tuner.evaluator(), tuner.outline(), tuner.collection(), options,
      baseline);
  // Recombination must at least hold its own against blind re-sampling.
  EXPECT_GT(evo.speedup, cfr.speedup - 0.02);
  EXPECT_GT(evo.speedup, 1.0);
}

TEST(Evolution, TinyBudgetStillWorks) {
  core::FuncyTuner tuner(programs::swim(), machine::broadwell(),
                         fast_options(60));
  core::EvolutionOptions options;
  options.evaluations = 10;  // smaller than the population
  options.population = 32;
  const auto result = core::evolutionary_search(
      tuner.evaluator(), tuner.outline(), tuner.collection(), options,
      tuner.baseline_seconds());
  EXPECT_EQ(result.evaluations, 10u);
  EXPECT_GT(result.speedup, 0.8);
}

}  // namespace
}  // namespace ft
