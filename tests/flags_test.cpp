// Tests for the flag-space model: the ICC-like and GCC-like COS
// factories, CV sampling/rendering/parsing, semantic decoding,
// neighborhoods and binarization.
#include <gtest/gtest.h>

#include <set>

#include "flags/compilation_vector.hpp"
#include "flags/flag_space.hpp"
#include "flags/semantics.hpp"
#include "flags/spaces.hpp"
#include "support/rng.hpp"

namespace ft::flags {
namespace {

// ---------------------------------------------------------- factories ----

TEST(IccSpace, Has33Flags) {
  EXPECT_EQ(icc_space().flag_count(), 33u);  // paper §2.1
}

TEST(IccSpace, SizeIsRoughly2e13) {
  // The paper reports |COS| ~ 2.3e13; ours must be the same order.
  const long double size = icc_space().size();
  EXPECT_GT(size, 1e13L);
  EXPECT_LT(size, 1e14L);
}

TEST(IccSpace, DefaultOptionFirstEverywhere) {
  const FlagSpace space = icc_space();
  for (const FlagSpec& spec : space.specs()) {
    ASSERT_FALSE(spec.options.empty()) << spec.name;
    EXPECT_TRUE(spec.options[0].text.empty())
        << spec.name << ": default must render as empty (plain -O3)";
  }
}

TEST(IccSpace, NoFloatingPointModelFlags) {
  // §3.2: FP-model flags are excluded for strict reproducibility.
  const FlagSpace space = icc_space();
  for (const FlagSpec& spec : space.specs()) {
    for (const FlagOption& option : spec.options) {
      EXPECT_EQ(option.text.find("fp-model"), std::string::npos);
      EXPECT_EQ(option.text.find("fast-math"), std::string::npos);
    }
  }
}

TEST(GccSpace, IsSmallerButNonTrivial) {
  const FlagSpace gcc = gcc_space();
  EXPECT_GE(gcc.flag_count(), 15u);
  EXPECT_LT(gcc.flag_count(), icc_space().flag_count());
}

TEST(Spaces, CompilerNamesDiffer) {
  EXPECT_EQ(icc_space().compiler_name(), "icc");
  EXPECT_EQ(gcc_space().compiler_name(), "gcc");
}

TEST(Spaces, UniqueFlagNames) {
  for (const FlagSpace& space : {icc_space(), gcc_space()}) {
    std::set<std::string> names;
    for (const FlagSpec& spec : space.specs()) {
      EXPECT_TRUE(names.insert(spec.name).second)
          << "duplicate flag " << spec.name;
    }
  }
}

// ------------------------------------------------------------ default ----

TEST(FlagSpace, DefaultCvRendersAsO3) {
  const FlagSpace space = icc_space();
  EXPECT_EQ(space.render(space.default_cv()), "-O3");
}

TEST(FlagSpace, DefaultCvDecodesToO3Defaults) {
  const FlagSpace space = icc_space();
  const SemanticSettings defaults = SemanticSettings::o3_defaults();
  const SemanticSettings decoded = space.decode(space.default_cv());
  for (std::size_t i = 0; i < kSemanticFlagCount; ++i) {
    EXPECT_EQ(decoded.values[i], defaults.values[i])
        << semantic_flag_name(static_cast<SemanticFlag>(i));
  }
}

// ------------------------------------------------------------ sampling ----

TEST(FlagSpace, SamplesAreContained) {
  const FlagSpace space = icc_space();
  support::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(space.contains(space.sample(rng)));
  }
}

TEST(FlagSpace, SampleManyCount) {
  const FlagSpace space = icc_space();
  support::Rng rng(2);
  EXPECT_EQ(space.sample_many(rng, 64).size(), 64u);
}

TEST(FlagSpace, SamplingIsDeterministic) {
  const FlagSpace space = icc_space();
  support::Rng a(3), b(3);
  EXPECT_EQ(space.sample(a), space.sample(b));
}

TEST(FlagSpace, SamplingCoversEveryOption) {
  const FlagSpace space = icc_space();
  support::Rng rng(4);
  std::vector<std::set<std::uint8_t>> seen(space.flag_count());
  for (int i = 0; i < 3000; ++i) {
    const CompilationVector cv = space.sample(rng);
    for (std::size_t f = 0; f < cv.size(); ++f) seen[f].insert(cv[f]);
  }
  for (std::size_t f = 0; f < space.flag_count(); ++f) {
    EXPECT_EQ(seen[f].size(), space.specs()[f].options.size())
        << space.specs()[f].name;
  }
}

// ------------------------------------------------------ render / parse ----

TEST(FlagSpace, RenderParseRoundTrip) {
  const FlagSpace space = icc_space();
  support::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const CompilationVector cv = space.sample(rng);
    const auto parsed = space.parse(space.render(cv));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cv);
  }
}

TEST(FlagSpace, ParseRejectsUnknownToken) {
  const FlagSpace space = icc_space();
  EXPECT_FALSE(space.parse("-fmystery-flag").has_value());
}

TEST(FlagSpace, ParseEmptyIsDefault) {
  const FlagSpace space = icc_space();
  const auto parsed = space.parse("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, space.default_cv());
}

// -------------------------------------------------- CompilationVector ----

TEST(CompilationVector, HashDiffersOnContent) {
  CompilationVector a(std::vector<std::uint8_t>{0, 1, 2});
  CompilationVector b(std::vector<std::uint8_t>{0, 1, 3});
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), CompilationVector(a).hash());
}

TEST(CompilationVector, HashLengthSensitive) {
  CompilationVector a(std::vector<std::uint8_t>{0});
  CompilationVector b(std::vector<std::uint8_t>{0, 0});
  EXPECT_NE(a.hash(), b.hash());
}

TEST(CompilationVector, Distance) {
  CompilationVector a(std::vector<std::uint8_t>{0, 1, 2});
  CompilationVector b(std::vector<std::uint8_t>{0, 2, 2});
  EXPECT_EQ(a.distance(b), 1u);
  EXPECT_EQ(a.distance(a), 0u);
  CompilationVector c(std::vector<std::uint8_t>{0, 1});
  EXPECT_EQ(a.distance(c), 1u);  // length difference counts
}

// --------------------------------------------------------- neighbors ----

TEST(FlagSpace, MutateChangesExactlyOneFlag) {
  const FlagSpace space = icc_space();
  support::Rng rng(6);
  const CompilationVector cv = space.default_cv();
  for (int i = 0; i < 100; ++i) {
    const CompilationVector mutated = space.mutate(cv, rng);
    EXPECT_EQ(cv.distance(mutated), 1u);
    EXPECT_TRUE(space.contains(mutated));
  }
}

TEST(FlagSpace, NeighborCountMatchesOptionSum) {
  const FlagSpace space = icc_space();
  std::size_t expected = 0;
  for (const FlagSpec& spec : space.specs()) {
    expected += spec.options.size() - 1;
  }
  EXPECT_EQ(space.neighbors(space.default_cv()).size(), expected);
}

// -------------------------------------------------------- binarization ----

TEST(FlagSpace, BinarizedHasTwoOptionsEverywhere) {
  const FlagSpace binary = icc_space().binarized();
  EXPECT_EQ(binary.flag_count(), icc_space().flag_count());
  for (const FlagSpec& spec : binary.specs()) {
    EXPECT_LE(spec.options.size(), 2u);
  }
}

TEST(FlagSpace, BinarizedCvValidInFullSpace) {
  // Binarized option indices coincide with full-space indices 0/1, so
  // binary CVs can be compiled directly (COBAYN/CE rely on this).
  const FlagSpace space = icc_space();
  const FlagSpace binary = space.binarized();
  support::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(space.contains(binary.sample(rng)));
  }
}

// ----------------------------------------------------- semantic decode ----

TEST(Decode, NoVecSetsVectorizeOff) {
  const FlagSpace space = icc_space();
  const auto cv = space.parse("-no-vec");
  ASSERT_TRUE(cv.has_value());
  EXPECT_EQ(space.decode(*cv).get(SemanticFlag::kVectorize), 0);
}

TEST(Decode, UnrollValues) {
  const FlagSpace space = icc_space();
  const auto cv = space.parse("-unroll4");
  ASSERT_TRUE(cv.has_value());
  EXPECT_EQ(space.decode(*cv).get(SemanticFlag::kUnroll), 4);
}

TEST(Decode, StreamingStoreValues) {
  const FlagSpace space = icc_space();
  const auto always = space.parse("-qopt-streaming-stores=always");
  const auto never = space.parse("-qopt-streaming-stores=never");
  ASSERT_TRUE(always && never);
  EXPECT_EQ(space.decode(*always).get(SemanticFlag::kStreamingStores), 1);
  EXPECT_EQ(space.decode(*never).get(SemanticFlag::kStreamingStores), 2);
}

TEST(Decode, GccSemanticsMapOntoSameKnobs) {
  const FlagSpace gcc = gcc_space();
  const auto cv = gcc.parse("-fno-tree-vectorize");
  ASSERT_TRUE(cv.has_value());
  EXPECT_EQ(gcc.decode(*cv).get(SemanticFlag::kVectorize), 0);
}

// Parameterized sweep: every option of every ICC flag decodes to the
// value the spec declares (the pipeline depends on this contract).
class OptionDecode : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OptionDecode, EveryOptionDecodesToDeclaredValue) {
  const FlagSpace space = icc_space();
  const std::size_t flag = GetParam();
  const FlagSpec& spec = space.specs()[flag];
  for (std::size_t option = 0; option < spec.options.size(); ++option) {
    CompilationVector cv = space.default_cv();
    cv.set(flag, static_cast<std::uint8_t>(option));
    EXPECT_EQ(space.decode(cv).get(spec.semantic),
              spec.options[option].value)
        << spec.name << " option " << option;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIccFlags, OptionDecode,
                         ::testing::Range<std::size_t>(0, 33));

}  // namespace
}  // namespace ft::flags
