// Exhaustive per-flag behavioural tests of the compiler pipeline: for
// every minor optimization flag, the documented effect direction under
// its triggering loop conditions, and the penalty/neutral behaviour
// otherwise. Each case states: flag text, a feature tweak, and whether
// the flag is expected to help (<1 multiplier product) or hurt (>1)
// relative to the default compilation of the same loop.
#include <gtest/gtest.h>

#include <functional>

#include "compiler/pipeline.hpp"
#include "flags/spaces.hpp"
#include "machine/architecture.hpp"

namespace ft::compiler {
namespace {

ir::LoopModule base_loop() {
  ir::LoopModule m;
  m.name = "loop";
  m.features.flops_per_iter = 30;
  m.features.memops_per_iter = 8;
  m.features.body_size = 40;
  m.features.trip_count = 6000;
  m.features.unit_stride_frac = 0.9;
  m.features.working_set_mb = 80;
  m.features.register_pressure = 0.3;
  m.features.fp_intensity = 0.9;
  m.features.sanitize();
  return m;
}

/// Combined quality multiplier of the codegen (lower is faster); used
/// to compare flag effects independent of the cost model.
double quality(const LoopCodeGen& g) {
  return g.compute_mult * g.mem_mult * g.overhead_mult;
}

struct FlagCase {
  const char* label;
  const char* flag_text;
  std::function<void(ir::LoopFeatures&)> tweak;  // triggering condition
  bool expect_helps;  // vs. default CV on the SAME tweaked loop
};

class MinorFlag : public ::testing::TestWithParam<FlagCase> {};

TEST_P(MinorFlag, EffectDirection) {
  const FlagCase& test_case = GetParam();
  ir::LoopModule loop = base_loop();
  test_case.tweak(loop.features);
  loop.features.sanitize();

  const flags::FlagSpace space = flags::icc_space();
  const machine::Architecture arch = machine::broadwell();
  const auto baseline_cv = space.default_cv();
  const auto flagged_cv = space.parse(test_case.flag_text);
  ASSERT_TRUE(flagged_cv.has_value()) << test_case.flag_text;

  const CompiledModule baseline =
      compile_module(loop, baseline_cv, space.decode(baseline_cv), arch,
                     Personality::kIcc);
  const CompiledModule flagged =
      compile_module(loop, *flagged_cv, space.decode(*flagged_cv), arch,
                     Personality::kIcc);

  if (test_case.expect_helps) {
    EXPECT_LT(quality(flagged.codegen), quality(baseline.codegen))
        << test_case.label;
  } else {
    EXPECT_GT(quality(flagged.codegen), quality(baseline.codegen))
        << test_case.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMinorFlags, MinorFlag,
    ::testing::Values(
        FlagCase{"scalar-rep off hurts", "-no-scalar-rep",
                 [](ir::LoopFeatures&) {}, false},
        FlagCase{"fusion off hurts fusable shared-data loops",
                 "-qno-loop-fusion",
                 [](ir::LoopFeatures& f) { f.shared_data = 0.6; }, false},
        FlagCase{"interchange off hurts strided loops",
                 "-qno-loop-interchange",
                 [](ir::LoopFeatures& f) { f.unit_stride_frac = 0.3; },
                 false},
        FlagCase{"distribution helps big bodies", "-qloop-distribution",
                 [](ir::LoopFeatures& f) { f.body_size = 90; }, true},
        FlagCase{"distribution hurts small bodies", "-qloop-distribution",
                 [](ir::LoopFeatures& f) { f.body_size = 20; }, false},
        FlagCase{"rerolling off hurts", "-qno-rerolling",
                 [](ir::LoopFeatures&) {}, false},
        FlagCase{"frame pointer hurts", "-fno-omit-frame-pointer",
                 [](ir::LoopFeatures&) {}, false},
        FlagCase{"loop alignment off hurts", "-no-align-loops",
                 [](ir::LoopFeatures&) {}, false},
        FlagCase{"dynamic-align off hurts vectorized loops",
                 "-qno-opt-dynamic-align", [](ir::LoopFeatures&) {},
                 false},
        FlagCase{"function alignment 32 helps slightly",
                 "-falign-functions=32", [](ir::LoopFeatures&) {}, true},
        FlagCase{"jump tables off hurts branchy loops",
                 "-qno-opt-jump-tables",
                 [](ir::LoopFeatures& f) { f.static_branchiness = 0.5; },
                 false},
        FlagCase{"jump tables off ~neutral-good on straight code",
                 "-qno-opt-jump-tables",
                 [](ir::LoopFeatures& f) { f.static_branchiness = 0.0; },
                 true},
        FlagCase{"matmul recognition costs a little", "-qopt-matmul",
                 [](ir::LoopFeatures&) {}, false},
        FlagCase{"safe padding helps vectorized loops",
                 "-qopt-assume-safe-padding", [](ir::LoopFeatures&) {},
                 true},
        FlagCase{"layout-trans 0 hurts", "-qopt-mem-layout-trans=0",
                 [](ir::LoopFeatures&) {}, false},
        FlagCase{"layout-trans 2 helps shared-heavy loops",
                 "-qopt-mem-layout-trans=2",
                 [](ir::LoopFeatures& f) { f.shared_data = 0.6; }, true},
        FlagCase{"layout-trans 3 hurts private-data loops",
                 "-qopt-mem-layout-trans=3",
                 [](ir::LoopFeatures& f) { f.shared_data = 0.1; }, false},
        FlagCase{"calloc opt costs loops a little", "-qopt-calloc",
                 [](ir::LoopFeatures&) {}, false},
        FlagCase{"no-ansi-alias helps shared-data-heavy loops",
                 "-no-ansi-alias",
                 [](ir::LoopFeatures& f) { f.shared_data = 0.7; }, true},
        FlagCase{"no-ansi-alias hurts private-data loops",
                 "-no-ansi-alias",
                 [](ir::LoopFeatures& f) { f.shared_data = 0.1; }, false},
        FlagCase{"low inline factor hurts call-heavy loops",
                 "-inline-factor=0",
                 [](ir::LoopFeatures& f) { f.call_density = 0.5; },
                 false},
        FlagCase{"high inline factor helps call-heavy loops",
                 "-inline-factor=400",
                 [](ir::LoopFeatures& f) { f.call_density = 0.5; }, true},
        FlagCase{"sched list helps big straight bodies", "-qsched=list",
                 [](ir::LoopFeatures& f) {
                   f.body_size = 80;
                   f.divergence = 0.05;
                 },
                 true},
        FlagCase{"sched list hurts small bodies", "-qsched=list",
                 [](ir::LoopFeatures& f) { f.body_size = 20; }, false},
        FlagCase{"sched trace helps divergent branchy code",
                 "-qsched=trace",
                 [](ir::LoopFeatures& f) {
                   f.static_branchiness = 0.7;
                   f.divergence = 0.5;
                 },
                 true},
        FlagCase{"sched trace hurts coherent code", "-qsched=trace",
                 [](ir::LoopFeatures& f) { f.divergence = 0.05; }, false},
        FlagCase{"sched aggressive helps dependence-free bodies",
                 "-qsched=aggressive",
                 [](ir::LoopFeatures& f) { f.dependence = 0.0; }, true},
        FlagCase{"sched aggressive hurts dependent bodies",
                 "-qsched=aggressive",
                 [](ir::LoopFeatures& f) { f.dependence = 0.4; }, false},
        FlagCase{"isel helps fp-dominated loops", "-qisel-aggressive",
                 [](ir::LoopFeatures& f) { f.fp_intensity = 0.95; },
                 true},
        FlagCase{"isel hurts mixed-type loops", "-qisel-aggressive",
                 [](ir::LoopFeatures& f) { f.fp_intensity = 0.4; },
                 false}),
    [](const ::testing::TestParamInfo<FlagCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- headline-knob interactions not covered by compiler_test -------------

TEST(HeadlineFlags, O2AndO1AreSlower) {
  const flags::FlagSpace space = flags::icc_space();
  const machine::Architecture arch = machine::broadwell();
  const ir::LoopModule loop = base_loop();
  auto quality_of = [&](const std::string& text) {
    const auto cv = space.parse(text);
    EXPECT_TRUE(cv.has_value());
    return quality(compile_module(loop, *cv, space.decode(*cv), arch,
                                  Personality::kIcc)
                       .codegen);
  };
  const double o3 = quality_of("");
  EXPECT_GT(quality_of("-O2"), o3);
  EXPECT_GT(quality_of("-O1"), quality_of("-O2"));
}

TEST(HeadlineFlags, RegionRaReducesSpills) {
  const flags::FlagSpace space = flags::icc_space();
  const machine::Architecture arch = machine::broadwell();
  ir::LoopModule loop = base_loop();
  loop.features.register_pressure = 0.85;
  const auto plain = space.parse("-unroll2");
  const auto region = space.parse("-unroll2 -qopt-ra-region-strategy=region");
  ASSERT_TRUE(plain && region);
  const double plain_spill =
      compile_module(loop, *plain, space.decode(*plain), arch,
                     Personality::kIcc)
          .codegen.spill_severity;
  const double region_spill =
      compile_module(loop, *region, space.decode(*region), arch,
                     Personality::kIcc)
          .codegen.spill_severity;
  EXPECT_LT(region_spill, plain_spill);
}

TEST(HeadlineFlags, TileOnlyWithUnitStride) {
  const flags::FlagSpace space = flags::icc_space();
  const machine::Architecture arch = machine::broadwell();
  ir::LoopModule strided = base_loop();
  strided.features.unit_stride_frac = 0.3;
  const auto cv = space.parse("-opt-block-factor=8");
  ASSERT_TRUE(cv.has_value());
  EXPECT_EQ(compile_module(strided, *cv, space.decode(*cv), arch,
                           Personality::kIcc)
                .codegen.tile,
            0);
  const ir::LoopModule contiguous = base_loop();
  EXPECT_EQ(compile_module(contiguous, *cv, space.decode(*cv), arch,
                           Personality::kIcc)
                .codegen.tile,
            8);
}

TEST(HeadlineFlags, UnrollAggressiveDoublesHeuristic) {
  const flags::FlagSpace space = flags::icc_space();
  const machine::Architecture arch = machine::broadwell();
  const ir::LoopModule loop = base_loop();  // body 40 -> heuristic 2
  const auto plain_cv = space.default_cv();
  const auto aggressive = space.parse("-unroll-aggressive");
  ASSERT_TRUE(aggressive.has_value());
  const int plain = compile_module(loop, plain_cv,
                                   space.decode(plain_cv), arch,
                                   Personality::kIcc)
                        .codegen.unroll;
  const int doubled = compile_module(loop, *aggressive,
                                     space.decode(*aggressive), arch,
                                     Personality::kIcc)
                          .codegen.unroll;
  EXPECT_EQ(doubled, plain * 2);
}

}  // namespace
}  // namespace ft::compiler
