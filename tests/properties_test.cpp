// Property-based sweeps (parameterized gtest): invariants of the cost
// model across all three architectures, of the search algorithms across
// seeds and programs, and of the compiler pipeline across random CVs.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/funcy_tuner.hpp"
#include "flags/spaces.hpp"
#include "machine/architecture.hpp"
#include "machine/cost_model.hpp"
#include "programs/benchmarks.hpp"
#include "support/rng.hpp"

namespace ft {
namespace {

machine::Architecture arch_by_name(const std::string& name) {
  for (const auto& arch : machine::all_architectures()) {
    if (arch.name == name) return arch;
  }
  throw std::invalid_argument(name);
}

// ----------------------------------------- cost model x architectures ----

class CostModelOnArch : public ::testing::TestWithParam<std::string> {
 protected:
  machine::Architecture arch() const { return arch_by_name(GetParam()); }
};

TEST_P(CostModelOnArch, CostsPositiveForRandomLoops) {
  support::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    ir::LoopFeatures f;
    f.flops_per_iter = rng.uniform(1, 80);
    f.memops_per_iter = rng.uniform(1, 20);
    f.trip_count = rng.uniform(100, 20000);
    f.working_set_mb = rng.uniform(0.5, 600);
    f.unit_stride_frac = rng.uniform();
    f.divergence = rng.uniform();
    f.dependence = rng.uniform();
    f.register_pressure = rng.uniform();
    f.parallel_frac = rng.uniform();
    f.store_frac = rng.uniform();
    f.sanitize();
    compiler::LinkedLoop linked;
    linked.codegen.vector_width = rng.bernoulli(0.5) ? 256 : 0;
    linked.codegen.unroll = 1 << rng.next_below(4);
    linked.codegen.prefetch = static_cast<int>(rng.next_below(5));
    const machine::LoopCost cost =
        machine::raw_loop_cost(f, linked, arch(), 10);
    ASSERT_GT(cost.total, 0.0);
    ASSERT_TRUE(std::isfinite(cost.total));
    ASSERT_GE(cost.total,
              std::max(cost.compute, cost.memory) - 1e-12);
  }
}

TEST_P(CostModelOnArch, WorkScalingIsMonotone) {
  ir::LoopFeatures f;
  f.flops_per_iter = 20;
  f.memops_per_iter = 8;
  f.trip_count = 5000;
  f.working_set_mb = 80;
  f.sanitize();
  compiler::LinkedLoop linked;
  double previous = 0.0;
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    const machine::LoopCost cost = machine::raw_loop_cost(
        f.scaled(scale, scale), linked, arch(), 10);
    EXPECT_GT(cost.total, previous);
    previous = cost.total;
  }
}

TEST_P(CostModelOnArch, BandwidthHierarchyRespected) {
  // A cache-resident sweep must never be slower than the same sweep
  // over a DRAM-sized working set.
  ir::LoopFeatures f;
  f.flops_per_iter = 2;
  f.memops_per_iter = 12;
  f.trip_count = 8000;
  f.sanitize();
  compiler::LinkedLoop linked;
  f.working_set_mb = 1.0;
  const double cached =
      machine::raw_loop_cost(f, linked, arch(), 10).total;
  f.working_set_mb = 500.0;
  const double dram =
      machine::raw_loop_cost(f, linked, arch(), 10).total;
  EXPECT_LT(cached, dram);
}

TEST_P(CostModelOnArch, BaselineCalibrationHoldsForAllPrograms) {
  for (const auto& program : programs::suite()) {
    const flags::FlagSpace space = flags::icc_space();
    compiler::Compiler compiler(space, arch());
    machine::ExecutionEngine engine(program, compiler);
    machine::RunOptions options;
    options.noise = false;
    const machine::RunResult result = engine.run(
        engine.baseline(), program.tuning_input(), options);
    EXPECT_NEAR(result.end_to_end, program.tuning_input().o3_seconds,
                1e-6)
        << program.name() << " on " << arch().name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, CostModelOnArch,
                         ::testing::Values("AMD Opteron",
                                           "Intel Sandy Bridge",
                                           "Intel Broadwell"));

// ------------------------------------------------ pipeline x random CVs ----

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, DecisionsWithinDomains) {
  const flags::FlagSpace space = flags::icc_space();
  support::Rng rng(GetParam());
  const ir::Program program = programs::cloverleaf();
  const machine::Architecture arch = machine::broadwell();
  for (int i = 0; i < 100; ++i) {
    const flags::CompilationVector cv = space.sample(rng);
    for (const auto& loop : program.loops()) {
      const compiler::CompiledModule object = compiler::compile_module(
          loop, cv, space.decode(cv), arch, compiler::Personality::kIcc);
      const auto& g = object.codegen;
      ASSERT_TRUE(g.vector_width == 0 || g.vector_width == 128 ||
                  g.vector_width == 256);
      ASSERT_GE(g.unroll, 1);
      ASSERT_LE(g.unroll, 16);
      ASSERT_GE(g.prefetch, 0);
      ASSERT_LE(g.prefetch, 4);
      ASSERT_GE(g.spill_severity, 0.0);
      ASSERT_GT(g.compute_mult, 0.5);
      ASSERT_LT(g.compute_mult, 2.0);
      ASSERT_GT(g.code_size, 0.0);
    }
  }
}

TEST_P(PipelineProperty, LinkedExecutableSane) {
  const flags::FlagSpace space = flags::icc_space();
  support::Rng rng(GetParam() ^ 0x9e37ULL);
  const ir::Program program = programs::lulesh();
  compiler::Compiler compiler(space, machine::broadwell());
  for (int i = 0; i < 30; ++i) {
    compiler::ModuleAssignment assignment;
    for (std::size_t j = 0; j < program.loops().size(); ++j) {
      assignment.loop_cvs.push_back(space.sample(rng));
    }
    assignment.nonloop_cv = space.sample(rng);
    const compiler::Executable exe = compiler.build(program, assignment);
    ASSERT_EQ(exe.loops.size(), program.loops().size());
    ASSERT_GE(exe.global_mult, 1.0);
    ASSERT_LE(exe.global_mult, 1.25);
    for (const auto& loop : exe.loops) {
      ASSERT_GE(loop.interference_mult, 1.0);
      ASSERT_LE(loop.interference_mult, 1.16);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------- search x programs ----

class SearchOnProgram : public ::testing::TestWithParam<std::string> {
 protected:
  core::FuncyTunerOptions options() const {
    core::FuncyTunerOptions o;
    o.samples = 200;
    o.final_reps = 5;
    return o;
  }
};

TEST_P(SearchOnProgram, CfrImprovesOverO3) {
  core::FuncyTuner tuner(programs::by_name(GetParam()),
                         machine::broadwell(), options());
  EXPECT_GT(tuner.run_cfr().speedup, 1.0);
}

TEST_P(SearchOnProgram, IndependentDominatesEverything) {
  core::FuncyTuner tuner(programs::by_name(GetParam()),
                         machine::broadwell(), options());
  const auto all = tuner.run_all();
  EXPECT_GT(all.greedy.independent_speedup, all.cfr.speedup);
  EXPECT_GT(all.greedy.independent_speedup, all.random.speedup);
  EXPECT_GT(all.greedy.independent_speedup, all.fr.speedup);
  EXPECT_GT(all.greedy.independent_speedup,
            all.greedy.realized.speedup);
}

TEST_P(SearchOnProgram, HistoriesMonotone) {
  core::FuncyTuner tuner(programs::by_name(GetParam()),
                         machine::broadwell(), options());
  for (const auto& result : {tuner.run_random(), tuner.run_cfr()}) {
    for (std::size_t i = 1; i < result.history.size(); ++i) {
      ASSERT_LE(result.history[i], result.history[i - 1]);
    }
  }
}

TEST_P(SearchOnProgram, OutlineCoversMostRuntime) {
  core::FuncyTuner tuner(programs::by_name(GetParam()),
                         machine::broadwell(), options());
  const core::Outline& outline = tuner.outline();
  double covered = 0.0;
  for (const std::size_t j : outline.hot) {
    covered += outline.measured_share[j];
  }
  // Hot loops carry 35-65% of runtime in every workload model.
  EXPECT_GT(covered, 0.3);
  EXPECT_LT(covered, 0.7);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SearchOnProgram,
                         ::testing::Values("LULESH", "CL", "AMG",
                                           "Optewe", "bwaves", "fma3d",
                                           "swim"));

// ----------------------------------------------------- seeds x CFR ----

class CfrSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CfrSeedSweep, CfrRobustToSeedChoice) {
  core::FuncyTunerOptions options;
  options.samples = 250;
  options.seed = GetParam();
  options.final_reps = 5;
  core::FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(),
                         options);
  const auto cfr = tuner.run_cfr();
  // Whatever the seed, CFR finds a solidly improving configuration.
  EXPECT_GT(cfr.speedup, 1.04);
  EXPECT_LT(cfr.speedup, 1.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfrSeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace ft
