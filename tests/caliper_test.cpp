// Tests for the Caliper-like instrumentation library: region nesting,
// inclusive/exclusive aggregation, overhead accounting and clocks.
#include <gtest/gtest.h>

#include <thread>

#include "caliper/caliper.hpp"
#include "caliper/clock.hpp"

namespace ft::caliper {
namespace {

TEST(VirtualClock, AdvancesExplicitly) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(WallClock, MonotonicAndPositive) {
  WallClock clock;
  const double t0 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double t1 = clock.now();
  EXPECT_GE(t0, 0.0);
  EXPECT_GT(t1, t0);
}

TEST(Caliper, SingleRegionInclusiveTime) {
  VirtualClock clock;
  Caliper caliper(&clock);
  caliper.begin("loop");
  clock.advance(2.0);
  caliper.end("loop");
  EXPECT_DOUBLE_EQ(caliper.inclusive("loop"), 2.0);
  EXPECT_EQ(caliper.count("loop"), 1u);
}

TEST(Caliper, AggregatesRepeatedEntries) {
  VirtualClock clock;
  Caliper caliper(&clock);
  for (int i = 0; i < 10; ++i) {
    ScopedRegion region(caliper, "step");
    clock.advance(0.5);
  }
  EXPECT_DOUBLE_EQ(caliper.inclusive("step"), 5.0);
  EXPECT_EQ(caliper.count("step"), 10u);
}

TEST(Caliper, NestedRegionsPathKeyed) {
  VirtualClock clock;
  Caliper caliper(&clock);
  caliper.begin("outer");
  clock.advance(1.0);
  caliper.begin("inner");
  clock.advance(2.0);
  caliper.end("inner");
  clock.advance(1.0);
  caliper.end("outer");
  EXPECT_DOUBLE_EQ(caliper.inclusive("outer"), 4.0);
  EXPECT_DOUBLE_EQ(caliper.inclusive("outer/inner"), 2.0);
  EXPECT_DOUBLE_EQ(caliper.inclusive("inner"), 0.0);  // path, not leaf
}

TEST(Caliper, ExclusiveSubtractsChildren) {
  VirtualClock clock;
  Caliper caliper(&clock);
  caliper.begin("outer");
  clock.advance(1.0);
  {
    ScopedRegion inner(caliper, "inner");
    clock.advance(2.0);
  }
  clock.advance(0.5);
  caliper.end("outer");
  const auto& stats = caliper.stats();
  EXPECT_NEAR(stats.at("outer").exclusive, 1.5, 1e-12);
  EXPECT_NEAR(stats.at("outer").inclusive, 3.5, 1e-12);
}

TEST(Caliper, SameNameDifferentParents) {
  VirtualClock clock;
  Caliper caliper(&clock);
  caliper.begin("a");
  {
    ScopedRegion region(caliper, "k");
    clock.advance(1.0);
  }
  caliper.end("a");
  caliper.begin("b");
  {
    ScopedRegion region(caliper, "k");
    clock.advance(2.0);
  }
  caliper.end("b");
  EXPECT_DOUBLE_EQ(caliper.inclusive("a/k"), 1.0);
  EXPECT_DOUBLE_EQ(caliper.inclusive("b/k"), 2.0);
}

TEST(Caliper, MismatchedEndThrows) {
  Caliper caliper;
  caliper.begin("a");
  EXPECT_THROW(caliper.end("b"), std::logic_error);
  // Region is still open and can be closed correctly.
  EXPECT_TRUE(caliper.in_region());
  EXPECT_NO_THROW(caliper.end("a"));
}

TEST(Caliper, EndWithoutBeginThrows) {
  Caliper caliper;
  EXPECT_THROW(caliper.end("x"), std::logic_error);
}

TEST(Caliper, ResetRequiresClosedRegions) {
  Caliper caliper;
  caliper.begin("x");
  EXPECT_THROW(caliper.reset(), std::logic_error);
  caliper.end("x");
  EXPECT_NO_THROW(caliper.reset());
  EXPECT_TRUE(caliper.stats().empty());
  EXPECT_EQ(caliper.event_count(), 0u);
}

TEST(Caliper, OverheadChargedToVirtualClock) {
  VirtualClock clock;
  Caliper caliper(&clock, 0.01);
  caliper.begin("r");
  clock.advance(1.0);
  caliper.end("r");
  // begin+end charged 0.02 total; end's overhead lands outside the
  // region (charged before reading the clock? begin charges before
  // entry timestamp; end charges before the exit timestamp).
  EXPECT_DOUBLE_EQ(clock.now(), 1.02);
  EXPECT_DOUBLE_EQ(caliper.inclusive("r"), 1.01);
  EXPECT_EQ(caliper.event_count(), 2u);
}

TEST(Caliper, OverheadStaysUnderThreePercent) {
  // Paper §3.3: Caliper instrumentation adds < 3% overhead. Simulate a
  // 20 s run with 12 loops x 60 time-steps of annotations at the
  // engine's default 2e-4 s/event.
  VirtualClock clock;
  Caliper caliper(&clock, 2e-4);
  const double loop_seconds = 20.0 / (12 * 60);
  for (int step = 0; step < 60; ++step) {
    for (int l = 0; l < 12; ++l) {
      ScopedRegion region(caliper, "loop" + std::to_string(l));
      clock.advance(loop_seconds);
    }
  }
  EXPECT_LT(clock.now(), 20.0 * 1.03);
  EXPECT_GT(clock.now(), 20.0);
}

TEST(Caliper, TopLevelInclusiveTotal) {
  VirtualClock clock;
  Caliper caliper(&clock);
  {
    ScopedRegion a(caliper, "a");
    clock.advance(1.0);
    ScopedRegion nested(caliper, "n");
    clock.advance(1.0);
  }
  {
    ScopedRegion b(caliper, "b");
    clock.advance(3.0);
  }
  EXPECT_DOUBLE_EQ(caliper.top_level_inclusive_total(), 5.0);
}

TEST(Caliper, ReportSortedByInclusive) {
  VirtualClock clock;
  Caliper caliper(&clock);
  {
    ScopedRegion a(caliper, "small");
    clock.advance(1.0);
  }
  {
    ScopedRegion b(caliper, "big");
    clock.advance(5.0);
  }
  const std::string report = caliper.report();
  EXPECT_LT(report.find("big"), report.find("small"));
}

TEST(Caliper, InternalClockWhenNoneSupplied) {
  Caliper caliper;
  caliper.begin("x");
  caliper.end("x");
  EXPECT_EQ(caliper.count("x"), 1u);
  EXPECT_DOUBLE_EQ(caliper.inclusive("x"), 0.0);  // clock never advanced
}

TEST(Caliper, DepthTracksNesting) {
  Caliper caliper;
  EXPECT_EQ(caliper.depth(), 0u);
  caliper.begin("a");
  caliper.begin("b");
  EXPECT_EQ(caliper.depth(), 2u);
  caliper.end("b");
  caliper.end("a");
  EXPECT_EQ(caliper.depth(), 0u);
  EXPECT_FALSE(caliper.in_region());
}

}  // namespace
}  // namespace ft::caliper
