// Tests for the content-addressed evaluation cache: LRU/sharding/
// collision unit tests plus the property the whole feature rests on -
// cache-on runs are bit-identical to cache-off runs (results, journals,
// quarantine decisions) while the modeled overhead splits exactly into
// charged + saved.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "core/evolution.hpp"
#include "core/funcy_tuner.hpp"
#include "core/serialization.hpp"
#include "machine/architecture.hpp"
#include "programs/benchmarks.hpp"

namespace ft::core {
namespace {

/// Small budget, tiny pruned space: CFR/EvoCFR re-draw from top-2 per
/// module, so duplicate assignments (cache hits) are guaranteed.
FuncyTunerOptions collision_options(std::uint64_t seed = 42,
                                    std::size_t samples = 60) {
  FuncyTunerOptions options;
  options.samples = samples;
  options.top_x = 2;
  options.seed = seed;
  options.final_reps = 5;
  return options;
}

EvalOutcome make_outcome(double seconds) {
  EvalOutcome outcome;
  outcome.result.end_to_end = seconds;
  outcome.result.stddev = 0.01;
  outcome.result.loop_seconds = {seconds / 2, seconds / 4};
  return outcome;
}

EvalCache::Key make_key(std::uint64_t assignment) {
  return EvalCache::Key{assignment, rep_streams::kCfr, 7, 1, false};
}

/// Journal lines as an order-insensitive set: append order under a
/// parallel batch is scheduling-dependent, the record *set* is not.
std::vector<std::string> journal_record_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"eval\"") == std::string::npos) continue;
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

void expect_identical(const TuningResult& a, const TuningResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.search_best_seconds, b.search_best_seconds);
  EXPECT_EQ(a.tuned_seconds, b.tuned_seconds);
  EXPECT_EQ(a.baseline_seconds, b.baseline_seconds);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// ----------------------------------------------------------- unit ----

TEST(EvalCacheUnit, KeyFingerprintMixesEveryField) {
  const EvalCache::Key base{1, 2, 3, 4, false};
  EvalCache::Key other = base;
  EXPECT_EQ(base.fingerprint(), other.fingerprint());
  other.assignment = 9;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.rep_base = 9;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.salt = 9;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.repetitions = 9;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.instrumented = true;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  // The test seam masks to the requested width.
  EXPECT_LT(base.fingerprint(4), 16u);
}

TEST(EvalCacheUnit, StoresAndReplaysOutcome) {
  EvalCache cache(16);
  EvalOutcome out;
  double rerun = -1;
  EXPECT_FALSE(cache.lookup(make_key(1), &out, &rerun));

  cache.insert(make_key(1), make_outcome(3.5), 42.25);
  ASSERT_TRUE(cache.lookup(make_key(1), &out, &rerun));
  EXPECT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.result.end_to_end, 3.5);
  EXPECT_EQ(out.result.loop_seconds, make_outcome(3.5).result.loop_seconds);
  EXPECT_DOUBLE_EQ(rerun, 42.25);

  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(EvalCacheUnit, StripsCaliperReportLikeTheJournal) {
  EvalCache cache(16);
  EvalOutcome outcome = make_outcome(1.0);
  outcome.result.caliper_report = "big attribution text";
  cache.insert(make_key(5), outcome, 0.0);
  EvalOutcome out;
  ASSERT_TRUE(cache.lookup(make_key(5), &out));
  EXPECT_TRUE(out.result.caliper_report.empty());
}

TEST(EvalCacheUnit, DuplicateInsertRefreshesInsteadOfGrowing) {
  EvalCache cache(16);
  cache.insert(make_key(1), make_outcome(1.0), 10.0);
  cache.insert(make_key(1), make_outcome(1.0), 10.0);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);  // refresh, not a second insert
}

TEST(EvalCacheUnit, LruEvictsLeastRecentlyUsed) {
  EvalCache cache(EvalCache::Options{.max_entries = 2, .shards = 1});
  cache.insert(make_key(1), make_outcome(1.0), 0.0);
  cache.insert(make_key(2), make_outcome(2.0), 0.0);

  // Touch 1 so 2 becomes the LRU victim.
  EvalOutcome out;
  ASSERT_TRUE(cache.lookup(make_key(1), &out));
  cache.insert(make_key(3), make_outcome(3.0), 0.0);

  EXPECT_TRUE(cache.lookup(make_key(1), &out));
  EXPECT_DOUBLE_EQ(out.result.end_to_end, 1.0);
  EXPECT_TRUE(cache.lookup(make_key(3), &out));
  EXPECT_FALSE(cache.lookup(make_key(2), &out));  // evicted

  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(EvalCacheUnit, FingerprintCollisionsResolvedByFullKey) {
  // 1-bit fingerprints: every entry lands in one of two chains, so the
  // full-key disambiguation path is exercised constantly.
  EvalCache cache(
      EvalCache::Options{.max_entries = 64, .shards = 1, .hash_bits = 1});
  for (std::uint64_t i = 0; i < 32; ++i) {
    cache.insert(make_key(i), make_outcome(static_cast<double>(i) + 0.5),
                 static_cast<double>(i));
  }
  for (std::uint64_t i = 0; i < 32; ++i) {
    EvalOutcome out;
    double rerun = -1;
    ASSERT_TRUE(cache.lookup(make_key(i), &out, &rerun));
    EXPECT_DOUBLE_EQ(out.result.end_to_end, static_cast<double>(i) + 0.5);
    EXPECT_DOUBLE_EQ(rerun, static_cast<double>(i));
  }
  // A key that only differs in salt shares fingerprints with high
  // probability at 1 bit but must still miss.
  EvalOutcome out;
  EXPECT_FALSE(
      cache.lookup(EvalCache::Key{1, rep_streams::kCfr, 8, 1, false}, &out));
}

TEST(EvalCacheUnit, EvictionKeepsCollisionChainsConsistent) {
  EvalCache cache(
      EvalCache::Options{.max_entries = 4, .shards = 1, .hash_bits = 1});
  for (std::uint64_t i = 0; i < 40; ++i) {
    cache.insert(make_key(i), make_outcome(static_cast<double>(i)), 0.0);
  }
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 36u);
  // The four newest survive; everything older was evicted cleanly.
  for (std::uint64_t i = 36; i < 40; ++i) {
    EvalOutcome out;
    EXPECT_TRUE(cache.lookup(make_key(i), &out));
  }
  EvalOutcome out;
  EXPECT_FALSE(cache.lookup(make_key(0), &out));
}

// ------------------------------------------------------- property ----

TEST(EvalCacheProperty, CacheOnBitIdenticalToCacheOffAcrossSeeds) {
  std::size_t total_hits = 0;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE(seed);
    FuncyTunerOptions off = collision_options(seed);
    FuncyTunerOptions on = off;
    on.eval_cache = true;

    FuncyTuner a(programs::cloverleaf(), machine::broadwell(), off);
    FuncyTuner b(programs::cloverleaf(), machine::broadwell(), on);
    const TuningResult ra = a.run_cfr();
    const TuningResult rb = b.run_cfr();
    expect_identical(ra, rb);
    EXPECT_EQ(tuning_result_json(ra, a.space(), a.program()),
              tuning_result_json(rb, b.space(), b.program()));
    total_hits += b.evaluator().resilience_stats().cache_hits;
  }
  // Top-2 pruned spaces collide: across three seeds the cache must
  // actually serve hits, or this whole test is vacuous.
  EXPECT_GT(total_hits, 0u);
}

TEST(EvalCacheProperty, EvolutionSearchBitIdenticalWithCache) {
  FuncyTunerOptions off = collision_options();
  FuncyTunerOptions on = off;
  on.eval_cache = true;
  FuncyTuner a(programs::cloverleaf(), machine::broadwell(), off);
  FuncyTuner b(programs::cloverleaf(), machine::broadwell(), on);

  EvolutionOptions evo;
  evo.top_x = 2;
  evo.evaluations = 80;
  evo.population = 8;
  const TuningResult ra = evolutionary_search(
      a.evaluator(), a.outline(), a.collection(), evo, a.baseline_seconds());
  const TuningResult rb = evolutionary_search(
      b.evaluator(), b.outline(), b.collection(), evo, b.baseline_seconds());
  expect_identical(ra, rb);
  // Converging populations re-evaluate recombined duplicates; EvoCFR is
  // where the cache pays off hardest.
  EXPECT_GT(b.evaluator().resilience_stats().cache_hits, 0u);
  EXPECT_GT(b.evaluator().saved_overhead_seconds(), 0.0);
}

TEST(EvalCacheProperty, SequentialAndBatchPathsAgreeWithCache) {
  // patience == iterations can never trigger (at most iterations-1
  // non-improving steps happen), so the sequential path runs the full
  // budget and must land exactly where the parallel batch path does.
  FuncyTunerOptions batch = collision_options();
  batch.eval_cache = true;
  FuncyTunerOptions sequential = batch;
  sequential.patience = sequential.samples;

  FuncyTuner a(programs::cloverleaf(), machine::broadwell(), batch);
  FuncyTuner b(programs::cloverleaf(), machine::broadwell(), sequential);
  const TuningResult ra = a.run_cfr();
  const TuningResult rb = b.run_cfr();
  expect_identical(ra, rb);
}

TEST(EvalCacheProperty, JournalsAndQuarantineSetsIdenticalCacheOnVsOff) {
  // Fault injection exercises the ugly corner: cached failures must
  // rebuild quarantine state exactly as re-running would.
  FuncyTunerOptions off = collision_options();
  off.faults.rate = 0.08;
  off.faults.seed = 13;
  FuncyTunerOptions on = off;
  on.eval_cache = true;
  const std::string path_off = testing::TempDir() + "ft_cache_off.jsonl";
  const std::string path_on = testing::TempDir() + "ft_cache_on.jsonl";

  FuncyTuner a(programs::cloverleaf(), machine::broadwell(), off);
  a.evaluator().set_journal(
      EvalJournal::create(path_off, options_fingerprint(off)));
  FuncyTuner b(programs::cloverleaf(), machine::broadwell(), on);
  b.evaluator().set_journal(
      EvalJournal::create(path_on, options_fingerprint(off)));

  const TuningResult ra = a.run_cfr();
  const TuningResult rb = b.run_cfr();
  expect_identical(ra, rb);

  const ResilienceStats sa = a.evaluator().resilience_stats();
  const ResilienceStats sb = b.evaluator().resilience_stats();
  EXPECT_EQ(sa.quarantined, sb.quarantined);
  EXPECT_EQ(sa.compile_failures, sb.compile_failures);
  EXPECT_EQ(sa.quarantine_hits, sb.quarantine_hits);

  // Same record set: hits append nothing, exactly like journal replays.
  EXPECT_EQ(journal_record_lines(path_off), journal_record_lines(path_on));
}

TEST(EvalCacheProperty, ChargedPlusSavedEqualsCacheOffTotal) {
  FuncyTunerOptions off = collision_options();
  FuncyTunerOptions on = off;
  on.eval_cache = true;
  FuncyTuner a(programs::cloverleaf(), machine::broadwell(), off);
  FuncyTuner b(programs::cloverleaf(), machine::broadwell(), on);
  (void)a.run_cfr();
  (void)b.run_cfr();

  const double charged_off = a.evaluator().modeled_overhead_seconds();
  const double charged_on = b.evaluator().modeled_overhead_seconds();
  const double saved_on = b.evaluator().saved_overhead_seconds();
  EXPECT_GT(saved_on, 0.0);
  EXPECT_LT(charged_on, charged_off);
  // Accumulation order differs (hence NEAR, not EQ), but the split is
  // exact by construction: every hit saves precisely what the
  // deterministic re-run would have charged.
  EXPECT_NEAR(charged_on + saved_on, charged_off, 1e-9 * charged_off);
  // Logical evaluation counts agree: hits count as evaluations.
  EXPECT_EQ(a.evaluator().evaluations(), b.evaluator().evaluations());
}

TEST(EvalCacheProperty, WarmStartResumeSkipsAllJournaledEvaluations) {
  const FuncyTunerOptions options = collision_options();
  const std::uint64_t fingerprint = options_fingerprint(options);
  const std::string path = testing::TempDir() + "ft_cache_warm.jsonl";

  FuncyTuner recorded(programs::cloverleaf(), machine::broadwell(), options);
  recorded.evaluator().set_journal(EvalJournal::create(path, fingerprint));
  const TuningResult expected = recorded.run_cfr();

  // Resume with the cache warmed from the complete journal: every
  // evaluation is served from memory - zero re-evaluations, zero
  // journal replays/appends, zero modeled seconds charged.
  FuncyTunerOptions cached = options;
  cached.eval_cache = true;
  FuncyTuner resumed(programs::cloverleaf(), machine::broadwell(), cached);
  auto journal = EvalJournal::resume(path, fingerprint);
  resumed.evaluator().set_journal(journal);
  resumed.evaluator().warm_cache_from_journal();
  const TuningResult result = resumed.run_cfr();

  expect_identical(result, expected);
  EXPECT_EQ(journal->replayed(), 0u);
  EXPECT_EQ(journal->appended(), 0u);
  EXPECT_DOUBLE_EQ(resumed.evaluator().modeled_overhead_seconds(), 0.0);
  EXPECT_GT(resumed.evaluator().saved_overhead_seconds(), 0.0);
  const ResilienceStats stats = resumed.evaluator().resilience_stats();
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(EvalCacheProperty, KilledRunResumesViaCacheBitIdentically) {
  // The kill-and-resume scenario with the cache in the loop: a torn
  // journal warms a partial cache; the tail re-evaluates and the final
  // result still matches the uninterrupted run exactly.
  const FuncyTunerOptions options = collision_options();
  const std::uint64_t fingerprint = options_fingerprint(options);
  const std::string path = testing::TempDir() + "ft_cache_kill.jsonl";

  FuncyTuner reference(programs::cloverleaf(), machine::broadwell(), options);
  const TuningResult expected = reference.run_cfr();

  FuncyTuner recorded(programs::cloverleaf(), machine::broadwell(), options);
  recorded.evaluator().set_journal(EvalJournal::create(path, fingerprint));
  (void)recorded.run_cfr();

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 10u);
  const std::size_t keep = 1 + (lines.size() - 1) / 2;
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < keep; ++i) out << lines[i] << '\n';
    out << lines[keep].substr(0, lines[keep].size() / 3);  // torn tail
  }

  FuncyTunerOptions cached = options;
  cached.eval_cache = true;
  FuncyTuner resumed(programs::cloverleaf(), machine::broadwell(), cached);
  auto journal = EvalJournal::resume(path, fingerprint);
  resumed.evaluator().set_journal(journal);
  resumed.evaluator().warm_cache_from_journal();
  const TuningResult result = resumed.run_cfr();

  expect_identical(result, expected);
  // Journaled prefix came from the cache; only the lost tail re-ran.
  EXPECT_EQ(journal->replayed(), 0u);
  EXPECT_GT(journal->appended(), 0u);
  EXPECT_GT(resumed.evaluator().resilience_stats().cache_hits, 0u);
}

TEST(EvalCacheProperty, CampaignSharedCacheBitIdentical) {
  CampaignOptions off;
  off.tuner = collision_options(42, 40);
  off.algorithms = {"cfr"};
  CampaignOptions on = off;
  on.tuner.eval_cache = true;

  Campaign a({programs::cloverleaf()},
             {machine::broadwell(), machine::sandy_bridge()}, off);
  a.run();
  Campaign b({programs::cloverleaf()},
             {machine::broadwell(), machine::sandy_bridge()}, on);
  b.run();

  for (const CampaignCell& cell : a.cells()) {
    const CampaignCell& other = b.cell(cell.program, cell.architecture);
    ASSERT_EQ(cell.results.size(), other.results.size());
    for (std::size_t i = 0; i < cell.results.size(); ++i) {
      expect_identical(cell.results[i], other.results[i]);
    }
  }
}

}  // namespace
}  // namespace ft::core
