// Tests for the link step: uniform links carry no mismatch penalties,
// IPO re-optimization composes transformations only across differing
// CVs, shared-data mismatch penalties, instruction-cache pressure and
// executable fingerprints.
#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "compiler/linker.hpp"
#include "flags/spaces.hpp"
#include "machine/architecture.hpp"

namespace ft::compiler {
namespace {

/// Two-loop program with an IPO-inlinable first loop and shared data.
ir::Program make_program(double body0 = 30, double shared = 0.5) {
  auto loop = [&](const std::string& name, double ratio, double body) {
    ir::LoopModule m;
    m.name = name;
    m.o3_ratio = ratio;
    m.features.body_size = body;
    m.features.flops_per_iter = 20;
    m.features.trip_count = 4000;
    m.features.register_pressure = 0.7;
    m.features.shared_data = shared;
    m.features.call_density = 0.2;
    m.features.sanitize();
    return m;
  };
  ir::LoopModule nonloop = loop("nonloop", 0.4, 400);
  nonloop.is_loop = false;
  ir::InputSpec tuning;
  tuning.name = "tuning";
  return ir::Program("two", "C", 1,
                     {loop("hot0", 0.35, body0), loop("hot1", 0.25, 60)},
                     nonloop, {tuning});
}

class LinkerTest : public ::testing::Test {
 protected:
  LinkerTest()
      : space_(flags::icc_space()),
        arch_(machine::broadwell()),
        compiler_(space_, arch_) {}

  flags::CompilationVector cv(const std::string& text) {
    const auto parsed = space_.parse(text);
    EXPECT_TRUE(parsed.has_value()) << text;
    return *parsed;
  }

  flags::FlagSpace space_;
  machine::Architecture arch_;
  Compiler compiler_;
};

TEST_F(LinkerTest, UniformLinkIsFlaggedUniform) {
  const ir::Program program = make_program();
  const Executable exe = compiler_.build_uniform(program, cv("-ipo"));
  EXPECT_TRUE(exe.uniform);
}

TEST_F(LinkerTest, MixedLinkIsNotUniform) {
  const ir::Program program = make_program();
  ModuleAssignment assignment =
      ModuleAssignment::uniform(space_.default_cv(), 2);
  assignment.loop_cvs[0] = cv("-unroll4");
  const Executable exe = compiler_.build(program, assignment);
  EXPECT_FALSE(exe.uniform);
}

TEST_F(LinkerTest, UniformLinkHasNoMismatchPenalties) {
  const ir::Program program = make_program();
  const Executable exe =
      compiler_.build_uniform(program, cv("-pad -no-ansi-alias"));
  for (const LinkedLoop& loop : exe.loops) {
    EXPECT_DOUBLE_EQ(loop.interference_mult, 1.0);
  }
  EXPECT_DOUBLE_EQ(exe.nonloop.interference_mult, 1.0);
}

TEST_F(LinkerTest, PadMismatchPenalizesSharedDataModules) {
  const ir::Program program = make_program();
  ModuleAssignment assignment =
      ModuleAssignment::uniform(space_.default_cv(), 2);
  assignment.loop_cvs[0] = cv("-pad");
  const Executable exe = compiler_.build(program, assignment);
  EXPECT_GT(exe.loops[0].interference_mult, 1.0);
  EXPECT_GT(exe.loops[1].interference_mult, 1.0);
}

TEST_F(LinkerTest, NoPenaltyWithoutSharedData) {
  const ir::Program program = make_program(30, /*shared=*/0.0);
  ModuleAssignment assignment =
      ModuleAssignment::uniform(space_.default_cv(), 2);
  assignment.loop_cvs[0] = cv("-pad -no-ansi-alias");
  const Executable exe = compiler_.build(program, assignment);
  EXPECT_DOUBLE_EQ(exe.loops[0].interference_mult, 1.0);
  EXPECT_DOUBLE_EQ(exe.loops[1].interference_mult, 1.0);
}

TEST_F(LinkerTest, IpoRequiresBothSides) {
  const ir::Program program = make_program();
  // Loop has ipo, driver does not: no re-optimization.
  ModuleAssignment assignment =
      ModuleAssignment::uniform(space_.default_cv(), 2);
  assignment.loop_cvs[0] = cv("-ipo -no-vec");
  const Executable exe = compiler_.build(program, assignment);
  EXPECT_FALSE(exe.loops[0].ipo_reoptimized);
}

TEST_F(LinkerTest, IpoMismatchReoptimizesInlinableLoop) {
  const ir::Program program = make_program(/*body0=*/30);
  ModuleAssignment assignment =
      ModuleAssignment::uniform(cv("-ipo"), 2);
  assignment.loop_cvs[0] = cv("-ipo -no-vec -unroll2");
  const Executable exe = compiler_.build(program, assignment);
  EXPECT_TRUE(exe.loops[0].ipo_reoptimized);
  // hot1 (body 60) has the same CV as the driver: plain inlining only.
  EXPECT_FALSE(exe.loops[1].ipo_reoptimized);
}

TEST_F(LinkerTest, IpoCompositionMultipliesUnroll) {
  // The paper's mom9 effect: the module was compiled -unroll2; the
  // IPO re-optimization under the driver's settings unrolls again.
  const ir::Program program = make_program(/*body0=*/30);
  ModuleAssignment assignment =
      ModuleAssignment::uniform(cv("-ipo -unroll2"), 2);
  assignment.loop_cvs[0] = cv("-ipo -unroll4");
  const Executable exe = compiler_.build(program, assignment);
  ASSERT_TRUE(exe.loops[0].ipo_reoptimized);
  EXPECT_EQ(exe.loops[0].codegen.unroll, 8);  // 4 (object) x 2 (driver)
}

TEST_F(LinkerTest, IpoCompositionKeepsWiderVector) {
  const ir::Program program = make_program(/*body0=*/30);
  ModuleAssignment assignment =
      ModuleAssignment::uniform(cv("-ipo -no-vec"), 2);
  assignment.loop_cvs[0] = cv("-ipo -qopt-simd-width=256");
  const Executable exe = compiler_.build(program, assignment);
  ASSERT_TRUE(exe.loops[0].ipo_reoptimized);
  EXPECT_EQ(exe.loops[0].codegen.vector_width, 256);
}

TEST_F(LinkerTest, UniformIpoDoesNotCompose) {
  const ir::Program program = make_program(/*body0=*/30);
  const Executable exe =
      compiler_.build_uniform(program, cv("-ipo -unroll4"));
  EXPECT_FALSE(exe.loops[0].ipo_reoptimized);
  EXPECT_EQ(exe.loops[0].codegen.unroll, 4);  // not 16
}

TEST_F(LinkerTest, UniformIpoGrantsInliningBenefit) {
  const ir::Program program = make_program(/*body0=*/30);
  const Executable with_ipo =
      compiler_.build_uniform(program, cv("-ipo"));
  const Executable without =
      compiler_.build_uniform(program, space_.default_cv());
  EXPECT_LT(with_ipo.loops[0].codegen.compute_mult,
            without.loops[0].codegen.compute_mult);
  EXPECT_LT(with_ipo.nonloop.codegen.compute_mult,
            without.nonloop.codegen.compute_mult);
}

TEST_F(LinkerTest, LargeBodyLoopNotInlined) {
  const ir::Program program = make_program(/*body0=*/500);
  ModuleAssignment assignment =
      ModuleAssignment::uniform(cv("-ipo"), 2);
  assignment.loop_cvs[0] = cv("-ipo -no-vec");
  const Executable exe = compiler_.build(program, assignment);
  EXPECT_FALSE(exe.loops[0].ipo_reoptimized);
}

TEST_F(LinkerTest, InlineFactorWidensIpoReach) {
  const ir::Program program = make_program(/*body0=*/200);
  // body 200 > 64 at factor 100, but <= 64*800/100 = 512.
  ModuleAssignment assignment =
      ModuleAssignment::uniform(cv("-ipo -inline-factor=800"), 2);
  assignment.loop_cvs[0] = cv("-ipo -no-vec");
  const Executable exe = compiler_.build(program, assignment);
  EXPECT_TRUE(exe.loops[0].ipo_reoptimized);
}

TEST_F(LinkerTest, IcachePressureRaisesGlobalMult) {
  const ir::Program small_program = make_program(/*body0=*/20);
  const Executable small_exe =
      compiler_.build_uniform(small_program, space_.default_cv());
  EXPECT_DOUBLE_EQ(small_exe.global_mult, 1.0);

  // Huge bodies + deep unrolling overflow the icache budget.
  ir::Program big_program = make_program(/*body0=*/500);
  const Executable big_exe = compiler_.build_uniform(
      big_program, cv("-unroll8 -qopt-multi-version-aggressive"));
  EXPECT_GT(big_exe.global_mult, 1.0);
  EXPECT_LE(big_exe.global_mult, 1.25);
}

TEST_F(LinkerTest, FingerprintChangesWithAnyModuleCv) {
  const ir::Program program = make_program();
  ModuleAssignment a = ModuleAssignment::uniform(space_.default_cv(), 2);
  ModuleAssignment b = a;
  b.loop_cvs[1] = cv("-unroll2");
  EXPECT_NE(compiler_.build(program, a).fingerprint,
            compiler_.build(program, b).fingerprint);
}

TEST_F(LinkerTest, FingerprintStable) {
  const ir::Program program = make_program();
  const ModuleAssignment a =
      ModuleAssignment::uniform(space_.default_cv(), 2);
  EXPECT_EQ(compiler_.build(program, a).fingerprint,
            compiler_.build(program, a).fingerprint);
}

TEST_F(LinkerTest, LinkRejectsWrongObjectCount) {
  const ir::Program program = make_program();
  const CompiledModule object =
      compiler_.compile(program.loops()[0], space_.default_cv());
  const CompiledModule nonloop_object =
      compiler_.compile(program.nonloop(), space_.default_cv());
  EXPECT_THROW(
      (void)link(program, {object}, nonloop_object, arch_,
                 Personality::kIcc),
      std::invalid_argument);
}

}  // namespace
}  // namespace ft::compiler
