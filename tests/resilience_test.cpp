// Tests for the fault-injection layer and the resilient evaluation
// pipeline: deterministic fault draws, retry/quarantine semantics,
// graceful degradation of every registry search under faults, robust
// final-rep aggregation, and checkpoint/resume bit-identity.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/funcy_tuner.hpp"
#include "core/search_registry.hpp"
#include "core/serialization.hpp"
#include "machine/architecture.hpp"
#include "machine/fault_model.hpp"
#include "programs/benchmarks.hpp"
#include "support/rng.hpp"

namespace ft::core {
namespace {

FuncyTunerOptions fast_options(std::size_t samples = 60) {
  FuncyTunerOptions options;
  options.samples = samples;
  options.top_x = 8;
  options.seed = 42;
  options.final_reps = 5;
  return options;
}

FuncyTunerOptions faulty_options(double rate, std::size_t samples = 60) {
  FuncyTunerOptions options = fast_options(samples);
  options.faults.rate = rate;
  options.faults.seed = 99;
  return options;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

// ---------------------------------------------------------- fault model ----

TEST(FaultModel, DisabledInjectsNothing) {
  const machine::FaultModel model = machine::FaultModel::none();
  EXPECT_FALSE(model.enabled());
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(model.compile_fails(k));
    EXPECT_EQ(model.run_fault(k, 0, 0), machine::FaultModel::RunFault::kNone);
    EXPECT_DOUBLE_EQ(model.outlier_multiplier(k), 1.0);
  }
}

TEST(FaultModel, DeterministicPerSeed) {
  machine::FaultConfig config;
  config.rate = 0.3;
  config.seed = 7;
  const machine::FaultModel a(config);
  const machine::FaultModel b(config);
  config.seed = 8;
  const machine::FaultModel c(config);

  bool any_difference = false;
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(a.compile_fails(k), b.compile_fails(k));
    EXPECT_EQ(a.run_fault(k, 3, 1), b.run_fault(k, 3, 1));
    EXPECT_DOUBLE_EQ(a.outlier_multiplier(k), b.outlier_multiplier(k));
    any_difference |= a.compile_fails(k) != c.compile_fails(k);
  }
  EXPECT_TRUE(any_difference);  // a different seed draws different faults
}

TEST(FaultModel, RateProportionalAndSplitByShares) {
  machine::FaultConfig config;
  config.rate = 0.4;
  config.compile_share = 0.5;  // => P(ICE) = 0.2 per CV
  const machine::FaultModel model(config);
  std::size_t ices = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) ices += model.compile_fails(k);
  EXPECT_NEAR(static_cast<double>(ices) / 2000.0, 0.2, 0.04);

  std::size_t crashes = 0, timeouts = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    switch (model.run_fault(k, 0, 0)) {
      case machine::FaultModel::RunFault::kCrash: ++crashes; break;
      case machine::FaultModel::RunFault::kTimeout: ++timeouts; break;
      case machine::FaultModel::RunFault::kNone: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(crashes) / 2000.0, 0.1, 0.04);
  EXPECT_NEAR(static_cast<double>(timeouts) / 2000.0, 0.1, 0.04);
}

TEST(FaultModel, RetriesRedrawRunFaults) {
  machine::FaultConfig config;
  config.rate = 0.6;
  config.compile_share = 0.0;
  config.crash_share = 1.0;
  config.timeout_share = 0.0;
  const machine::FaultModel model(config);
  // Some attempt succeeds where attempt 0 crashed: the draw depends on
  // the attempt index, which is what makes retries worthwhile.
  bool recovered = false;
  for (std::uint64_t k = 0; k < 200 && !recovered; ++k) {
    if (model.run_fault(k, 0, 0) != machine::FaultModel::RunFault::kCrash) {
      continue;
    }
    for (int attempt = 1; attempt < 4; ++attempt) {
      if (model.run_fault(k, 0, attempt) ==
          machine::FaultModel::RunFault::kNone) {
        recovered = true;
        break;
      }
    }
  }
  EXPECT_TRUE(recovered);
}

TEST(FaultModel, OutlierMultiplierInConfiguredRange) {
  machine::FaultConfig config;
  config.rate = 0.0;
  config.outlier_rate = 0.5;
  const machine::FaultModel model(config);
  EXPECT_TRUE(model.enabled());  // outlier-only configs still inject
  std::size_t spikes = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double m = model.outlier_multiplier(k);
    if (m == 1.0) continue;
    ++spikes;
    EXPECT_GE(m, config.outlier_min_scale);
    EXPECT_LE(m, config.outlier_max_scale);
  }
  EXPECT_NEAR(static_cast<double>(spikes) / 1000.0, 0.5, 0.06);
}

TEST(FaultModel, RejectsInvalidRate) {
  machine::FaultConfig config;
  config.rate = 1.5;
  EXPECT_THROW(machine::FaultModel{config}, std::invalid_argument);
}

// --------------------------------------------------- resilient searches ----

TEST(Resilience, FastPathIsBitIdenticalToPrePolicyRuns) {
  // Faults off, no journal: two tuners with the same seed must agree
  // exactly, and try_evaluate must equal evaluate.
  FuncyTuner a(programs::cloverleaf(), machine::broadwell(), fast_options());
  FuncyTuner b(programs::cloverleaf(), machine::broadwell(), fast_options());
  const TuningResult ra = a.run_cfr();
  const TuningResult rb = b.run_cfr();
  EXPECT_EQ(ra.tuned_seconds, rb.tuned_seconds);
  EXPECT_EQ(ra.history, rb.history);
  const ResilienceStats stats = a.evaluator().resilience_stats();
  EXPECT_EQ(stats.failed_evaluations, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(Resilience, AllRegistryAlgorithmsSurviveFaultInjection) {
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(),
                   faulty_options(0.1));
  for (const std::string& name : SearchRegistry::global().names()) {
    SCOPED_TRACE(name);
    const TuningResult result = tuner.run(name);
    // The campaign completes and crowns a real winner even though some
    // evaluations failed.
    EXPECT_TRUE(std::isfinite(result.tuned_seconds));
    EXPECT_GT(result.speedup, 0.0);
  }
  const ResilienceStats stats = tuner.evaluator().resilience_stats();
  EXPECT_GT(stats.failed_evaluations, 0u);
  EXPECT_GT(stats.compile_failures + stats.run_crashes + stats.run_timeouts,
            0u);
}

TEST(Resilience, TransientCrashesAreRetried) {
  FuncyTunerOptions options = fast_options();
  options.faults.rate = 0.3;
  options.faults.seed = 5;
  options.faults.compile_share = 0.0;  // only transient crashes
  options.faults.crash_share = 1.0;
  options.faults.timeout_share = 0.0;
  options.faults.outlier_rate = 0.0;
  options.retry.max_retries = 6;
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(), options);
  const TuningResult result = tuner.run_random();
  EXPECT_TRUE(std::isfinite(result.tuned_seconds));
  const ResilienceStats stats = tuner.evaluator().resilience_stats();
  EXPECT_GT(stats.retries, 0u);
  // With 6 retries against a 30% transient rate, virtually every
  // evaluation recovers.
  EXPECT_LT(stats.failed_evaluations, stats.retries);
}

TEST(Resilience, CompileFailuresQuarantineTheVector) {
  FuncyTunerOptions options = fast_options();
  options.faults.rate = 0.4;
  options.faults.seed = 11;
  options.faults.compile_share = 1.0;  // ICEs only: retrying never helps
  options.faults.crash_share = 0.0;
  options.faults.timeout_share = 0.0;
  options.faults.outlier_rate = 0.0;
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(), options);
  const TuningResult result = tuner.run_random();
  EXPECT_TRUE(std::isfinite(result.tuned_seconds));
  const ResilienceStats stats = tuner.evaluator().resilience_stats();
  EXPECT_GT(stats.compile_failures, 0u);
  EXPECT_GT(stats.quarantined, 0u);
  EXPECT_EQ(stats.retries, 0u);  // permanent faults are never retried
}

TEST(Resilience, EvalTimeoutBudgetFailsSlowRuns) {
  FuncyTunerOptions options = fast_options();
  options.retry.eval_timeout_seconds = 1e-9;  // everything exceeds this
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(), options);
  const TuningResult result = tuner.run_random();
  // Every evaluation times out; the search degrades to the default-CV
  // fallback instead of crashing, and the JSON stays parseable.
  EXPECT_FALSE(std::isfinite(result.tuned_seconds));
  const ResilienceStats stats = tuner.evaluator().resilience_stats();
  EXPECT_GT(stats.run_timeouts, 0u);
  const std::string json =
      tuning_result_json(result, tuner.space(), tuner.program());
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"tuned_seconds\":null"), std::string::npos);
}

TEST(Resilience, OutlierSpikeCannotFlipFinalScoring) {
  // Outlier-only injection: runs complete but single reps can be
  // inflated 3-10x. Robust (trimmed-mean) final aggregation must stay
  // near the clean measurement while a plain mean is dragged upward.
  FuncyTunerOptions clean = fast_options();
  FuncyTunerOptions spiky = fast_options();
  spiky.faults.rate = 0.0;
  spiky.faults.outlier_rate = 0.15;
  spiky.faults.seed = 3;

  FuncyTuner reference(programs::cloverleaf(), machine::broadwell(), clean);
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(), spiky);
  const double clean_baseline = reference.baseline_seconds();
  const double robust_baseline = tuner.baseline_seconds();
  // 20% trim of 5 reps cuts the single worst rep, so an injected spike
  // cannot drag the aggregate: the robust estimate stays within a few
  // noise sigma of the clean protocol's value.
  EXPECT_NEAR(robust_baseline, clean_baseline, 0.05 * clean_baseline);
}

// ----------------------------------------------------- journal encoding ----

TEST(Journal, EncodeDecodeRoundTripsSuccess) {
  JournalRecord record;
  record.key = 0x123456789abcdef0ull;
  record.rep_base = 77;
  record.repetitions = 5;
  record.instrumented = true;
  record.outcome.attempts = 2;
  record.outcome.result.end_to_end = 123.45678901234567;
  record.outcome.result.stddev = 0.001234;
  record.outcome.result.loop_seconds = {1.1, 2.2, 0.3333333333333333};
  record.outcome.result.derived_nonloop_seconds = 0.0;

  JournalRecord decoded;
  ASSERT_TRUE(EvalJournal::decode(EvalJournal::encode(record), &decoded));
  EXPECT_EQ(decoded.key, record.key);
  EXPECT_EQ(decoded.rep_base, record.rep_base);
  EXPECT_EQ(decoded.repetitions, record.repetitions);
  EXPECT_EQ(decoded.instrumented, record.instrumented);
  EXPECT_EQ(decoded.outcome.attempts, record.outcome.attempts);
  EXPECT_TRUE(decoded.outcome.ok());
  // Bit-exact doubles: %.17g round-trips.
  EXPECT_EQ(decoded.outcome.result.end_to_end,
            record.outcome.result.end_to_end);
  EXPECT_EQ(decoded.outcome.result.stddev, record.outcome.result.stddev);
  EXPECT_EQ(decoded.outcome.result.loop_seconds,
            record.outcome.result.loop_seconds);
}

TEST(Journal, EncodeDecodeRoundTripsFailure) {
  JournalRecord record;
  record.key = 42;
  record.outcome.error.kind = EvalFault::kRunCrash;
  record.outcome.error.detail = "0x000000000000002a";
  record.outcome.attempts = 3;

  JournalRecord decoded;
  ASSERT_TRUE(EvalJournal::decode(EvalJournal::encode(record), &decoded));
  EXPECT_FALSE(decoded.outcome.ok());
  EXPECT_EQ(decoded.outcome.error.kind, EvalFault::kRunCrash);
  EXPECT_EQ(decoded.outcome.error.detail, record.outcome.error.detail);
  EXPECT_EQ(decoded.outcome.attempts, 3);
}

TEST(Journal, DecodeRejectsTornAndForeignLines) {
  JournalRecord record;
  record.key = 7;
  record.outcome.result.end_to_end = 1.0;
  const std::string line = EvalJournal::encode(record);
  JournalRecord out;
  // Any truncation of a valid line must be rejected, never misparsed.
  for (std::size_t cut = 1; cut < line.size(); ++cut) {
    EXPECT_FALSE(EvalJournal::decode(line.substr(0, cut), &out));
  }
  EXPECT_FALSE(EvalJournal::decode("", &out));
  EXPECT_FALSE(EvalJournal::decode(
      "{\"type\":\"snapshot\",\"records\":3,\"ok\":3,\"failed\":0}", &out));
  EXPECT_FALSE(EvalJournal::decode(
      "{\"type\":\"header\",\"version\":1,\"config\":\"0\"}", &out));
}

TEST(Journal, DecodeSurvivesByteFlipFuzz) {
  // Fuzz-style robustness: arbitrary single/multi byte corruption of a
  // valid record line must never crash or misparse into garbage - the
  // decoder either rejects the line or yields a record whose fields
  // were genuinely present in the mutated text.
  JournalRecord record;
  record.key = 0xfeedfacecafebeefull;
  record.rep_base = rep_streams::kCfr + 3;
  record.repetitions = 5;
  record.outcome.result.end_to_end = 12.5;
  record.outcome.result.loop_seconds = {1.0, 2.0, 3.0};
  const std::string line = EvalJournal::encode(record);

  support::Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = line;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] = static_cast<char>(rng.next_below(256));
    }
    JournalRecord out;
    (void)EvalJournal::decode(mutated, &out);  // must not crash/throw
  }
  // Pure garbage bytes, including NULs and non-UTF8.
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage(rng.next_below(120), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.next_below(256));
    JournalRecord out;
    EXPECT_FALSE(EvalJournal::decode(garbage, &out));
  }
}

TEST(Journal, ResumeTreatsGarbageLineAsTornTail) {
  // A corrupt line mid-file ends the trusted prefix: records before it
  // load, everything after is discarded and re-evaluates. The rewrite
  // drops the corruption so the NEXT resume sees a clean file.
  const std::string path = testing::TempDir() + "ft_journal_garbage.jsonl";
  {
    auto journal = EvalJournal::create(path, 4242);
    for (std::uint64_t k = 0; k < 6; ++k) {
      JournalRecord record;
      record.key = k;
      record.outcome.result.end_to_end = 1.0 + static_cast<double>(k);
      journal->record(record);
    }
  }
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    for (std::string line; std::getline(in, line);) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 7u);  // header + 6 records
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) out << lines[i] << '\n';
    out << "\x01\xff{not json at all\n";  // corruption after 3 records
    for (std::size_t i = 4; i < lines.size(); ++i) out << lines[i] << '\n';
  }

  auto journal = EvalJournal::resume(path, 4242);
  EXPECT_EQ(journal->loaded(), 3u);
  EvalOutcome out;
  EXPECT_TRUE(journal->lookup(2, 0, 1, false, &out));
  EXPECT_FALSE(journal->lookup(5, 0, 1, false, &out));  // after the tear

  // The rewritten file must now resume fully, with no garbage left.
  auto again = EvalJournal::resume(path, 4242);
  EXPECT_EQ(again->loaded(), 3u);
  EXPECT_EQ(read_file(path).find('\x01'), std::string::npos);
}

TEST(Journal, ResumeDeduplicatesRepeatedRecords) {
  // Crash-during-append can leave the same evaluation journaled twice
  // (e.g. a resume-rewrite raced a kill). The keyed map keeps one copy
  // and the rewrite emits each record exactly once.
  const std::string path = testing::TempDir() + "ft_journal_dup.jsonl";
  JournalRecord record;
  record.key = 11;
  record.rep_base = 22;
  record.repetitions = 3;
  record.outcome.result.end_to_end = 7.5;
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"type\":\"header\",\"version\":1,\"config\":\"0\"}\n";
    for (int i = 0; i < 4; ++i) out << EvalJournal::encode(record) << '\n';
  }
  auto journal = EvalJournal::resume(path, 0);
  EXPECT_EQ(journal->loaded(), 4u);  // lines read...
  EvalOutcome out;
  ASSERT_TRUE(journal->lookup(11, 22, 3, false, &out));
  EXPECT_DOUBLE_EQ(out.result.end_to_end, 7.5);

  // ...but only one survives the rewrite.
  auto again = EvalJournal::resume(path, 0);
  EXPECT_EQ(again->loaded(), 1u);
}

TEST(Journal, WarmedCacheFromTornJournalNeverPoisonsResults) {
  // The cache-poisoning scenario the warm-start path must rule out: a
  // journal torn mid-record (plus trailing garbage) warms only fully
  // decoded records; the tuned result still matches an uninterrupted
  // reference bit-for-bit.
  const FuncyTunerOptions options = faulty_options(0.05);
  const std::uint64_t fingerprint = options_fingerprint(options);
  const std::string path = testing::TempDir() + "ft_journal_poison.jsonl";

  FuncyTuner reference(programs::cloverleaf(), machine::broadwell(), options);
  const TuningResult expected = reference.run_cfr();

  FuncyTuner recorded(programs::cloverleaf(), machine::broadwell(), options);
  recorded.evaluator().set_journal(EvalJournal::create(path, fingerprint));
  (void)recorded.run_cfr();

  // Tear the file mid-record and append garbage "records".
  std::string contents = read_file(path);
  contents.resize(contents.size() * 2 / 3);
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents << "\n{\"type\":\"eval\",\"key\":\"zzz\"}\n\xde\xad\n";
  }

  FuncyTunerOptions cached = options;
  cached.eval_cache = true;
  FuncyTuner resumed(programs::cloverleaf(), machine::broadwell(), cached);
  resumed.evaluator().set_journal(EvalJournal::resume(path, fingerprint));
  resumed.evaluator().warm_cache_from_journal();
  const TuningResult result = resumed.run_cfr();

  EXPECT_EQ(result.history, expected.history);
  EXPECT_EQ(result.tuned_seconds, expected.tuned_seconds);
  EXPECT_EQ(result.speedup, expected.speedup);
}

TEST(Journal, ResumeRejectsConfigMismatch) {
  const std::string path = testing::TempDir() + "ft_journal_config.jsonl";
  { auto journal = EvalJournal::create(path, 1111); }
  EXPECT_THROW((void)EvalJournal::resume(path, 2222), std::runtime_error);
  EXPECT_NO_THROW((void)EvalJournal::resume(path, 1111));
  EXPECT_NO_THROW((void)EvalJournal::resume(path, 0));  // 0 skips the check
}

TEST(Journal, ResumeOfMissingFileThrows) {
  EXPECT_THROW(
      (void)EvalJournal::resume(testing::TempDir() + "ft_no_such.jsonl", 0),
      std::runtime_error);
}

// --------------------------------------------------- checkpoint/resume ----

TEST(Checkpoint, KilledCampaignResumesBitIdentically) {
  const FuncyTunerOptions options = faulty_options(0.05);
  const std::uint64_t fingerprint = options_fingerprint(options);
  const std::string path = testing::TempDir() + "ft_journal_resume.jsonl";

  // Reference: one uninterrupted run, no journal.
  FuncyTuner reference(programs::cloverleaf(), machine::broadwell(), options);
  const TuningResult expected = reference.run_cfr();

  // Journaled run: must match the reference exactly (the journal only
  // records, never perturbs).
  FuncyTuner recorded(programs::cloverleaf(), machine::broadwell(), options);
  recorded.evaluator().set_journal(EvalJournal::create(path, fingerprint));
  const TuningResult journaled = recorded.run_cfr();
  EXPECT_EQ(journaled.tuned_seconds, expected.tuned_seconds);
  EXPECT_EQ(journaled.history, expected.history);

  // Simulate a mid-campaign kill: keep the header and ~40% of the
  // records, then cut the next line in half (a torn write).
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 10u);
  const std::size_t keep = 1 + (lines.size() - 1) * 2 / 5;
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < keep; ++i) out << lines[i] << '\n';
    out << lines[keep].substr(0, lines[keep].size() / 2);  // torn tail
  }

  // Resume with a fresh tuner: replay + re-evaluation must land on the
  // exact result of the uninterrupted run, down to the serialized JSON.
  auto journal = EvalJournal::resume(path, fingerprint);
  EXPECT_GT(journal->loaded(), 0u);
  EXPECT_LT(journal->loaded(), recorded.evaluator().evaluations());
  FuncyTuner resumed(programs::cloverleaf(), machine::broadwell(), options);
  resumed.evaluator().set_journal(journal);
  const TuningResult result = resumed.run_cfr();

  EXPECT_EQ(result.tuned_seconds, expected.tuned_seconds);
  EXPECT_EQ(result.search_best_seconds, expected.search_best_seconds);
  EXPECT_EQ(result.speedup, expected.speedup);
  EXPECT_EQ(result.baseline_seconds, expected.baseline_seconds);
  EXPECT_EQ(result.history, expected.history);
  EXPECT_EQ(result.evaluations, expected.evaluations);
  EXPECT_EQ(
      tuning_result_json(result, resumed.space(), resumed.program()),
      tuning_result_json(expected, reference.space(), reference.program()));
  EXPECT_GT(journal->replayed(), 0u);
  // The journal now holds the full campaign again: resuming the
  // completed journal replays everything and re-runs nothing.
  auto complete = EvalJournal::resume(path, fingerprint);
  FuncyTuner replay(programs::cloverleaf(), machine::broadwell(), options);
  replay.evaluator().set_journal(complete);
  const TuningResult replayed = replay.run_cfr();
  EXPECT_EQ(replayed.tuned_seconds, expected.tuned_seconds);
  EXPECT_EQ(replayed.history, expected.history);
}

TEST(Checkpoint, CampaignGridCheckpointsSharedJournal) {
  CampaignOptions options;
  options.tuner = faulty_options(0.05, 40);
  options.algorithms = {"cfr"};
  options.checkpoint_path = testing::TempDir() + "ft_campaign.jsonl";

  Campaign first({programs::cloverleaf()},
                 {machine::broadwell(), machine::sandy_bridge()}, options);
  first.run();

  options.resume = true;
  Campaign second({programs::cloverleaf()},
                  {machine::broadwell(), machine::sandy_bridge()}, options);
  second.run();

  for (const CampaignCell& cell : first.cells()) {
    const CampaignCell& other =
        second.cell(cell.program, cell.architecture);
    ASSERT_EQ(cell.results.size(), other.results.size());
    for (std::size_t i = 0; i < cell.results.size(); ++i) {
      EXPECT_EQ(cell.results[i].tuned_seconds,
                other.results[i].tuned_seconds);
      EXPECT_EQ(cell.results[i].history, other.results[i].history);
    }
  }
}

TEST(Checkpoint, OptionsFingerprintSeparatesConfigs) {
  const FuncyTunerOptions base = fast_options();
  FuncyTunerOptions different_seed = base;
  different_seed.seed = 43;
  FuncyTunerOptions different_faults = base;
  different_faults.faults.rate = 0.1;
  EXPECT_NE(options_fingerprint(base), options_fingerprint(different_seed));
  EXPECT_NE(options_fingerprint(base),
            options_fingerprint(different_faults));
  EXPECT_EQ(options_fingerprint(base), options_fingerprint(fast_options()));
}

}  // namespace
}  // namespace ft::core
