// ThreadSanitizer harness for the task-group thread pool: concurrent
// parallel_for callers with exceptions, nested parallelism, helper
// stealing, and stats reads racing task execution.
//
// Built outside the CMake tree (no gtest dependency) so the sanitizer
// run instruments every frame:
//   g++ -std=c++20 -fsanitize=thread -g -O1 -Isrc \
//     tests/tsan/thread_pool_tsan.cpp src/support/thread_pool.cpp \
//     -o thread_pool_tsan -lpthread && ./thread_pool_tsan
#include <cassert>
#include <cstdio>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

using namespace ft::support;

int main() {
  // 1. Concurrent callers, each with its own exception.
  {
    ThreadPool pool(4);
    auto caller = [&](const std::string& tag) {
      try {
        parallel_for(256, [&](std::size_t i) {
          if (i == 123) throw std::runtime_error(tag);
        }, &pool);
        return std::string("none");
      } catch (const std::runtime_error& e) {
        return std::string(e.what());
      }
    };
    for (int round = 0; round < 50; ++round) {
      auto a = std::async(std::launch::async, caller, "A");
      auto b = std::async(std::launch::async, caller, "B");
      assert(a.get() == "A");
      assert(b.get() == "B");
    }
  }

  // 2. Nested parallel_for on pools of size 1, 2, default.
  for (const std::size_t threads : {1u, 2u, 0u}) {
    ThreadPool pool(threads);
    std::vector<std::vector<int>> got(8, std::vector<int>(16, 0));
    parallel_for(8, [&](std::size_t i) {
      parallel_for(16, [&, i](std::size_t j) {
        got[i][j] = static_cast<int>(i * 100 + j);
      }, &pool);
    }, &pool);
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < 16; ++j) {
        assert(got[i][j] == static_cast<int>(i * 100 + j));
      }
    }
  }

  // 3. Helper stealing while all workers are blocked, plus stats()
  //    reads racing execution.
  {
    ThreadPool pool(2);
    TaskGroup blockers;
    std::promise<void> release;
    const std::shared_future<void> released = release.get_future().share();
    std::atomic<int> started{0};
    for (int i = 0; i < 2; ++i) {
      pool.submit(blockers, [&started, released] {
        ++started;
        released.wait();
      });
    }
    while (started.load() < 2) std::this_thread::yield();
    std::thread stats_reader([&] {
      for (int i = 0; i < 1000; ++i) {
        (void)pool.stats();
        (void)blockers.stats();
      }
    });
    TaskGroup::Stats stats;
    parallel_for(100, [](std::size_t) {}, &pool, &stats);
    assert(stats.stolen == stats.submitted);
    release.set_value();
    pool.wait(blockers);
    stats_reader.join();
  }

  // 4. Many concurrent groups hammering one pool.
  {
    ThreadPool pool(4);
    std::vector<std::thread> callers;
    std::atomic<std::size_t> total{0};
    for (int t = 0; t < 8; ++t) {
      callers.emplace_back([&pool, &total] {
        for (int round = 0; round < 20; ++round) {
          parallel_for(64, [&](std::size_t) { ++total; }, &pool);
        }
      });
    }
    for (auto& c : callers) c.join();
    assert(total.load() == 8u * 20u * 64u);
  }

  std::puts("tsan harness ok");
  return 0;
}
