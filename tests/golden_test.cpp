// Golden-output regression tests: fixed-seed tuning runs are compared
// against committed JSON snapshots (the exact payload `ftune tune
// --json` writes). The comparator treats unquoted numeric literals as
// doubles at %.17g - a diff therefore means a real behavioral change,
// not a formatting accident, and the failure message points at the
// first diverging token instead of dumping two blobs.
//
// Regenerate snapshots after an INTENDED behavior change with:
//   FT_UPDATE_GOLDEN=1 ./build/tests/golden_test
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/funcy_tuner.hpp"
#include "core/serialization.hpp"
#include "machine/architecture.hpp"
#include "programs/benchmarks.hpp"

namespace ft::core {
namespace {

#ifndef FT_GOLDEN_DIR
#error "FT_GOLDEN_DIR must point at the source-tree snapshot directory"
#endif

/// One lexical token of a JSON document: either a numeric literal
/// (compared at %.17g) or a run of everything else (compared exactly).
/// Quoted strings stay textual even when they contain digits - loop
/// names and hashes must match byte-for-byte.
struct Token {
  bool numeric = false;
  std::string text;
};

std::vector<Token> tokenize(const std::string& json) {
  std::vector<Token> tokens;
  std::string text;
  bool in_string = false;
  std::size_t i = 0;
  const auto flush = [&] {
    if (!text.empty()) tokens.push_back({false, text});
    text.clear();
  };
  while (i < json.size()) {
    const char c = json[i];
    if (in_string) {
      text += c;
      if (c == '\\' && i + 1 < json.size()) text += json[++i];
      if (c == '"') in_string = false;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      text += c;
      ++i;
      continue;
    }
    const bool starts_number =
        std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < json.size() &&
         std::isdigit(static_cast<unsigned char>(json[i + 1])));
    if (starts_number) {
      flush();
      const char* begin = json.c_str() + i;
      char* end = nullptr;
      (void)std::strtod(begin, &end);
      tokens.push_back(
          {true, std::string(begin, static_cast<std::size_t>(end - begin))});
      i += static_cast<std::size_t>(end - begin);
      continue;
    }
    text += c;
    ++i;
  }
  flush();
  return tokens;
}

std::string g17(const std::string& literal) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g",
                std::strtod(literal.c_str(), nullptr));
  return buffer;
}

/// Compares two JSON documents token-wise; on mismatch returns a
/// message naming the first diverging token with surrounding context.
testing::AssertionResult json_equal(const std::string& expected,
                                    const std::string& actual) {
  const std::vector<Token> a = tokenize(expected);
  const std::vector<Token> b = tokenize(actual);
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const bool same =
        a[i].numeric && b[i].numeric
            ? g17(a[i].text) == g17(b[i].text)
            : (a[i].numeric == b[i].numeric && a[i].text == b[i].text);
    if (same) continue;
    std::ostringstream oss;
    oss << "token " << i << " differs: expected '" << a[i].text
        << "' vs actual '" << b[i].text << "'\ncontext:";
    for (std::size_t j = i >= 2 ? i - 2 : 0; j < std::min(n, i + 3); ++j) {
      oss << ' ' << (j == i ? ">>>" : "") << b[j].text;
    }
    return testing::AssertionFailure() << oss.str();
  }
  if (a.size() != b.size()) {
    return testing::AssertionFailure()
           << "token counts differ: expected " << a.size() << ", actual "
           << b.size() << " (first extra: '"
           << (a.size() > b.size() ? a[n].text : b[n].text) << "')";
  }
  return testing::AssertionSuccess();
}

std::string snapshot_path(const std::string& name) {
  return std::string(FT_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against the committed snapshot, or rewrites the
/// snapshot when FT_UPDATE_GOLDEN is set in the environment.
void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = snapshot_path(name);
  if (std::getenv("FT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "updated golden snapshot " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden snapshot " << path
                         << " (run with FT_UPDATE_GOLDEN=1 to create)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_equal(buffer.str(), actual))
      << "snapshot " << name << " diverged; if the change is intended, "
      << "regenerate with FT_UPDATE_GOLDEN=1";
}

/// The fixed-seed configuration all snapshots were recorded under.
/// Changing ANY default that feeds the evaluator shows up here first.
FuncyTunerOptions golden_options() {
  FuncyTunerOptions options;
  options.samples = 120;
  options.top_x = 6;
  options.seed = 42;
  options.final_reps = 5;
  return options;
}

// ------------------------------------------------------ comparator ----

TEST(GoldenComparator, NumbersCompareAtG17NotTextually) {
  EXPECT_TRUE(json_equal("{\"x\":1.50,\"y\":2}", "{\"x\":1.5,\"y\":2}"));
  EXPECT_TRUE(json_equal("[1e3]", "[1000]"));
  EXPECT_FALSE(json_equal("{\"x\":1.5}", "{\"x\":1.5000000000000002}"));
}

TEST(GoldenComparator, StringsCompareExactlyEvenWithDigits) {
  EXPECT_FALSE(json_equal("{\"id\":\"m1\"}", "{\"id\":\"m2\"}"));
  EXPECT_TRUE(json_equal("{\"id\":\"m1\"}", "{\"id\":\"m1\"}"));
  EXPECT_FALSE(json_equal("{\"x\":1}", "{\"x\":1,\"y\":2}"));
}

// --------------------------------------------------------- golden ----

TEST(Golden, CfrCloverleafBroadwellJson) {
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(),
                   golden_options());
  const TuningResult result = tuner.run_cfr();
  check_golden("cfr_cloverleaf_broadwell.json",
               tuning_result_json(result, tuner.space(), tuner.program()));
}

TEST(Golden, RandomCloverleafBroadwellJson) {
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(),
                   golden_options());
  const TuningResult result = tuner.run_random();
  check_golden("random_cloverleaf_broadwell.json",
               tuning_result_json(result, tuner.space(), tuner.program()));
}

TEST(Golden, CfrJsonUnchangedByEvalCache) {
  // The cache's bit-identity contract, pinned to the committed
  // snapshot: cache-on must reproduce the cache-off golden bytes.
  FuncyTunerOptions options = golden_options();
  options.eval_cache = true;
  FuncyTuner tuner(programs::cloverleaf(), machine::broadwell(), options);
  const TuningResult result = tuner.run_cfr();
  check_golden("cfr_cloverleaf_broadwell.json",
               tuning_result_json(result, tuner.space(), tuner.program()));
}

}  // namespace
}  // namespace ft::core
